//! Umbrella package: integration tests and examples live here.
