//! A/B gate for the interned storage path: on the full conformance corpus,
//! chasing with symbol interning on must render **byte-identically** to
//! chasing the plain string instance, under every scheduler mode — plus
//! determinism checks on the interner itself (same program + facts must
//! produce the same symbol ids, in every thread).

use std::path::PathBuf;

use grom::chase::{chase_standard, chase_standard_full_rescan, Budget, ChaseConfig, SchedulerMode};
use grom::data::{canonical_render, Instance, SymbolTable};
use grom::intern_dependencies;
use grom::lang::Dependency;
use grom::scenarios::{all_modes, chase_mode, error_class, list_entries, read_entry};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// [`chase_mode`]'s twin with the pipeline's interning choke point wired
/// in: intern the instance and the dependency constants through one
/// table, chase, un-intern, render.
fn chase_mode_interned(
    deps: &[Dependency],
    inst: &Instance,
    mode: SchedulerMode,
    cfg: &ChaseConfig,
) -> Result<String, String> {
    let mut table = SymbolTable::new();
    let interned = inst.intern_strings(&mut table);
    let ideps = intern_dependencies(deps, &mut table);
    let cfg = cfg.clone().with_scheduler(mode);
    let run = match mode {
        SchedulerMode::FullRescan => chase_standard_full_rescan(interned, &ideps, &cfg),
        _ => chase_standard(interned, &ideps, &cfg),
    };
    match run {
        Ok(res) => Ok(canonical_render(&res.instance.unintern_strings())),
        Err(e) => Err(error_class(&e).to_string()),
    }
}

#[test]
fn interned_storage_renders_identically_on_the_full_corpus() {
    let mut entries = 0usize;
    for path in list_entries(&corpus_dir()).expect("corpus/ readable") {
        let entry = read_entry(&path).expect("entry parses");
        let (deps, inst) = entry.parts().expect("entry parts");
        // Respect the entry's committed budget: the `expect: interrupted`
        // entries never terminate unbudgeted, and the interned path must
        // agree with the plain one on the interruption class too.
        let mut cfg = ChaseConfig::default();
        if let Some(n) = entry.max_tuples {
            cfg = cfg.with_budget(Budget::none().with_max_tuples(n as usize));
        }
        for (mode_name, mode) in all_modes() {
            let plain = chase_mode(&deps, inst.clone(), mode, &cfg);
            let interned = chase_mode_interned(&deps, &inst, mode, &cfg);
            assert_eq!(
                plain, interned,
                "entry `{}`, mode {mode_name}: interned chase diverges",
                entry.name
            );
        }
        entries += 1;
    }
    assert!(entries >= 20, "corpus shrank to {entries} entries");
}

#[test]
fn interning_round_trips_and_renders_identically() {
    for path in list_entries(&corpus_dir()).expect("corpus/ readable") {
        let entry = read_entry(&path).expect("entry parses");
        let (_, inst) = entry.parts().expect("entry parts");
        let mut table = SymbolTable::new();
        let interned = inst.intern_strings(&mut table);
        // Symbols display exactly like the strings they replace.
        assert_eq!(canonical_render(&inst), canonical_render(&interned));
        // And fold back into the original instance.
        assert_eq!(
            canonical_render(&inst),
            canonical_render(&interned.unintern_strings())
        );
    }
}

#[test]
fn interner_assigns_the_same_ids_in_every_run_and_thread() {
    let entries: Vec<_> = list_entries(&corpus_dir())
        .expect("corpus/ readable")
        .into_iter()
        .map(|p| read_entry(&p).expect("entry parses"))
        .collect();

    let snapshot_of = |entry: &grom::scenarios::CorpusEntry| -> Vec<String> {
        let (deps, inst) = entry.parts().expect("entry parts");
        let mut table = SymbolTable::new();
        let _ = inst.intern_strings(&mut table);
        let _ = intern_dependencies(&deps, &mut table);
        table.snapshot().iter().map(|s| s.to_string()).collect()
    };

    for entry in &entries {
        let reference = snapshot_of(entry);
        // Re-running the exact same interning sequence reproduces the ids.
        assert_eq!(reference, snapshot_of(entry), "entry `{}`", entry.name);
        // And so does every other thread: symbol ids depend only on the
        // program + facts, never on scheduling.
        let parallel: Vec<Vec<String>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| snapshot_of(entry)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner thread"))
                .collect()
        });
        for snap in parallel {
            assert_eq!(reference, snap, "entry `{}`", entry.name);
        }
    }
}
