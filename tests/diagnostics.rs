//! Failure-injection and diagnostics tests: malformed scenarios must fail
//! with actionable errors, never panic; budgets must be enforced; warnings
//! and provenance must point at the right objects.

use grom::prelude::*;

#[test]
fn parse_errors_carry_positions() {
    for (text, expect) in [
        ("view V(x <- A(x).", "expected"),
        ("tgd m: -> T(x).", "expected"),
        ("fact S(x).", "ground"),
        ("schema s { R(a: floating); }", "unknown column type"),
    ] {
        let err = Program::parse(text).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(expect),
            "error for `{text}` should mention `{expect}`, got: {msg}"
        );
    }
}

#[test]
fn recursive_views_rejected_before_running() {
    let prog = Program::parse(
        r#"
        schema source { S(x: int); }
        schema target { T(x: int); }
        view V(x) <- W(x).
        view W(x) <- T(x), not V(x).
        tgd m: S(x) -> V(x).
        "#,
    )
    .unwrap();
    let err = MappingScenario::from_program(&prog).unwrap_err();
    assert!(err.to_string().contains("recursive"), "{err}");
}

#[test]
fn unsafe_view_rejected_with_variable_name() {
    let prog = Program::parse(
        r#"
        schema source { S(x: int); }
        schema target { T(x: int); }
        view V(x, ghost) <- T(x).
        tgd m: S(x) -> T(x).
        "#,
    )
    .unwrap();
    let err = MappingScenario::from_program(&prog).unwrap_err();
    assert!(err.to_string().contains("ghost"), "{err}");
}

#[test]
fn rewrite_budget_is_enforced_not_truncated() {
    // 20 union rules used three times: 8000 premise alternatives > budget.
    let mut text = String::from("schema source { S(x: int); }\nschema target {\n");
    for i in 0..20 {
        text.push_str(&format!("  A{i}(x: int);\n"));
    }
    text.push_str("  Out(x: int, y: int, z: int);\n}\n");
    for i in 0..20 {
        text.push_str(&format!("view V(x) <- A{i}(x).\n"));
    }
    text.push_str("view VOut(x, y, z) <- Out(x, y, z).\n");
    text.push_str("dep m: V(x), V(y), V(z) -> VOut(x, y, z).\n");
    let prog = Program::parse(&text).unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let err = sc.rewrite(&RewriteOptions::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("budget"), "{msg}");

    // Raising the budget makes it pass — 8000 output dependencies.
    let out = sc
        .rewrite(&RewriteOptions {
            max_alternatives: 10_000,
        })
        .unwrap();
    assert_eq!(out.deps.len(), 8_000);
}

#[test]
fn provenance_maps_every_output_to_its_input() {
    let prog = Program::parse(
        r#"
        schema source { S_P(id: int, r: int); }
        schema target { T_P(id: int); T_R(id: int, v: int); }
        view Good(x) <- T_P(x), not T_R(x, 0).
        tgd m_hi: S_P(x, r), r >= 4 -> Good(x).
        egd key: Good(x), Good(y) -> x = y.
        "#,
    )
    .unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let out = sc.rewrite(&RewriteOptions::default()).unwrap();
    for dep in &out.deps {
        let input = &out.provenance[&dep.name];
        assert!(
            ["m_hi", "key"].contains(&input.as_ref()),
            "unexpected provenance {input} for {}",
            dep.name
        );
    }
    // The ded produced from the key egd blames the Good view.
    let ded = out
        .deds()
        .next()
        .expect("key egd over negated view gives a ded");
    assert!(out.ded_causes[&ded.name]
        .iter()
        .any(|c| c.as_ref() == "Good"));
}

#[test]
fn chase_failure_message_names_the_dependency() {
    let prog = Program::parse(
        r#"
        schema source { S(x: int, y: int); }
        schema target { T(x: int, y: int); }
        view V(x, y) <- T(x, y).
        tgd m: S(x, y) -> V(x, y).
        egd funky: V(x, a), V(x, b) -> a = b.
        "#,
    )
    .unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let mut source = Instance::new();
    source
        .add("S", vec![Value::int(1), Value::int(10)])
        .unwrap();
    source
        .add("S", vec![Value::int(1), Value::int(20)])
        .unwrap();
    let err = sc.run(&source, &PipelineOptions::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("funky"), "{msg}");
    assert!(msg.contains("10") && msg.contains("20"), "{msg}");
}

#[test]
fn validation_report_names_violated_dependencies() {
    let prog = Program::parse(
        r#"
        schema source { S(x: int); }
        schema target { T(x: int); }
        view V(x) <- T(x).
        tgd copy_all: S(x) -> V(x).
        "#,
    )
    .unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let mut source = Instance::new();
    source.add("S", vec![Value::int(1)]).unwrap();
    // Hand the validator an (empty) wrong target.
    let report = validate_solution(&sc, &source, &Instance::new()).unwrap();
    assert!(!report.ok);
    assert!(report.violations[0].contains("copy_all"));
    assert!(report.to_string().contains("INVALID"));
}

#[test]
fn wa_warning_surfaces_for_non_terminating_programs() {
    // An FK cycle that creates fresh nulls forever: the analysis flags it,
    // and the chase stops at the round budget instead of spinning.
    let prog = Program::parse(
        r#"
        schema source { S(x: int); }
        schema target { A(x: int, y: int); }
        view VA(x, y) <- A(x, y).
        tgd seed: S(x) -> VA(x, y).
        dep spin: VA(x, y) -> VA(y, z).
        "#,
    )
    .unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let rewritten = sc.rewrite(&RewriteOptions::default()).unwrap();
    let report = grom::chase::is_weakly_acyclic(&rewritten.deps);
    assert!(!report.weakly_acyclic);

    let mut source = Instance::new();
    source.add("S", vec![Value::int(1)]).unwrap();
    let opts = PipelineOptions {
        chase: ChaseConfig::default().with_max_rounds(25),
        ..Default::default()
    };
    let err = sc.run(&source, &opts).unwrap_err();
    assert!(err.to_string().contains("25 rounds"), "{err}");
}

#[test]
fn instance_io_round_trips_chase_output() {
    // Save a chased target (with nulls) and reload it: the validator must
    // accept the reloaded instance exactly like the original.
    let prog = Program::parse(
        r#"
        schema source { S(x: int); }
        schema target { T(x: int, y: int); }
        view V(x) <- T(x, y).
        tgd m: S(x) -> V(x).
        "#,
    )
    .unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let mut source = Instance::new();
    source.add("S", vec![Value::int(1)]).unwrap();
    let res = sc.run(&source, &PipelineOptions::default()).unwrap();

    let text = grom::data::write_instance(&res.target);
    let reloaded = grom::data::read_instance(&text).unwrap();
    assert_eq!(reloaded.len(), res.target.len());
    let report = validate_solution(&sc, &source, &reloaded).unwrap();
    assert!(report.ok);
}
