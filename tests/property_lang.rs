//! Property-based tests for the language layer: printer/parser round-trips
//! on randomly generated ASTs, comparison-operator semantics, and the
//! canonical invariants of substitutions.

use proptest::prelude::*;

use grom::lang::parser::{parse_dependency, parse_view_rule};
use grom::lang::{Atom, CmpOp, Comparison, Dependency, Disjunct, Literal, Term, ViewRule};
use grom::prelude::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::int),
        "[a-z]{1,6}".prop_map(Value::str),
        any::<bool>().prop_map(Value::bool),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")].prop_map(Term::var),
        arb_value().prop_map(Term::Const),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        prop_oneof![Just("P"), Just("Q"), Just("R_rel"), Just("S0")],
        prop::collection::vec(arb_term(), 1..4),
    )
        .prop_map(|(p, args)| Atom::new(p, args))
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
        Just(CmpOp::Lt),
        Just(CmpOp::Leq),
        Just(CmpOp::Gt),
        Just(CmpOp::Geq),
    ]
}

fn arb_comparison() -> impl Strategy<Value = Comparison> {
    (arb_cmp_op(), arb_term(), arb_term()).prop_map(|(op, l, r)| Comparison::new(op, l, r))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        arb_atom().prop_map(Literal::Pos),
        arb_atom().prop_map(Literal::Neg),
        arb_comparison().prop_map(Literal::Cmp),
    ]
}

fn arb_disjunct() -> impl Strategy<Value = Disjunct> {
    (
        prop::collection::vec(arb_atom(), 0..3),
        prop::collection::vec((arb_term(), arb_term()), 0..2),
        prop::collection::vec(
            // Conclusion comparisons exclude Eq (the parser reads `=` in a
            // disjunct as an equality, by design).
            (
                prop_oneof![
                    Just(CmpOp::Neq),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Leq),
                    Just(CmpOp::Gt),
                    Just(CmpOp::Geq)
                ],
                arb_term(),
                arb_term(),
            )
                .prop_map(|(op, l, r)| Comparison::new(op, l, r)),
            0..2,
        ),
    )
        .prop_filter("disjuncts must be non-empty", |(a, e, c)| {
            !(a.is_empty() && e.is_empty() && c.is_empty())
        })
        .prop_map(|(atoms, eqs, cmps)| Disjunct { atoms, eqs, cmps })
}

fn arb_dependency() -> impl Strategy<Value = Dependency> {
    (
        prop::collection::vec(arb_literal(), 1..4),
        prop::collection::vec(arb_disjunct(), 0..3),
    )
        .prop_map(|(premise, disjuncts)| Dependency::new("t", premise, disjuncts))
}

fn arb_view_rule() -> impl Strategy<Value = ViewRule> {
    (arb_atom(), prop::collection::vec(arb_literal(), 1..4))
        .prop_map(|(head, body)| ViewRule::new(head, body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dependency_display_round_trips(dep in arb_dependency()) {
        let printed = dep.to_string();
        let reparsed = parse_dependency(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(dep, reparsed);
    }

    #[test]
    fn view_rule_display_round_trips(rule in arb_view_rule()) {
        let printed = rule.to_string();
        let reparsed = parse_view_rule(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(rule, reparsed);
    }

    #[test]
    fn cmp_negate_complements_on_comparable_values(
        op in arb_cmp_op(),
        a in arb_value(),
        b in arb_value(),
    ) {
        // The complement law `¬(a op b) ≡ a op.negate() b` holds whenever
        // the comparison is *defined*: always for Eq/Neq, and for order
        // operators only between constants of the same type. Order
        // comparisons involving nulls or mixed types are undefined (both
        // the operator and its negation evaluate to false) — the sound
        // "comparison atoms never match nulls" semantics.
        let comparable = a.try_cmp(&b).is_some();
        if comparable || matches!(op, CmpOp::Eq | CmpOp::Neq) {
            prop_assert_eq!(op.eval(&a, &b), !op.negate().eval(&a, &b));
        } else {
            prop_assert!(!op.eval(&a, &b));
            prop_assert!(!op.negate().eval(&a, &b));
        }
    }

    #[test]
    fn cmp_eq_is_reflexive_and_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert!(CmpOp::Eq.eval(&a, &a));
        prop_assert_eq!(CmpOp::Eq.eval(&a, &b), CmpOp::Eq.eval(&b, &a));
    }

    #[test]
    fn cmp_lt_is_a_strict_order_on_ints(a in -50i64..50, b in -50i64..50, c in -50i64..50) {
        let (va, vb, vc) = (Value::int(a), Value::int(b), Value::int(c));
        // irreflexive
        prop_assert!(!CmpOp::Lt.eval(&va, &va));
        // transitive
        if CmpOp::Lt.eval(&va, &vb) && CmpOp::Lt.eval(&vb, &vc) {
            prop_assert!(CmpOp::Lt.eval(&va, &vc));
        }
        // trichotomy
        let holds = [
            CmpOp::Lt.eval(&va, &vb),
            CmpOp::Eq.eval(&va, &vb),
            CmpOp::Gt.eval(&va, &vb),
        ];
        prop_assert_eq!(holds.iter().filter(|&&h| h).count(), 1);
    }

    #[test]
    fn order_comparisons_never_hold_with_nulls(op in arb_cmp_op(), a in arb_value()) {
        let null = Value::null(0);
        if matches!(op, CmpOp::Lt | CmpOp::Leq | CmpOp::Gt | CmpOp::Geq) {
            prop_assert!(!op.eval(&null, &a));
            prop_assert!(!op.eval(&a, &null));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn null_map_resolution_is_idempotent(
        merges in prop::collection::vec((0u64..8, 0u64..8), 0..12)
    ) {
        use grom::chase::NullMap;
        let mut m = NullMap::new();
        for (a, b) in merges {
            // Null-null merges only: never a clash.
            let _ = m.unify(&Value::null(a), &Value::null(b));
        }
        for id in 0..8u64 {
            let once = m.resolve(&Value::null(id));
            let twice = m.resolve(&once);
            prop_assert_eq!(once, twice);
        }
    }

    #[test]
    fn null_map_unification_respects_constants(
        pairs in prop::collection::vec((0u64..6, -3i64..3), 1..8)
    ) {
        use grom::chase::NullMap;
        let mut m = NullMap::new();
        let mut assigned: std::collections::HashMap<u64, i64> = Default::default();
        for (label, value) in pairs {
            let root_before = m.resolve(&Value::null(label));
            let outcome = m.unify(&Value::null(label), &Value::int(value));
            match root_before {
                Value::Int(prev) => {
                    // Already a constant: merging with a different one
                    // must clash, with the same one must be a no-op.
                    use grom::chase::nullmap::Unify;
                    if prev == value {
                        prop_assert_eq!(outcome, Unify::Noop);
                    } else {
                        prop_assert!(matches!(outcome, Unify::Clash(..)));
                    }
                }
                _ => {
                    assigned.insert(label, value);
                }
            }
        }
        // Every successfully assigned label resolves to a constant.
        for (label, _) in assigned {
            prop_assert!(m.resolve(&Value::null(label)).is_constant());
        }
    }
}
