//! Kill/resume property tests: on randomly generated scenarios, force an
//! interruption at a seeded random sweep via the `grom_fail` injection
//! hooks, round-trip the resulting checkpoint through its JSON encoding,
//! resume, and require the final instance to render identically (up to
//! null renaming, via [`grom::data::canonical_render`]) to a run that was
//! never interrupted — under every scheduler mode.
//!
//! This is the end-to-end contract behind `grom run --checkpoint/--resume`:
//! a chase killed at any sweep boundary loses no work and converges to the
//! same fixpoint after resuming from the serialized checkpoint.

use proptest::prelude::*;

use grom::chase::{
    chase_resume, chase_standard_outcome, fail, ChaseConfig, ChaseOutcome, Checkpoint,
    InterruptReason, SchedulerMode,
};
use grom::data::canonical_render;
use grom::scenarios::{generate, random_spec};

const MODES: [SchedulerMode; 4] = [
    SchedulerMode::FullRescan,
    SchedulerMode::Delta,
    SchedulerMode::Parallel { threads: 2 },
    SchedulerMode::Parallel { threads: 4 },
];

/// A kill landing *between* insertion and the sweep-boundary promotion of
/// the inserted tuples: the consumer is declared before its producer, so
/// the producer's sweep-1 inserts are routed to the consumer's worklist
/// slot but claimed — and thereby folded into the old half — only in sweep
/// 2. Interrupting before sweep 2 runs therefore checkpoints live
/// `Pending::Delta` payloads whose tuples are all still *new*, and the v2
/// envelope must round-trip that partition and resume to the uninterrupted
/// fixpoint.
#[test]
fn kill_between_insertion_and_promotion_round_trips_pending_deltas() {
    use grom::prelude::{Instance, Value};

    let _guard = fail::test_lock();
    fail::clear();

    let program = "tgd c: B(x, y) -> C(x, y).\n\
                   tgd d: C(x, y) -> D(x, y).\n\
                   tgd p: A(x, y) -> B(x, y).";
    let p = grom::lang::parser::parse_program(program).unwrap();
    let mut inst = Instance::new();
    for i in 0..6i64 {
        inst.add("A", vec![Value::int(i), Value::int(i + 1)])
            .unwrap();
    }
    let base = ChaseConfig::default().with_max_rounds(50);

    for mode in MODES {
        let cfg = base.clone().with_scheduler(mode);
        let clean = match chase_standard_outcome(inst.clone(), &p.deps, &cfg) {
            Ok(ChaseOutcome::Completed(r)) => r,
            other => panic!("{mode:?}: uninterrupted run did not complete: {other:?}"),
        };
        let want = canonical_render(&clean.instance);

        fail::install("sweep:interrupt@2").unwrap();
        let killed = chase_standard_outcome(inst.clone(), &p.deps, &cfg);
        fail::clear();
        let interrupted = match killed {
            Ok(ChaseOutcome::Interrupted(i)) => i,
            other => panic!("{mode:?}: sweep-2 kill did not interrupt: {other:?}"),
        };
        assert!(matches!(interrupted.reason, InterruptReason::Fault));
        let json = interrupted.checkpoint.to_json();
        if matches!(mode, SchedulerMode::Delta) {
            // The window this test exists for: unclaimed delta payloads in
            // the envelope, carrying their (all-new) partition record.
            assert!(
                json.contains("\"kind\":\"delta\""),
                "{mode:?}: no pending delta checkpointed at the kill window: {json}"
            );
            assert!(
                json.contains("\"new\":{"),
                "{mode:?}: v2 envelope lacks the partition record: {json}"
            );
        }
        let restored = Checkpoint::from_json(&json)
            .unwrap_or_else(|e| panic!("{mode:?}: checkpoint does not round-trip: {e}"));
        let resumed = match chase_resume(&restored, &p.deps, &cfg) {
            Ok(ChaseOutcome::Completed(r)) => r,
            other => panic!("{mode:?}: resume did not complete: {other:?}"),
        };
        assert_eq!(
            canonical_render(&resumed.instance),
            want,
            "{mode:?}: resume after a mid-promotion kill diverges"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kill_and_resume_reaches_the_uninterrupted_fixpoint(
        seed in 0u64..100_000,
        kill_sweep in 1u64..5,
    ) {
        // Fault plans are process-global; serialize against every other
        // test that installs one.
        let _guard = fail::test_lock();
        fail::clear();

        let scenario = generate(&random_spec(seed, 2));
        let (deps, inst) = scenario.parts().expect("generated scenario parses");
        let base = ChaseConfig::default().with_max_rounds(200);

        for mode in MODES {
            let cfg = base.clone().with_scheduler(mode);
            let clean = match chase_standard_outcome(inst.clone(), &deps, &cfg) {
                Ok(ChaseOutcome::Completed(r)) => r,
                other => panic!("{mode:?}: uninterrupted run did not complete: {other:?}"),
            };
            let want = canonical_render(&clean.instance);

            fail::install(&format!("sweep:interrupt@{kill_sweep}")).unwrap();
            let killed = chase_standard_outcome(inst.clone(), &deps, &cfg);
            fail::clear();
            match killed {
                Ok(ChaseOutcome::Interrupted(i)) => {
                    prop_assert!(
                        matches!(i.reason, InterruptReason::Fault),
                        "{mode:?}: unexpected interrupt reason {:?}", i.reason
                    );
                    // The checkpoint must survive its JSON encoding.
                    let json = i.checkpoint.to_json();
                    let restored = Checkpoint::from_json(&json)
                        .unwrap_or_else(|e| panic!("{mode:?}: checkpoint does not round-trip: {e}"));
                    let resumed = match chase_resume(&restored, &deps, &cfg) {
                        Ok(ChaseOutcome::Completed(r)) => r,
                        other => panic!("{mode:?}: resume did not complete: {other:?}"),
                    };
                    prop_assert_eq!(
                        canonical_render(&resumed.instance),
                        want,
                        "{:?}: resumed instance diverges from the uninterrupted run \
                         (killed at sweep {}, spec {})",
                        mode, kill_sweep, scenario.spec
                    );
                }
                // The chase reached its fixpoint before sweep `kill_sweep`
                // ever started: nothing to resume, but the armed directive
                // must not have perturbed the result.
                Ok(ChaseOutcome::Completed(r)) => {
                    prop_assert_eq!(canonical_render(&r.instance), want);
                }
                other => panic!("{mode:?}: interrupted run failed hard: {other:?}"),
            }
        }
    }
}
