//! The repository's headline property: **soundness of the rewriting**.
//!
//! The paper's contract (§3): whenever the rewritten program admits a
//! universal solution `J_T` over `I_S`, then `Υ_T(J_T)` is a solution of
//! the original source-to-semantic mapping. We test it on randomly
//! generated semantic scenarios — views in Datalog with negation (including
//! unions and views over views), random classification tgds with
//! comparisons, optional key egds — and random source instances:
//!
//! * pipeline succeeds ⇒ the validator certifies the original mapping;
//! * pipeline succeeds ⇒ the chased instance satisfies the *rewritten*
//!   program too (internal consistency);
//! * failures are allowed (sound-but-incomplete), but only as chase
//!   failures / scenario exhaustion — never as internal errors.

use proptest::prelude::*;

use grom::prelude::*;

/// A random view body literal over the fixed target base schema
/// `B0(x: int, y: int)`, `B1(x: int, y: int)`, `B2(x: int)`.
#[derive(Debug, Clone)]
enum BodyLit {
    /// `B{i}(x, _fresh)` — binds the head variable.
    PosBinary(usize),
    /// `B2(x)`.
    PosUnary,
    /// `not B{i}(x, w)` with `w` local to the negation.
    NegBinary(usize),
    /// `not B2(x)`.
    NegUnary,
    /// `not V{j}(x)` — negation of an earlier view (the v3 pattern).
    NegView(usize),
    /// `V{j}(x)` — positive reference to an earlier view.
    PosView(usize),
}

#[derive(Debug, Clone)]
struct ViewSpec {
    /// Each inner vec is one union rule; every rule implicitly starts with
    /// a positive binder `B{anchor}(x, y{k})`.
    rules: Vec<(usize, Vec<BodyLit>)>,
}

fn arb_body_lit(view_idx: usize) -> impl Strategy<Value = BodyLit> {
    let mut options: Vec<BoxedStrategy<BodyLit>> = vec![
        (0usize..2).prop_map(BodyLit::PosBinary).boxed(),
        Just(BodyLit::PosUnary).boxed(),
        (0usize..2).prop_map(BodyLit::NegBinary).boxed(),
        Just(BodyLit::NegUnary).boxed(),
    ];
    if view_idx > 0 {
        options.push((0..view_idx).prop_map(BodyLit::NegView).boxed());
        options.push((0..view_idx).prop_map(BodyLit::PosView).boxed());
    }
    proptest::strategy::Union::new(options)
}

fn arb_view(view_idx: usize) -> impl Strategy<Value = ViewSpec> {
    prop::collection::vec(
        (
            0usize..2,
            prop::collection::vec(arb_body_lit(view_idx), 0..2),
        ),
        1..3, // 1 or 2 union rules
    )
    .prop_map(|rules| ViewSpec { rules })
}

#[derive(Debug, Clone)]
struct ScenarioSpec {
    views: Vec<ViewSpec>,
    /// One tgd per view with a rating threshold: `S(a, r), r >= t -> V{i}(a)`.
    thresholds: Vec<i64>,
    /// Add the key egd `V{0}(a1), V{0}(a2) -> a1 = a2`?
    key_egd: bool,
    /// Source facts `S(a, r)`.
    facts: Vec<(i64, i64)>,
}

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (1usize..4)
        .prop_flat_map(|n_views| {
            let views: Vec<_> = (0..n_views).map(arb_view).collect();
            (
                views,
                prop::collection::vec(0i64..4, n_views..=n_views),
                prop::bool::ANY,
                prop::collection::vec((0i64..3, 0i64..5), 0..5),
            )
        })
        .prop_map(|(views, thresholds, key_egd, facts)| ScenarioSpec {
            views,
            thresholds,
            key_egd,
            facts,
        })
}

fn render(spec: &ScenarioSpec) -> String {
    let mut text = String::from(
        "schema source { S(a: int, r: int); }\n\
         schema target { B0(x: int, y: int); B1(x: int, y: int); B2(x: int); }\n",
    );
    for (i, view) in spec.views.iter().enumerate() {
        for (anchor, lits) in &view.rules {
            text.push_str(&format!("view V{i}(x) <- B{anchor}(x, yb)"));
            for (k, lit) in lits.iter().enumerate() {
                match lit {
                    BodyLit::PosBinary(b) => text.push_str(&format!(", B{b}(x, p{k})")),
                    BodyLit::PosUnary => text.push_str(", B2(x)"),
                    BodyLit::NegBinary(b) => text.push_str(&format!(", not B{b}(x, w{k})")),
                    BodyLit::NegUnary => text.push_str(", not B2(x)"),
                    BodyLit::NegView(j) => text.push_str(&format!(", not V{j}(x)")),
                    BodyLit::PosView(j) => text.push_str(&format!(", V{j}(x)")),
                }
            }
            text.push_str(".\n");
        }
    }
    for (i, t) in spec.thresholds.iter().enumerate() {
        text.push_str(&format!("tgd m{i}: S(a, r), r >= {t} -> V{i}(a).\n"));
    }
    if spec.key_egd {
        text.push_str("egd k0: V0(a1), V0(a2) -> a1 = a2.\n");
    }
    text
}

fn source_of(spec: &ScenarioSpec) -> Instance {
    let mut inst = Instance::new();
    for &(a, r) in &spec.facts {
        inst.add("S", vec![Value::int(a), Value::int(r)]).unwrap();
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rewriting_is_sound_on_random_semantic_scenarios(spec in arb_scenario()) {
        let text = render(&spec);
        let program = Program::parse(&text)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{text}"));
        // Generated views can be recursive only through the V{j<i} indexing
        // discipline, so from_program must succeed.
        let scenario = MappingScenario::from_program(&program)
            .unwrap_or_else(|e| panic!("generated scenario must be well-formed: {e}\n{text}"));
        let source = source_of(&spec);

        let options = PipelineOptions {
            chase: ChaseConfig::default()
                .with_max_rounds(60)
                .with_max_scenarios(64),
            ..Default::default()
        };
        match scenario.run(&source, &options) {
            Ok(result) => {
                // THE soundness contract.
                let validation = result.validation.expect("validation requested");
                prop_assert!(
                    validation.ok,
                    "sound rewriting violated!\nscenario:\n{text}\nsource:\n{source}\
                     \ntarget:\n{target}\nreport: {validation}",
                    target = result.target,
                );
                // Internal consistency: the chased working database also
                // satisfies every rewritten dependency.
                let mut working = source.clone();
                working.absorb(&result.target).unwrap();
                working.absorb(&result.source_view_extents).unwrap();
                for dep in &result.rewritten.deps {
                    prop_assert!(
                        grom::engine::dependency_satisfied(&working, dep),
                        "rewritten dep {} unsatisfied\n{text}", dep.name
                    );
                }
            }
            // Sound-but-incomplete: the rewritten program may fail even
            // when the original has solutions; that is the documented
            // contract. Resource limits are likewise acceptable.
            Err(PipelineError::Chase(_)) => {} // incl. round/scenario budgets
            // Very deep unions can exceed the expansion budget — an
            // explicit, sound error.
            Err(PipelineError::Rewrite(grom::rewrite::RewriteError::TooComplex { .. })) => {}
            Err(other) => {
                prop_assert!(false, "unexpected pipeline error: {other}\n{text}");
            }
        }
    }

    #[test]
    fn rewriting_is_deterministic_on_random_scenarios(spec in arb_scenario()) {
        let text = render(&spec);
        let program = Program::parse(&text).unwrap();
        let scenario = MappingScenario::from_program(&program).unwrap();
        let a = scenario.rewrite(&RewriteOptions::default());
        let b = scenario.rewrite(&RewriteOptions::default());
        match (a, b) {
            (Ok(a), Ok(b)) => {
                let fmt = |o: &RewriteOutput| {
                    o.deps.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
                };
                prop_assert_eq!(fmt(&a), fmt(&b));
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "nondeterministic rewrite outcome"),
        }
    }

    #[test]
    fn analyzer_prediction_is_conservative(spec in arb_scenario()) {
        // predicts_deds == false for every dependency must imply a
        // ded-free rewriting of the whole program.
        let text = render(&spec);
        let program = Program::parse(&text).unwrap();
        let scenario = MappingScenario::from_program(&program).unwrap();
        let deps: Vec<Dependency> = scenario.all_dependencies().cloned().collect();
        let any_predicted = deps
            .iter()
            .any(|d| grom::rewrite::analysis::predicts_deds(&scenario.target_views, d));
        if let Ok(out) = scenario.rewrite(&RewriteOptions::default()) {
            if !any_predicted {
                prop_assert!(
                    out.is_ded_free(),
                    "analyzer said no deds but rewriting produced some\n{text}"
                );
            }
        }
    }
}
