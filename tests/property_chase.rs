//! Property-based tests for the chase engine: whenever a chase run
//! succeeds, the result satisfies every dependency; the restricted chase is
//! idempotent; the exhaustive ded chase returns only genuine solutions and
//! agrees with the greedy strategy on satisfiability in one direction
//! (greedy success ⇒ solutions exist).

use proptest::prelude::*;

use grom::chase::{chase_exhaustive, chase_greedy, chase_standard, ChaseConfig, ChaseError};
use grom::engine::dependency_satisfied;
use grom::lang::{Atom, Dependency, Disjunct, Literal, Term};
use grom::prelude::{ChaseStats, Instance, Value};

const RELS: [&str; 3] = ["R0", "R1", "R2"];
const VARS: [&str; 3] = ["x", "y", "z"];

fn atom(rel: usize, a: usize, b: usize) -> Atom {
    Atom::new(
        RELS[rel % 3],
        vec![Term::var(VARS[a % 3]), Term::var(VARS[b % 3])],
    )
}

/// A random tgd over binary relations; conclusion variables are premise
/// variables or the existential `w`.
fn arb_tgd() -> impl Strategy<Value = Dependency> {
    (
        0usize..3,       // premise relation
        0usize..3,       // conclusion relation
        prop::bool::ANY, // second premise atom?
        0usize..4,       // conclusion arg 1 selector (3 = existential w)
        0usize..4,       // conclusion arg 2 selector
    )
        .prop_map(|(pr, cr, two, c1, c2)| {
            let mut premise = vec![Literal::Pos(atom(pr, 0, 1))];
            if two {
                premise.push(Literal::Pos(atom((pr + 1) % 3, 1, 2)));
            }
            let pick = |s: usize| {
                if s < 3 {
                    Term::var(VARS[s])
                } else {
                    Term::var("w")
                }
            };
            let conclusion = Atom::new(RELS[cr], vec![pick(c1), pick(c2)]);
            Dependency::tgd("t", premise, vec![conclusion])
        })
}

fn arb_egd() -> impl Strategy<Value = Dependency> {
    (0usize..3).prop_map(|r| {
        Dependency::egd(
            "e",
            vec![
                Literal::Pos(Atom::new(RELS[r], vec![Term::var("x"), Term::var("y")])),
                Literal::Pos(Atom::new(RELS[r], vec![Term::var("x"), Term::var("z")])),
            ],
            Term::var("y"),
            Term::var("z"),
        )
    })
}

fn arb_program() -> impl Strategy<Value = Vec<Dependency>> {
    (
        prop::collection::vec(arb_tgd(), 1..4),
        prop::collection::vec(arb_egd(), 0..2),
    )
        .prop_map(|(mut tgds, egds)| {
            for (i, d) in tgds.iter_mut().enumerate() {
                d.name = format!("t{i}").into();
            }
            let mut deps = tgds;
            for (i, mut e) in egds.into_iter().enumerate() {
                e.name = format!("e{i}").into();
                deps.push(e);
            }
            deps
        })
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0usize..3, 0i64..3, 0i64..3), 0..8).prop_map(|facts| {
        let mut inst = Instance::new();
        for (r, a, b) in facts {
            inst.add(RELS[r], vec![Value::int(a), Value::int(b)])
                .unwrap();
        }
        inst
    })
}

/// A tight config: random programs may be non-terminating; RoundLimit runs
/// are discarded by the properties below.
fn cfg() -> ChaseConfig {
    ChaseConfig::default().with_max_rounds(60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn successful_chase_satisfies_all_dependencies(
        deps in arb_program(),
        inst in arb_instance(),
    ) {
        match chase_standard(inst, &deps, &cfg()) {
            Ok(res) => {
                for dep in &deps {
                    prop_assert!(
                        dependency_satisfied(&res.instance, dep),
                        "dep {} violated after successful chase", dep.name
                    );
                }
            }
            Err(ChaseError::Failure { .. }) | Err(ChaseError::RoundLimit { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected chase error: {other}"),
        }
    }

    #[test]
    fn restricted_chase_is_idempotent(
        deps in arb_program(),
        inst in arb_instance(),
    ) {
        if let Ok(res) = chase_standard(inst, &deps, &cfg()) {
            let size = res.instance.len();
            let again = chase_standard(res.instance, &deps, &cfg())
                .expect("re-chasing a solution cannot fail");
            prop_assert_eq!(again.instance.len(), size);
            prop_assert_eq!(again.stats.tuples_inserted, 0);
            prop_assert_eq!(again.stats.nulls_invented, 0);
        }
    }

    #[test]
    fn chase_preserves_source_facts(
        deps in arb_program(),
        inst in arb_instance(),
    ) {
        let originals: Vec<_> = inst.facts().collect();
        if let Ok(res) = chase_standard(inst, &deps, &cfg()) {
            for f in originals {
                // Source facts are all-constant, so egd null substitution
                // never rewrites them.
                prop_assert!(
                    res.instance.contains_fact(&f.relation, &f.tuple),
                    "lost source fact {f}"
                );
            }
        }
    }
}

/// A random binary ded `R_i(x, y) → R_j(x, y) ∨ R_k(x, y)`.
fn arb_ded() -> impl Strategy<Value = Dependency> {
    (0usize..3, 0usize..3, 0usize..3).prop_map(|(p, a, b)| {
        Dependency::new(
            "d",
            vec![Literal::Pos(atom(p, 0, 1))],
            vec![
                Disjunct::atoms(vec![atom(a, 0, 1)]),
                Disjunct::atoms(vec![atom(b, 0, 1)]),
            ],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exhaustive_leaves_are_solutions_and_greedy_agrees(
        ded in arb_ded(),
        tgds in prop::collection::vec(arb_tgd(), 0..2),
        inst in arb_instance(),
    ) {
        let mut deps = vec![ded];
        for (i, mut t) in tgds.into_iter().enumerate() {
            t.name = format!("t{i}").into();
            deps.push(t);
        }
        let cfg = ChaseConfig::default()
            .with_max_rounds(60)
            .with_max_nodes(1_000);

        let greedy = chase_greedy(inst.clone(), &deps, &cfg);
        let exhaustive = chase_exhaustive(inst, &deps, &cfg);

        match (&greedy, &exhaustive) {
            (Ok(g), Ok(ex)) => {
                for dep in &deps {
                    prop_assert!(dependency_satisfied(&g.instance, dep));
                    for sol in &ex.solutions {
                        prop_assert!(dependency_satisfied(sol, dep));
                    }
                }
            }
            // Greedy success must imply exhaustive success (soundness of
            // the greedy strategy wrt the complete semantics).
            (Ok(_), Err(ChaseError::NoSolution { .. })) => {
                prop_assert!(false, "greedy found a solution but exhaustive found none");
            }
            // Resource limits and genuine unsatisfiability are acceptable.
            _ => {}
        }
    }

    /// Generator-backed soundness: every scenario the `grom-scenarios`
    /// composer emits chases successfully under the default config, and
    /// the solution satisfies all of its dependencies — including the
    /// egd cascades whose merges the local grammar above rarely builds.
    #[test]
    fn generated_scenarios_chase_to_genuine_solutions(
        spec_seed in any::<u64>(),
    ) {
        let spec = grom::scenarios::random_spec(spec_seed, 2);
        let g = grom::scenarios::generate(&spec);
        let (deps, inst) = g.parts().expect("generated scenario parses");
        let res = chase_standard(inst, &deps, &ChaseConfig::default())
            .expect("generated scenarios chase cleanly by construction");
        for dep in &deps {
            prop_assert!(
                dependency_satisfied(&res.instance, dep),
                "dep {} violated on spec `{}`", dep.name, spec
            );
        }
    }

    #[test]
    fn chase_stats_are_consistent(
        tgds in prop::collection::vec(arb_tgd(), 1..4),
        inst in arb_instance(),
    ) {
        // Tgds only: egd merges can collapse tuples, which would break the
        // exact growth accounting below.
        let mut deps = tgds;
        for (i, d) in deps.iter_mut().enumerate() {
            d.name = format!("t{i}").into();
        }
        if let Ok(res) = chase_standard(inst.clone(), &deps, &cfg()) {
            let ChaseStats { rounds, tuples_inserted, .. } = res.stats;
            // At least one round ran; the instance grew by exactly the
            // inserted count.
            prop_assert!(rounds >= 1);
            prop_assert_eq!(res.instance.len(), inst.len() + tuples_inserted);
        }
    }
}
