//! Property tests for the delta-driven chase scheduler and the parallel
//! chase executor: on randomly generated **weakly acyclic** programs, the
//! delta scheduler, the parallel executor (at 2 and 4 threads) and the
//! classical full-rescan loop must produce identical instances —
//! relation by relation, up to the usual renaming of labeled nulls —
//! and agree on every failure mode.
//!
//! Comparison uses [`grom::data::canonical_render`], which relabels nulls
//! by iterated partition refinement on their occurrence structure, so
//! instances that differ only in null labels (the two schedulers repair
//! violations in different orders) render identically while structural
//! differences do not.

use proptest::prelude::*;

use grom::chase::{
    chase_standard, chase_standard_full_rescan, ChaseConfig, ChaseError, SchedulerMode,
};
use grom::data::canonical_render;
use grom::engine::dependency_satisfied;
use grom::lang::{Atom, Dependency, Literal, Term};
use grom::prelude::{Instance, Value};

const RELS: [&str; 3] = ["R0", "R1", "R2"];
const VARS: [&str; 3] = ["x", "y", "z"];

fn atom(rel: usize, a: usize, b: usize) -> Atom {
    Atom::new(
        RELS[rel % 3],
        vec![Term::var(VARS[a % 3]), Term::var(VARS[b % 3])],
    )
}

/// A random tgd over binary relations; conclusion variables are premise
/// variables or the existential `w` (the same grammar as the
/// `property_chase` suite).
fn arb_tgd() -> impl Strategy<Value = Dependency> {
    (
        0usize..3,       // premise relation
        0usize..3,       // conclusion relation
        prop::bool::ANY, // second premise atom?
        0usize..4,       // conclusion arg 1 selector (3 = existential w)
        0usize..4,       // conclusion arg 2 selector
    )
        .prop_map(|(pr, cr, two, c1, c2)| {
            let mut premise = vec![Literal::Pos(atom(pr, 0, 1))];
            if two {
                premise.push(Literal::Pos(atom((pr + 1) % 3, 1, 2)));
            }
            let pick = |s: usize| {
                if s < 3 {
                    Term::var(VARS[s])
                } else {
                    Term::var("w")
                }
            };
            let conclusion = Atom::new(RELS[cr], vec![pick(c1), pick(c2)]);
            Dependency::tgd("t", premise, vec![conclusion])
        })
}

fn arb_egd() -> impl Strategy<Value = Dependency> {
    (0usize..3).prop_map(|r| {
        Dependency::egd(
            "e",
            vec![
                Literal::Pos(Atom::new(RELS[r], vec![Term::var("x"), Term::var("y")])),
                Literal::Pos(Atom::new(RELS[r], vec![Term::var("x"), Term::var("z")])),
            ],
            Term::var("y"),
            Term::var("z"),
        )
    })
}

/// A cross-relation egd `Ra(x, y), Rb(x, z) -> y = z`: the shape that
/// chains merges *across* relations, building the long union-find chains
/// sweep-level batching resolves in one pass.
fn arb_cross_egd() -> impl Strategy<Value = Dependency> {
    (0usize..3, 0usize..3).prop_map(|(a, b)| {
        Dependency::egd(
            "e",
            vec![
                Literal::Pos(Atom::new(RELS[a], vec![Term::var("x"), Term::var("y")])),
                Literal::Pos(Atom::new(RELS[b], vec![Term::var("x"), Term::var("z")])),
            ],
            Term::var("y"),
            Term::var("z"),
        )
    })
}

/// A tgd whose premise reads the *same* relation in several positions —
/// the multi-anchor overlap case the semi-naive old/new split changes
/// most. A premise match can use newly inserted tuples at two or three
/// positions at once; the split must enumerate it exactly once (anchored
/// at its first new position), where the pre-split evaluator enumerated it
/// once per anchor and deduplicated late.
fn arb_multi_anchor_tgd() -> impl Strategy<Value = Dependency> {
    (
        0usize..3,       // the repeated premise relation
        0usize..3,       // conclusion relation
        prop::bool::ANY, // third premise atom closing a triangle?
        0usize..4,       // conclusion arg 1 selector (3 = existential w)
        0usize..4,       // conclusion arg 2 selector
    )
        .prop_map(|(pr, cr, three, c1, c2)| {
            let mut premise = vec![Literal::Pos(atom(pr, 0, 1)), Literal::Pos(atom(pr, 1, 2))];
            if three {
                premise.push(Literal::Pos(atom(pr, 2, 0)));
            }
            let pick = |s: usize| {
                if s < 3 {
                    Term::var(VARS[s])
                } else {
                    Term::var("w")
                }
            };
            let conclusion = Atom::new(RELS[cr], vec![pick(c1), pick(c2)]);
            Dependency::tgd("m", premise, vec![conclusion])
        })
}

/// A program dominated by multi-anchor tgds (same relation read at 2–3
/// premise positions), mixed with ordinary tgds and egds so delta claims
/// interleave with full-rescan invalidations, rejection-sampled to the
/// weakly acyclic fragment.
fn arb_multi_anchor_program() -> impl Strategy<Value = Vec<Dependency>> {
    (
        prop::collection::vec(arb_multi_anchor_tgd(), 1..3),
        prop::collection::vec(arb_tgd(), 0..2),
        prop::collection::vec(arb_egd(), 0..2),
    )
        .prop_map(|(mut multi, mut tgds, mut egds)| {
            for (i, d) in multi.iter_mut().enumerate() {
                d.name = format!("m{i}").into();
            }
            for (i, d) in tgds.iter_mut().enumerate() {
                d.name = format!("t{i}").into();
            }
            for (i, e) in egds.iter_mut().enumerate() {
                e.name = format!("e{i}").into();
            }
            let mut deps = Vec::new();
            let mut tgds = tgds.into_iter();
            let mut egds = egds.into_iter();
            for m in multi {
                deps.push(m);
                deps.extend(tgds.next());
                deps.extend(egds.next());
            }
            deps.extend(tgds);
            deps.extend(egds);
            deps
        })
        .prop_filter("weakly acyclic", |deps| {
            grom::chase::is_weakly_acyclic(deps).weakly_acyclic
        })
}

/// A random program, rejection-sampled down to the weakly acyclic
/// fragment (where both schedulers are guaranteed to terminate).
fn arb_wa_program() -> impl Strategy<Value = Vec<Dependency>> {
    (
        prop::collection::vec(arb_tgd(), 1..4),
        prop::collection::vec(arb_egd(), 0..2),
    )
        .prop_map(|(mut tgds, mut egds)| {
            for (i, d) in tgds.iter_mut().enumerate() {
                d.name = format!("t{i}").into();
            }
            for (i, e) in egds.iter_mut().enumerate() {
                e.name = format!("e{i}").into();
            }
            // Interleave egds *between* tgds (not just as a tail): egds
            // are segment boundaries for the parallel executor, so this
            // exercises multi-segment sweeps — group-executable tgds on
            // both sides of a sequential egd position.
            let mut deps = Vec::new();
            let mut egds = egds.into_iter();
            for (i, t) in tgds.into_iter().enumerate() {
                deps.push(t);
                if i % 2 == 0 {
                    deps.extend(egds.next());
                }
            }
            deps.extend(egds);
            deps
        })
        .prop_filter("weakly acyclic", |deps| {
            grom::chase::is_weakly_acyclic(deps).weakly_acyclic
        })
}

/// An egd-rich random program: more egds than tgds, mixing same-relation
/// key egds with cross-relation ones, interleaved between the tgds so the
/// parallel executor sees eq-bearing dependencies at arbitrary positions.
/// Existential tgds guarantee labeled nulls for the egds to merge.
fn arb_egd_rich_program() -> impl Strategy<Value = Vec<Dependency>> {
    (
        prop::collection::vec(arb_tgd(), 1..3),
        prop::collection::vec(prop_oneof![arb_egd(), arb_cross_egd()], 1..5),
    )
        .prop_map(|(mut tgds, mut egds)| {
            for (i, d) in tgds.iter_mut().enumerate() {
                d.name = format!("t{i}").into();
            }
            for (i, e) in egds.iter_mut().enumerate() {
                e.name = format!("e{i}").into();
            }
            // Egds interleave with — and outnumber — the tgds, so most
            // sweeps carry several obligation-recording dependencies.
            let mut deps = Vec::new();
            let mut egds = egds.into_iter();
            for t in tgds {
                deps.extend(egds.next());
                deps.push(t);
            }
            deps.extend(egds);
            deps
        })
        .prop_filter("weakly acyclic", |deps| {
            grom::chase::is_weakly_acyclic(deps).weakly_acyclic
        })
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0usize..3, 0i64..3, 0i64..3), 0..8).prop_map(|facts| {
        let mut inst = Instance::new();
        for (r, a, b) in facts {
            inst.add(RELS[r], vec![Value::int(a), Value::int(b)])
                .unwrap();
        }
        inst
    })
}

fn cfg(mode: SchedulerMode) -> ChaseConfig {
    ChaseConfig::default()
        .with_max_rounds(80)
        .with_scheduler(mode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole equivalence property: on weakly acyclic scenarios both
    /// schedulers terminate with identical instances relation by relation
    /// (canonicalized over null labels), or fail identically.
    #[test]
    fn delta_and_full_rescan_chase_agree_on_weakly_acyclic_programs(
        deps in arb_wa_program(),
        inst in arb_instance(),
    ) {
        let naive = chase_standard_full_rescan(
            inst.clone(), &deps, &cfg(SchedulerMode::FullRescan));
        let delta = chase_standard(inst, &deps, &cfg(SchedulerMode::Delta));

        match (naive, delta) {
            (Ok(n), Ok(d)) => {
                // Relation-by-relation identity up to null renaming.
                let n_rels: Vec<_> = n.instance.relation_names().cloned().collect();
                let d_rels: Vec<_> = d.instance.relation_names().cloned().collect();
                prop_assert_eq!(n_rels, d_rels, "relation sets differ");
                prop_assert_eq!(
                    canonical_render(&n.instance),
                    canonical_render(&d.instance),
                    "instances differ up to null renaming"
                );
                // Both are genuine solutions with consistent accounting.
                for dep in &deps {
                    prop_assert!(dependency_satisfied(&d.instance, dep));
                }
                prop_assert_eq!(n.instance.len(), d.instance.len());
                prop_assert_eq!(n.stats.nulls_invented, d.stats.nulls_invented);
            }
            // Egd clashes must be seen by both schedulers (possibly
            // reported at different dependencies/rounds).
            (Err(ChaseError::Failure { .. }), Err(ChaseError::Failure { .. })) => {}
            (n, d) => {
                let n = n.map(|r| r.stats);
                let d = d.map(|r| r.stats);
                prop_assert!(false, "schedulers diverge: naive={n:?} delta={d:?}");
            }
        }
    }

    /// The parallel executor equivalence property: at 2 and 4 worker
    /// threads, the worker-pool sweeps must produce the same instances as
    /// the classical full-rescan loop (up to null renaming — workers
    /// allocate labels from disjoint strided ranges) and agree on every
    /// failure mode. Stats are not compared: sweep boundaries differ from
    /// round boundaries by design.
    #[test]
    fn parallel_and_full_rescan_chase_agree_on_weakly_acyclic_programs(
        deps in arb_wa_program(),
        inst in arb_instance(),
    ) {
        let naive = chase_standard_full_rescan(
            inst.clone(), &deps, &cfg(SchedulerMode::FullRescan));
        for threads in [2usize, 4] {
            let par = chase_standard(
                inst.clone(), &deps, &cfg(SchedulerMode::Parallel { threads }));
            match (&naive, par) {
                (Ok(n), Ok(p)) => {
                    let n_rels: Vec<_> = n.instance.relation_names().cloned().collect();
                    let p_rels: Vec<_> = p.instance.relation_names().cloned().collect();
                    prop_assert_eq!(n_rels, p_rels,
                        "relation sets differ at {} threads", threads);
                    prop_assert_eq!(
                        canonical_render(&n.instance),
                        canonical_render(&p.instance),
                        "instances differ up to null renaming at {} threads", threads
                    );
                    for dep in &deps {
                        prop_assert!(dependency_satisfied(&p.instance, dep));
                    }
                    prop_assert_eq!(n.instance.len(), p.instance.len());
                }
                (Err(ChaseError::Failure { .. }), Err(ChaseError::Failure { .. })) => {}
                (n, p) => {
                    let n = n.as_ref().map(|r| r.stats.clone());
                    let p = p.map(|r| r.stats);
                    prop_assert!(false,
                        "schedulers diverge at {threads} threads: naive={n:?} parallel={p:?}");
                }
            }
        }
    }

    /// The egd-batching equivalence property: on egd-rich weakly acyclic
    /// programs (several same- and cross-relation egds per tgd, so sweeps
    /// routinely batch obligations from multiple dependencies into one
    /// substitution pass), the batched sequential scheduler and the
    /// parallel executor at 2 and 4 threads must produce the same
    /// instances as the per-dependency-substituting full-rescan reference,
    /// up to null renaming, and agree on every failure mode.
    #[test]
    fn egd_rich_programs_agree_across_schedulers(
        deps in arb_egd_rich_program(),
        inst in arb_instance(),
    ) {
        let naive = chase_standard_full_rescan(
            inst.clone(), &deps, &cfg(SchedulerMode::FullRescan));
        let modes = [
            SchedulerMode::Delta,
            SchedulerMode::Parallel { threads: 2 },
            SchedulerMode::Parallel { threads: 4 },
        ];
        for mode in modes {
            let batched = chase_standard(inst.clone(), &deps, &cfg(mode));
            match (&naive, batched) {
                (Ok(n), Ok(b)) => {
                    prop_assert_eq!(
                        canonical_render(&n.instance),
                        canonical_render(&b.instance),
                        "instances differ up to null renaming under {:?}", mode
                    );
                    for dep in &deps {
                        prop_assert!(dependency_satisfied(&b.instance, dep));
                    }
                    prop_assert_eq!(n.instance.len(), b.instance.len());
                    // Batching invariant: never more substitution passes
                    // than merge-recording sweeps; with no merges, none.
                    if b.stats.egd_merges == 0 {
                        prop_assert_eq!(b.stats.substitution_passes, 0);
                    } else {
                        prop_assert!(
                            b.stats.substitution_passes <= b.stats.egd_merges,
                            "at most one pass per merge: passes={} merges={}",
                            b.stats.substitution_passes, b.stats.egd_merges
                        );
                    }
                }
                // Constant clashes must be seen by both schedulers
                // (possibly at different dependencies/sweeps).
                (Err(ChaseError::Failure { .. }), Err(ChaseError::Failure { .. })) => {}
                (n, b) => {
                    let n = n.as_ref().map(|r| r.stats.clone());
                    let b = b.map(|r| r.stats);
                    prop_assert!(false,
                        "schedulers diverge under {mode:?}: naive={n:?} batched={b:?}");
                }
            }
        }
    }

    /// Generator-backed equivalence: scenarios from the `grom-scenarios`
    /// primitive composer (copy chains, fusions, vertical partitions,
    /// denormalizations, entity-resolution egd cascades — far richer
    /// structure than the local random-tgd grammar above) must chase to
    /// the same canonical rendering under every scheduler mode. One u64
    /// is the whole strategy: `random_spec` fans it out into a valid
    /// spec, so the vendored shim's 6-tuple limit never binds.
    #[test]
    fn generated_scenarios_agree_across_all_scheduler_modes(
        spec_seed in any::<u64>(),
    ) {
        let spec = grom::scenarios::random_spec(spec_seed, 2);
        let g = grom::scenarios::generate(&spec);
        let (deps, inst) = g.parts().expect("generated scenario parses");
        prop_assert!(
            grom::chase::is_weakly_acyclic(&deps).weakly_acyclic,
            "generator must stay in the weakly acyclic fragment: {spec}"
        );
        let divergence = grom::scenarios::divergence(&deps, &inst, &ChaseConfig::default());
        prop_assert!(
            divergence.is_none(),
            "spec `{}` diverges: {}", spec, divergence.unwrap()
        );
    }

    /// The multi-anchor equivalence property: on programs whose premises
    /// read the same relation in several positions, the semi-naive delta
    /// scheduler and the parallel executor at 2 and 4 threads must agree
    /// with the full-rescan reference up to null renaming. Debug builds
    /// additionally assert (inside `delta_violations`) that no premise
    /// match is enumerated at more than one anchor position — this suite
    /// is the property-level exercise of that assertion.
    #[test]
    fn multi_anchor_programs_agree_across_schedulers(
        deps in arb_multi_anchor_program(),
        inst in arb_instance(),
    ) {
        let naive = chase_standard_full_rescan(
            inst.clone(), &deps, &cfg(SchedulerMode::FullRescan));
        let modes = [
            SchedulerMode::Delta,
            SchedulerMode::Parallel { threads: 2 },
            SchedulerMode::Parallel { threads: 4 },
        ];
        for mode in modes {
            let semi = chase_standard(inst.clone(), &deps, &cfg(mode));
            match (&naive, semi) {
                (Ok(n), Ok(s)) => {
                    prop_assert_eq!(
                        canonical_render(&n.instance),
                        canonical_render(&s.instance),
                        "instances differ up to null renaming under {:?}", mode
                    );
                    for dep in &deps {
                        prop_assert!(dependency_satisfied(&s.instance, dep));
                    }
                    prop_assert_eq!(n.instance.len(), s.instance.len());
                }
                (Err(ChaseError::Failure { .. }), Err(ChaseError::Failure { .. })) => {}
                (n, s) => {
                    let n = n.as_ref().map(|r| r.stats.clone());
                    let s = s.map(|r| r.stats);
                    prop_assert!(false,
                        "schedulers diverge under {mode:?}: naive={n:?} semi={s:?}");
                }
            }
        }
    }

    /// The delta scheduler respects the round budget exactly like the
    /// classical loop on non-terminating programs.
    #[test]
    fn delta_scheduler_honors_round_limit(
        seed_y in 0i64..3,
    ) {
        let dep = grom::lang::parser::parse_dependency("tgd m: R(x, y) -> R(y, z).").unwrap();
        let mut inst = Instance::new();
        // Off-diagonal seed: R(1, y) with y != 1, so every application
        // invents a fresh null and the program never terminates.
        inst.add("R", vec![Value::int(1), Value::int(seed_y + 2)]).unwrap();
        let res = chase_standard(
            inst,
            std::slice::from_ref(&dep),
            &ChaseConfig::default().with_max_rounds(25),
        );
        prop_assert!(matches!(res, Err(ChaseError::RoundLimit { rounds: 25, .. })));
    }
}
