//! Integration: certain-answer query evaluation over exchanged targets.
//!
//! Data exchange exists to *answer queries* on the target; these tests run
//! the pipeline and then query `J_T` (and its semantic views) under the
//! certain-answer semantics of `grom_engine::Query`.

use grom::engine::Query;
use grom::prelude::*;

fn exchange() -> (MappingScenario, ExchangeResult) {
    let prog = Program::parse(
        r#"
        schema source {
            S_Emp(name: string, dept: string, salary: int);
        }
        schema target {
            T_Emp(name: string, dept: int);
            T_Dept(id: int, name: string);
        }
        view Works(n, dname) <- T_Emp(n, d), T_Dept(d, dname).
        tgd m: S_Emp(n, dname, s) -> Works(n, dname).
        egd dept_key: T_Dept(d1, n), T_Dept(d2, n) -> d1 = d2.
        "#,
    )
    .unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let mut source = Instance::new();
    for (n, d, s) in [("ann", "db", 100), ("bob", "db", 90), ("carl", "ai", 80)] {
        source
            .add("S_Emp", vec![Value::str(n), Value::str(d), Value::int(s)])
            .unwrap();
    }
    let res = sc.run(&source, &PipelineOptions::default()).unwrap();
    (sc, res)
}

#[test]
fn certain_answers_on_exchanged_target() {
    let (_, res) = exchange();
    // Department ids are invented nulls, but the *join* through them is
    // certain: who works in which named department.
    let q = Query::parse("view Q(n, dn) <- T_Emp(n, d), T_Dept(d, dn).").unwrap();
    let answers = q.certain_answers(&res.target);
    assert_eq!(answers.len(), 3);
    assert!(answers.contains(&Tuple::new(vec![Value::str("ann"), Value::str("db")])));
    assert!(answers.contains(&Tuple::new(vec![Value::str("carl"), Value::str("ai")])));
}

#[test]
fn null_projections_are_not_certain() {
    let (_, res) = exchange();
    // Projecting the department *id* yields nulls — not certain answers.
    let q = Query::parse("view Q(n, d) <- T_Emp(n, d).").unwrap();
    assert_eq!(q.answers(&res.target).len(), 3);
    assert!(q.certain_answers(&res.target).is_empty());
}

#[test]
fn dept_key_merges_department_ids() {
    let (_, res) = exchange();
    // The egd on T_Dept merged the two "db" department witnesses: ann and
    // bob share a department id.
    let q = Query::parse("view Q(a, b) <- T_Emp(a, d), T_Emp(b, d), a != b.").unwrap();
    let colleagues = q.certain_answers(&res.target);
    assert!(colleagues.contains(&Tuple::new(vec![Value::str("ann"), Value::str("bob")])));
    assert!(!colleagues.contains(&Tuple::new(vec![Value::str("ann"), Value::str("carl")])));
    // Exactly two department rows remain after the key merge.
    assert_eq!(res.target.tuples("T_Dept").count(), 2);
}

#[test]
fn queries_over_materialized_semantic_views() {
    let (sc, res) = exchange();
    // Query the *semantic* schema: materialize Υ_T(J_T) and ask it.
    let extents = grom::engine::materialize_views(&sc.target_views, &res.target).unwrap();
    let q = Query::parse("view Q(n) <- Works(n, \"db\").").unwrap();
    let answers = q.certain_answers(&extents);
    assert_eq!(answers.len(), 2);
}

#[test]
fn union_query_over_target() {
    let (_, res) = exchange();
    let q = Query::parse(
        "view Q(n) <- T_Emp(n, d), T_Dept(d, \"db\").\n\
         view Q(n) <- T_Emp(n, d), T_Dept(d, \"ai\").",
    )
    .unwrap();
    assert_eq!(q.certain_answers(&res.target).len(), 3);
}
