//! Tier-1 gate over the committed conformance corpus (`corpus/`).
//!
//! Every entry must (a) regenerate byte-identically from its recorded spec
//! line (minimized entries excepted) and (b) chase to its committed
//! `expected.txt` rendering under all four scheduler modes. This is the
//! in-tree twin of the CI `corpus-conformance` job — `cargo test` alone
//! catches a scheduler regression or a stale corpus.

use std::path::PathBuf;

use grom::chase::ChaseConfig;
use grom::scenarios::{all_modes, list_entries, read_entry, verify_entry, Provenance};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_has_the_promised_coverage() {
    let entries = list_entries(&corpus_dir()).expect("corpus/ readable");
    assert!(
        entries.len() >= 20,
        "corpus shrank to {} entries; keep at least 20",
        entries.len()
    );
}

#[test]
fn every_entry_verifies_in_every_mode() {
    let cfg = ChaseConfig::default();
    let modes = all_modes();
    let mut failures = Vec::new();
    for path in list_entries(&corpus_dir()).expect("corpus/ readable") {
        let entry = read_entry(&path).expect("entry parses");
        let report = verify_entry(&entry, &modes, &cfg).expect("entry verifiable");
        if !report.ok() {
            failures.push(format!("{report:?}"));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus conformance failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn spec_born_entries_regenerate_byte_identically() {
    // verify_entry already folds this into ok(), but assert it separately
    // so a determinism break is named as such, not as a generic failure.
    let mut spec_born = 0usize;
    for path in list_entries(&corpus_dir()).expect("corpus/ readable") {
        let entry = read_entry(&path).expect("entry parses");
        if let Provenance::Generated(spec) = &entry.provenance {
            let g = grom::scenarios::generate(spec);
            assert_eq!(
                g.program, entry.program,
                "entry `{}`: program drifted from its spec `{spec}`",
                entry.name
            );
            assert_eq!(
                g.source, entry.source,
                "entry `{}`: source drifted from its spec `{spec}`",
                entry.name
            );
            spec_born += 1;
        }
    }
    assert!(spec_born >= 20, "expected ≥20 spec-born entries");
}
