//! Differential testing of the evaluation engine against a brute-force
//! reference implementation.
//!
//! The engine (`grom-engine`) uses greedy join ordering, per-column index
//! probes and early filter placement; the reference below enumerates *all*
//! assignments of body variables over the active domain and checks every
//! literal naively. On random bodies and instances the two must agree
//! exactly — this is the test that keeps the join planner honest.

use std::collections::BTreeSet;

use proptest::prelude::*;

use grom::engine::evaluate_body;
use grom::lang::ast::body_variables;
use grom::lang::{Atom, Bindings, CmpOp, Comparison, Literal, Term, Var};
use grom::prelude::{Instance, Value};

const RELS: [&str; 3] = ["R0", "R1", "R2"];
const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// Brute-force: the active domain of the instance.
fn active_domain(inst: &Instance) -> Vec<Value> {
    let mut dom = BTreeSet::new();
    for fact in inst.facts() {
        for v in fact.tuple.values() {
            dom.insert(v.clone());
        }
    }
    dom.into_iter().collect()
}

/// Brute-force evaluation: try every assignment of the body's *bindable*
/// variables (those in positive atoms) over the active domain.
fn reference_eval(inst: &Instance, body: &[Literal]) -> BTreeSet<Vec<(Var, Value)>> {
    // Bindable variables, in deterministic order.
    let mut bindable: Vec<Var> = Vec::new();
    for lit in body {
        if let Literal::Pos(a) = lit {
            for v in a.variables() {
                if !bindable.contains(&v) {
                    bindable.push(v);
                }
            }
        }
    }
    let dom = active_domain(inst);
    let mut out = BTreeSet::new();
    let n = bindable.len();
    let total = dom.len().checked_pow(n as u32).unwrap_or(0);
    for mut code in 0..total {
        let mut bindings = Bindings::new();
        for v in &bindable {
            bindings.bind(v.clone(), dom[code % dom.len()].clone());
            code /= dom.len();
        }
        if holds(inst, body, &bindings) {
            out.insert(
                bindable
                    .iter()
                    .map(|v| (v.clone(), bindings.get(v).unwrap().clone()))
                    .collect(),
            );
        }
    }
    // Degenerate case: no bindable variables at all.
    if n == 0 {
        let bindings = Bindings::new();
        if holds(inst, body, &bindings) {
            out.insert(Vec::new());
        }
    }
    out
}

/// Naive literal-by-literal check under total bindings.
fn holds(inst: &Instance, body: &[Literal], bindings: &Bindings) -> bool {
    for lit in body {
        match lit {
            Literal::Pos(a) => {
                let pattern = bindings.atom_pattern(a);
                // All variables bound: pattern is fully concrete except
                // when an atom has a variable not in any positive atom —
                // impossible since this *is* a positive atom.
                let found = inst
                    .relation(&a.predicate)
                    .is_some_and(|r| r.any_match(&pattern));
                if !found {
                    return false;
                }
            }
            Literal::Neg(a) => {
                // Unbound (negation-local) variables stay None: wildcard.
                let pattern = bindings.atom_pattern(a);
                let found = inst
                    .relation(&a.predicate)
                    .is_some_and(|r| r.any_match(&pattern));
                if found {
                    return false;
                }
            }
            Literal::Cmp(c) => {
                if !bindings.eval_comparison(c).unwrap_or(false) {
                    return false;
                }
            }
        }
    }
    true
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0usize..3, 0usize..4, 0usize..4)
        .prop_map(|(r, a, b)| Atom::new(RELS[r], vec![Term::var(VARS[a]), Term::var(VARS[b])]))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        4 => arb_atom().prop_map(Literal::Pos),
        2 => arb_atom().prop_map(Literal::Neg),
        1 => (0usize..4, -1i64..3).prop_map(|(v, c)| {
            Literal::Cmp(Comparison::new(CmpOp::Leq, Term::var(VARS[v]), Term::cons(c)))
        }),
        1 => (0usize..4, 0usize..4).prop_map(|(a, b)| {
            Literal::Cmp(Comparison::new(CmpOp::Neq, Term::var(VARS[a]), Term::var(VARS[b])))
        }),
    ]
}

/// Bodies whose comparisons/negations only use bindable variables (safety)
/// — except negation-local variables, which are allowed.
fn safe(body: &[Literal]) -> bool {
    let bindable: BTreeSet<Var> = body
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a.variables()),
            _ => None,
        })
        .flatten()
        .collect();
    body.iter().all(|l| match l {
        Literal::Cmp(c) => c.variables().iter().all(|v| bindable.contains(v)),
        _ => true,
    }) && body.iter().any(|l| matches!(l, Literal::Pos(_)))
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0usize..3, 0i64..3, 0i64..3), 0..7).prop_map(|facts| {
        let mut inst = Instance::new();
        for (r, a, b) in facts {
            inst.add(RELS[r], vec![Value::int(a), Value::int(b)])
                .unwrap();
        }
        inst
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_matches_brute_force_reference(
        body in prop::collection::vec(arb_literal(), 1..4).prop_filter("safe", |b| safe(b)),
        inst in arb_instance(),
    ) {
        let engine: BTreeSet<Vec<(Var, Value)>> = evaluate_body(&inst, &body, &Bindings::new())
            .into_iter()
            .map(|b| {
                // Project onto the bindable variables in the same order the
                // reference uses.
                let mut bindable: Vec<Var> = Vec::new();
                for lit in &body {
                    if let Literal::Pos(a) = lit {
                        for v in a.variables() {
                            if !bindable.contains(&v) {
                                bindable.push(v);
                            }
                        }
                    }
                }
                bindable
                    .iter()
                    .map(|v| (v.clone(), b.get(v).unwrap().clone()))
                    .collect()
            })
            .collect();
        let reference = reference_eval(&inst, &body);
        prop_assert_eq!(
            &engine, &reference,
            "engine and reference disagree\nbody: {:?}\ninstance:\n{}",
            body, inst
        );
    }

    #[test]
    fn engine_solution_count_is_duplicate_free(
        body in prop::collection::vec(arb_literal(), 1..4).prop_filter("safe", |b| safe(b)),
        inst in arb_instance(),
    ) {
        // evaluate_body may emit the same full binding at most once per
        // *distinct* combination of matched tuples; after projection onto
        // bindable variables, solutions must match the set semantics of the
        // reference (checked above) — here we check the weaker invariant
        // that full bindings are pairwise distinct.
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        let vars = body_variables(&body);
        let mut seen = BTreeSet::new();
        for s in &sols {
            let key: Vec<Option<Value>> = vars.iter().map(|v| s.get(v).cloned()).collect();
            prop_assert!(seen.insert(key), "duplicate solution emitted");
        }
    }
}
