//! Workspace smoke test: every example in `examples/` must run to
//! completion. The examples double as executable documentation of the
//! pipeline (quickstart, problematic views, schema evolution, ...), so a
//! change that breaks one of them should fail `cargo test`, not wait for a
//! human to try the README.

use std::process::Command;

const EXAMPLES: [&str; 5] = [
    "quickstart",
    "cleanup_views",
    "problematic_views",
    "product_classification",
    "schema_evolution",
];

#[test]
fn all_examples_run_to_completion() {
    for example in EXAMPLES {
        // `cargo test` has already built the examples, so each `cargo run`
        // is an up-to-date check plus the actual run.
        let output = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--example", example])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed with {}\nstdout:\n{}\nstderr:\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
