//! Cross-crate integration tests over a spread of mapping scenarios:
//! foreign keys as target tgds over views, union views end to end,
//! source-side semantic schemas, denial constraints, and failure modes.

use grom::prelude::*;

fn run_text(text: &str, facts: &[(&str, Vec<Value>)]) -> Result<ExchangeResult, PipelineError> {
    let prog = Program::parse(text).expect("scenario parses");
    let sc = MappingScenario::from_program(&prog).expect("scenario well-formed");
    let mut source = Instance::new();
    for (rel, vals) in facts {
        source.add(*rel, vals.clone()).unwrap();
    }
    sc.run(&source, &PipelineOptions::default())
}

fn ints(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|&v| Value::int(v)).collect()
}

#[test]
fn foreign_key_as_target_tgd_over_views() {
    // The paper's footnote 1: foreign-key constraints are handled too —
    // here as a target tgd between views: every Order must have its
    // Customer row, invented by the chase if the mapping did not create it.
    let res = run_text(
        r#"
        schema source { S_Order(id: int, cust: int); }
        schema target {
            T_Order(id: int, cust: int);
            T_Customer(id: int, name: string);
        }
        view Order(id, c) <- T_Order(id, c).
        view Customer(c) <- T_Customer(c, name).
        tgd m: S_Order(i, c) -> Order(i, c).
        dep fk: Order(i, c) -> Customer(c).
        "#,
        &[("S_Order", ints(&[1, 10])), ("S_Order", ints(&[2, 20]))],
    )
    .unwrap();
    assert_eq!(res.target.tuples("T_Order").count(), 2);
    // The FK invented customer rows (name is a labeled null).
    let custs: Vec<&Tuple> = res.target.tuples("T_Customer").collect();
    assert_eq!(custs.len(), 2);
    for c in &custs {
        assert!(c.get(1).unwrap().is_null());
    }
    assert!(res.validation.unwrap().ok);
}

#[test]
fn union_view_conclusion_runs_through_greedy_chase() {
    // Writing to a union view gives the chase a genuine choice (a ded);
    // greedy picks one branch and the result must still validate.
    let res = run_text(
        r#"
        schema source { S(x: int); }
        schema target { A(x: int); B(x: int); }
        view V(x) <- A(x).
        view V(x) <- B(x).
        tgd m: S(x) -> V(x).
        "#,
        &[("S", ints(&[1])), ("S", ints(&[2]))],
    )
    .unwrap();
    assert!(!res.rewritten.is_ded_free());
    assert!(res.chase_stats.scenarios_tried >= 1);
    assert!(res.validation.unwrap().ok);
    // One of the branches carries both tuples.
    let total = res.target.tuples("A").count() + res.target.tuples("B").count();
    assert_eq!(total, 2);
}

#[test]
fn union_view_with_denied_branch_backtracks() {
    // The A-branch is denied, so the greedy chase must fall over to B.
    let res = run_text(
        r#"
        schema source { S(x: int); }
        schema target { A(x: int); B(x: int); }
        view V(x) <- A(x).
        view V(x) <- B(x).
        view Forbidden(x) <- A(x).
        tgd m: S(x) -> V(x).
        dep no_a: Forbidden(x) -> false.
        "#,
        &[("S", ints(&[1]))],
    )
    .unwrap();
    assert_eq!(res.target.tuples("A").count(), 0);
    assert_eq!(res.target.tuples("B").count(), 1);
    assert!(res.chase_stats.scenarios_failed >= 1);
    assert!(res.validation.unwrap().ok);
}

#[test]
fn source_and_target_semantic_schemas_together() {
    // The general variant of §3: views on both sides. Source views are
    // materialized (composition reduction), target views are rewritten.
    let res = run_text(
        r#"
        schema source { S_Emp(name: string, dept: string, salary: int); }
        schema target { T_Person(name: string); T_Member(name: string, dept: string); }
        view WellPaid(n, d) <- S_Emp(n, d, s), s >= 100.
        view Member(n, d) <- T_Person(n), T_Member(n, d).
        tgd m: WellPaid(n, d) -> Member(n, d).
        "#,
        &[
            (
                "S_Emp",
                vec![Value::str("ann"), Value::str("db"), Value::int(200)],
            ),
            (
                "S_Emp",
                vec![Value::str("bob"), Value::str("ai"), Value::int(50)],
            ),
        ],
    )
    .unwrap();
    assert_eq!(res.source_view_extents.tuples("WellPaid").count(), 1);
    assert_eq!(res.target.tuples("T_Person").count(), 1);
    assert_eq!(res.target.tuples("T_Member").count(), 1);
    assert!(res.validation.unwrap().ok);
}

#[test]
fn negated_view_on_source_side_materializes() {
    // Negation in *source* views costs nothing: they are materialized, not
    // rewritten (the asymmetric trade-off the architecture exploits).
    let res = run_text(
        r#"
        schema source { S_A(x: int); S_Block(x: int); }
        schema target { T(x: int); }
        view Allowed(x) <- S_A(x), not S_Block(x).
        tgd m: Allowed(x) -> T(x).
        "#,
        &[
            ("S_A", ints(&[1])),
            ("S_A", ints(&[2])),
            ("S_Block", ints(&[2])),
        ],
    )
    .unwrap();
    assert!(res.rewritten.is_ded_free());
    let t: Vec<&Tuple> = res.target.tuples("T").collect();
    assert_eq!(t.len(), 1);
    assert_eq!(t[0].get(0), Some(&Value::int(1)));
    assert!(res.validation.unwrap().ok);
}

#[test]
fn target_key_merges_invented_nulls() {
    let res = run_text(
        r#"
        schema source { S(x: int); S_Val(x: int, v: int); }
        schema target { T(x: int, v: int); }
        view V(x, v) <- T(x, v).
        tgd a: S(x) -> T(x, v).
        tgd b: S_Val(x, v) -> V(x, v).
        egd key: V(x, v1), V(x, v2) -> v1 = v2.
        "#,
        &[("S", ints(&[1])), ("S_Val", ints(&[1, 42]))],
    )
    .unwrap();
    let t: Vec<&Tuple> = res.target.tuples("T").collect();
    assert_eq!(t.len(), 1);
    assert_eq!(t[0].get(1), Some(&Value::int(42)));
    assert!(res.chase_stats.egd_merges >= 1);
    assert!(res.validation.unwrap().ok);
}

#[test]
fn denial_constraint_blocks_bad_exchanges() {
    let text = r#"
        schema source { S(x: int, y: int); }
        schema target { T(x: int, y: int); }
        view V(x, y) <- T(x, y).
        tgd m: S(x, y) -> V(x, y).
        dep no_diag: V(x, x) -> false.
    "#;
    // Off-diagonal data: fine.
    assert!(run_text(text, &[("S", ints(&[1, 2]))]).is_ok());
    // Diagonal data: the denial fires.
    let res = run_text(text, &[("S", ints(&[3, 3]))]);
    assert!(matches!(res, Err(PipelineError::Chase(_))));
}

#[test]
fn comparisons_partition_without_overlap() {
    let res = run_text(
        r#"
        schema source { S(x: int, r: int); }
        schema target { Lo(x: int); Mid(x: int); Hi(x: int); }
        view VLo(x) <- Lo(x).
        view VMid(x) <- Mid(x).
        view VHi(x) <- Hi(x).
        tgd lo: S(x, r), r < 10 -> VLo(x).
        tgd mid: S(x, r), r >= 10, r < 100 -> VMid(x).
        tgd hi: S(x, r), r >= 100 -> VHi(x).
        "#,
        &[
            ("S", ints(&[1, 5])),
            ("S", ints(&[2, 50])),
            ("S", ints(&[3, 500])),
            ("S", ints(&[4, 10])),
        ],
    )
    .unwrap();
    assert_eq!(res.target.tuples("Lo").count(), 1);
    assert_eq!(res.target.tuples("Mid").count(), 2);
    assert_eq!(res.target.tuples("Hi").count(), 1);
    assert!(res.validation.unwrap().ok);
}

#[test]
fn string_constants_flow_through() {
    let res = run_text(
        r#"
        schema source { S(name: string, kind: string); }
        schema target { T(name: string, tag: string); }
        view Widget(n) <- T(n, "widget").
        tgd m: S(n, "w") -> Widget(n).
        "#,
        &[
            ("S", vec![Value::str("a"), Value::str("w")]),
            ("S", vec![Value::str("b"), Value::str("gadget")]),
        ],
    )
    .unwrap();
    let t: Vec<&Tuple> = res.target.tuples("T").collect();
    assert_eq!(t.len(), 1);
    assert_eq!(t[0].get(0), Some(&Value::str("a")));
    assert_eq!(t[0].get(1), Some(&Value::str("widget")));
    assert!(res.validation.unwrap().ok);
}

#[test]
fn deep_view_chains_unfold_fully() {
    let res = run_text(
        r#"
        schema source { S(x: int); }
        schema target { Base(x: int, y: int); }
        view L1(x) <- Base(x, y).
        view L2(x) <- L1(x).
        view L3(x) <- L2(x).
        view L4(x) <- L3(x).
        tgd m: S(x) -> L4(x).
        "#,
        &[("S", ints(&[9]))],
    )
    .unwrap();
    let t: Vec<&Tuple> = res.target.tuples("Base").collect();
    assert_eq!(t.len(), 1);
    assert_eq!(t[0].get(0), Some(&Value::int(9)));
    assert!(res.validation.unwrap().ok);
}

#[test]
fn empty_mappings_produce_empty_target() {
    let res = run_text(
        r#"
        schema source { S(x: int); }
        schema target { T(x: int); }
        view V(x) <- T(x).
        egd e: V(x), V(y) -> x = y.
        "#,
        &[("S", ints(&[1]))],
    )
    .unwrap();
    assert!(res.target.is_empty());
    assert!(res.validation.unwrap().ok);
}

#[test]
fn exhaustive_and_greedy_agree_on_satisfiability() {
    // For the union-view scenario, run the rewritten program under both
    // ded strategies and check both find solutions satisfying the program.
    let prog = Program::parse(
        r#"
        schema source { S(x: int); }
        schema target { A(x: int); B(x: int); }
        view V(x) <- A(x).
        view V(x) <- B(x).
        tgd m: S(x) -> V(x).
        "#,
    )
    .unwrap();
    let sc = MappingScenario::from_program(&prog).unwrap();
    let rewritten = sc.rewrite(&RewriteOptions::default()).unwrap();

    let mut source = Instance::new();
    source.add("S", ints(&[1])).unwrap();
    source.add("S", ints(&[2])).unwrap();

    let greedy =
        grom::chase::chase_greedy(source.clone(), &rewritten.deps, &ChaseConfig::default())
            .unwrap();
    let exhaustive =
        grom::chase::chase_exhaustive(source, &rewritten.deps, &ChaseConfig::default()).unwrap();
    // 2 facts × 2 branches = 4 leaves; greedy commits to one branch.
    assert_eq!(exhaustive.solutions.len(), 4);
    for sol in &exhaustive.solutions {
        for dep in &rewritten.deps {
            assert!(grom::engine::dependency_satisfied(sol, dep));
        }
    }
    for dep in &rewritten.deps {
        assert!(grom::engine::dependency_satisfied(&greedy.instance, dep));
    }
}
