//! Reconciliation tests for the chase profile: the per-dependency
//! accounting of `grom-trace` must agree *exactly* with `ChaseStats` on
//! activation and tuple counts, its wall times must sum to (at most) the
//! run's total, and the JSONL event stream must mirror the profile. A
//! property test additionally pins the profile's counter half (times
//! excluded) to be independent of the worker-thread count on generated
//! corpus scenarios.

use std::sync::Arc;

use proptest::prelude::*;

use grom::chase::{chase_standard, ChaseConfig, MemorySink, TraceHandle};
use grom::prelude::{ChaseStats, SchedulerMode};
use grom::trace::json;
use grom::trace::ChaseProfile;
use grom_bench::{delta_scaling_workload, egd_scaling_workload, parallel_scaling_workload};

fn cfg(mode: SchedulerMode) -> ChaseConfig {
    ChaseConfig::default().with_scheduler(mode)
}

/// The exact counter reconciliation the `grom explain` verb enforces.
fn assert_reconciles(profile: &ChaseProfile, stats: &ChaseStats) {
    assert_eq!(
        profile.total_activations(),
        (stats.full_rescans + stats.delta_activations) as u64,
        "activation counts diverge: profile={profile:?} stats={stats:?}"
    );
    assert_eq!(profile.total_full_rescans(), stats.full_rescans as u64);
    assert_eq!(
        profile.total_delta_activations(),
        stats.delta_activations as u64
    );
    assert_eq!(
        profile.total_delta_tuples_seeded(),
        stats.delta_tuples_seeded as u64
    );
    assert_eq!(
        profile.total_tuples_produced(),
        stats.tuples_inserted as u64,
        "tuple counts diverge"
    );
    assert_eq!(
        profile.substitution_passes,
        stats.substitution_passes as u64
    );
}

#[test]
fn delta_profile_times_sum_to_total_and_counters_reconcile() {
    let (deps, inst) = delta_scaling_workload(8, 40);
    let res = chase_standard(inst, &deps, &cfg(SchedulerMode::Delta)).unwrap();
    assert_reconciles(&res.profile, &res.stats);

    let p = &res.profile;
    assert_eq!(p.mode, "delta");
    assert!(p.sweeps > 0);
    assert!(p.sweeps <= res.stats.rounds as u64);
    // The sequential scheduler derives evaluate time from the activation
    // walls, so the per-dependency times sum exactly to the evaluate phase
    // and stay under the run total (which also covers scheduling overhead).
    assert_eq!(p.total_dep_wall_ns(), p.evaluate_ns);
    assert!(
        p.evaluate_ns + p.substitute_ns <= p.total_ns,
        "phases exceed total: evaluate={} substitute={} total={}",
        p.evaluate_ns,
        p.substitute_ns,
        p.total_ns
    );
    // The copy chain is delta-friendly: most activations are delta-seeded
    // and most of those find work.
    assert!(p.total_delta_activations() > 0);
    assert!(p.delta_hit_rate().unwrap() > 0.5);
}

#[test]
fn parallel_profile_reconciles_and_tracks_groups() {
    let (deps, inst) = parallel_scaling_workload(4, 6, 30);
    let res = chase_standard(inst, &deps, &cfg(SchedulerMode::Parallel { threads: 4 })).unwrap();
    assert_reconciles(&res.profile, &res.stats);

    let p = &res.profile;
    assert_eq!(p.mode, "parallel4");
    assert!(!p.groups.is_empty(), "parallel runs must report groups");
    assert!(p.groups.iter().map(|g| g.jobs).sum::<u64>() > 0);
    assert!(p.groups.iter().map(|g| g.busy_ns).sum::<u64>() > 0);
    // Every dependency is attributed to its conflict group.
    assert!(p.deps.iter().all(|d| d.group.is_some()));
    assert!(
        p.evaluate_ns + p.merge_ns + p.substitute_ns <= p.total_ns,
        "phases exceed total"
    );
}

#[test]
fn egd_workload_profiles_substitution_passes() {
    let (deps, inst) = egd_scaling_workload(30, 6, 4);
    let res = chase_standard(inst, &deps, &cfg(SchedulerMode::Delta)).unwrap();
    assert_reconciles(&res.profile, &res.stats);
    assert_eq!(res.profile.substitution_passes, 1);
    assert!(res.profile.total_obligations() > 0);
}

#[test]
fn jsonl_stream_is_well_formed_and_matches_the_profile() {
    let sink = Arc::new(MemorySink::new());
    let trace = TraceHandle::new(sink.clone());
    let (deps, inst) = egd_scaling_workload(20, 5, 3);
    let config = cfg(SchedulerMode::Parallel { threads: 2 }).with_trace(trace);
    let res = chase_standard(inst, &deps, &config).unwrap();

    let lines = sink.lines();
    let mut counts = std::collections::BTreeMap::<String, u64>::new();
    for line in &lines {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e}"));
        let event = v
            .get("event")
            .and_then(|e| e.as_str())
            .unwrap_or_else(|| panic!("line without event: {line}"))
            .to_string();
        *counts.entry(event).or_default() += 1;
    }
    let p = &res.profile;
    assert_eq!(counts.get("run_start"), Some(&1));
    assert_eq!(counts.get("run_end"), Some(&1));
    assert_eq!(
        counts.get("activation").copied().unwrap_or(0),
        p.total_activations()
    );
    assert_eq!(
        counts.get("merge").copied().unwrap_or(0),
        p.substitution_passes
    );
    assert_eq!(counts.get("sweep").copied().unwrap_or(0), p.sweeps);
    assert_eq!(
        lines.len() as u64,
        2 + p.total_activations() + p.substitution_passes + p.sweeps,
        "unexpected extra events"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Thread-count independence: on generated corpus scenarios the
    /// profiles of Parallel{2} and Parallel{4} must agree on every counter
    /// (wall times excluded — that is what `counters_only` zeroes), and
    /// every mode must reconcile with its own `ChaseStats`. Delta is *not*
    /// compared against parallel: the parallel executor legitimately turns
    /// deferred dependencies into extra full rescans.
    #[test]
    fn parallel_profiles_are_thread_count_independent(spec_seed in any::<u64>()) {
        let spec = grom::scenarios::random_spec(spec_seed, 2);
        let g = grom::scenarios::generate(&spec);
        let (deps, inst) = g.parts().expect("generated scenario parses");

        let delta = chase_standard(inst.clone(), &deps, &cfg(SchedulerMode::Delta));
        if let Ok(d) = &delta {
            assert_reconciles(&d.profile, &d.stats);
        }
        let p2 = chase_standard(
            inst.clone(), &deps, &cfg(SchedulerMode::Parallel { threads: 2 }));
        let p4 = chase_standard(
            inst, &deps, &cfg(SchedulerMode::Parallel { threads: 4 }));
        match (p2, p4) {
            (Ok(a), Ok(b)) => {
                assert_reconciles(&a.profile, &a.stats);
                assert_reconciles(&b.profile, &b.stats);
                let mut a2 = a.profile.counters_only();
                let mut b4 = b.profile.counters_only();
                // The mode string is the only legitimate difference.
                a2.mode = String::new();
                b4.mode = String::new();
                prop_assert_eq!(
                    a2, b4,
                    "spec `{}`: parallel counters depend on thread count", spec
                );
            }
            (Err(_), Err(_)) => {} // failing scenarios have no profile
            (a, b) => {
                prop_assert!(false,
                    "spec `{}`: thread counts disagree on success: 2={:?} 4={:?}",
                    spec, a.map(|r| r.stats), b.map(|r| r.stats));
            }
        }
    }
}
