//! Integration tests reproducing the paper's §2 running example artifacts
//! verbatim: the views v1–v6, the mappings m0–m3, the key egd e0 and —
//! crucially — the ded `d0` that GROM's rewriter derives from `e0`.

use grom::prelude::*;
use grom_bench::workloads::{running_example_scenario, RUNNING_EXAMPLE};

fn scenario() -> MappingScenario {
    running_example_scenario()
}

fn small_source() -> Instance {
    let mut source = Instance::new();
    for (id, name, store, rating) in [
        (1, "tv", "acme", 5),
        (2, "radio", "acme", 3),
        (3, "fridge", "bestbuy", 1),
    ] {
        source
            .add(
                "S_Product",
                vec![
                    Value::int(id),
                    Value::str(name),
                    Value::str(store),
                    Value::int(rating),
                ],
            )
            .unwrap();
    }
    for (name, location) in [("acme", "rome"), ("bestbuy", "milan")] {
        source
            .add("S_Store", vec![Value::str(name), Value::str(location)])
            .unwrap();
    }
    source
}

#[test]
fn scenario_parses_and_splits_like_the_paper() {
    let sc = scenario();
    assert_eq!(sc.source_schema.len(), 2); // S-Product, S-Store
    assert_eq!(sc.target_schema.len(), 3); // T-Product, T-Store, T-Rating
    assert_eq!(sc.target_views.len(), 6); // v1..v6
    assert_eq!(sc.mappings.len(), 4); // m0..m3
    assert_eq!(sc.target_constraints.len(), 1); // e0
}

#[test]
fn d0_is_generated_with_the_papers_exact_shape() {
    let sc = scenario();
    let out = sc.rewrite(&RewriteOptions::default()).unwrap();

    // Exactly one ded in the rewritten program, derived from e0.
    let deds: Vec<&Dependency> = out.deds().collect();
    assert_eq!(deds.len(), 1);
    let d0 = deds[0];
    assert_eq!(out.provenance[&d0.name].as_ref(), "e0");

    // d0: TProduct(pid1,name,store1), TProduct(pid2,name,store2)
    //     -> (pid1 = pid2) | TRating(rid,pid1,'0') | TRating(rid,pid2,'0')
    assert_eq!(d0.premise.len(), 2);
    for lit in &d0.premise {
        let a = lit.atom().expect("premise is relational");
        assert_eq!(a.predicate.as_ref(), "T_Product");
    }
    // Shared name column: premise atoms agree on argument 1.
    let names: Vec<&Term> = d0
        .premise
        .iter()
        .map(|l| &l.atom().unwrap().args[1])
        .collect();
    assert_eq!(names[0], names[1]);

    assert_eq!(d0.disjuncts.len(), 3);
    assert_eq!(d0.disjuncts[0].eqs.len(), 1);
    assert!(d0.disjuncts[0].atoms.is_empty());
    for d in &d0.disjuncts[1..] {
        assert_eq!(d.atoms.len(), 1);
        let a = &d.atoms[0];
        assert_eq!(a.predicate.as_ref(), "T_Rating");
        assert_eq!(a.args[2], Term::cons(0i64));
        // The rating id is existential (fresh variable, not in premise).
        assert!(a.args[0].is_var());
    }
}

#[test]
fn end_to_end_classification_matches_ratings() {
    let sc = scenario();
    let res = sc
        .run(&small_source(), &PipelineOptions::default())
        .unwrap();
    assert!(res.validation.as_ref().unwrap().ok);

    let extents = grom::engine::materialize_views(&sc.target_views, &res.target).unwrap();
    let ids = |view: &str| -> Vec<i64> {
        let mut v: Vec<i64> = extents
            .tuples(view)
            .filter_map(|t| t.get(0).unwrap().as_int())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Ratings 5 / 3 / 1 → popular / average / unpopular (paper thresholds).
    assert_eq!(ids("PopularProduct"), vec![1]);
    assert_eq!(ids("AvgProduct"), vec![2]);
    assert_eq!(ids("UnpopularProduct"), vec![3]);
    // Subclass semantics carried by the views: every classified product is
    // a Product, without m0–m2 saying so explicitly.
    assert_eq!(ids("Product"), vec![1, 2, 3]);
}

#[test]
fn average_products_get_rating_witnesses() {
    let sc = scenario();
    let res = sc
        .run(&small_source(), &PipelineOptions::default())
        .unwrap();
    // Product 2 (average) needs a thumbsUp=1 witness and — to not be
    // popular — a thumbsUp=0 witness. Product 3 (unpopular) needs a 0.
    let rating_of = |pid: i64, val: i64| {
        res.target
            .tuples("T_Rating")
            .any(|t| t.get(1) == Some(&Value::int(pid)) && t.get(2) == Some(&Value::int(val)))
    };
    assert!(rating_of(2, 1), "average product needs a 1-rating witness");
    assert!(rating_of(2, 0), "average product must not be popular");
    assert!(
        rating_of(3, 0),
        "unpopular product needs a 0-rating witness"
    );
    // Popular product 1 must have no 0-rating (the m2 denial).
    assert!(!rating_of(1, 0));
}

#[test]
fn store_ids_are_invented_nulls_linking_products_to_stores() {
    let sc = scenario();
    let res = sc
        .run(&small_source(), &PipelineOptions::default())
        .unwrap();
    // m3: SoldAt(pid, sid), Store(sid, store, location) — sid is invented.
    let stores: Vec<&Tuple> = res.target.tuples("T_Store").collect();
    assert!(!stores.is_empty());
    for s in &stores {
        assert!(s.get(0).unwrap().is_null(), "store id is a labeled null");
        assert!(
            s.get(1).unwrap().as_str().is_some(),
            "store name is real data"
        );
    }
}

#[test]
fn duplicate_popular_names_fail_as_the_paper_promises() {
    // Two distinct products, same name, both rating 5: e0 is violated and
    // no repair is allowed (they must stay popular), so the chase fails —
    // GROM "says nothing about the cases in which Σ_ST ∪ Σ_T fail".
    let sc = scenario();
    let mut source = Instance::new();
    for id in [1, 2] {
        source
            .add(
                "S_Product",
                vec![
                    Value::int(id),
                    Value::str("tv"),
                    Value::str("acme"),
                    Value::int(5),
                ],
            )
            .unwrap();
    }
    source
        .add("S_Store", vec![Value::str("acme"), Value::str("rome")])
        .unwrap();
    let res = sc.run(&source, &PipelineOptions::default());
    assert!(matches!(res, Err(PipelineError::Chase(_))));
}

#[test]
fn duplicate_names_with_low_ratings_succeed() {
    // Same-name products are fine when they are *not* both popular: the
    // 0-rating disjunct of d0 is satisfied by the witnesses m0 creates.
    let sc = scenario();
    let mut source = Instance::new();
    for id in [1, 2] {
        source
            .add(
                "S_Product",
                vec![
                    Value::int(id),
                    Value::str("tv"),
                    Value::str("acme"),
                    Value::int(0),
                ],
            )
            .unwrap();
    }
    source
        .add("S_Store", vec![Value::str("acme"), Value::str("rome")])
        .unwrap();
    let res = sc.run(&source, &PipelineOptions::default()).unwrap();
    assert!(res.validation.unwrap().ok);
}

#[test]
fn rewritten_program_is_weakly_acyclic() {
    let sc = scenario();
    let res = sc
        .run(&small_source(), &PipelineOptions::default())
        .unwrap();
    assert!(res.wa_report.weakly_acyclic, "{}", res.wa_report);
}

#[test]
fn analyzer_flags_the_negation_views() {
    let sc = scenario();
    let deps: Vec<Dependency> = sc.all_dependencies().cloned().collect();
    let (report, _) = analyze(&sc.target_views, &deps, &RewriteOptions::default()).unwrap();
    assert!(report.has_deds);
    let flagged: Vec<&str> = report.problematic.iter().map(|p| p.view.as_ref()).collect();
    assert!(flagged.contains(&"PopularProduct"), "{flagged:?}");
    // Depth profile matches the paper's nesting.
    let depth = |name: &str| {
        report
            .profiles
            .iter()
            .find(|p| p.name.as_ref() == name)
            .unwrap()
            .negation_depth
    };
    assert_eq!(depth("Product"), 0);
    assert_eq!(depth("PopularProduct"), 1);
    assert_eq!(depth("AvgProduct"), 2);
    assert_eq!(depth("UnpopularProduct"), 3);
}

#[test]
fn scenario_text_round_trips_through_display() {
    let prog = Program::parse(RUNNING_EXAMPLE).unwrap();
    let printed = prog.to_string();
    let reparsed = Program::parse(&printed).unwrap();
    assert_eq!(prog.views.rules().len(), reparsed.views.rules().len());
    assert_eq!(prog.deps, reparsed.deps);
}
