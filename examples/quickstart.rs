//! Quickstart: the paper's §2 running example, end to end.
//!
//! Builds the products/stores/ratings scenario, shows the rewritten
//! program (including the ded `d0` the paper derives from the key egd
//! `e0`), chases a small source instance and prints the generated target.
//!
//! Run with: `cargo run --example quickstart`

use grom::prelude::*;
use grom_bench::workloads::RUNNING_EXAMPLE;

fn main() {
    // 1. Parse the scenario (schemas, views, mappings, constraints).
    let program = Program::parse(RUNNING_EXAMPLE).expect("scenario parses");
    let scenario = MappingScenario::from_program(&program).expect("scenario is well-formed");

    // 2. A small source instance: one popular, one average, one unpopular
    //    product.
    let mut source = Instance::new();
    for (id, name, store, rating) in [
        (1, "tv", "acme", 5),
        (2, "radio", "acme", 3),
        (3, "fridge", "bestbuy", 1),
    ] {
        source
            .add(
                "S_Product",
                vec![
                    Value::int(id),
                    Value::str(name),
                    Value::str(store),
                    Value::int(rating),
                ],
            )
            .unwrap();
    }
    for (name, location) in [("acme", "rome"), ("bestbuy", "milan")] {
        source
            .add("S_Store", vec![Value::str(name), Value::str(location)])
            .unwrap();
    }

    // 3. Run the pipeline.
    let result = scenario
        .run(&source, &PipelineOptions::default())
        .expect("exchange succeeds");

    println!("== Rewritten program ==");
    for dep in &result.rewritten.deps {
        println!("[{}] {}", dep.class(), dep);
    }
    println!();
    println!("deds generated: {}", result.rewritten.deds().count());
    for (name, causes) in &result.rewritten.ded_causes {
        let causes: Vec<String> = causes.iter().map(|c| c.to_string()).collect();
        println!("  {name} caused by negation in: {}", causes.join(", "));
    }

    println!("\n== Chase ==");
    println!("{}", result.chase_stats);
    println!("termination: {}", result.wa_report);

    println!("\n== Target instance J_T ==");
    print!("{}", result.target);

    println!("\n== Soundness certificate ==");
    println!("{}", result.validation.expect("validation ran"));
}
