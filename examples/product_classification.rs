//! The §4 "typical pattern": a source that *rates* objects, a target
//! application that needs them *classified*.
//!
//! Runs the running-example mapping over a generated catalog of a few
//! thousand products, then materializes the target semantic schema to show
//! the classification the views induce — and checks it against the source
//! ratings (the soundness certificate).
//!
//! Run with: `cargo run --release --example product_classification`

use grom::prelude::*;
use grom_bench::workloads::{
    running_example_scenario, running_example_source, RunningExampleConfig,
};

fn main() {
    let scenario = running_example_scenario();
    let cfg = RunningExampleConfig {
        products: 5_000,
        stores: 25,
        seed: 7,
    };
    let source = running_example_source(&cfg);
    println!(
        "source: {} products, {} stores",
        source.tuples("S_Product").count(),
        source.tuples("S_Store").count()
    );

    let t0 = std::time::Instant::now();
    let result = scenario
        .run(&source, &PipelineOptions::default())
        .expect("exchange succeeds");
    println!(
        "pipeline: {:.1} ms, {} target tuples, chase: {}",
        t0.elapsed().as_secs_f64() * 1e3,
        result.target.len(),
        result.chase_stats
    );

    // Materialize the target semantic schema over J_T: the classification
    // the application will see.
    let extents = grom::engine::materialize_views(&scenario.target_views, &result.target)
        .expect("views materialize");
    let count_ids = |view: &str| {
        let mut ids: Vec<i64> = extents
            .tuples(view)
            .filter_map(|t| t.get(0).unwrap().as_int())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    println!("\nclassification over V_T(J_T):");
    for view in ["PopularProduct", "AvgProduct", "UnpopularProduct"] {
        println!("  {view}: {} products", count_ids(view));
    }

    // Cross-check against the source ratings.
    let mut by_rating = [0usize; 3]; // unpopular, average, popular
    for t in source.tuples("S_Product") {
        let r = t.get(3).unwrap().as_int().unwrap();
        if r < 2 {
            by_rating[0] += 1;
        } else if r < 4 {
            by_rating[1] += 1;
        } else {
            by_rating[2] += 1;
        }
    }
    println!("\nexpected from source ratings:");
    println!("  popular:   {}", by_rating[2]);
    println!("  average:   {}", by_rating[1]);
    println!("  unpopular: {}", by_rating[0]);

    assert_eq!(count_ids("PopularProduct"), by_rating[2]);
    assert_eq!(count_ids("AvgProduct"), by_rating[1]);
    assert_eq!(count_ids("UnpopularProduct"), by_rating[0]);

    println!(
        "\nsoundness certificate: {}",
        result.validation.expect("validation ran")
    );
}
