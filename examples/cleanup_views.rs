//! §4: "Another typical case is the one of databases that come with poor
//! designs, or lack integrity constraints … a clean-up view over the
//! underlying databases may simplify things."
//!
//! The source is a denormalized, dirty event log (mixed-quality rows,
//! sentinel values, no constraints). *Source-side* views clean it up —
//! GROM materializes them (the composition reduction of §3) and runs the
//! mapping over the clean extents.
//!
//! Run with: `cargo run --example cleanup_views`

use grom::prelude::*;

const SCENARIO: &str = r#"
    schema source {
        # One big log table: (event id, user, email, kind, score)
        # Dirty: score -1 means "unknown", kind 0 means "test traffic",
        # empty emails abound.
        S_Log(id: int, user: string, email: string, kind: int, score: int);
    }
    schema target {
        T_User(name: string, email: string);
        T_Signal(user: string, score: int);
    }

    # Source clean-up views: the semantic schema over the dirty log.
    view GoodEvent(id, user, email, score) <-
        S_Log(id, user, email, kind, score), kind != 0, score >= 0.
    view KnownUser(user, email) <-
        GoodEvent(id, user, email, score), email != "".

    # The mapping is written against the *clean* concepts only.
    tgd mu: KnownUser(u, e) -> T_User(u, e).
    tgd ms: GoodEvent(id, u, e, s) -> T_Signal(u, s).

    # And a key on target users.
    egd ku: T_User(u, e1), T_User(u, e2) -> e1 = e2.
"#;

fn main() {
    let program = Program::parse(SCENARIO).expect("scenario parses");
    let scenario = MappingScenario::from_program(&program).expect("well-formed");

    let mut source = Instance::new();
    let rows: Vec<(i64, &str, &str, i64, i64)> = vec![
        (1, "ann", "ann@x.org", 1, 10),
        (2, "ann", "ann@x.org", 1, 20),
        (3, "bob", "", 1, 5),          // no email: signal only, not a user
        (4, "carl", "c@x.org", 0, 9),  // test traffic: dropped entirely
        (5, "dora", "d@x.org", 2, -1), // unknown score: dropped entirely
        (6, "eve", "e@x.org", 3, 7),
    ];
    for (id, user, email, kind, score) in rows {
        source
            .add(
                "S_Log",
                vec![
                    Value::int(id),
                    Value::str(user),
                    Value::str(email),
                    Value::int(kind),
                    Value::int(score),
                ],
            )
            .unwrap();
    }

    let result = scenario
        .run(&source, &PipelineOptions::default())
        .expect("exchange succeeds");

    println!("== Source clean-up view extents Υ_S(I_S) ==");
    print!("{}", result.source_view_extents);

    println!("\n== Target instance ==");
    print!("{}", result.target);

    // ann (twice, deduplicated), eve become users; bob contributes a
    // signal without an email; carl and dora are filtered out.
    assert_eq!(result.target.tuples("T_User").count(), 2);
    let signals: Vec<String> = result
        .target
        .tuples("T_Signal")
        .map(|t| format!("{t}"))
        .collect();
    assert_eq!(signals.len(), 4, "{signals:?}");

    println!(
        "\nsoundness certificate: {}",
        result.validation.expect("validation ran")
    );
}
