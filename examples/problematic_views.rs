//! §4, the closing interaction of the demo: "the user needs to inspect the
//! views and change them in such a way to remove perverse negation
//! patterns that will generate deds. GROM supports this process by
//! highlighting problematic views."
//!
//! Analyzes the paper's views (negation-heavy: `PopularProduct` negates a
//! base table, `AvgProduct` negates a view, `UnpopularProduct` negates
//! both), prints the analyzer's report with the flagged views, then shows
//! the designer's reformulation and its clean, ded-free report.
//!
//! Run with: `cargo run --example problematic_views`

use grom::prelude::*;
use grom_bench::workloads::restriction_pair;

fn main() {
    let (perverse, reformulated) = restriction_pair();

    println!("==== Step 1: the original (paper) views ====\n");
    let deps: Vec<Dependency> = perverse.all_dependencies().cloned().collect();
    let (report, output) = analyze(&perverse.target_views, &deps, &RewriteOptions::default())
        .expect("analyze succeeds");
    println!("{report}");
    println!("rewritten dependencies:");
    for dep in &output.deps {
        println!("  [{}] {}", dep.class(), dep);
    }
    assert!(report.has_deds);

    println!("\n==== Step 2: the designer reformulates ====\n");
    println!(
        "PopularProduct(pid, name) <- T_Product(pid, name, store), T_NoZero(pid).\n\
         (the negation over T_Rating is replaced by an explicit positive\n\
         flag table in the physical target schema)\n"
    );
    let deps: Vec<Dependency> = reformulated.all_dependencies().cloned().collect();
    let (report, output) = analyze(
        &reformulated.target_views,
        &deps,
        &RewriteOptions::default(),
    )
    .expect("analyze succeeds");
    println!("{report}");
    println!("rewritten dependencies:");
    for dep in &output.deps {
        println!("  [{}] {}", dep.class(), dep);
    }
    assert!(!report.has_deds);
    assert!(report.problematic.is_empty());

    println!(
        "\nthe reformulated mapping rewrites to plain tgds/egds: the chase\n\
         needs no scenario search, and execution scales like E6/E7 show."
    );
}
