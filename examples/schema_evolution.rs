//! §1(iii): "base transactional repositories … undergo modifications during
//! the years … It is important to be able to run the existing mappings
//! against a view over the new schema that does not change, thus keeping
//! these modifications transparent to the users."
//!
//! The same semantic mapping (`Customer`, `Order` concepts) runs unchanged
//! against two generations of the physical target schema: the views absorb
//! the restructuring.
//!
//! Run with: `cargo run --example schema_evolution`

use grom::prelude::*;

/// Generation 1: a single wide customers table.
const V1: &str = r#"
    schema source {
        S_Client(id: int, name: string, city: string);
        S_Purchase(client: int, item: string, amount: int);
    }
    schema target {
        T_Customers(id: int, name: string, city: string);
        T_Orders(id: int, customer: int, item: string, amount: int);
    }

    view Customer(id, name) <- T_Customers(id, name, city).
    view Order(cid, item) <- T_Orders(oid, cid, item, amount).

    tgd mc: S_Client(id, name, city) -> Customer(id, name).
    tgd mo: S_Client(id, name, city), S_Purchase(id, item, amount)
        -> Customer(id, name), Order(id, item).
"#;

/// Generation 2: the customers table was split (name vs address), orders
/// were renamed — but the *semantic schema and the mappings are identical*.
const V2: &str = r#"
    schema source {
        S_Client(id: int, name: string, city: string);
        S_Purchase(client: int, item: string, amount: int);
    }
    schema target {
        T_CustCore(id: int, name: string);
        T_CustAddr(id: int, city: string);
        T_Sales(customer: int, item: string);
    }

    view Customer(id, name) <- T_CustCore(id, name).
    view Order(cid, item) <- T_Sales(cid, item).

    tgd mc: S_Client(id, name, city) -> Customer(id, name).
    tgd mo: S_Client(id, name, city), S_Purchase(id, item, amount)
        -> Customer(id, name), Order(id, item).
"#;

fn source() -> Instance {
    let mut s = Instance::new();
    for (id, name, city) in [(1, "ann", "rome"), (2, "bob", "milan")] {
        s.add(
            "S_Client",
            vec![Value::int(id), Value::str(name), Value::str(city)],
        )
        .unwrap();
    }
    for (client, item, amount) in [(1, "tv", 700), (1, "radio", 40), (2, "fridge", 900)] {
        s.add(
            "S_Purchase",
            vec![Value::int(client), Value::str(item), Value::int(amount)],
        )
        .unwrap();
    }
    s
}

fn run_generation(label: &str, text: &str) {
    let program = Program::parse(text).expect("scenario parses");
    let scenario = MappingScenario::from_program(&program).expect("well-formed");
    let result = scenario
        .run(&source(), &PipelineOptions::default())
        .expect("exchange succeeds");

    println!("== {label} ==");
    println!("physical target:");
    print!("{}", result.target);

    // What the *application* sees is identical across generations: the
    // semantic schema.
    let semantic = grom::engine::materialize_views(&scenario.target_views, &result.target)
        .expect("views materialize");
    println!("semantic schema (what clients query):");
    print!("{semantic}");
    println!(
        "valid: {}\n",
        result.validation.map(|v| v.ok).unwrap_or(false)
    );
}

fn main() {
    run_generation("generation 1 (wide customers table)", V1);
    run_generation("generation 2 (split tables, renamed orders)", V2);
    println!(
        "the mapping text is byte-identical across generations; only the\n\
         view definitions — the semantic schema's implementation — changed."
    );
}
