//! Chasing disjunctive embedded dependencies (§3 "Handling Complexity").
//!
//! Two strategies, mirroring the paper:
//!
//! * [`chase_greedy`] — the **greedy chase**: fix one disjunct per ded (a
//!   *scenario*), which turns the program into standard tgds/egds, and run
//!   the standard chase; on failure, backtrack to the next scenario.
//!   Disjuncts are tried cheapest-first (equalities before tuple-producing
//!   branches), which is what makes the strategy "often surprisingly quick"
//!   (§4). Sound but not complete: committing to one disjunct *per ded*
//!   cannot mix branches across different violations of the same ded.
//! * [`chase_exhaustive`] — the complete tree chase: at every ded violation
//!   fork one branch per disjunct; the successful leaves form the
//!   **universal model set** (Deutsch–Nash–Remmel), whose size may be
//!   exponential in the number of violations — the blow-up experiment E4
//!   measures, and the reason GROM defaults to the greedy strategy.
//!
//! Both strategies close instances under the *standard* dependencies by
//! delegating to [`chase_standard`], so they inherit the delta-driven
//! scheduler of [`crate::scheduler`] (or the full-rescan reference loop,
//! per [`crate::config::SchedulerMode`]) for every scenario run and every
//! tree-node closure.

use grom_data::{Instance, NullGenerator};
use grom_lang::{Bindings, Dependency};
use grom_trace::ChaseProfile;

use grom_engine::{disjunct_satisfied, evaluate_body_streaming, Control};

use crate::config::ChaseConfig;
use crate::nullmap::NullMap;
use crate::result::{ChaseError, ChaseOutcome, ChaseResult, ChaseStats};
use crate::standard::{apply_disjunct, chase_standard, check_executable};

/// Anchor the campaign budget once, so every scenario / node closure the
/// campaign delegates to [`chase_standard`] shares one wall-clock deadline
/// ([`crate::Budget::anchored`] is idempotent — the inner runs re-anchor
/// to the same instant). Tuple/null caps remain per-standard-run: each
/// scenario starts from the same source instance, so a per-run cap is the
/// meaningful bound.
fn campaign_config(config: &ChaseConfig) -> ChaseConfig {
    ChaseConfig {
        budget: config.budget.anchored(),
        ..config.clone()
    }
}

/// Result of the exhaustive ded chase: the universal model set (one
/// instance per successful leaf; instances that differ only by null
/// renaming are not deduplicated) plus statistics.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    pub solutions: Vec<Instance>,
    pub stats: ChaseStats,
    /// Per-dependency profile folded across every node closure (merged by
    /// dependency name — see [`ChaseProfile::absorb`]).
    pub profile: ChaseProfile,
}

/// Split a dependency set into standard dependencies and deds.
fn split(deps: &[Dependency]) -> (Vec<Dependency>, Vec<Dependency>) {
    let (deds, standard): (Vec<_>, Vec<_>) = deps.iter().cloned().partition(Dependency::is_ded);
    (standard, deds)
}

/// Cost key for ordering a ded's disjuncts in the greedy search: equalities
/// first (no new tuples, likely to merge), then by how many tuples the
/// branch would create.
fn disjunct_cost(dep: &Dependency, i: usize) -> (usize, usize) {
    let d = &dep.disjuncts[i];
    (usize::from(!d.atoms.is_empty()), d.atoms.len())
}

/// The per-ded disjunct orderings used by the greedy search.
fn greedy_orders(deds: &[Dependency]) -> Vec<Vec<usize>> {
    deds.iter()
        .map(|dep| {
            let mut order: Vec<usize> = (0..dep.disjuncts.len()).collect();
            order.sort_by_key(|&i| disjunct_cost(dep, i));
            order
        })
        .collect()
}

/// Derive the standard dependency of scenario choice `choice[k]` for ded
/// `k`: same premise, only the chosen disjunct.
fn derive_scenario(deds: &[Dependency], choice: &[usize]) -> Vec<Dependency> {
    deds.iter()
        .zip(choice)
        .map(|(dep, &i)| Dependency {
            name: format!("{}#{}", dep.name, i).into(),
            premise: dep.premise.clone(),
            disjuncts: vec![dep.disjuncts[i].clone()],
        })
        .collect()
}

/// The greedy ded chase. `start` is the working database (source facts; the
/// chase adds target facts into it).
pub fn chase_greedy(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, true)?;
    }
    let config = &campaign_config(config);
    let (standard, deds) = split(deps);
    if deds.is_empty() {
        return chase_standard(start, &standard, config);
    }

    let orders = greedy_orders(&deds);
    let mut stats = ChaseStats::default();

    // Odometer over scenario space, in greedy (cheapest-first) order.
    let mut odometer = vec![0usize; deds.len()];
    loop {
        if stats.scenarios_tried >= config.max_scenarios {
            return Err(ChaseError::GreedyExhausted {
                scenarios_tried: stats.scenarios_tried,
                stats: Box::new(stats.clone()),
                profile: Box::new(ChaseProfile::default()),
            });
        }
        stats.scenarios_tried += 1;

        let choice: Vec<usize> = odometer
            .iter()
            .enumerate()
            .map(|(k, &o)| orders[k][o])
            .collect();
        let mut scenario_deps = standard.clone();
        scenario_deps.extend(derive_scenario(&deds, &choice));

        match chase_standard(start.clone(), &scenario_deps, config) {
            Ok(mut result) => {
                result.stats.scenarios_tried = stats.scenarios_tried;
                result.stats.scenarios_failed = stats.scenarios_failed;
                return Ok(result);
            }
            Err(ChaseError::Failure { .. }) => {
                stats.scenarios_failed += 1;
            }
            Err(other) => return Err(other), // round limits etc. propagate
        }

        // Advance the odometer; when it wraps, the space is exhausted.
        let mut k = deds.len();
        loop {
            if k == 0 {
                return Err(ChaseError::GreedyExhausted {
                    scenarios_tried: stats.scenarios_tried,
                    stats: Box::new(stats.clone()),
                    profile: Box::new(ChaseProfile::default()),
                });
            }
            k -= 1;
            odometer[k] += 1;
            if odometer[k] < orders[k].len() {
                break;
            }
            odometer[k] = 0;
        }
    }
}

/// Dispatch: the greedy chase when deds are present, the plain standard
/// chase otherwise. This is GROM's default execution path.
pub fn chase_with_deds(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    chase_greedy(start, deps, config)
}

/// Budget-aware twin of [`chase_with_deds`]: a budget or cancellation stop
/// in the underlying scenario run surfaces as
/// [`ChaseOutcome::Interrupted`] with the instance-so-far and a resumable
/// checkpoint. Note the checkpoint of a ded run is tied to the scenario's
/// *derived* dependency set; `chase_resume` must be fed the same program
/// that was actually chased (the pipeline handles this for ded-free
/// programs — the common case for resume).
pub fn chase_with_deds_outcome(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseOutcome, ChaseError> {
    ChaseOutcome::from_run(chase_with_deds(start, deps, config))
}

/// Ablation of the greedy strategy: **backjumping** scenario search.
///
/// The paper's greedy chase enumerates scenarios blindly; when scenario
/// `(A, A, …, A)` fails because ded 7's branch is denied, the plain
/// odometer still tries every combination of the *other* deds before
/// flipping ded 7. This variant reads the failure witness (the derived
/// dependency `name#i` that caused the chase failure), advances the
/// odometer *at that ded's position* and resets everything after it.
///
/// The jump is a heuristic: a branch that failed under one combination
/// might succeed under another (ded interactions through shared
/// predicates), so this strategy can miss solutions the plain enumeration
/// finds — it trades completeness-within-the-scenario-space for search
/// time. Experiment E5b quantifies the trade-off.
pub fn chase_greedy_backjump(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, true)?;
    }
    let config = &campaign_config(config);
    let (standard, deds) = split(deps);
    if deds.is_empty() {
        return chase_standard(start, &standard, config);
    }

    let orders = greedy_orders(&deds);
    let mut stats = ChaseStats::default();
    let mut odometer = vec![0usize; deds.len()];

    loop {
        if stats.scenarios_tried >= config.max_scenarios {
            return Err(ChaseError::GreedyExhausted {
                scenarios_tried: stats.scenarios_tried,
                stats: Box::new(stats.clone()),
                profile: Box::new(ChaseProfile::default()),
            });
        }
        stats.scenarios_tried += 1;

        let choice: Vec<usize> = odometer
            .iter()
            .enumerate()
            .map(|(k, &o)| orders[k][o])
            .collect();
        let mut scenario_deps = standard.clone();
        let derived = derive_scenario(&deds, &choice);
        // name of the derived dep -> ded index, to locate failures.
        let derived_names: Vec<std::sync::Arc<str>> =
            derived.iter().map(|d| d.name.clone()).collect();
        scenario_deps.extend(derived);

        let failed_at = match chase_standard(start.clone(), &scenario_deps, config) {
            Ok(mut result) => {
                result.stats.scenarios_tried = stats.scenarios_tried;
                result.stats.scenarios_failed = stats.scenarios_failed;
                return Ok(result);
            }
            Err(ChaseError::Failure { dependency, .. }) => {
                stats.scenarios_failed += 1;
                derived_names.iter().position(|n| *n == dependency)
            }
            Err(other) => return Err(other),
        };

        // Backjump: advance at the failing ded (or the last position when
        // the failure is not attributable), resetting later positions.
        let mut k = failed_at.unwrap_or(deds.len() - 1);
        for slot in odometer.iter_mut().skip(k + 1) {
            *slot = 0;
        }
        loop {
            odometer[k] += 1;
            if odometer[k] < orders[k].len() {
                break;
            }
            odometer[k] = 0;
            if k == 0 {
                return Err(ChaseError::GreedyExhausted {
                    scenarios_tried: stats.scenarios_tried,
                    stats: Box::new(stats.clone()),
                    profile: Box::new(ChaseProfile::default()),
                });
            }
            k -= 1;
        }
    }
}

/// Find the first ded violation in `inst`: `(ded index, premise match)`.
fn first_ded_violation(inst: &Instance, deds: &[Dependency]) -> Option<(usize, Bindings)> {
    for (k, dep) in deds.iter().enumerate() {
        let mut found = None;
        evaluate_body_streaming(inst, &dep.premise, &Bindings::new(), |b| {
            if dep.disjuncts.iter().any(|d| disjunct_satisfied(inst, d, b)) {
                Control::Continue
            } else {
                found = Some(b.clone());
                Control::Stop
            }
        });
        if let Some(b) = found {
            return Some((k, b));
        }
    }
    None
}

/// The exhaustive (complete) ded chase: computes the universal model set.
///
/// Every tree node first closes the instance under the *standard*
/// dependencies (a deterministic fixpoint — failures prune the branch),
/// then forks on the first remaining ded violation, one child per disjunct.
pub fn chase_exhaustive(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ExhaustiveResult, ChaseError> {
    for dep in deps {
        check_executable(dep, true)?;
    }
    let config = &campaign_config(config);
    let (standard, deds) = split(deps);

    let mut stats = ChaseStats::default();
    let mut profile = ChaseProfile::default();
    let mut solutions = Vec::new();
    let mut stack: Vec<Instance> = vec![start];

    while let Some(inst) = stack.pop() {
        stats.nodes_expanded += 1;
        if stats.nodes_expanded > config.max_nodes {
            return Err(ChaseError::NodeLimit {
                nodes: stats.nodes_expanded,
            });
        }

        // 1. Close under standard dependencies.
        let inst = match chase_standard(inst, &standard, config) {
            Ok(res) => {
                stats.absorb(&res.stats);
                profile.absorb(&res.profile);
                res.instance
            }
            Err(ChaseError::Failure { .. }) => {
                stats.branches_failed += 1;
                continue;
            }
            Err(other) => return Err(other),
        };

        // 2. Fork on the first ded violation, if any.
        match first_ded_violation(&inst, &deds) {
            None => {
                stats.leaves += 1;
                solutions.push(inst);
            }
            Some((k, bindings)) => {
                let dep = &deds[k];
                for i in 0..dep.disjuncts.len() {
                    let mut child = inst.clone();
                    let mut nullgen =
                        NullGenerator::starting_at(child.max_null_label().map_or(0, |l| l + 1));
                    let mut nullmap = NullMap::new();
                    match apply_disjunct(
                        &mut child,
                        dep,
                        i,
                        &bindings,
                        &mut nullmap,
                        &mut nullgen,
                        &mut stats,
                    ) {
                        Ok(merged) => {
                            if merged {
                                child.substitute_nulls(|id| nullmap.lookup(id));
                                stats.substitution_passes += 1;
                            }
                            stack.push(child);
                        }
                        Err(ChaseError::Failure { .. }) => {
                            stats.branches_failed += 1;
                        }
                        Err(other) => return Err(other),
                    }
                }
            }
        }
    }

    if solutions.is_empty() {
        return Err(ChaseError::NoSolution {
            branches_failed: stats.branches_failed,
        });
    }
    Ok(ExhaustiveResult {
        solutions,
        stats,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;
    use grom_lang::parser::{parse_dependency, parse_program};

    fn inst(facts: &[(&str, &[i64])]) -> Instance {
        let mut i = Instance::new();
        for (rel, vals) in facts {
            i.add(*rel, vals.iter().map(|&v| Value::int(v)).collect())
                .unwrap();
        }
        i
    }

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    fn all_hold(inst: &Instance, deps: &[Dependency]) -> bool {
        deps.iter()
            .all(|d| grom_engine::dependency_satisfied(inst, d))
    }

    #[test]
    fn greedy_without_deds_is_standard_chase() {
        let p = parse_program("tgd m: S(x) -> T(x).").unwrap();
        let res = chase_greedy(inst(&[("S", &[1])]), &p.deps, &cfg()).unwrap();
        assert_eq!(res.stats.scenarios_tried, 0);
        assert_eq!(res.instance.tuples("T").count(), 1);
    }

    #[test]
    fn greedy_solves_simple_ded() {
        let d = parse_dependency("ded d: P(x) -> Q(x) | R(x).").unwrap();
        let res = chase_greedy(
            inst(&[("P", &[1]), ("P", &[2])]),
            std::slice::from_ref(&d),
            &cfg(),
        )
        .unwrap();
        assert_eq!(res.stats.scenarios_tried, 1);
        assert!(all_hold(&res.instance, &[d]));
        // All matches committed to the same disjunct.
        assert_eq!(res.instance.tuples("Q").count(), 2);
        assert_eq!(res.instance.tuples("R").count(), 0);
    }

    #[test]
    fn greedy_prefers_equality_disjuncts() {
        // d0-like: merge ids rather than inventing rating tuples.
        let d = parse_dependency("ded d: P(p1, n), P(p2, n) -> R(r, p1) | p1 = p2 | R(r2, p2).")
            .unwrap();
        // Single product: equality disjunct trivially satisfiable.
        let res = chase_greedy(inst(&[("P", &[1, 7])]), std::slice::from_ref(&d), &cfg()).unwrap();
        assert_eq!(res.stats.scenarios_tried, 1);
        // The equality branch was chosen: no R tuples invented.
        assert_eq!(res.instance.tuples("R").count(), 0);
    }

    #[test]
    fn greedy_backtracks_on_failure() {
        // First (cheapest) scenario picks the equality disjunct, which
        // clashes for P(1,7), P(2,7); the second scenario succeeds.
        let d = parse_dependency("ded d: P(p1, n), P(p2, n) -> p1 = p2 | R(p1).").unwrap();
        let res = chase_greedy(
            inst(&[("P", &[1, 7]), ("P", &[2, 7])]),
            std::slice::from_ref(&d),
            &cfg(),
        )
        .unwrap();
        assert_eq!(res.stats.scenarios_tried, 2);
        assert_eq!(res.stats.scenarios_failed, 1);
        assert!(all_hold(&res.instance, &[d]));
        assert!(res.instance.tuples("R").count() >= 1);
    }

    #[test]
    fn greedy_exhausts_when_no_scenario_works() {
        // Both branches denied.
        let p = parse_program(
            "ded d: P(x) -> Q(x) | R(x).\n\
             dep nq: Q(x) -> false.\n\
             dep nr: R(x) -> false.",
        )
        .unwrap();
        let res = chase_greedy(inst(&[("P", &[1])]), &p.deps, &cfg());
        assert!(matches!(
            res,
            Err(ChaseError::GreedyExhausted {
                scenarios_tried: 2,
                ..
            })
        ));
    }

    #[test]
    fn greedy_scenario_cap_respected() {
        let p = parse_program(
            "ded d: P(x) -> Q(x) | R(x).\n\
             ded d2: P(x) -> Q2(x) | R2(x).\n\
             dep nq: Q(x) -> false.\n\
             dep nr: R(x) -> false.",
        )
        .unwrap();
        let res = chase_greedy(
            inst(&[("P", &[1])]),
            &p.deps,
            &ChaseConfig::default().with_max_scenarios(2),
        );
        assert!(matches!(
            res,
            Err(ChaseError::GreedyExhausted {
                scenarios_tried: 2,
                ..
            })
        ));
    }

    #[test]
    fn exhaustive_counts_leaves_exponentially() {
        // k independent violations of a 2-disjunct ded: 2^k leaves.
        let d = parse_dependency("ded d: P(x) -> Q(x) | R(x).").unwrap();
        for k in 1..=4 {
            let facts: Vec<(&str, Vec<i64>)> = (0..k).map(|i| ("P", vec![i as i64])).collect();
            let mut start = Instance::new();
            for (rel, vals) in &facts {
                start
                    .add(*rel, vals.iter().map(|&v| Value::int(v)).collect())
                    .unwrap();
            }
            let res = chase_exhaustive(start, std::slice::from_ref(&d), &cfg()).unwrap();
            assert_eq!(res.solutions.len(), 1 << k, "k = {k}");
            for sol in &res.solutions {
                assert!(all_hold(sol, std::slice::from_ref(&d)));
            }
        }
    }

    #[test]
    fn exhaustive_mixes_branches_greedy_cannot() {
        // Q(1) is denied, Q(2) is fine: the only solutions route P(1)
        // through R. Greedy (one disjunct per ded) must pick R for both;
        // exhaustive finds the mixed leaf too.
        let p = parse_program(
            "ded d: P(x) -> Q(x) | R(x).\n\
             dep n: Q(1) -> false.",
        )
        .unwrap();
        let start = inst(&[("P", &[1]), ("P", &[2])]);
        let ex = chase_exhaustive(start.clone(), &p.deps, &cfg()).unwrap();
        // Leaves: P(1)->R and P(2)->Q or R: 2 solutions... plus branch
        // orderings; all must satisfy the program.
        assert!(ex.solutions.len() >= 2);
        for sol in &ex.solutions {
            assert!(all_hold(sol, &p.deps));
            assert_eq!(
                sol.tuples("Q")
                    .filter(|t| t.get(0) == Some(&Value::int(1)))
                    .count(),
                0
            );
        }
        // Greedy also succeeds (scenario R for all).
        let gr = chase_greedy(start, &p.deps, &cfg()).unwrap();
        assert!(all_hold(&gr.instance, &p.deps));
    }

    #[test]
    fn exhaustive_no_solution() {
        let p = parse_program(
            "ded d: P(x) -> Q(x) | R(x).\n\
             dep nq: Q(x) -> false.\n\
             dep nr: R(x) -> false.",
        )
        .unwrap();
        let res = chase_exhaustive(inst(&[("P", &[1])]), &p.deps, &cfg());
        assert!(matches!(res, Err(ChaseError::NoSolution { .. })));
    }

    #[test]
    fn exhaustive_node_cap() {
        let d = parse_dependency("ded d: P(x) -> Q(x) | R(x).").unwrap();
        let facts: Vec<(&str, &[i64])> = vec![];
        let mut start = inst(&facts);
        for i in 0..12 {
            start.add("P", vec![Value::int(i)]).unwrap();
        }
        let res = chase_exhaustive(start, &[d], &ChaseConfig::default().with_max_nodes(100));
        assert!(matches!(res, Err(ChaseError::NodeLimit { .. })));
    }

    #[test]
    fn greedy_success_implies_exhaustive_has_solutions() {
        let d = parse_dependency("ded d: P(p1, n), P(p2, n) -> p1 = p2 | R(p1) | R(p2).").unwrap();
        let start = inst(&[("P", &[1, 7]), ("P", &[2, 7]), ("P", &[3, 8])]);
        let greedy = chase_greedy(start.clone(), std::slice::from_ref(&d), &cfg()).unwrap();
        assert!(all_hold(&greedy.instance, std::slice::from_ref(&d)));
        let ex = chase_exhaustive(start, std::slice::from_ref(&d), &cfg()).unwrap();
        assert!(!ex.solutions.is_empty());
    }

    #[test]
    fn backjump_skips_ahead_on_attributable_failures() {
        // d1's equality disjunct clashes directly (an attributable failure
        // inside the derived dependency `d1#0`): the backjumper flips d1
        // immediately instead of first cycling d2 through its options.
        let p = parse_program(
            "ded d0: P0(x, y) -> x = y | B0(x).\n\
             ded d1: P1(x, y) -> x = y | B1(x).\n\
             ded d2: P2(x, y) -> x = y | B2(x).",
        )
        .unwrap();
        let mut start = Instance::new();
        start.add("P0", vec![Value::int(1), Value::int(1)]).unwrap();
        start.add("P1", vec![Value::int(1), Value::int(2)]).unwrap(); // clash
        start.add("P2", vec![Value::int(1), Value::int(1)]).unwrap();
        let plain = chase_greedy(start.clone(), &p.deps, &cfg()).unwrap();
        let jump = chase_greedy_backjump(start, &p.deps, &cfg()).unwrap();
        assert!(all_hold(&plain.instance, &p.deps));
        assert!(all_hold(&jump.instance, &p.deps));
        // Plain odometer: (eq,eq,eq) fail, (eq,eq,B2) fail, (eq,B1,eq) ok.
        assert_eq!(plain.stats.scenarios_tried, 3);
        // Backjump: (eq,eq,eq) fails at d1 -> flip d1 -> (eq,B1,eq) ok.
        assert_eq!(jump.stats.scenarios_tried, 2);
    }

    #[test]
    fn backjump_falls_back_when_failure_is_not_attributable() {
        // The failure surfaces at a *denial*, not at a derived dependency:
        // the backjumper degrades to plain odometer behaviour but still
        // finds the solution.
        let p = parse_program(
            "ded d0: P0(x) -> A0(x) | B0(x).\n\
             ded d1: P1(x) -> A1(x) | B1(x).\n\
             dep n1: A1(x) -> false.",
        )
        .unwrap();
        let mut start = Instance::new();
        for i in 0..2 {
            start.add(format!("P{i}"), vec![Value::int(1)]).unwrap();
        }
        let jump = chase_greedy_backjump(start, &p.deps, &cfg()).unwrap();
        assert!(all_hold(&jump.instance, &p.deps));
        assert!(jump.stats.scenarios_tried <= 4);
    }

    #[test]
    fn backjump_exhausts_cleanly() {
        let p = parse_program(
            "ded d: P(x) -> Q(x) | R(x).\n\
             dep nq: Q(x) -> false.\n\
             dep nr: R(x) -> false.",
        )
        .unwrap();
        let res = chase_greedy_backjump(inst(&[("P", &[1])]), &p.deps, &cfg());
        assert!(matches!(res, Err(ChaseError::GreedyExhausted { .. })));
    }

    #[test]
    fn paper_d0_shape_end_to_end() {
        // d0: two distinct popular products sharing a name force either an
        // id merge (impossible on constants) or a 0-rating witness.
        let d = parse_dependency(
            "ded d0: TP(p1, n, s1), TP(p2, n, s2), p1 != p2 \
             -> p1 = p2 | TR(r, p1, 0) | TR(r2, p2, 0).",
        )
        .unwrap();
        let mut start = Instance::new();
        start
            .add("TP", vec![Value::int(1), Value::str("tv"), Value::int(10)])
            .unwrap();
        start
            .add("TP", vec![Value::int(2), Value::str("tv"), Value::int(20)])
            .unwrap();
        let res = chase_greedy(start, std::slice::from_ref(&d), &cfg()).unwrap();
        // p1 = p2 clashes, so a rating tuple must have been invented.
        assert!(res.stats.scenarios_failed >= 1);
        assert!(res.instance.tuples("TR").count() >= 1);
        assert!(all_hold(&res.instance, &[d]));
    }
}
