//! The delta-driven (semi-naive) chase scheduler.
//!
//! The classical chase loop re-evaluates every dependency's premise against
//! the *entire* instance each round, so its cost grows with rounds ×
//! instance size even when a round changes almost nothing. This module
//! replaces that loop with a worklist of `(dependency, delta)` pairs:
//!
//! * a static [`TriggerIndex`] maps each relation to the dependencies whose
//!   premise reads it;
//! * the instance records the tuples each repair batch inserts (the
//!   [`DeltaLog`] of `grom-data`);
//! * premise evaluation is seeded from the delta tuples only
//!   ([`grom_engine::evaluate_body_from_delta`] anchors one premise atom to
//!   a delta tuple and joins the rest against the full instance).
//!
//! Full premise rescans remain in exactly two places, both required for
//! correctness: every dependency's **first** activation (the initial
//! instance is one big delta), and — after an **egd-driven null
//! unification** — the dependencies whose premise reads a relation the
//! substitution actually rewrote. [`Instance::substitute_nulls`] reports
//! the rewritten relations, so deltas of dependencies reading only
//! untouched relations survive the merge ([`Scheduler::invalidate_readers`]
//! / [`Scheduler::post_surviving`]); the blanket
//! [`Scheduler::invalidate_all`] remains as the conservative fallback.
//!
//! The scheduler is shared by every chase variant: [`crate::standard`] runs
//! it directly, the greedy and exhaustive ded chases of [`crate::ded`] run
//! their per-scenario / per-node closures through it, [`crate::parallel`]
//! drives the same worklist with worker-pool sweeps, and
//! [`crate::core_min`] reuses the same changed-relation reporting to keep
//! its null-occurrence index incremental.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use grom_data::{DeltaLog, Instance, NullGenerator, Tuple};
use grom_lang::{Bindings, Dependency, Var};

use grom_engine::{disjunct_satisfied, evaluate_body_from_delta, Control, Db};

use crate::config::ChaseConfig;
use crate::nullmap::NullMap;
use crate::result::{ChaseError, ChaseResult, ChaseStats};
use crate::standard::{apply_disjunct, check_executable, collect_violations, resolve_bindings};
use crate::trigger::TriggerIndex;

/// Pending work for one dependency.
#[derive(Debug, Clone)]
pub(crate) enum Pending {
    /// Nothing new since the premise was last evaluated.
    Idle,
    /// Evaluate the premise against the full instance (first activation, or
    /// after a null unification invalidated the deltas).
    Full,
    /// Evaluate seeded from these per-relation delta tuples only.
    Delta(BTreeMap<Arc<str>, Vec<Tuple>>),
}

impl Pending {
    /// Fold freshly routed tuples of `rel` into this slot. `Full` already
    /// subsumes any delta; `Idle` wakes up.
    pub(crate) fn add_delta(&mut self, rel: &Arc<str>, tuples: &[Tuple]) {
        match self {
            Pending::Full => {}
            Pending::Delta(map) => {
                map.entry(rel.clone())
                    .or_default()
                    .extend(tuples.iter().cloned());
            }
            slot @ Pending::Idle => {
                let mut map = BTreeMap::new();
                map.insert(rel.clone(), tuples.to_vec());
                *slot = Pending::Delta(map);
            }
        }
    }
}

/// The worklist: per-dependency pending state plus the trigger index that
/// routes deltas to dependencies.
#[derive(Debug)]
pub struct Scheduler {
    triggers: TriggerIndex,
    pending: Vec<Pending>,
}

impl Scheduler {
    /// A scheduler over `deps`, with every dependency initially scheduled
    /// for a full scan (round one of the classical chase).
    pub fn new(deps: &[Dependency]) -> Self {
        Self {
            triggers: TriggerIndex::build(deps),
            pending: vec![Pending::Full; deps.len()],
        }
    }

    /// Is any dependency scheduled?
    pub fn has_work(&self) -> bool {
        !self.pending.iter().all(|p| matches!(p, Pending::Idle))
    }

    /// The trigger index routing relations to their premise readers.
    pub fn triggers(&self) -> &TriggerIndex {
        &self.triggers
    }

    /// Claim dependency `k`'s pending work, leaving it idle.
    pub(crate) fn take(&mut self, k: usize) -> Pending {
        std::mem::replace(&mut self.pending[k], Pending::Idle)
    }

    /// Route a batch of newly inserted tuples to the dependencies their
    /// relations trigger.
    pub fn post(&mut self, delta: &DeltaLog) {
        debug_assert!(!delta.invalidated(), "stale deltas must invalidate");
        self.post_surviving(delta, &[]);
    }

    /// Route a delta batch, skipping tuples of the `stale` relations (those
    /// a null substitution rewrote after the batch was logged — their
    /// readers are rescheduled for full rescans instead, see
    /// [`Scheduler::invalidate_readers`]).
    pub fn post_surviving(&mut self, delta: &DeltaLog, stale: &[Arc<str>]) {
        for (rel, tuples) in delta.relations() {
            if stale.contains(rel) {
                continue;
            }
            for &k in self.triggers.triggered_by(rel) {
                self.pending[k].add_delta(rel, tuples);
            }
        }
    }

    /// Route a parallel job's delta batch, skipping per-dependency prefixes
    /// the job already delivered in-sweep: `consumed[(k, rel)] = c` means
    /// dependency `k` consumed the first `c` tuples of `rel` through the
    /// worker-local routing, so only the remainder is posted to it.
    pub(crate) fn post_job(
        &mut self,
        delta: &DeltaLog,
        consumed: &BTreeMap<(usize, Arc<str>), usize>,
    ) {
        debug_assert!(!delta.invalidated(), "stale deltas must invalidate");
        for (rel, tuples) in delta.relations() {
            for &k in self.triggers.triggered_by(rel) {
                let skip = consumed.get(&(k, rel.clone())).copied().unwrap_or(0);
                if skip < tuples.len() {
                    self.pending[k].add_delta(rel, &tuples[skip..]);
                }
            }
        }
    }

    /// Schedule every dependency for a full rescan. The conservative
    /// fallback when delta provenance is unknown; the chase loops prefer
    /// the targeted [`Scheduler::invalidate_readers`].
    pub fn invalidate_all(&mut self) {
        for p in &mut self.pending {
            *p = Pending::Full;
        }
    }

    /// Schedule a full rescan for every dependency whose premise reads one
    /// of the `changed` relations — the relations a null substitution
    /// actually rewrote, per the report of
    /// [`Instance::substitute_nulls`]. Deltas of dependencies reading only
    /// untouched relations stay valid: a relation is only *unchanged* when
    /// the substitution mapped none of the nulls occurring in it, so every
    /// tuple logged for it is still stored verbatim.
    pub fn invalidate_readers(&mut self, changed: &[Arc<str>]) {
        for rel in changed {
            for &k in self.triggers.triggered_by(rel) {
                self.pending[k] = Pending::Full;
            }
        }
    }
}

/// Violating premise matches of `dep` seeded from per-relation deltas,
/// deduplicated across anchor positions, in deterministic order. With
/// `stop_at_first` (denials) at most one match is returned. Generic over
/// [`Db`] so the parallel executor can evaluate against snapshot views.
pub(crate) fn delta_violations(
    db: &impl Db,
    dep: &Dependency,
    delta: &BTreeMap<Arc<str>, Vec<Tuple>>,
    stop_at_first: bool,
) -> Vec<Bindings> {
    let mut seen: BTreeSet<Vec<(Var, grom_data::Value)>> = BTreeSet::new();
    let mut out = Vec::new();
    for (rel, tuples) in delta {
        evaluate_body_from_delta(db, &dep.premise, rel, tuples, |b| {
            if !dep.disjuncts.iter().any(|d| disjunct_satisfied(db, d, b)) {
                let key: Vec<_> = b.iter().map(|(v, val)| (v.clone(), val.clone())).collect();
                if seen.insert(key) {
                    out.push(b.clone());
                    if stop_at_first {
                        return Control::Stop;
                    }
                }
            }
            Control::Continue
        });
        if stop_at_first && !out.is_empty() {
            break;
        }
    }
    out
}

/// Process one dependency's claimed worklist entry against the master
/// instance: evaluate its violations (full or delta-seeded), repair them,
/// and feed the resulting deltas — or, after an egd merge, the targeted
/// invalidation — back into the scheduler.
///
/// Shared by the sequential delta loop below and the sequential tail of the
/// parallel executor (egds and mixed disjuncts run here in both modes).
/// The worker-side twin is `run_group_job` in [`crate::parallel`] — keep
/// the claim/evaluate/denial structure of the two in sync.
pub(crate) fn run_dep_sequential(
    inst: &mut Instance,
    deps: &[Dependency],
    k: usize,
    sched: &mut Scheduler,
    nullmap: &mut NullMap,
    nullgen: &mut NullGenerator,
    stats: &mut ChaseStats,
) -> Result<(), ChaseError> {
    let dep = &deps[k];
    let violations = match sched.take(k) {
        Pending::Idle => return Ok(()),
        Pending::Full => {
            stats.full_rescans += 1;
            if dep.is_denial() {
                if let Some(v) = grom_engine::find_violation(inst, dep) {
                    return Err(ChaseError::Failure {
                        dependency: dep.name.clone(),
                        detail: format!("denial premise matched at {}", v.bindings),
                    });
                }
                return Ok(());
            }
            collect_violations(inst, dep)
        }
        Pending::Delta(map) => {
            stats.delta_activations += 1;
            stats.delta_tuples_seeded += map.values().map(Vec::len).sum::<usize>();
            let vs = delta_violations(inst, dep, &map, dep.is_denial());
            if dep.is_denial() {
                if let Some(b) = vs.first() {
                    return Err(ChaseError::Failure {
                        dependency: dep.name.clone(),
                        detail: format!("denial premise matched at {b}"),
                    });
                }
                return Ok(());
            }
            vs
        }
    };
    if violations.is_empty() {
        return Ok(());
    }

    let mut any_merge = false;
    for b in &violations {
        let b = resolve_bindings(b, nullmap);
        // Re-check under the resolved bindings: earlier repairs in this
        // batch may already satisfy the match (exactly as in the
        // full-rescan loop).
        if disjunct_satisfied(inst, &dep.disjuncts[0], &b) {
            continue;
        }
        let merged = apply_disjunct(inst, dep, 0, &b, nullmap, nullgen, stats)?;
        any_merge |= merged;
    }

    let log = inst.take_delta();
    if any_merge {
        // Null unification rewrites tuples in place, but only in the
        // relations the substitution reports as changed: their logged
        // deltas are stale (readers go back to full rescans), everything
        // else survives and is routed as usual.
        let changed = inst.substitute_nulls(|id| nullmap.lookup(id));
        inst.take_delta(); // discard the invalidation marker
        sched.invalidate_readers(&changed);
        sched.post_surviving(&log, &changed);
    } else if !log.is_empty() {
        sched.post(&log);
    }
    Ok(())
}

/// The delta-driven standard chase: same semantics and failure modes as
/// [`crate::standard::chase_standard_full_rescan`], driven by the
/// [`Scheduler`] worklist instead of full per-round rescans.
pub(crate) fn chase_standard_delta(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }

    let mut inst = start;
    let mut stats = ChaseStats::default();
    let mut nullgen = NullGenerator::starting_at(inst.max_null_label().map_or(0, |l| l + 1));
    let mut nullmap = NullMap::new();
    let mut sched = Scheduler::new(deps);
    inst.begin_delta_tracking();

    loop {
        if stats.rounds >= config.max_rounds {
            return Err(ChaseError::RoundLimit {
                rounds: stats.rounds,
            });
        }
        stats.rounds += 1;
        if !sched.has_work() {
            break;
        }

        for k in 0..deps.len() {
            run_dep_sequential(
                &mut inst,
                deps,
                k,
                &mut sched,
                &mut nullmap,
                &mut nullgen,
                &mut stats,
            )?;
        }
    }

    inst.end_delta_tracking();
    Ok(ChaseResult {
        instance: inst,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;
    use grom_lang::parser::parse_program;

    #[test]
    fn scheduler_routes_deltas_by_trigger() {
        let p = parse_program(
            "tgd a: S(x) -> A(x).\n\
             tgd b: A(x) -> B(x).",
        )
        .unwrap();
        let mut sched = Scheduler::new(&p.deps);
        assert!(sched.has_work()); // everything starts Full

        // Drain the initial Full work.
        for k in 0..p.deps.len() {
            sched.take(k);
        }
        assert!(!sched.has_work());

        // A delta on A wakes only dependency b.
        let mut inst = Instance::new();
        inst.begin_delta_tracking();
        inst.add("A", vec![Value::int(1)]).unwrap();
        let log = inst.take_delta();
        sched.post(&log);
        assert!(matches!(sched.take(0), Pending::Idle));
        assert!(matches!(sched.take(1), Pending::Delta(_)));
    }

    #[test]
    fn invalidation_reschedules_everything_full() {
        let p = parse_program("tgd a: S(x) -> A(x).").unwrap();
        let mut sched = Scheduler::new(&p.deps);
        sched.take(0);
        assert!(!sched.has_work());
        sched.invalidate_all();
        assert!(matches!(sched.take(0), Pending::Full));
    }

    #[test]
    fn targeted_invalidation_spares_unrelated_readers() {
        let p = parse_program(
            "tgd a: A(x) -> A2(x).\n\
             tgd b: B(x) -> B2(x).",
        )
        .unwrap();
        let mut sched = Scheduler::new(&p.deps);
        for k in 0..p.deps.len() {
            sched.take(k);
        }
        // Both dependencies hold pending deltas...
        let mut inst = Instance::new();
        inst.begin_delta_tracking();
        inst.add("A", vec![Value::int(1)]).unwrap();
        inst.add("B", vec![Value::int(2)]).unwrap();
        sched.post(&inst.take_delta());
        // ...then a substitution rewrites only A: its reader goes Full,
        // B's reader keeps its delta.
        sched.invalidate_readers(&[Arc::from("A")]);
        assert!(matches!(sched.take(0), Pending::Full));
        assert!(matches!(sched.take(1), Pending::Delta(_)));
    }

    #[test]
    fn post_surviving_skips_stale_relations() {
        let p = parse_program(
            "tgd a: A(x) -> A2(x).\n\
             tgd b: B(x) -> B2(x).",
        )
        .unwrap();
        let mut sched = Scheduler::new(&p.deps);
        for k in 0..p.deps.len() {
            sched.take(k);
        }
        let mut inst = Instance::new();
        inst.begin_delta_tracking();
        inst.add("A", vec![Value::int(1)]).unwrap();
        inst.add("B", vec![Value::int(2)]).unwrap();
        let log = inst.take_delta();
        sched.post_surviving(&log, &[Arc::from("A")]);
        // A's tuples were stale and dropped; B's were routed.
        assert!(matches!(sched.take(0), Pending::Idle));
        assert!(matches!(sched.take(1), Pending::Delta(_)));
    }
}
