//! The delta-driven (semi-naive) chase scheduler.
//!
//! The classical chase loop re-evaluates every dependency's premise against
//! the *entire* instance each round, so its cost grows with rounds ×
//! instance size even when a round changes almost nothing. This module
//! replaces that loop with a worklist of `(dependency, delta)` pairs:
//!
//! * a static [`TriggerIndex`] maps each relation to the dependencies whose
//!   premise reads it;
//! * the instance records the tuples each repair batch inserts (the
//!   [`DeltaLog`] of `grom-data`);
//! * premise evaluation is seeded from the delta tuples only
//!   ([`grom_engine::evaluate_body_from_delta`] anchors one premise atom to
//!   a delta tuple and joins the rest against the full instance).
//!
//! Full premise rescans remain in exactly two places, both required for
//! correctness: every dependency's **first** activation (the initial
//! instance is one big delta), and after an **egd-driven null unification**
//! (substitution rewrites tuples in place, so recorded deltas go stale —
//! [`Scheduler::invalidate_all`]).
//!
//! The scheduler is shared by every chase variant: [`crate::standard`] runs
//! it directly, the greedy and exhaustive ded chases of [`crate::ded`] run
//! their per-scenario / per-node closures through it, and
//! [`crate::core_min`] reuses the same changed-relation reporting to keep
//! its null-occurrence index incremental.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use grom_data::{DeltaLog, Instance, NullGenerator, Tuple};
use grom_lang::{Bindings, Dependency, Var};

use grom_engine::{disjunct_satisfied, evaluate_body_from_delta, Control};

use crate::config::ChaseConfig;
use crate::nullmap::NullMap;
use crate::result::{ChaseError, ChaseResult, ChaseStats};
use crate::standard::{apply_disjunct, check_executable, collect_violations, resolve_bindings};
use crate::trigger::TriggerIndex;

/// Pending work for one dependency.
#[derive(Debug, Clone)]
enum Pending {
    /// Nothing new since the premise was last evaluated.
    Idle,
    /// Evaluate the premise against the full instance (first activation, or
    /// after a null unification invalidated the deltas).
    Full,
    /// Evaluate seeded from these per-relation delta tuples only.
    Delta(BTreeMap<Arc<str>, Vec<Tuple>>),
}

/// The worklist: per-dependency pending state plus the trigger index that
/// routes deltas to dependencies.
#[derive(Debug)]
pub struct Scheduler {
    triggers: TriggerIndex,
    pending: Vec<Pending>,
}

impl Scheduler {
    /// A scheduler over `deps`, with every dependency initially scheduled
    /// for a full scan (round one of the classical chase).
    pub fn new(deps: &[Dependency]) -> Self {
        Self {
            triggers: TriggerIndex::build(deps),
            pending: vec![Pending::Full; deps.len()],
        }
    }

    /// Is any dependency scheduled?
    pub fn has_work(&self) -> bool {
        !self.pending.iter().all(|p| matches!(p, Pending::Idle))
    }

    /// Claim dependency `k`'s pending work, leaving it idle.
    fn take(&mut self, k: usize) -> Pending {
        std::mem::replace(&mut self.pending[k], Pending::Idle)
    }

    /// Route a batch of newly inserted tuples to the dependencies their
    /// relations trigger.
    pub fn post(&mut self, delta: &DeltaLog) {
        debug_assert!(!delta.invalidated(), "stale deltas must invalidate");
        for (rel, tuples) in delta.relations() {
            for &k in self.triggers.triggered_by(rel) {
                match &mut self.pending[k] {
                    Pending::Full => {}
                    Pending::Delta(map) => {
                        map.entry(rel.clone())
                            .or_default()
                            .extend(tuples.iter().cloned());
                    }
                    slot @ Pending::Idle => {
                        let mut map = BTreeMap::new();
                        map.insert(rel.clone(), tuples.to_vec());
                        *slot = Pending::Delta(map);
                    }
                }
            }
        }
    }

    /// Schedule every dependency for a full rescan (deltas went stale after
    /// a null substitution).
    pub fn invalidate_all(&mut self) {
        for p in &mut self.pending {
            *p = Pending::Full;
        }
    }
}

/// Violating premise matches of `dep` seeded from per-relation deltas,
/// deduplicated across anchor positions, in deterministic order. With
/// `stop_at_first` (denials) at most one match is returned.
fn delta_violations(
    inst: &Instance,
    dep: &Dependency,
    delta: &BTreeMap<Arc<str>, Vec<Tuple>>,
    stop_at_first: bool,
) -> Vec<Bindings> {
    let mut seen: BTreeSet<Vec<(Var, grom_data::Value)>> = BTreeSet::new();
    let mut out = Vec::new();
    for (rel, tuples) in delta {
        evaluate_body_from_delta(inst, &dep.premise, rel, tuples, |b| {
            if !dep.disjuncts.iter().any(|d| disjunct_satisfied(inst, d, b)) {
                let key: Vec<_> = b.iter().map(|(v, val)| (v.clone(), val.clone())).collect();
                if seen.insert(key) {
                    out.push(b.clone());
                    if stop_at_first {
                        return Control::Stop;
                    }
                }
            }
            Control::Continue
        });
        if stop_at_first && !out.is_empty() {
            break;
        }
    }
    out
}

/// The delta-driven standard chase: same semantics and failure modes as
/// [`crate::standard::chase_standard_full_rescan`], driven by the
/// [`Scheduler`] worklist instead of full per-round rescans.
pub(crate) fn chase_standard_delta(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }

    let mut inst = start;
    let mut stats = ChaseStats::default();
    let mut nullgen = NullGenerator::starting_at(inst.max_null_label().map_or(0, |l| l + 1));
    let mut nullmap = NullMap::new();
    let mut sched = Scheduler::new(deps);
    inst.begin_delta_tracking();

    loop {
        if stats.rounds >= config.max_rounds {
            return Err(ChaseError::RoundLimit {
                rounds: stats.rounds,
            });
        }
        stats.rounds += 1;
        if !sched.has_work() {
            break;
        }

        for (k, dep) in deps.iter().enumerate() {
            let violations = match sched.take(k) {
                Pending::Idle => continue,
                Pending::Full => {
                    stats.full_rescans += 1;
                    if dep.is_denial() {
                        if let Some(v) = grom_engine::find_violation(&inst, dep) {
                            return Err(ChaseError::Failure {
                                dependency: dep.name.clone(),
                                detail: format!("denial premise matched at {}", v.bindings),
                            });
                        }
                        continue;
                    }
                    collect_violations(&inst, dep)
                }
                Pending::Delta(map) => {
                    stats.delta_activations += 1;
                    stats.delta_tuples_seeded += map.values().map(Vec::len).sum::<usize>();
                    let vs = delta_violations(&inst, dep, &map, dep.is_denial());
                    if dep.is_denial() {
                        if let Some(b) = vs.first() {
                            return Err(ChaseError::Failure {
                                dependency: dep.name.clone(),
                                detail: format!("denial premise matched at {b}"),
                            });
                        }
                        continue;
                    }
                    vs
                }
            };
            if violations.is_empty() {
                continue;
            }

            let mut any_merge = false;
            for b in &violations {
                let b = resolve_bindings(b, &mut nullmap);
                // Re-check under the resolved bindings: earlier repairs in
                // this batch may already satisfy the match (exactly as in
                // the full-rescan loop).
                if disjunct_satisfied(&inst, &dep.disjuncts[0], &b) {
                    continue;
                }
                let merged = apply_disjunct(
                    &mut inst,
                    dep,
                    0,
                    &b,
                    &mut nullmap,
                    &mut nullgen,
                    &mut stats,
                )?;
                any_merge |= merged;
            }

            let log = inst.take_delta();
            if any_merge {
                // Null unification rewrites tuples in place: the logged
                // deltas (and everything previously routed) are stale.
                inst.substitute_nulls(|id| nullmap.lookup(id));
                inst.take_delta(); // discard the invalidation marker
                sched.invalidate_all();
            } else if !log.is_empty() {
                sched.post(&log);
            }
        }
    }

    inst.end_delta_tracking();
    Ok(ChaseResult {
        instance: inst,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;
    use grom_lang::parser::parse_program;

    #[test]
    fn scheduler_routes_deltas_by_trigger() {
        let p = parse_program(
            "tgd a: S(x) -> A(x).\n\
             tgd b: A(x) -> B(x).",
        )
        .unwrap();
        let mut sched = Scheduler::new(&p.deps);
        assert!(sched.has_work()); // everything starts Full

        // Drain the initial Full work.
        for k in 0..p.deps.len() {
            sched.take(k);
        }
        assert!(!sched.has_work());

        // A delta on A wakes only dependency b.
        let mut inst = Instance::new();
        inst.begin_delta_tracking();
        inst.add("A", vec![Value::int(1)]).unwrap();
        let log = inst.take_delta();
        sched.post(&log);
        assert!(matches!(sched.take(0), Pending::Idle));
        assert!(matches!(sched.take(1), Pending::Delta(_)));
    }

    #[test]
    fn invalidation_reschedules_everything_full() {
        let p = parse_program("tgd a: S(x) -> A(x).").unwrap();
        let mut sched = Scheduler::new(&p.deps);
        sched.take(0);
        assert!(!sched.has_work());
        sched.invalidate_all();
        assert!(matches!(sched.take(0), Pending::Full));
    }
}
