//! The delta-driven (semi-naive) chase scheduler.
//!
//! The classical chase loop re-evaluates every dependency's premise against
//! the *entire* instance each round, so its cost grows with rounds ×
//! instance size even when a round changes almost nothing. This module
//! replaces that loop with a worklist of `(dependency, delta)` pairs:
//!
//! * a static [`TriggerIndex`] maps each relation to the dependencies whose
//!   premise reads it;
//! * the instance records the tuples each repair batch inserts (the
//!   [`DeltaLog`] of `grom-data`);
//! * premise evaluation is seeded from the delta tuples only
//!   ([`grom_engine::evaluate_body_from_delta`] anchors one premise atom to
//!   a delta tuple and joins the rest with the semi-naive old/new version
//!   split: premise atoms before the anchor read only the *old* half of
//!   their relation — everything except the claimed delta — so each match
//!   is enumerated exactly once across anchor positions).
//!
//! ## Old/new versioning and the claim-time promote
//!
//! The version split leans on a storage invariant instead of stored
//! promotion state: relation rows only append (`grom-data` tombstones and
//! re-appends on null substitution), and a claimed delta's tuples for a
//! relation are exactly that relation's most recently inserted live rows.
//! This holds because substitution re-marks every reader of a rewritten
//! relation `Full` (dropping its deltas), conclusion-overlapping
//! dependencies share a conflict group (so only one writer appends to a
//! relation between claims), and worklist routing only ever appends to or
//! trims the front of a pending list. `delta_violations` therefore
//! "promotes" implicitly: at claim time it asks the storage for the cursor
//! splitting off the last `n` rows ([`grom_engine::Db::cursor_before_last_rel`]);
//! everything below is old, and the next claim recomputes the cursor
//! against the rows appended since. Debug builds assert the exactly-once
//! guarantee with the `seen`-set check the split made redundant.
//!
//! Full premise rescans remain in exactly two places, both required for
//! correctness: every dependency's **first** activation (the initial
//! instance is one big delta), and — after an **egd-driven null
//! unification** — the dependencies whose premise reads a relation the
//! substitution actually rewrote. [`Instance::substitute_nulls_batch`]
//! reports the rewritten relations, so deltas of dependencies reading only
//! untouched relations survive the merge ([`Scheduler::invalidate_readers`]
//! / [`Scheduler::post_surviving`]); the blanket
//! [`Scheduler::invalidate_all`] remains as the conservative fallback.
//!
//! ## Sweep-level egd batching
//!
//! Egd repairs record equality *obligations* into the [`NullMap`]
//! union-find without touching the instance. One sweep may accumulate
//! obligations from any number of eq-bearing dependencies; the loop applies
//! a **single** combined substitution pass per merge-bearing sweep
//! ([`NullMap::flatten`] + [`Instance::substitute_nulls_batch`]) followed
//! by a single targeted reader invalidation. Until that pass runs, the
//! instance may hold nulls with pending replacements; violations matched
//! against it are rechecked through
//! [`grom_engine::disjunct_satisfied_resolved`] (values resolved through
//! the union-find) so stale ones are skipped without a rewrite, and any
//! premise match that only materializes *after* the rewrite is recovered
//! by the sweep-end invalidation — its premise necessarily reads a
//! rewritten relation.
//!
//! One class of dependency cannot run over pending obligations:
//! *atom-bearing* conclusions (tgds, mixed disjuncts), whose restricted-
//! chase satisfaction check embeds the conclusion into the **stored**
//! instance — binding resolution cannot see through stale stored tuples,
//! so such a check could miss a match that materializes after the rewrite
//! and insert a redundant fresh-null tuple the substitution cannot merge
//! away. The sweep loop therefore *flushes* the pending obligations
//! immediately before an atom-bearing dependency with pending work —
//! exactly where the declaration-ordered reference loop would have
//! substituted — so runs of obligation-recording dependencies (the
//! egd-heavy case) still share one combined pass, and egd-only
//! merge-bearing sweeps get exactly one.
//!
//! The scheduler is shared by every chase variant: [`crate::standard`] runs
//! it directly, the greedy and exhaustive ded chases of [`crate::ded`] run
//! their per-scenario / per-node closures through it, [`crate::parallel`]
//! drives the same worklist with worker-pool sweeps, and
//! [`crate::core_min`] reuses the same changed-relation reporting to keep
//! its null-occurrence index incremental.

use std::collections::BTreeMap;
#[cfg(debug_assertions)]
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use grom_data::{DeltaLog, Instance, NullGenerator, Tuple};
use grom_lang::{Bindings, Dependency};
use grom_trace::{ActivationKind, ActivationRecord, Recorder};

use grom_engine::{
    disjunct_satisfied, disjunct_satisfied_resolved, evaluate_body_from_delta, Control, Db,
};

use crate::checkpoint::{Checkpoint, ResumeState};
use crate::config::{Budget, CancelToken, ChaseConfig, InterruptReason};
use crate::nullmap::NullMap;
use crate::result::{ChaseError, ChaseResult, ChaseStats, Interrupted};
use crate::standard::{apply_disjunct, check_executable, collect_violations, resolve_bindings};
use crate::trigger::TriggerIndex;

/// Pending work for one dependency.
#[derive(Debug, Clone)]
pub(crate) enum Pending {
    /// Nothing new since the premise was last evaluated.
    Idle,
    /// Evaluate the premise against the full instance (first activation, or
    /// after a null unification invalidated the deltas).
    Full,
    /// Evaluate seeded from these per-relation delta tuples only.
    Delta(BTreeMap<Arc<str>, Vec<Tuple>>),
}

impl Pending {
    /// Fold freshly routed tuples of `rel` into this slot. `Full` already
    /// subsumes any delta; `Idle` wakes up.
    pub(crate) fn add_delta(&mut self, rel: &Arc<str>, tuples: &[Tuple]) {
        match self {
            Pending::Full => {}
            Pending::Delta(map) => {
                map.entry(rel.clone())
                    .or_default()
                    .extend(tuples.iter().cloned());
            }
            slot @ Pending::Idle => {
                let mut map = BTreeMap::new();
                map.insert(rel.clone(), tuples.to_vec());
                *slot = Pending::Delta(map);
            }
        }
    }
}

/// The worklist: per-dependency pending state plus the trigger index that
/// routes deltas to dependencies.
#[derive(Debug)]
pub struct Scheduler {
    triggers: TriggerIndex,
    pending: Vec<Pending>,
}

impl Scheduler {
    /// A scheduler over `deps`, with every dependency initially scheduled
    /// for a full scan (round one of the classical chase).
    pub fn new(deps: &[Dependency]) -> Self {
        Self::with_pending(deps, vec![Pending::Full; deps.len()])
    }

    /// A scheduler over `deps` resuming a checkpointed worklist. `pending`
    /// must be index-aligned with `deps` (validated by
    /// [`Checkpoint::restore`](crate::Checkpoint)).
    pub(crate) fn with_pending(deps: &[Dependency], pending: Vec<Pending>) -> Self {
        debug_assert_eq!(pending.len(), deps.len());
        Self {
            triggers: TriggerIndex::build(deps),
            pending,
        }
    }

    /// Clone the worklist for a checkpoint. Sweep-aligned by construction:
    /// the loops only capture between sweeps, when every routed delta has
    /// been folded into these slots.
    pub(crate) fn pending_snapshot(&self) -> Vec<Pending> {
        self.pending.clone()
    }

    /// Is any dependency scheduled?
    pub fn has_work(&self) -> bool {
        !self.pending.iter().all(|p| matches!(p, Pending::Idle))
    }

    /// The trigger index routing relations to their premise readers.
    pub fn triggers(&self) -> &TriggerIndex {
        &self.triggers
    }

    /// Claim dependency `k`'s pending work, leaving it idle.
    pub(crate) fn take(&mut self, k: usize) -> Pending {
        std::mem::replace(&mut self.pending[k], Pending::Idle)
    }

    /// Does dependency `k` have pending work?
    pub(crate) fn has_pending(&self, k: usize) -> bool {
        !matches!(self.pending[k], Pending::Idle)
    }

    /// Re-schedule dependency `k` for a full rescan. Used by the parallel
    /// executor when a worker *defers* an atom-bearing dependency whose
    /// claimed work collided with pending equality obligations: `Full`
    /// subsumes whatever delta was claimed, and the rescan runs after the
    /// barrier substitution on the rewritten instance.
    pub(crate) fn reschedule_full(&mut self, k: usize) {
        self.pending[k] = Pending::Full;
    }

    /// Route a batch of newly inserted tuples to the dependencies their
    /// relations trigger.
    pub fn post(&mut self, delta: &DeltaLog) {
        debug_assert!(!delta.invalidated(), "stale deltas must invalidate");
        self.post_surviving(delta, &[]);
    }

    /// Route a delta batch, skipping tuples of the `stale` relations (those
    /// a null substitution rewrote after the batch was logged — their
    /// readers are rescheduled for full rescans instead, see
    /// [`Scheduler::invalidate_readers`]).
    pub fn post_surviving(&mut self, delta: &DeltaLog, stale: &[Arc<str>]) {
        for (rel, tuples) in delta.relations() {
            if stale.contains(rel) {
                continue;
            }
            for &k in self.triggers.triggered_by(rel) {
                self.pending[k].add_delta(rel, tuples);
            }
        }
    }

    /// Route a parallel job's delta batch, skipping per-dependency prefixes
    /// the job already delivered in-sweep: `consumed[(k, rel)] = c` means
    /// dependency `k` consumed the first `c` tuples of `rel` through the
    /// worker-local routing, so only the remainder is posted to it.
    pub(crate) fn post_job(
        &mut self,
        delta: &DeltaLog,
        consumed: &BTreeMap<(usize, Arc<str>), usize>,
    ) {
        debug_assert!(!delta.invalidated(), "stale deltas must invalidate");
        for (rel, tuples) in delta.relations() {
            for &k in self.triggers.triggered_by(rel) {
                let skip = consumed.get(&(k, rel.clone())).copied().unwrap_or(0);
                if skip < tuples.len() {
                    self.pending[k].add_delta(rel, &tuples[skip..]);
                }
            }
        }
    }

    /// Schedule every dependency for a full rescan. The conservative
    /// fallback when delta provenance is unknown; the chase loops prefer
    /// the targeted [`Scheduler::invalidate_readers`].
    pub fn invalidate_all(&mut self) {
        for p in &mut self.pending {
            *p = Pending::Full;
        }
    }

    /// Schedule a full rescan for every dependency whose premise reads one
    /// of the `changed` relations — the relations a null substitution
    /// actually rewrote, per the report of
    /// [`Instance::substitute_nulls`]. Deltas of dependencies reading only
    /// untouched relations stay valid: a relation is only *unchanged* when
    /// the substitution mapped none of the nulls occurring in it, so every
    /// tuple logged for it is still stored verbatim.
    pub fn invalidate_readers(&mut self, changed: &[Arc<str>]) {
        for rel in changed {
            for &k in self.triggers.triggered_by(rel) {
                self.pending[k] = Pending::Full;
            }
        }
    }
}

/// Violating premise matches of `dep` seeded from per-relation deltas, in
/// deterministic order. With `stop_at_first` (denials) at most one match is
/// returned. Generic over [`Db`] so the parallel executor can evaluate
/// against snapshot views. Stale delta tuples skipped by the anchor arity
/// check are counted in `stats` instead of being dropped silently.
///
/// The semi-naive version split in [`evaluate_body_from_delta`] enumerates
/// each match exactly once across anchor positions, so no dedup set is
/// needed on the hot path and each surviving match is cloned exactly once
/// into the output. Debug builds keep the historical `seen` set as an
/// assertion that the split holds.
pub(crate) fn delta_violations(
    db: &impl Db,
    dep: &Dependency,
    delta: &BTreeMap<Arc<str>, Vec<Tuple>>,
    stop_at_first: bool,
    stats: &mut ChaseStats,
) -> Vec<Bindings> {
    let deltas: Vec<(&str, &[Tuple])> = delta
        .iter()
        .map(|(rel, tuples)| (rel.as_ref(), tuples.as_slice()))
        .collect();
    #[cfg(debug_assertions)]
    let mut seen: BTreeSet<Bindings> = BTreeSet::new();
    let mut out: Vec<Bindings> = Vec::new();
    stats.stale_delta_skipped += evaluate_body_from_delta(db, &dep.premise, &deltas, |b| {
        if !dep.disjuncts.iter().any(|d| disjunct_satisfied(db, d, b)) {
            #[cfg(debug_assertions)]
            assert!(
                seen.insert(b.clone()),
                "semi-naive split enumerated a duplicate match for {}: {b}",
                dep.name
            );
            out.push(b.clone());
            if stop_at_first {
                return Control::Stop;
            }
        }
        Control::Continue
    });
    out
}

/// Process one dependency's claimed worklist entry against the master
/// instance: evaluate its violations (full or delta-seeded), repair them,
/// and feed the resulting deltas back into the scheduler. Equality repairs
/// only record obligations into the shared [`NullMap`]; the instance is
/// **not** rewritten here — the caller applies one combined substitution
/// per merge-bearing sweep (see [`apply_sweep_merges`]). Returns whether
/// this activation recorded any null merge.
///
/// The worker-side twin is `run_group_job` in [`crate::parallel`] — keep
/// the claim/evaluate/denial structure of the two in sync.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dep_sequential(
    inst: &mut Instance,
    deps: &[Dependency],
    k: usize,
    sched: &mut Scheduler,
    nullmap: &mut NullMap,
    nullgen: &mut NullGenerator,
    stats: &mut ChaseStats,
    rec: &mut Recorder,
    sweep: u64,
) -> Result<bool, ChaseError> {
    let dep = &deps[k];
    let pending = sched.take(k);
    if matches!(pending, Pending::Idle) {
        return Ok(false);
    }
    let t0 = Instant::now();
    let tuples0 = stats.tuples_inserted;
    let obligations0 = stats.obligations_batched;
    let (kind, seeded, violations) = match pending {
        Pending::Idle => unreachable!("handled above"),
        Pending::Full => {
            stats.full_rescans += 1;
            if dep.is_denial() {
                if let Some(v) = grom_engine::find_violation(inst, dep) {
                    return Err(ChaseError::Failure {
                        dependency: dep.name.clone(),
                        detail: format!("denial premise matched at {}", v.bindings),
                    });
                }
                (ActivationKind::Full, 0, Vec::new())
            } else {
                (ActivationKind::Full, 0, collect_violations(inst, dep))
            }
        }
        Pending::Delta(map) => {
            stats.delta_activations += 1;
            let seeded = map.values().map(Vec::len).sum::<usize>();
            stats.delta_tuples_seeded += seeded;
            let vs = delta_violations(inst, dep, &map, dep.is_denial(), stats);
            if dep.is_denial() {
                if let Some(b) = vs.first() {
                    return Err(ChaseError::Failure {
                        dependency: dep.name.clone(),
                        detail: format!("denial premise matched at {b}"),
                    });
                }
                (ActivationKind::Delta, seeded as u64, Vec::new())
            } else {
                (ActivationKind::Delta, seeded as u64, vs)
            }
        }
    };

    let mut any_merge = false;
    // Idempotent repairs (ground single-disjunct conclusions) skip the
    // recheck entirely: re-applying one is a dedup'd no-op, so the probe
    // would only re-derive what `Instance::insert` decides anyway. The
    // null map cannot grow mid-batch here (no equalities to record).
    let direct = !violations.is_empty() && nullmap.is_empty() && idempotent_repair(dep);
    for b in &violations {
        // Satisfied-under-pending-obligations recheck: earlier repairs in
        // this batch may already satisfy the match even though the
        // instance has not been rewritten yet. With an empty null map
        // (egd-free workloads, the common case) the resolution is the
        // identity, so the raw bindings are checked — and applied —
        // directly, skipping two clone-and-resolve passes per violation.
        if nullmap.is_empty() {
            if !direct && disjunct_satisfied(inst, &dep.disjuncts[0], b) {
                continue;
            }
            any_merge |= apply_disjunct(inst, dep, 0, b, nullmap, nullgen, stats)?;
        } else {
            if disjunct_satisfied_resolved(inst, &dep.disjuncts[0], b, &mut |v| nullmap.resolve(v))
            {
                continue;
            }
            let b = resolve_bindings(b, nullmap);
            any_merge |= apply_disjunct(inst, dep, 0, &b, nullmap, nullgen, stats)?;
        }
    }

    let log = inst.take_delta();
    if !log.is_empty() {
        // Route everything; if this sweep turns out to be merge-bearing,
        // the sweep-end invalidation re-marks every reader of a rewritten
        // relation Full, subsuming any stale tuples routed here.
        sched.post(&log);
    }
    rec.activation(
        sweep,
        &ActivationRecord {
            dep: k,
            kind,
            seeded,
            violations: violations.len() as u64,
            tuples: (stats.tuples_inserted - tuples0) as u64,
            obligations: (stats.obligations_batched - obligations0) as u64,
            dedup_hits: 0,
            wall_ns: t0.elapsed().as_nanos() as u64,
        },
    );
    Ok(any_merge)
}

/// Does any disjunct of `dep` conclude atoms? Atom-bearing repairs embed
/// their conclusion into the *stored* instance (`has_match`), which the
/// pending-obligation resolution cannot see through: running one while
/// obligations are pending could miss a match that only materializes after
/// the substitution and insert a redundant fresh-null tuple the
/// substitution cannot merge away. The batched loops therefore flush (or
/// defer) around such dependencies; pure egds, denials and
/// comparison-only disjuncts are binding-level checks and need neither.
pub(crate) fn concludes_atoms(dep: &Dependency) -> bool {
    dep.disjuncts.iter().any(|d| !d.atoms.is_empty())
}

/// Is re-applying `dep`'s repair to an already-satisfied match a no-op? True
/// for a single disjunct with no equalities and no existential variables:
/// the conclusion is then a fixed set of ground atoms per premise match, and
/// the insert-side dedup makes a redundant application invisible. The
/// batched loops use this to skip the satisfied-under-pending-repairs
/// recheck — one stored-instance probe per violation on the hot path.
/// Dependencies with equalities, multiple disjuncts, or existentials (where
/// a redundant application would invent a fresh, unmergeable null) keep the
/// recheck.
pub(crate) fn idempotent_repair(dep: &Dependency) -> bool {
    dep.disjuncts.len() == 1
        && dep.disjuncts[0].eqs.is_empty()
        && dep.existential_vars(0).is_empty()
}

/// Apply one sweep's accumulated equality obligations: flatten the
/// union-find once, rewrite the instance in a **single** combined pass,
/// and re-schedule exactly the dependencies whose premise reads a
/// rewritten relation. Called once per merge-bearing sweep by the
/// sequential delta loop and by the parallel executor's sweep barrier —
/// plus mid-sweep when an atom-bearing dependency is about to run with
/// obligations pending, so its satisfaction checks see exactly the
/// instance state the declaration-ordered reference loop gives them.
/// Returns `true` when the `subst` fault-injection point fired an
/// interruption (the pass itself always completes — interruption is
/// observed by the caller at the next sweep boundary).
pub(crate) fn apply_sweep_merges(
    inst: &mut Instance,
    nullmap: &mut NullMap,
    sched: &mut Scheduler,
    stats: &mut ChaseStats,
    rec: &mut Recorder,
    sweep: u64,
) -> bool {
    let t0 = Instant::now();
    let map = nullmap.flatten();
    let changed = inst.substitute_nulls_batch(&map);
    inst.take_delta(); // discard the invalidation marker, if tracking
    stats.substitution_passes += 1;
    sched.invalidate_readers(&changed);
    rec.substitution(
        sweep,
        map.len(),
        changed.len(),
        t0.elapsed().as_nanos() as u64,
    );
    grom_fail::hit("subst")
}

/// Cooperative budget/cancellation check, shared by every chase loop.
/// Cancellation wins over budget exhaustion so a Ctrl-C is reported as
/// such even when a cap tripped in the same activation.
pub(crate) fn trip_check(
    budget: &Budget,
    cancel: &CancelToken,
    stats: &ChaseStats,
) -> Option<InterruptReason> {
    if cancel.is_cancelled() {
        return Some(InterruptReason::Cancelled);
    }
    budget.exceeded(stats.tuples_inserted, stats.nulls_invented)
}

/// Package a sweep-aligned interruption: stop delta tracking, capture the
/// checkpoint, and wrap everything the run produced into the internal
/// `Err(ChaseError::Interrupted)` the entry points surface as
/// [`crate::ChaseOutcome::Interrupted`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn interrupted_return(
    reason: InterruptReason,
    mode: &str,
    mut inst: Instance,
    nullmap: &mut NullMap,
    sched: &Scheduler,
    stats: ChaseStats,
    rec: Recorder,
    next_null: u64,
) -> Result<ChaseResult, ChaseError> {
    inst.end_delta_tracking();
    let checkpoint = Checkpoint::capture(
        mode,
        stats.rounds,
        next_null,
        &inst,
        nullmap,
        sched.pending_snapshot(),
    );
    Err(ChaseError::Interrupted(Box::new(Interrupted {
        reason,
        instance: inst,
        stats,
        profile: rec.finish(),
        checkpoint,
    })))
}

/// The delta-driven standard chase: same semantics and failure modes as
/// [`crate::standard::chase_standard_full_rescan`], driven by the
/// [`Scheduler`] worklist instead of full per-round rescans.
pub(crate) fn chase_standard_delta(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }
    chase_delta_loop(ResumeState::fresh(start, deps), deps, config)
}

/// Continue a checkpointed run on the delta scheduler. Same loop as a
/// fresh run: the [`ResumeState`] carries the round count, the null
/// cursor, the pending worklist and the re-installed null map.
pub(crate) fn chase_delta_resume(
    state: ResumeState,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }
    chase_delta_loop(state, deps, config)
}

fn chase_delta_loop(
    state: ResumeState,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    let ResumeState {
        mut inst,
        rounds,
        next_null,
        mut nullmap,
        pending,
    } = state;
    let mut stats = ChaseStats {
        rounds,
        ..Default::default()
    };
    let mut nullgen = NullGenerator::starting_at(next_null);
    let mut sched = Scheduler::with_pending(deps, pending);
    let names: Vec<String> = deps.iter().map(|d| d.name.to_string()).collect();
    let mut rec = Recorder::new(&names, "delta", &config.trace);
    let budget = config.budget.anchored();
    inst.begin_delta_tracking();

    loop {
        if stats.rounds >= config.max_rounds {
            let profile = Box::new(rec.finish());
            return Err(ChaseError::RoundLimit {
                rounds: stats.rounds,
                stats: Box::new(stats),
                profile,
            });
        }
        stats.rounds += 1;
        let sweep = stats.rounds as u64;
        if !sched.has_work() {
            break;
        }

        // Sweep-start interruption point: budget, cancellation and the
        // `sweep` fault all stop the run *before* any work of this sweep,
        // so the aborted sweep is not counted.
        let mut tripped = trip_check(&budget, &config.cancel, &stats);
        if grom_fail::hit("sweep") {
            tripped.get_or_insert(InterruptReason::Fault);
        }
        if let Some(reason) = tripped {
            stats.rounds -= 1;
            return interrupted_return(
                reason,
                "delta",
                inst,
                &mut nullmap,
                &sched,
                stats,
                rec,
                nullgen.peek_next(),
            );
        }

        // Once a sweep starts it always COMPLETES: skipping or deferring
        // mid-sweep would diverge from the declaration-ordered reference
        // semantics (an unapplied tgd can change which nulls later
        // dependencies see). Budget trips observed mid-sweep are recorded
        // and acted on at the sweep boundary — at most one sweep of
        // overshoot, bounded by the per-activation check below.
        let mut tripped: Option<InterruptReason> = None;
        let mut sweep_merged = false;
        for k in 0..deps.len() {
            // An atom-bearing dependency must not evaluate against an
            // instance with pending obligations (its embedding checks
            // read stored tuples the resolution cannot see through):
            // flush first, exactly where the declaration-ordered
            // reference loop would have substituted. Runs of
            // obligation-recording dependencies — the egd-heavy case —
            // still share one combined pass.
            if sweep_merged && concludes_atoms(&deps[k]) && sched.has_pending(k) {
                if apply_sweep_merges(
                    &mut inst,
                    &mut nullmap,
                    &mut sched,
                    &mut stats,
                    &mut rec,
                    sweep,
                ) {
                    tripped.get_or_insert(InterruptReason::Fault);
                }
                sweep_merged = false;
            }
            sweep_merged |= run_dep_sequential(
                &mut inst,
                deps,
                k,
                &mut sched,
                &mut nullmap,
                &mut nullgen,
                &mut stats,
                &mut rec,
                sweep,
            )?;
            if tripped.is_none() {
                tripped = trip_check(&budget, &config.cancel, &stats);
            }
        }
        if sweep_merged {
            // One combined substitution pass for the sweep's remaining
            // obligations, however many dependencies recorded them.
            if apply_sweep_merges(
                &mut inst,
                &mut nullmap,
                &mut sched,
                &mut stats,
                &mut rec,
                sweep,
            ) {
                tripped.get_or_insert(InterruptReason::Fault);
            }
        }
        rec.end_sweep(sweep, None, 0);
        if let Some(reason) = tripped {
            return interrupted_return(
                reason,
                "delta",
                inst,
                &mut nullmap,
                &sched,
                stats,
                rec,
                nullgen.peek_next(),
            );
        }
    }

    inst.end_delta_tracking();
    Ok(ChaseResult {
        instance: inst,
        stats,
        profile: rec.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;
    use grom_lang::parser::parse_program;

    #[test]
    fn scheduler_routes_deltas_by_trigger() {
        let p = parse_program(
            "tgd a: S(x) -> A(x).\n\
             tgd b: A(x) -> B(x).",
        )
        .unwrap();
        let mut sched = Scheduler::new(&p.deps);
        assert!(sched.has_work()); // everything starts Full

        // Drain the initial Full work.
        for k in 0..p.deps.len() {
            sched.take(k);
        }
        assert!(!sched.has_work());

        // A delta on A wakes only dependency b.
        let mut inst = Instance::new();
        inst.begin_delta_tracking();
        inst.add("A", vec![Value::int(1)]).unwrap();
        let log = inst.take_delta();
        sched.post(&log);
        assert!(matches!(sched.take(0), Pending::Idle));
        assert!(matches!(sched.take(1), Pending::Delta(_)));
    }

    #[test]
    fn invalidation_reschedules_everything_full() {
        let p = parse_program("tgd a: S(x) -> A(x).").unwrap();
        let mut sched = Scheduler::new(&p.deps);
        sched.take(0);
        assert!(!sched.has_work());
        sched.invalidate_all();
        assert!(matches!(sched.take(0), Pending::Full));
    }

    #[test]
    fn targeted_invalidation_spares_unrelated_readers() {
        let p = parse_program(
            "tgd a: A(x) -> A2(x).\n\
             tgd b: B(x) -> B2(x).",
        )
        .unwrap();
        let mut sched = Scheduler::new(&p.deps);
        for k in 0..p.deps.len() {
            sched.take(k);
        }
        // Both dependencies hold pending deltas...
        let mut inst = Instance::new();
        inst.begin_delta_tracking();
        inst.add("A", vec![Value::int(1)]).unwrap();
        inst.add("B", vec![Value::int(2)]).unwrap();
        sched.post(&inst.take_delta());
        // ...then a substitution rewrites only A: its reader goes Full,
        // B's reader keeps its delta.
        sched.invalidate_readers(&[Arc::from("A")]);
        assert!(matches!(sched.take(0), Pending::Full));
        assert!(matches!(sched.take(1), Pending::Delta(_)));
    }

    #[test]
    fn merge_bearing_sweep_substitutes_exactly_once() {
        // Two independent key egds, both violated in the same sweep: their
        // obligations are batched into ONE substitution pass, not one per
        // dependency as in the full-rescan reference loop.
        let p = parse_program(
            "egd e1: T(x, y1), T(x, y2) -> y1 = y2.\n\
             egd e2: U(x, y1), U(x, y2) -> y1 = y2.",
        )
        .unwrap();
        let mut inst = Instance::new();
        inst.add("T", vec![Value::int(1), Value::null(0)]).unwrap();
        inst.add("T", vec![Value::int(1), Value::int(5)]).unwrap();
        inst.add("U", vec![Value::int(2), Value::null(1)]).unwrap();
        inst.add("U", vec![Value::int(2), Value::int(7)]).unwrap();
        let res = chase_standard_delta(inst, &p.deps, &ChaseConfig::default()).unwrap();
        assert_eq!(res.stats.substitution_passes, 1);
        assert_eq!(res.stats.egd_merges, 2);
        assert!(res.stats.obligations_batched >= 2);
        let t: Vec<_> = res.instance.tuples("T").collect();
        let u: Vec<_> = res.instance.tuples("U").collect();
        assert_eq!((t.len(), u.len()), (1, 1));
        assert_eq!(t[0].get(1), Some(&Value::int(5)));
        assert_eq!(u[0].get(1), Some(&Value::int(7)));
    }

    #[test]
    fn each_merge_bearing_sweep_substitutes_once() {
        // A two-stage merge: eU's violation only materializes after eT's
        // substitution rewrites U's key column, so the chase needs two
        // merge-bearing sweeps — and exactly two substitution passes.
        let p = parse_program(
            "egd eT: T(x, y1), T(x, y2) -> y1 = y2.\n\
             egd eU: U(k, a1), U(k, a2) -> a1 = a2.",
        )
        .unwrap();
        let mut inst = Instance::new();
        inst.add("T", vec![Value::int(1), Value::null(0)]).unwrap();
        inst.add("T", vec![Value::int(1), Value::null(1)]).unwrap();
        inst.add("U", vec![Value::null(1), Value::null(5)]).unwrap();
        inst.add("U", vec![Value::null(0), Value::int(4)]).unwrap();
        let res = chase_standard_delta(inst, &p.deps, &ChaseConfig::default()).unwrap();
        // Sweep 1 merges N1 -> N0 (eT); the rewrite makes U's two keys
        // collide, so sweep 2 merges N5 -> 4 (eU).
        assert_eq!(res.stats.substitution_passes, 2);
        assert_eq!(res.stats.egd_merges, 2);
        let u: Vec<_> = res.instance.tuples("U").collect();
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].get(0), Some(&Value::null(0)));
        assert_eq!(u[0].get(1), Some(&Value::int(4)));
    }

    #[test]
    fn tgd_after_merging_egd_sees_the_rewritten_instance() {
        // t2 is declared *after* the merging egd, so the
        // declaration-ordered reference substitutes before t2's
        // satisfaction check runs. The batched sweep must flush its
        // pending obligations before t2 (an atom-bearing dependency whose
        // embedding check reads stored tuples the binding resolution
        // cannot see through) — otherwise t2 misses the post-substitution
        // match T(5, 7) and inserts a redundant T(5, N) with a fresh null
        // the sweep-end substitution cannot merge away.
        use crate::config::SchedulerMode;
        use crate::standard::{chase_standard, chase_standard_full_rescan};
        use grom_data::canonical_render;
        let p = parse_program(
            "tgd t1: A(x) -> T(y, x).\n\
             egd e: T(a, b), W(c, b) -> a = c.\n\
             tgd t2: W(c, b) -> T(c, z).",
        )
        .unwrap();
        let mut start = Instance::new();
        start.add("A", vec![Value::int(7)]).unwrap();
        start.add("W", vec![Value::int(5), Value::int(7)]).unwrap();
        let reference =
            chase_standard_full_rescan(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        assert_eq!(reference.instance.len(), 3);

        let batched =
            chase_standard_delta(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        assert_eq!(
            canonical_render(&reference.instance),
            canonical_render(&batched.instance)
        );
        // t1, e and t2 share relation T, so they form one conflict group
        // and the worker defers t2 past the barrier substitution.
        let par = chase_standard(
            start,
            &p.deps,
            &ChaseConfig::default().with_scheduler(SchedulerMode::Parallel { threads: 2 }),
        )
        .unwrap();
        assert_eq!(
            canonical_render(&reference.instance),
            canonical_render(&par.instance)
        );
    }

    #[test]
    fn post_surviving_skips_stale_relations() {
        let p = parse_program(
            "tgd a: A(x) -> A2(x).\n\
             tgd b: B(x) -> B2(x).",
        )
        .unwrap();
        let mut sched = Scheduler::new(&p.deps);
        for k in 0..p.deps.len() {
            sched.take(k);
        }
        let mut inst = Instance::new();
        inst.begin_delta_tracking();
        inst.add("A", vec![Value::int(1)]).unwrap();
        inst.add("B", vec![Value::int(2)]).unwrap();
        let log = inst.take_delta();
        sched.post_surviving(&log, &[Arc::from("A")]);
        // A's tuples were stale and dropped; B's were routed.
        assert!(matches!(sched.take(0), Pending::Idle));
        assert!(matches!(sched.take(1), Pending::Delta(_)));
    }
}
