//! Chase results, statistics and errors.

use std::fmt;
use std::sync::Arc;

use grom_data::{DataError, Instance, Value};
use grom_trace::ChaseProfile;

use crate::checkpoint::Checkpoint;
use crate::config::InterruptReason;

/// Counters describing a chase run. Experiments E4/E5/E7 report these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Rounds of the standard chase (a round visits every dependency).
    pub rounds: usize,
    /// Tgd-style applications (tuples-producing steps).
    pub tgd_applications: usize,
    /// Tuples actually inserted (after deduplication).
    pub tuples_inserted: usize,
    /// Fresh labeled nulls invented for existential variables.
    pub nulls_invented: usize,
    /// Egd merges (null unifications).
    pub egd_merges: usize,
    /// Greedy ded chase: scenarios attempted (including the successful one).
    pub scenarios_tried: usize,
    /// Greedy ded chase: scenarios that ended in failure.
    pub scenarios_failed: usize,
    /// Exhaustive ded chase: tree nodes expanded.
    pub nodes_expanded: usize,
    /// Exhaustive ded chase: successful leaves (size of the universal model
    /// set found).
    pub leaves: usize,
    /// Exhaustive ded chase: branches pruned by failure.
    pub branches_failed: usize,
    /// Delta scheduler: dependency activations that evaluated the premise
    /// against the full instance (first activations and post-merge
    /// invalidations).
    pub full_rescans: usize,
    /// Delta scheduler: dependency activations seeded from delta tuples.
    pub delta_activations: usize,
    /// Delta scheduler: total delta tuples used to seed premise evaluation.
    pub delta_tuples_seeded: usize,
    /// Delta scheduler: delta tuples skipped by the anchor arity check in
    /// `evaluate_body_from_delta` (stale entries from an arity-drifted
    /// relation; counted once per stale tuple, regardless of how many
    /// anchor positions its relation has).
    pub stale_delta_skipped: usize,
    /// Instance-wide null substitution passes applied on behalf of egd
    /// enforcement. The batched Delta/Parallel schedulers apply exactly
    /// one per merge-bearing sweep; the full-rescan reference loop one per
    /// merging dependency per round.
    pub substitution_passes: usize,
    /// Equality obligations routed through the `NullMap` (one per equality
    /// of each applied eq-bearing disjunct; the batched schedulers resolve
    /// them once per sweep).
    pub obligations_batched: usize,
}

impl ChaseStats {
    /// Fold counters from a sub-run (used by the greedy scenario loop).
    pub fn absorb(&mut self, other: &ChaseStats) {
        self.rounds += other.rounds;
        self.tgd_applications += other.tgd_applications;
        self.tuples_inserted += other.tuples_inserted;
        self.nulls_invented += other.nulls_invented;
        self.egd_merges += other.egd_merges;
        self.scenarios_tried += other.scenarios_tried;
        self.scenarios_failed += other.scenarios_failed;
        self.nodes_expanded += other.nodes_expanded;
        self.leaves += other.leaves;
        self.branches_failed += other.branches_failed;
        self.full_rescans += other.full_rescans;
        self.delta_activations += other.delta_activations;
        self.delta_tuples_seeded += other.delta_tuples_seeded;
        self.stale_delta_skipped += other.stale_delta_skipped;
        self.substitution_passes += other.substitution_passes;
        self.obligations_batched += other.obligations_batched;
    }
}

impl fmt::Display for ChaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} tgd_apps={} inserted={} nulls={} merges={} \
             scenarios={}(failed {}) nodes={} leaves={} branches_failed={} \
             rescans={} delta_acts={} delta_seeded={} stale_skipped={} \
             subst_passes={} obligations={}",
            self.rounds,
            self.tgd_applications,
            self.tuples_inserted,
            self.nulls_invented,
            self.egd_merges,
            self.scenarios_tried,
            self.scenarios_failed,
            self.nodes_expanded,
            self.leaves,
            self.branches_failed,
            self.full_rescans,
            self.delta_activations,
            self.delta_tuples_seeded,
            self.stale_delta_skipped,
            self.substitution_passes,
            self.obligations_batched
        )
    }
}

/// A successful chase: the chased instance (source relations plus the
/// generated target relations), run statistics, and the per-dependency
/// profile (wall times, activation splits, delta-hit rates — see
/// [`grom_trace::ChaseProfile`]).
#[derive(Debug, Clone)]
pub struct ChaseResult {
    pub instance: Instance,
    pub stats: ChaseStats,
    pub profile: ChaseProfile,
}

/// A chase stopped early by its budget, cancellation or fault injection.
/// Unlike the hard [`ChaseError`] variants this carries everything the run
/// produced — the instance-so-far, full statistics and profile — plus a
/// [`Checkpoint`](crate::Checkpoint) from which
/// [`chase_resume`](crate::chase_resume) continues to the same final
/// instance an uninterrupted run would have reached.
#[derive(Debug, Clone)]
pub struct Interrupted {
    pub reason: InterruptReason,
    pub instance: Instance,
    pub stats: ChaseStats,
    pub profile: ChaseProfile,
    pub checkpoint: Checkpoint,
}

impl Interrupted {
    /// Map every interned symbol back to a plain string value, in both the
    /// carried instance and the checkpoint. The pipeline calls this when
    /// string interning was enabled for the run.
    pub fn unintern(&mut self) {
        self.instance = self.instance.unintern_strings();
        self.checkpoint.unintern();
    }
}

/// The outcome of a budget-aware chase entry point: either a completed
/// fixpoint or a graceful interruption. [`ChaseError`] keeps signalling
/// the hard failures (clash, non-executable, storage).
#[derive(Debug, Clone)]
pub enum ChaseOutcome {
    Completed(ChaseResult),
    Interrupted(Interrupted),
}

impl ChaseOutcome {
    /// Convert the internal error-channel representation: interruption
    /// travels as `Err(ChaseError::Interrupted)` inside the engine so the
    /// existing `?` plumbing propagates it, and surfaces here as the
    /// graceful variant.
    pub fn from_run(run: Result<ChaseResult, ChaseError>) -> Result<ChaseOutcome, ChaseError> {
        match run {
            Ok(res) => Ok(ChaseOutcome::Completed(res)),
            Err(ChaseError::Interrupted(i)) => Ok(ChaseOutcome::Interrupted(*i)),
            Err(e) => Err(e),
        }
    }

    /// The instance produced so far, complete or not.
    pub fn instance(&self) -> &Instance {
        match self {
            ChaseOutcome::Completed(r) => &r.instance,
            ChaseOutcome::Interrupted(i) => &i.instance,
        }
    }

    pub fn stats(&self) -> &ChaseStats {
        match self {
            ChaseOutcome::Completed(r) => &r.stats,
            ChaseOutcome::Interrupted(i) => &i.stats,
        }
    }
}

/// Chase failure modes.
#[derive(Debug, Clone)]
pub enum ChaseError {
    /// An egd equated two distinct constants, or a denial premise matched.
    Failure {
        dependency: Arc<str>,
        detail: String,
    },
    /// The round budget was exhausted (program likely not terminating).
    /// Carries the partial statistics and profile so the diagnostics of
    /// the budget-tripping run are not discarded with the instance.
    RoundLimit {
        rounds: usize,
        stats: Box<ChaseStats>,
        profile: Box<ChaseProfile>,
    },
    /// Greedy ded chase: every attempted scenario failed. Carries the
    /// campaign-wide accumulated statistics.
    GreedyExhausted {
        scenarios_tried: usize,
        stats: Box<ChaseStats>,
        profile: Box<ChaseProfile>,
    },
    /// The budget or cancel token stopped the run at a sweep boundary;
    /// the boxed payload carries the partial instance and a resumable
    /// checkpoint. Internal representation — the public entry points
    /// convert this into [`ChaseOutcome::Interrupted`].
    Interrupted(Box<Interrupted>),
    /// A worker thread panicked inside the parallel executor. The panic is
    /// contained by `catch_unwind`; the pool stays reusable.
    WorkerPanicked { detail: String },
    /// Exhaustive ded chase: the node budget was exhausted.
    NodeLimit { nodes: usize },
    /// Exhaustive ded chase: every branch failed — the ded set is
    /// unsatisfiable over this instance.
    NoSolution { branches_failed: usize },
    /// A dependency is not executable by the chase (negated premise
    /// literals must be eliminated by the rewriter first).
    NotExecutable {
        dependency: Arc<str>,
        reason: String,
    },
    /// Storage error (arity drift — indicates a malformed program).
    Data(DataError),
}

impl ChaseError {
    /// Convenience constructor for constant-clash failures.
    pub fn clash(dep: &Arc<str>, a: &Value, b: &Value) -> Self {
        ChaseError::Failure {
            dependency: dep.clone(),
            detail: format!("cannot equate distinct constants {a} and {b}"),
        }
    }
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Failure { dependency, detail } => {
                write!(f, "chase failure at `{dependency}`: {detail}")
            }
            ChaseError::RoundLimit { rounds, .. } => {
                write!(f, "chase did not terminate within {rounds} rounds")
            }
            ChaseError::GreedyExhausted {
                scenarios_tried, ..
            } => write!(
                f,
                "greedy ded chase: all {scenarios_tried} scenarios failed"
            ),
            ChaseError::Interrupted(i) => {
                write!(
                    f,
                    "chase interrupted ({}) after {} rounds; resumable",
                    i.reason, i.stats.rounds
                )
            }
            ChaseError::WorkerPanicked { detail } => {
                write!(f, "chase worker panicked: {detail}")
            }
            ChaseError::NodeLimit { nodes } => {
                write!(f, "exhaustive ded chase: node budget ({nodes}) exhausted")
            }
            ChaseError::NoSolution { branches_failed } => write!(
                f,
                "exhaustive ded chase: no solution ({branches_failed} branches failed)"
            ),
            ChaseError::NotExecutable { dependency, reason } => {
                write!(f, "dependency `{dependency}` is not executable: {reason}")
            }
            ChaseError::Data(e) => write!(f, "chase storage error: {e}"),
        }
    }
}

impl std::error::Error for ChaseError {}

impl From<DataError> for ChaseError {
    fn from(e: DataError) -> Self {
        ChaseError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_adds_counters() {
        let mut a = ChaseStats {
            rounds: 1,
            tgd_applications: 2,
            ..Default::default()
        };
        let b = ChaseStats {
            rounds: 3,
            egd_merges: 4,
            stale_delta_skipped: 5,
            substitution_passes: 1,
            obligations_batched: 6,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 4);
        assert_eq!(a.tgd_applications, 2);
        assert_eq!(a.egd_merges, 4);
        assert_eq!(a.stale_delta_skipped, 5);
        assert_eq!(a.substitution_passes, 1);
        assert_eq!(a.obligations_batched, 6);
    }

    #[test]
    fn stats_display_covers_every_counter() {
        let s = ChaseStats {
            branches_failed: 7,
            delta_tuples_seeded: 8,
            stale_delta_skipped: 9,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("branches_failed=7"), "{text}");
        assert!(text.contains("delta_seeded=8"), "{text}");
        assert!(text.contains("stale_skipped=9"), "{text}");
    }

    #[test]
    fn error_display() {
        let e = ChaseError::clash(&Arc::from("e0"), &Value::int(1), &Value::int(2));
        assert_eq!(
            e.to_string(),
            "chase failure at `e0`: cannot equate distinct constants 1 and 2"
        );
    }
}
