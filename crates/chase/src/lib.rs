//! # grom-chase — the chase engine of GROM
//!
//! The execution half of Figure 2 of the paper: given a source instance and
//! the *rewritten* dependencies produced by `grom-rewrite`, generate a
//! target instance. This is the module the paper borrows from the Llunatic
//! project \[5\]; here it is a native in-memory engine with the same
//! semantics.
//!
//! * [`standard`] — the restricted chase for tgds, egds and denial
//!   constraints: tgd conclusions are witnessed with fresh labeled nulls,
//!   egds unify nulls (failing on constant/constant conflicts), denials
//!   fail on any premise match. Produces **universal solutions** for
//!   weakly-acyclic programs.
//! * [`ded`] — the two ded-chase strategies of §3 "Handling Complexity":
//!   the **greedy chase** (search over standard scenarios derived by fixing
//!   one disjunct per ded — sound, incomplete, usually fast) and the
//!   **exhaustive chase** (fork per disjunct at every violation; the set of
//!   successful leaves is the *universal model set* of Deutsch–Nash–Remmel,
//!   potentially exponential — exactly the blow-up experiment E4 measures).
//! * [`wa`] — weak-acyclicity analysis of the position graph, the classical
//!   sufficient condition for chase termination; non-weakly-acyclic
//!   programs run under the round budget of [`ChaseConfig`].
//! * [`trigger`] / [`scheduler`] — the delta-driven (semi-naive) scheduler
//!   that all chase variants run on by default: a static trigger index
//!   routes newly inserted tuples to the dependencies whose premises read
//!   them, and premise evaluation is seeded from those deltas instead of
//!   rescanning the whole instance every round (see
//!   [`config::SchedulerMode`]).
//! * [`partition`] / [`parallel`] — the parallel chase executor: the
//!   scheduler worklist is partitioned into conflict-free dependency
//!   groups (egds included — they are pure readers within a sweep) and
//!   each sweep's activations run on the worker pool of `grom-exec`
//!   against immutable instance snapshots. Per-worker insertion buffers
//!   are merged deterministically at the sweep barrier, where the workers'
//!   equality-obligation buffers are also unified — in declaration order —
//!   and resolved with one combined substitution pass per merge-bearing
//!   sweep ([`config::SchedulerMode::Parallel`]).

pub mod checkpoint;
pub mod config;
pub mod core_min;
pub mod ded;
pub mod nullmap;
pub mod parallel;
pub mod partition;
pub mod result;
pub mod scheduler;
pub mod standard;
pub mod trigger;
pub mod wa;

pub use checkpoint::{chase_resume, Checkpoint};
pub use config::{Budget, CancelToken, ChaseConfig, InterruptReason, SchedulerMode};
pub use core_min::{core_minimize, CoreStats};
pub use ded::{
    chase_exhaustive, chase_greedy, chase_greedy_backjump, chase_with_deds,
    chase_with_deds_outcome, ExhaustiveResult,
};
pub use nullmap::NullMap;
pub use partition::Partition;
pub use result::{ChaseError, ChaseOutcome, ChaseResult, ChaseStats, Interrupted};
pub use scheduler::Scheduler;
pub use standard::{chase_standard, chase_standard_full_rescan, chase_standard_outcome};
pub use trigger::TriggerIndex;
pub use wa::{is_weakly_acyclic, WeakAcyclicityReport};

// Re-exported so resilience tests can install fault-injection plans
// without depending on `grom-fail` directly.
pub use grom_fail as fail;

// Re-exported so chase callers can attach sinks and read profiles without
// depending on `grom-trace` directly.
pub use grom_trace::{
    render_report, ChaseProfile, DepProfile, GroupProfile, JsonlSink, MemorySink, ReportOptions,
    TraceHandle, TraceSink,
};
