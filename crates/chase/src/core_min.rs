//! Core computation for universal solutions.
//!
//! The restricted chase produces universal solutions that may contain
//! redundant labeled nulls: in the paper's running example, the `SoldAt`
//! unfolding re-derives a `T_Product(pid, N_name, N_sid)` tuple alongside
//! the real `T_Product(pid, "tv", N_store)` one. The **core** (Fagin,
//! Kolaitis, Popa — *Data Exchange: Getting to the Core*) is the smallest
//! universal solution, unique up to isomorphism, obtained by folding the
//! instance into itself with an endomorphism that eliminates such
//! redundancy.
//!
//! This module implements greedy *tuple-level* folding: for every tuple
//! containing nulls, look for a sibling tuple in the same relation that it
//! maps onto (a consistent simultaneous substitution of its nulls); the
//! fold is valid when the substitution also maps every *other* occurrence
//! of those nulls onto existing facts. Repeat to fixpoint. Exact core
//! computation is NP-hard in general; this greedy pass is the standard
//! polynomial heuristic and is exact for the block-shaped redundancy the
//! restricted chase produces in source-to-target scenarios.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use grom_data::{Instance, NullId, Tuple, Value};

/// Statistics from a core-minimization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Nulls folded onto other values.
    pub nulls_folded: usize,
    /// Tuples removed by the folding.
    pub tuples_removed: usize,
    /// Fold rounds (each round finds and applies one fold).
    pub rounds: usize,
}

/// All facts each null occurs in.
fn null_occurrences(inst: &Instance) -> BTreeMap<NullId, Vec<(Arc<str>, Tuple)>> {
    let mut out: BTreeMap<NullId, Vec<_>> = BTreeMap::new();
    for fact in inst.facts() {
        for n in fact.tuple.nulls() {
            out.entry(n)
                .or_default()
                .push((fact.relation.clone(), fact.tuple.clone()));
        }
    }
    out
}

/// Try to map `tuple` onto `candidate` (same relation, same arity):
/// constants must agree, and each null of `tuple` maps to the value at the
/// same position of `candidate`, consistently across positions. Returns
/// the substitution restricted to non-identity entries, or `None`.
fn tuple_mapping(tuple: &Tuple, candidate: &Tuple) -> Option<BTreeMap<NullId, Value>> {
    let mut subst: BTreeMap<NullId, Value> = BTreeMap::new();
    for (a, b) in tuple.values().iter().zip(candidate.values()) {
        match a.as_null() {
            None => {
                if a != b {
                    return None; // constant mismatch
                }
            }
            Some(n) => match subst.get(&n) {
                Some(prev) if prev != b => return None, // inconsistent
                Some(_) => {}
                None => {
                    subst.insert(n, b.clone());
                }
            },
        }
    }
    // Drop identity entries; an all-identity mapping folds nothing.
    subst.retain(|n, v| v.as_null() != Some(*n));
    if subst.is_empty() {
        None
    } else {
        Some(subst)
    }
}

/// Is the fold `subst` valid instance-wide? Every occurrence of every
/// mapped null, rewritten under `subst`, must already exist in `inst`.
fn fold_is_valid(
    inst: &Instance,
    occurrences: &BTreeMap<NullId, Vec<(Arc<str>, Tuple)>>,
    subst: &BTreeMap<NullId, Value>,
) -> bool {
    for n in subst.keys() {
        let Some(occs) = occurrences.get(n) else {
            continue;
        };
        for (rel, t) in occs {
            let (image, _) = t.substitute_nulls(|id| subst.get(&id).cloned());
            if !inst.contains_fact(rel, &image) {
                return false;
            }
        }
    }
    true
}

/// Find one applicable fold, if any.
fn find_fold(
    inst: &Instance,
    occurrences: &BTreeMap<NullId, Vec<(Arc<str>, Tuple)>>,
) -> Option<BTreeMap<NullId, Value>> {
    for rel_name in inst.relation_names() {
        let rel = inst.relation(rel_name).expect("name from iterator");
        for tuple in rel.iter() {
            if !tuple.has_nulls() {
                continue;
            }
            // Candidate images: tuples agreeing with `tuple` on some
            // constant column (or any tuple when fully null). Scanning the
            // whole relation is fine at core-minimization scale; use the
            // most selective constant column when available.
            let pattern: Vec<Option<Value>> = tuple
                .values()
                .iter()
                .map(|v| v.is_constant().then(|| v.clone()))
                .collect();
            for candidate in rel.scan(&pattern) {
                if candidate == tuple {
                    continue;
                }
                if let Some(subst) = tuple_mapping(tuple, candidate) {
                    if fold_is_valid(inst, occurrences, &subst) {
                        return Some(subst);
                    }
                }
            }
        }
    }
    None
}

/// Incrementally repair the occurrence index after a fold, using the
/// changed-relation report of [`Instance::substitute_nulls`] — the same
/// delta bookkeeping the chase scheduler runs on. Occurrences in untouched
/// relations are still valid verbatim; only the rewritten relations are
/// rescanned, and the folded nulls disappear outright.
fn refresh_occurrences(
    occurrences: &mut BTreeMap<NullId, Vec<(Arc<str>, Tuple)>>,
    inst: &Instance,
    changed: &[Arc<str>],
    subst: &BTreeMap<NullId, Value>,
) {
    let changed_set: BTreeSet<&str> = changed.iter().map(AsRef::as_ref).collect();
    occurrences.retain(|n, entries| {
        if subst.contains_key(n) {
            return false; // folded away
        }
        entries.retain(|(rel, _)| !changed_set.contains(rel.as_ref()));
        true
    });
    for name in changed {
        let Some(rel) = inst.relation(name) else {
            continue;
        };
        for tuple in rel.iter() {
            for n in tuple.nulls() {
                occurrences
                    .entry(n)
                    .or_default()
                    .push((name.clone(), tuple.clone()));
            }
        }
    }
}

/// Greedily minimize `inst` towards its core. The instance is modified in
/// place; statistics are returned.
pub fn core_minimize(inst: &mut Instance) -> CoreStats {
    let mut stats = CoreStats::default();
    let mut occurrences = null_occurrences(inst);
    loop {
        stats.rounds += 1;
        match find_fold(inst, &occurrences) {
            None => break,
            Some(subst) => {
                let before = inst.len();
                let changed = inst.substitute_nulls(|id| subst.get(&id).cloned());
                stats.nulls_folded += subst.len();
                stats.tuples_removed += before - inst.len();
                refresh_occurrences(&mut occurrences, inst, &changed, &subst);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    #[test]
    fn redundant_null_tuple_folds_onto_constant_tuple() {
        // T(1, N0) is subsumed by T(1, 5): the core drops it.
        let mut inst = Instance::new();
        inst.add("T", vec![v(1), Value::null(0)]).unwrap();
        inst.add("T", vec![v(1), v(5)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 1);
        assert_eq!(inst.len(), 1);
        assert!(inst.contains_fact("T", &Tuple::new(vec![v(1), v(5)])));
    }

    #[test]
    fn non_redundant_null_survives() {
        // T(1, N0) has no image (the only sibling disagrees on column 0).
        let mut inst = Instance::new();
        inst.add("T", vec![v(1), Value::null(0)]).unwrap();
        inst.add("T", vec![v(2), v(5)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 0);
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn null_folds_onto_null_when_blocks_align() {
        // T(1, N0) and T(1, N1) are isomorphic duplicates: one folds onto
        // the other.
        let mut inst = Instance::new();
        inst.add("T", vec![v(1), Value::null(0)]).unwrap();
        inst.add("T", vec![v(1), Value::null(1)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 1);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn linked_nulls_fold_together_or_not_at_all() {
        // R(1, N0), S(N0, 2) vs R(1, 7), S(7, 2): N0 folds onto 7 because
        // *both* its occurrences have images.
        let mut inst = Instance::new();
        inst.add("R", vec![v(1), Value::null(0)]).unwrap();
        inst.add("S", vec![Value::null(0), v(2)]).unwrap();
        inst.add("R", vec![v(1), v(7)]).unwrap();
        inst.add("S", vec![v(7), v(2)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 1);
        assert_eq!(inst.len(), 2);

        // Same shape but the S-image is missing: no fold.
        let mut inst = Instance::new();
        inst.add("R", vec![v(1), Value::null(0)]).unwrap();
        inst.add("S", vec![Value::null(0), v(2)]).unwrap();
        inst.add("R", vec![v(1), v(7)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 0);
        assert_eq!(inst.len(), 3);
    }

    #[test]
    fn chain_of_folds_terminates() {
        let mut inst = Instance::new();
        for label in 0..3 {
            inst.add("T", vec![v(1), Value::null(label)]).unwrap();
        }
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 2);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn constants_only_instance_is_untouched() {
        let mut inst = Instance::new();
        inst.add("T", vec![v(1), v(2)]).unwrap();
        inst.add("T", vec![v(3), v(4)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 0);
        assert_eq!(stats.rounds, 1);
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn partially_informative_tuples_fold_simultaneously() {
        // The m3 pattern from the running example: TP(1, N0, N1) maps onto
        // TP(1, "tv", N2) via the simultaneous fold {N0 → "tv", N1 → N2}.
        let mut inst = Instance::new();
        inst.add("TP", vec![v(1), Value::null(0), Value::null(1)])
            .unwrap();
        inst.add("TP", vec![v(1), Value::str("tv"), Value::null(2)])
            .unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 2);
        assert_eq!(inst.len(), 1);
        let remaining: Vec<_> = inst.tuples("TP").collect();
        assert_eq!(remaining[0].get(1), Some(&Value::str("tv")));
    }

    #[test]
    fn inconsistent_mapping_rejected() {
        // T(N0, N0) cannot map onto T(1, 2): the repeated null would need
        // two images.
        let mut inst = Instance::new();
        inst.add("T", vec![Value::null(0), Value::null(0)]).unwrap();
        inst.add("T", vec![v(1), v(2)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 0);
        assert_eq!(inst.len(), 2);
        // But T(N0, N0) maps fine onto a diagonal tuple.
        inst.add("T", vec![v(3), v(3)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 1);
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn incremental_occurrence_refresh_matches_full_recompute() {
        let mut inst = Instance::new();
        inst.add("R", vec![v(1), Value::null(0)]).unwrap();
        inst.add("S", vec![Value::null(0), Value::null(1)]).unwrap();
        inst.add("T", vec![Value::null(2)]).unwrap();
        let mut occ = null_occurrences(&inst);
        let subst: BTreeMap<NullId, Value> = [(NullId(0), v(7))].into();
        let changed = inst.substitute_nulls(|id| subst.get(&id).cloned());
        refresh_occurrences(&mut occ, &inst, &changed, &subst);
        let full = null_occurrences(&inst);
        // Same keys and same occurrence multisets (order may differ).
        assert_eq!(
            occ.keys().collect::<Vec<_>>(),
            full.keys().collect::<Vec<_>>()
        );
        for (n, entries) in &full {
            let mut a = occ[n].clone();
            let mut b = entries.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "occurrences of {n:?}");
        }
    }

    #[test]
    fn fold_may_cascade_through_shared_nulls() {
        // U(N0), U(5), V(N0, N1), V(5, N2):
        // σ = {N0 → 5} validates because V(5, N1)… does not exist — so the
        // U-driven fold fails; the V-driven fold {N0 → 5, N1 → N2}
        // validates U(N0) → U(5) ✓ and V → V ✓.
        let mut inst = Instance::new();
        inst.add("U", vec![Value::null(0)]).unwrap();
        inst.add("U", vec![v(5)]).unwrap();
        inst.add("V", vec![Value::null(0), Value::null(1)]).unwrap();
        inst.add("V", vec![v(5), Value::null(2)]).unwrap();
        let stats = core_minimize(&mut inst);
        assert_eq!(stats.nulls_folded, 2);
        assert_eq!(inst.len(), 2);
    }
}
