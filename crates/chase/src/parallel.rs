//! The parallel chase executor: scheduler sweeps on a worker pool.
//!
//! `chase_standard_parallel` (the [`SchedulerMode::Parallel`] arm of
//! [`crate::standard::chase_standard`]) runs the same worklist as the
//! sequential delta scheduler ([`crate::scheduler`]), but executes each
//! sweep's delta activations concurrently:
//!
//! 1. The dependency set is statically partitioned into **conflict-free
//!    groups** ([`crate::partition::Partition`]): two dependencies conflict
//!    iff one's conclusion relations intersect the other's premise or
//!    conclusion relations. Groups never interact within a sweep — one
//!    group's insertions can neither create nor satisfy another group's
//!    matches.
//! 2. Each sweep walks the dependencies in declaration order, collecting
//!    maximal **segments** of group-executable dependencies. A segment's
//!    groups become jobs on a [`WorkerPool`]: every worker evaluates
//!    against an immutable snapshot of the instance through a
//!    [`ShardView`] (snapshot ∪ private insertion buffer) and allocates
//!    fresh nulls from a disjoint strided label range.
//! 3. At the segment barrier the buffers are merged into the master
//!    instance in job order and routed through the scheduler — so the
//!    merged instance, and everything downstream, is deterministic
//!    regardless of thread scheduling.
//! 4. Dependencies whose conclusions contain equalities (egds, mixed
//!    tgd+egds) form segment boundaries and run sequentially at their
//!    declaration position, sharing the run-level [`NullMap`]; their null
//!    unifications use the same targeted invalidation as the sequential
//!    loop.
//!
//! Within a group, a worker routes its own insertions to later
//! dependencies of the same job via the [`TriggerIndex`], mirroring the
//! same-round cascading of the sequential loop. The result is identical to
//! [`SchedulerMode::Delta`] up to the renaming of labeled nulls (workers
//! draw from strided ranges, so labels differ, structure does not).
//!
//! [`SchedulerMode::Delta`]: crate::config::SchedulerMode::Delta
//! [`SchedulerMode::Parallel`]: crate::config::SchedulerMode::Parallel

use std::collections::BTreeMap;
use std::sync::Arc;

use grom_data::{DeltaLog, Instance, NullGenerator, StridedNullGenerator, Value};
use grom_lang::{Bindings, Dependency, Term, Var};

use grom_engine::{disjunct_satisfied, find_violation};
use grom_exec::{ShardView, WorkerPool};

use crate::config::ChaseConfig;
use crate::nullmap::NullMap;
use crate::partition::Partition;
use crate::result::{ChaseError, ChaseResult, ChaseStats};
use crate::scheduler::{delta_violations, run_dep_sequential, Pending, Scheduler};
use crate::standard::{check_executable, collect_violations};
use crate::trigger::TriggerIndex;

/// One worker job: the claimed worklist entries of one conflict group
/// within one segment, in dependency order.
struct GroupJob {
    work: Vec<(usize, Pending)>,
}

/// What a job hands back at the barrier.
struct GroupOutcome {
    /// Everything the job inserted, in per-relation insertion order.
    delta: DeltaLog,
    /// `(dep, relation) -> count`: how many of `delta`'s leading tuples of
    /// `relation` the worker already routed to `dep` in-sweep (worker-local
    /// cascading). The barrier posts only the remainders, so no activation
    /// sees the same tuple twice.
    consumed: BTreeMap<(usize, Arc<str>), usize>,
    /// Partial counters (rounds stay zero; the coordinator owns them).
    stats: ChaseStats,
    /// Largest null label drawn from the job's strided range, if any.
    max_null: Option<u64>,
    /// Denial / comparison failure, tagged with its dependency index so
    /// the coordinator can report the earliest one deterministically.
    failure: Option<(usize, ChaseError)>,
}

/// Apply a tgd-style disjunct (no equalities — the partition guarantees
/// it) into a worker's shard view, inventing fresh nulls from the worker's
/// strided range.
///
/// Keep in sync with [`crate::standard::apply_disjunct`]: this is its
/// equality-free half, writing through a [`ShardView`] instead of the
/// master instance (which also removes the null-map resolution — group
/// reads never observe mapped labels).
fn apply_group_disjunct(
    view: &mut ShardView<'_>,
    dep: &Dependency,
    bindings: &Bindings,
    nulls: &mut StridedNullGenerator,
    stats: &mut ChaseStats,
) -> Result<(), ChaseError> {
    let disjunct = &dep.disjuncts[0];
    debug_assert!(disjunct.eqs.is_empty(), "eq disjuncts run sequentially");

    // Comparisons over premise variables: if they do not hold for this
    // match, no repair can ever satisfy this disjunct.
    for c in &disjunct.cmps {
        if !bindings.eval_comparison(c).unwrap_or(false) {
            return Err(ChaseError::Failure {
                dependency: dep.name.clone(),
                detail: format!("disjunct comparison `{c}` cannot be satisfied at {bindings}"),
            });
        }
    }

    if disjunct.atoms.is_empty() {
        return Ok(());
    }
    let mut fresh: BTreeMap<Var, Value> = BTreeMap::new();
    for atom in &disjunct.atoms {
        let mut row = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            let v = match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => match bindings.get(v) {
                    Some(val) => val.clone(),
                    None => fresh
                        .entry(v.clone())
                        .or_insert_with(|| {
                            stats.nulls_invented += 1;
                            nulls.fresh()
                        })
                        .clone(),
                },
            };
            row.push(v);
        }
        if view.insert(&atom.predicate, row.into())? {
            stats.tuples_inserted += 1;
        }
    }
    stats.tgd_applications += 1;
    Ok(())
}

/// Run one group's claimed work against a snapshot. Mirrors the
/// sequential per-dependency body, with two parallel-specific twists: all
/// reads go through the shard view, and freshly inserted tuples are routed
/// *locally* to later dependencies of the same job (cross-group routing
/// happens at the barrier — by construction no other group can read them).
///
/// Keep the claim/evaluate/denial handling in sync with
/// [`crate::scheduler::run_dep_sequential`] — the evaluation halves are
/// deliberately parallel texts over different databases and sinks.
fn run_group_job(
    base: &Instance,
    deps: &[Dependency],
    triggers: &TriggerIndex,
    mut job: GroupJob,
    mut nulls: StridedNullGenerator,
) -> GroupOutcome {
    let mut view = ShardView::new(base);
    let mut delta = DeltaLog::default();
    let mut consumed: BTreeMap<(usize, Arc<str>), usize> = BTreeMap::new();
    let mut stats = ChaseStats::default();
    let fail =
        |k: usize, e: ChaseError, stats: ChaseStats, nulls: &StridedNullGenerator| GroupOutcome {
            delta: DeltaLog::default(),
            consumed: BTreeMap::new(),
            stats,
            max_null: nulls.max_allocated(),
            failure: Some((k, e)),
        };

    for slot in 0..job.work.len() {
        let (k, pending) = std::mem::replace(&mut job.work[slot], (0, Pending::Idle));
        let dep = &deps[k];
        let violations = match pending {
            Pending::Idle => continue,
            Pending::Full => {
                stats.full_rescans += 1;
                if dep.is_denial() {
                    if let Some(v) = find_violation(&view, dep) {
                        let e = ChaseError::Failure {
                            dependency: dep.name.clone(),
                            detail: format!("denial premise matched at {}", v.bindings),
                        };
                        return fail(k, e, stats, &nulls);
                    }
                    continue;
                }
                collect_violations(&view, dep)
            }
            Pending::Delta(map) => {
                stats.delta_activations += 1;
                stats.delta_tuples_seeded += map.values().map(Vec::len).sum::<usize>();
                let vs = delta_violations(&view, dep, &map, dep.is_denial());
                if dep.is_denial() {
                    if let Some(b) = vs.first() {
                        let e = ChaseError::Failure {
                            dependency: dep.name.clone(),
                            detail: format!("denial premise matched at {b}"),
                        };
                        return fail(k, e, stats, &nulls);
                    }
                    continue;
                }
                vs
            }
        };

        for b in &violations {
            // No null map here: group dependencies never unify nulls, and
            // relations they read contain no mapped labels (a mapped label
            // would have rewritten — and invalidated — the relation).
            if disjunct_satisfied(&view, &dep.disjuncts[0], b) {
                continue;
            }
            if let Err(e) = apply_group_disjunct(&mut view, dep, b, &mut nulls, &mut stats) {
                return fail(k, e, stats, &nulls);
            }
        }

        let log = view.take_delta();
        if log.is_empty() {
            continue;
        }
        // Same-sweep cascading within the job: route to *later* entries
        // only; earlier ones were already processed, exactly as in the
        // sequential round, and will see these tuples via the barrier.
        // Per-relation logs accumulate into `delta` in slot order, so the
        // tuples delivered to a later entry are exactly a prefix of the
        // job delta — recorded in `consumed` so the barrier post routes
        // only the remainder to that dependency.
        for (rel, tuples) in log.relations() {
            for &target in triggers.triggered_by(rel) {
                if let Some(pos) = job.work[slot + 1..]
                    .iter()
                    .position(|(kk, _)| *kk == target)
                {
                    job.work[slot + 1 + pos].1.add_delta(rel, tuples);
                    *consumed.entry((target, rel.clone())).or_default() += tuples.len();
                }
            }
        }
        delta.absorb(&log);
    }

    GroupOutcome {
        delta,
        consumed,
        stats,
        max_null: nulls.max_allocated(),
        failure: None,
    }
}

/// The parallel standard chase: semantics of
/// [`crate::scheduler::chase_standard_delta`], sweeps executed by a worker
/// pool over conflict-free dependency groups.
pub(crate) fn chase_standard_parallel(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
    threads: usize,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }

    let mut inst = start;
    let mut stats = ChaseStats::default();
    let mut nullgen = NullGenerator::starting_at(inst.max_null_label().map_or(0, |l| l + 1));
    let mut nullmap = NullMap::new();
    let mut sched = Scheduler::new(deps);
    let partition = Partition::build(deps, sched.triggers());
    let pool = WorkerPool::new(threads);
    inst.begin_delta_tracking();

    loop {
        if stats.rounds >= config.max_rounds {
            return Err(ChaseError::RoundLimit {
                rounds: stats.rounds,
            });
        }
        stats.rounds += 1;
        if !sched.has_work() {
            break;
        }

        let mut k = 0;
        while k < deps.len() {
            if partition.group_of(k).is_none() {
                // Equality-bearing dependency: a segment boundary, run
                // sequentially at its declaration position.
                run_dep_sequential(
                    &mut inst,
                    deps,
                    k,
                    &mut sched,
                    &mut nullmap,
                    &mut nullgen,
                    &mut stats,
                )?;
                k += 1;
                continue;
            }

            // Collect the maximal segment of group-executable
            // dependencies, claiming their pending work by group.
            let mut jobs: BTreeMap<usize, GroupJob> = BTreeMap::new();
            while k < deps.len() {
                let Some(g) = partition.group_of(k) else {
                    break;
                };
                let pending = sched.take(k);
                jobs.entry(g)
                    .or_insert_with(|| GroupJob { work: Vec::new() })
                    .work
                    .push((k, pending));
                k += 1;
            }
            let jobs: Vec<GroupJob> = jobs
                .into_values()
                .filter(|j| j.work.iter().any(|(_, p)| !matches!(p, Pending::Idle)))
                .collect();
            if jobs.is_empty() {
                continue;
            }

            // Snapshot-execute the segment. Null ranges and result order
            // are functions of the job index, so the sweep is
            // deterministic under any thread schedule.
            let base_label = nullgen.peek_next();
            let stride = jobs.len() as u64;
            let triggers = sched.triggers();
            let snapshot: &Instance = &inst;
            let outcomes = pool.run(jobs, |j, job| {
                let nulls = StridedNullGenerator::new(base_label, j as u64, stride);
                run_group_job(snapshot, deps, triggers, job, nulls)
            });

            // Barrier: report the earliest failure (by dependency index,
            // for determinism), else merge buffers in job order and route
            // the merged deltas.
            let earliest_failure = outcomes
                .iter()
                .filter_map(|o| o.failure.as_ref())
                .min_by_key(|(fk, _)| *fk);
            if let Some((_, e)) = earliest_failure {
                return Err(e.clone());
            }
            // Tracking is suspended for the merge: the group logs already
            // carry every inserted tuple, so they are routed directly
            // instead of being re-logged by the master instance.
            inst.end_delta_tracking();
            for o in &outcomes {
                stats.absorb(&o.stats);
                if let Some(m) = o.max_null {
                    nullgen.advance_to(m + 1);
                }
                inst.absorb_delta(&o.delta)?;
                sched.post_job(&o.delta, &o.consumed);
            }
            inst.begin_delta_tracking();
        }
    }

    inst.end_delta_tracking();
    Ok(ChaseResult {
        instance: inst,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerMode;
    use crate::standard::{all_satisfied, chase_standard, chase_standard_full_rescan};
    use grom_data::canonical_render;
    use grom_lang::parser::{parse_dependency, parse_program};

    fn inst(facts: &[(&str, &[i64])]) -> Instance {
        let mut i = Instance::new();
        for (rel, vals) in facts {
            i.add(*rel, vals.iter().map(|&v| Value::int(v)).collect())
                .unwrap();
        }
        i
    }

    fn par(threads: usize) -> ChaseConfig {
        ChaseConfig::default().with_scheduler(SchedulerMode::Parallel { threads })
    }

    #[test]
    fn independent_partitions_match_sequential() {
        // Four disjoint copy chains; each is one conflict group.
        let mut text = String::new();
        for p in 0..4 {
            for i in (0..3).rev() {
                text.push_str(&format!(
                    "tgd t{p}_{i}: C{p}L{i}(x) -> C{p}L{}(x).\n",
                    i + 1
                ));
            }
        }
        let prog = parse_program(&text).unwrap();
        let mut start = Instance::new();
        for p in 0..4 {
            for r in 0..10 {
                start.add(format!("C{p}L0"), vec![Value::int(r)]).unwrap();
            }
        }
        let seq = chase_standard(start.clone(), &prog.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &prog.deps, &par(4)).unwrap();
        // Constant-only chains: byte-identical instances.
        assert_eq!(seq.instance.to_string(), parl.instance.to_string());
        assert!(parl.stats.delta_activations > 0);
    }

    #[test]
    fn existential_nulls_match_up_to_renaming() {
        let p = parse_program(
            "tgd a: S(x) -> T(x, w), U(w).\n\
             tgd b: S2(x) -> V(x, w).",
        )
        .unwrap();
        let start = inst(&[("S", &[1]), ("S", &[2]), ("S2", &[7])]);
        let seq = chase_standard(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &p.deps, &par(2)).unwrap();
        assert_eq!(
            canonical_render(&seq.instance),
            canonical_render(&parl.instance)
        );
        assert_eq!(seq.stats.nulls_invented, parl.stats.nulls_invented);
        assert!(all_satisfied(&parl.instance, &p.deps));
    }

    #[test]
    fn egds_run_sequentially_and_agree() {
        let m = parse_dependency("tgd m: S(x) -> T(x, y).").unwrap();
        let k = parse_dependency("tgd k: S2(x, y) -> T(x, y).").unwrap();
        let e = parse_dependency("egd e: T(x, y1), T(x, y2) -> y1 = y2.").unwrap();
        let deps = vec![m, k, e];
        let start = inst(&[("S", &[1]), ("S2", &[1, 42])]);
        let seq =
            chase_standard_full_rescan(start.clone(), &deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &deps, &par(3)).unwrap();
        assert_eq!(
            canonical_render(&seq.instance),
            canonical_render(&parl.instance)
        );
        let t: Vec<_> = parl.instance.tuples("T").collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].get(1), Some(&Value::int(42)));
    }

    #[test]
    fn egd_between_tgds_splits_the_sweep_into_segments() {
        // tgd | egd | tgd: the egd is a segment boundary, so each sweep
        // runs two pool segments around a sequential unification — the
        // shape the declaration-order guarantee is about.
        let p = parse_program(
            "tgd a: S(x) -> T(x, w).\n\
             egd e: T(x, y1), T(x, y2) -> y1 = y2.\n\
             tgd b: S2(x, y) -> T(x, y).",
        )
        .unwrap();
        let start = inst(&[("S", &[1]), ("S2", &[1, 9]), ("S2", &[2, 3])]);
        let seq =
            chase_standard_full_rescan(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &p.deps, &par(2)).unwrap();
        assert_eq!(
            canonical_render(&seq.instance),
            canonical_render(&parl.instance)
        );
        // The unification resolved a's invented null to 9.
        let mut ys: Vec<_> = parl
            .instance
            .tuples("T")
            .filter_map(|t| t.get(1).unwrap().as_int())
            .collect();
        ys.sort_unstable();
        assert_eq!(ys, vec![3, 9]);
        assert!(all_satisfied(&parl.instance, &p.deps));
    }

    #[test]
    fn denials_fail_deterministically() {
        let p = parse_program(
            "tgd a: S(x) -> T(x, x).\n\
             dep n: T(x, x) -> false.",
        )
        .unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), &p.deps, &par(4));
        match res {
            Err(ChaseError::Failure { dependency, .. }) => {
                assert_eq!(dependency.as_ref(), "n");
            }
            other => panic!("expected denial failure, got {other:?}"),
        }
    }

    #[test]
    fn round_budget_is_honored() {
        let dep = parse_dependency("tgd m: R(x, y) -> R(y, z).").unwrap();
        let res = chase_standard(inst(&[("R", &[1, 2])]), &[dep], &par(2).with_max_rounds(20));
        assert!(matches!(res, Err(ChaseError::RoundLimit { rounds: 20 })));
    }

    #[test]
    fn same_group_cascade_completes_within_a_sweep() {
        // Forward-declared chain: worker-local routing lets the whole
        // chain cascade inside one sweep, like the sequential round.
        let p = parse_program(
            "tgd t0: L0(x) -> L1(x).\n\
             tgd t1: L1(x) -> L2(x).\n\
             tgd t2: L2(x) -> L3(x).",
        )
        .unwrap();
        let start = inst(&[("L0", &[1]), ("L0", &[2])]);
        let seq = chase_standard(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &p.deps, &par(2)).unwrap();
        assert_eq!(seq.instance.to_string(), parl.instance.to_string());
        assert_eq!(parl.instance.tuples("L3").count(), 2);
        // The cascade needs no extra sweeps beyond the sequential rounds,
        // and the barrier must not re-activate dependencies on tuples the
        // worker-local routing already delivered.
        assert_eq!(parl.stats.rounds, seq.stats.rounds);
        assert_eq!(parl.stats.delta_activations, seq.stats.delta_activations);
    }

    #[test]
    fn single_thread_parallel_mode_still_works() {
        let p = parse_program("tgd a: S(x) -> T(x).").unwrap();
        let res = chase_standard(inst(&[("S", &[5])]), &p.deps, &par(1)).unwrap();
        assert_eq!(res.instance.tuples("T").count(), 1);
    }
}
