//! The parallel chase executor: scheduler sweeps on a worker pool.
//!
//! `chase_standard_parallel` (the [`SchedulerMode::Parallel`] arm of
//! [`crate::standard::chase_standard`]) runs the same worklist as the
//! sequential delta scheduler ([`crate::scheduler`]), but executes each
//! sweep's activations concurrently:
//!
//! 1. The dependency set is statically partitioned into **conflict-free
//!    groups** ([`crate::partition::Partition`]): two dependencies conflict
//!    iff one's conclusion relations intersect the other's premise or
//!    conclusion relations. Groups never interact within a sweep — one
//!    group's insertions can neither create nor satisfy another group's
//!    matches. *Every* dependency is group-executable, egds included.
//! 2. Each sweep claims the whole worklist at once; the groups with
//!    pending work become jobs on a [`WorkerPool`]. Every worker evaluates
//!    against an immutable snapshot of the instance through a
//!    [`ShardView`] (snapshot ∪ private insertion buffer) and allocates
//!    fresh nulls from a disjoint strided label range.
//! 3. Equality repairs never touch the instance from a worker: they
//!    **collect obligations** — raw value pairs, buffered in the shard
//!    view — against a read-only snapshot of the run-level [`NullMap`],
//!    plus a worker-local overlay so later violations of the same job see
//!    the pending merges and are skipped
//!    ([`grom_engine::disjunct_satisfied_resolved`]).
//! 4. At the sweep barrier the coordinator merges the insertion buffers in
//!    job order, routes the merged deltas, then unifies the merged
//!    obligation sets **deterministically** — concatenated in job order
//!    and stably sorted by declaration index, so the unification order
//!    (and any constant-clash report) is a function of the job contents,
//!    never of thread scheduling. If anything merged, it applies **one**
//!    combined substitution pass and one targeted reader invalidation for
//!    the whole sweep (`apply_sweep_merges`, shared with the sequential
//!    loop).
//!
//! Within a group, a worker routes its own insertions to later
//! dependencies of the same job via the [`TriggerIndex`], mirroring the
//! same-round cascading of the sequential loop — including its
//! atom-bearing flush rule: once a job holds pending obligations, a later
//! atom-bearing dependency of the same job is *deferred* (the coordinator
//! re-marks it `Full`) so its embedding checks run after the barrier
//! substitution, never against stale stored tuples. The result is
//! identical to [`SchedulerMode::Delta`] up to the renaming of labeled
//! nulls (workers draw from strided ranges, so labels differ, structure
//! does not) — with one documented corner: dependencies in conflict-
//! *disconnected* groups that share labeled nulls only through the
//! *initial* instance evaluate against the sweep-start snapshot where the
//! sequential loop would flush first, and may keep a redundant (but
//! sound — the result is still a universal solution) fresh-null tuple the
//! sequential loop avoids. No dependency chain can create that sharing:
//! any dep copying a null between the two relation clusters would conflict
//! with both and merge the groups.
//!
//! [`SchedulerMode::Delta`]: crate::config::SchedulerMode::Delta
//! [`SchedulerMode::Parallel`]: crate::config::SchedulerMode::Parallel

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use grom_data::{DeltaLog, Instance, NullGenerator, StridedNullGenerator, Value};
use grom_lang::{Bindings, Dependency, Term, Var};
use grom_trace::{ActivationKind, ActivationRecord, Recorder, WorkerRecorder};

use grom_engine::{disjunct_satisfied, disjunct_satisfied_resolved, find_violation};
use grom_exec::{ShardView, WorkerPool};

use crate::checkpoint::ResumeState;
use crate::config::{CancelToken, ChaseConfig, InterruptReason};
use crate::nullmap::{NullMap, Unify};
use crate::partition::Partition;
use crate::result::{ChaseError, ChaseResult, ChaseStats};
use crate::scheduler::{
    apply_sweep_merges, concludes_atoms, delta_violations, interrupted_return, trip_check, Pending,
    Scheduler,
};
use crate::standard::{check_executable, collect_violations, eval_bound_term};
use crate::trigger::TriggerIndex;

/// The worker-observable slice of the run budget: cancellation and the
/// anchored wall-clock deadline. Tuple/null caps are coordinator-side only
/// — they gate on *global* counters no single worker can see.
struct TripWatch {
    deadline_at: Option<Instant>,
    cancel: CancelToken,
}

impl TripWatch {
    fn check(&self) -> Option<InterruptReason> {
        if self.cancel.is_cancelled() {
            return Some(InterruptReason::Cancelled);
        }
        match self.deadline_at {
            Some(at) if Instant::now() >= at => Some(InterruptReason::Deadline),
            _ => None,
        }
    }
}

/// One worker job: the claimed worklist entries of one conflict group
/// within one sweep, in dependency order.
struct GroupJob {
    /// The conflict-group index, for per-group utilization accounting.
    group: usize,
    work: Vec<(usize, Pending)>,
}

/// What a job hands back at the barrier.
struct GroupOutcome {
    /// Everything the job inserted, in per-relation insertion order.
    delta: DeltaLog,
    /// `(dep, relation) -> count`: how many of `delta`'s leading tuples of
    /// `relation` the worker already routed to `dep` in-sweep (worker-local
    /// cascading). The barrier posts only the remainders, so no activation
    /// sees the same tuple twice.
    consumed: BTreeMap<(usize, Arc<str>), usize>,
    /// Equality obligations collected by the job's egd repairs, tagged
    /// with their dependency index, in collection order. Kept on failure
    /// too: obligations recorded before the failing dependency are
    /// genuine, and the coordinator may find an earlier constant clash in
    /// them.
    obligations: Vec<(usize, Value, Value)>,
    /// Atom-bearing dependencies the worker *deferred* because the job had
    /// already recorded obligations: their embedding checks read stored
    /// tuples the overlay resolution cannot see through, so they must run
    /// after the barrier substitution. The coordinator re-schedules them
    /// `Full` (which subsumes the claimed work).
    deferred: Vec<usize>,
    /// Partial counters (rounds stay zero; the coordinator owns them).
    stats: ChaseStats,
    /// The job's conflict-group index, echoed back for the profile.
    group: usize,
    /// The worker-local activation records, folded into the run [`Recorder`]
    /// at the barrier in job order — so the profile (and the event stream)
    /// is deterministic under any thread schedule.
    trace: WorkerRecorder,
    /// Largest null label drawn from the job's strided range, if any.
    max_null: Option<u64>,
    /// Denial / comparison failure, tagged with its dependency index so
    /// the coordinator can report the earliest one deterministically.
    failure: Option<(usize, ChaseError)>,
    /// Cancellation / deadline / fault observed by the worker. Whether the
    /// job deferred wholesale (observed at entry) or completed (observed
    /// between slots), the coordinator folds this into the sweep-boundary
    /// interruption decision.
    observed: Option<InterruptReason>,
}

/// Resolve a value through the frozen sweep-start null map, then through
/// the worker-local obligation overlay. Stored tuples are clean with
/// respect to the frozen map (every sweep that merges also substitutes),
/// so the overlay carries all the action; the frozen hop is a cheap
/// safety net.
fn resolve_overlay(base: &NullMap, local: &mut NullMap, v: &Value) -> Value {
    local.resolve(&base.resolve_frozen(v))
}

/// Apply one disjunct inside a worker: comparisons are checked, equalities
/// are recorded as obligations into the shard view (and folded into the
/// worker-local overlay), atoms are inserted into the insertion buffer
/// with values resolved through the overlay, inventing fresh nulls from
/// the worker's strided range.
///
/// Keep in sync with [`crate::standard::apply_disjunct`]: this is its
/// snapshot-side twin — instance writes go through the [`ShardView`], and
/// null unification is deferred to the coordinator's barrier (a local
/// constant clash is *recorded*, not raised; the coordinator detects it
/// deterministically).
fn apply_group_disjunct(
    view: &mut ShardView<'_>,
    dep: &Dependency,
    bindings: &Bindings,
    base_nulls: &NullMap,
    local: &mut NullMap,
    nulls: &mut StridedNullGenerator,
    stats: &mut ChaseStats,
) -> Result<(), ChaseError> {
    let disjunct = &dep.disjuncts[0];

    // Comparisons over premise variables: if they do not hold for this
    // match, no repair can ever satisfy this disjunct.
    for c in &disjunct.cmps {
        if !bindings.eval_comparison(c).unwrap_or(false) {
            return Err(ChaseError::Failure {
                dependency: dep.name.clone(),
                detail: format!("disjunct comparison `{c}` cannot be satisfied at {bindings}"),
            });
        }
    }

    // Equalities become obligations: recorded raw for the coordinator's
    // deterministic barrier unification, folded into the local overlay so
    // later violations of this job see the pending merges.
    for (l, r) in &disjunct.eqs {
        let lv = eval_bound_term(l, bindings, dep)?;
        let rv = eval_bound_term(r, bindings, dep)?;
        let la = resolve_overlay(base_nulls, local, &lv);
        let ra = resolve_overlay(base_nulls, local, &rv);
        if la == ra {
            continue;
        }
        view.record_obligation(lv, rv);
        stats.obligations_batched += 1;
        // A Clash here (two distinct constants) leaves the overlay
        // untouched; the recorded obligation surfaces it at the barrier.
        let _ = local.unify(&la, &ra);
    }

    // Atoms: one fresh null per existential variable, shared across the
    // disjunct's atoms; bound values resolved through the overlay (the
    // barrier substitution cleans whatever the overlay cannot see).
    if !disjunct.atoms.is_empty() {
        let mut fresh: BTreeMap<Var, Value> = BTreeMap::new();
        for atom in &disjunct.atoms {
            let mut row = Vec::with_capacity(atom.args.len());
            for t in &atom.args {
                let v = match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => match bindings.get(v) {
                        Some(val) => resolve_overlay(base_nulls, local, val),
                        None => fresh
                            .entry(v.clone())
                            .or_insert_with(|| {
                                stats.nulls_invented += 1;
                                nulls.fresh()
                            })
                            .clone(),
                    },
                };
                row.push(v);
            }
            if view.insert(&atom.predicate, row.into())? {
                stats.tuples_inserted += 1;
            }
        }
        stats.tgd_applications += 1;
    }

    Ok(())
}

/// Run one group's claimed work against a snapshot. Mirrors the
/// sequential per-dependency body, with the parallel-specific twists: all
/// reads go through the shard view, equality repairs collect obligations
/// instead of unifying, and freshly inserted tuples are routed *locally*
/// to later dependencies of the same job (cross-group routing happens at
/// the barrier — by construction no other group can read them).
///
/// Keep the claim/evaluate/denial handling in sync with
/// [`crate::scheduler::run_dep_sequential`] — the evaluation halves are
/// deliberately parallel texts over different databases and sinks.
fn run_group_job(
    base: &Instance,
    deps: &[Dependency],
    triggers: &TriggerIndex,
    base_nulls: &NullMap,
    watch: &TripWatch,
    mut job: GroupJob,
    mut nulls: StridedNullGenerator,
) -> GroupOutcome {
    // Job-entry interruption point: the `worker` fault (a panic here is
    // contained by the pool's `run_timed_caught`) and the cancellation /
    // deadline watch. A job that observes either *before doing any work*
    // defers wholesale — every claimed entry is handed back for a Full
    // rescan. That is exact: conflict-free groups do not interact within a
    // sweep, so deferring the whole job is equivalent to the scheduler
    // having claimed it one sweep later.
    let mut observed: Option<InterruptReason> = if grom_fail::hit("worker") {
        Some(InterruptReason::Fault)
    } else {
        watch.check()
    };
    if observed.is_some() {
        let deferred: Vec<usize> = job
            .work
            .iter()
            .filter(|(_, p)| !matches!(p, Pending::Idle))
            .map(|(k, _)| *k)
            .collect();
        return GroupOutcome {
            delta: DeltaLog::default(),
            consumed: BTreeMap::new(),
            obligations: Vec::new(),
            deferred,
            stats: ChaseStats::default(),
            group: job.group,
            trace: WorkerRecorder::new(),
            max_null: None,
            failure: None,
            observed,
        };
    }

    let mut view = ShardView::new(base);
    let mut local = NullMap::new();
    let mut delta = DeltaLog::default();
    let mut consumed: BTreeMap<(usize, Arc<str>), usize> = BTreeMap::new();
    let mut obligations: Vec<(usize, Value, Value)> = Vec::new();
    let mut deferred: Vec<usize> = Vec::new();
    let mut stats = ChaseStats::default();
    let mut trace = WorkerRecorder::new();

    for slot in 0..job.work.len() {
        // Between claimed entries the watch is observe-only: a claimed job
        // completes its work (mid-job skips would break exactness), and
        // the coordinator acts on the observation at the sweep barrier.
        if observed.is_none() {
            observed = watch.check();
        }
        let (k, pending) = std::mem::replace(&mut job.work[slot], (0, Pending::Idle));
        let dep = &deps[k];
        // Mirror of the sequential loop's mid-sweep flush: once this job
        // holds pending obligations, an atom-bearing dependency must not
        // evaluate against the un-rewritten snapshot — defer it past the
        // barrier substitution instead (the coordinator re-marks it Full).
        if !obligations.is_empty() && concludes_atoms(dep) && !matches!(pending, Pending::Idle) {
            deferred.push(k);
            continue;
        }
        let t0 = Instant::now();
        let tuples0 = stats.tuples_inserted;
        let obligations0 = stats.obligations_batched;
        let dedup0 = view.dedup_hits();
        let mut failure: Option<ChaseError> = None;
        let (kind, seeded, violations) = match pending {
            Pending::Idle => continue,
            Pending::Full => {
                stats.full_rescans += 1;
                if dep.is_denial() {
                    if let Some(v) = find_violation(&view, dep) {
                        failure = Some(ChaseError::Failure {
                            dependency: dep.name.clone(),
                            detail: format!("denial premise matched at {}", v.bindings),
                        });
                    }
                    (ActivationKind::Full, 0, Vec::new())
                } else {
                    (ActivationKind::Full, 0, collect_violations(&view, dep))
                }
            }
            Pending::Delta(map) => {
                stats.delta_activations += 1;
                let seeded = map.values().map(Vec::len).sum::<usize>();
                stats.delta_tuples_seeded += seeded;
                let vs = delta_violations(&view, dep, &map, dep.is_denial(), &mut stats);
                if dep.is_denial() {
                    if let Some(b) = vs.first() {
                        failure = Some(ChaseError::Failure {
                            dependency: dep.name.clone(),
                            detail: format!("denial premise matched at {b}"),
                        });
                    }
                    (ActivationKind::Delta, seeded as u64, Vec::new())
                } else {
                    (ActivationKind::Delta, seeded as u64, vs)
                }
            }
        };

        // Idempotent repairs skip the recheck, exactly as in the
        // sequential loop: the view's insert dedups against both layers,
        // and with no equalities the local overlay cannot grow mid-batch.
        let direct = !violations.is_empty()
            && base_nulls.is_empty()
            && local.is_empty()
            && crate::scheduler::idempotent_repair(dep);
        for b in &violations {
            // Satisfied-under-pending-obligations recheck against the
            // overlay: earlier repairs of this job may already satisfy
            // the match without any instance rewrite. With no mapped
            // labels anywhere (egd-free sweeps, the common case) the
            // resolution is the identity and the raw bindings are checked
            // directly.
            let satisfied = if direct {
                false
            } else if base_nulls.is_empty() && local.is_empty() {
                disjunct_satisfied(&view, &dep.disjuncts[0], b)
            } else {
                disjunct_satisfied_resolved(&view, &dep.disjuncts[0], b, &mut |v| {
                    resolve_overlay(base_nulls, &mut local, v)
                })
            };
            if satisfied {
                continue;
            }
            if let Err(e) = apply_group_disjunct(
                &mut view, dep, b, base_nulls, &mut local, &mut nulls, &mut stats,
            ) {
                failure = Some(e);
                break;
            }
        }

        for (l, r) in view.take_obligations() {
            obligations.push((k, l, r));
        }
        trace.record(ActivationRecord {
            dep: k,
            kind,
            seeded,
            violations: violations.len() as u64,
            tuples: (stats.tuples_inserted - tuples0) as u64,
            obligations: (stats.obligations_batched - obligations0) as u64,
            dedup_hits: view.dedup_hits() - dedup0,
            wall_ns: t0.elapsed().as_nanos() as u64,
        });
        if let Some(e) = failure {
            return GroupOutcome {
                delta: DeltaLog::default(),
                consumed: BTreeMap::new(),
                obligations,
                deferred: Vec::new(),
                stats,
                group: job.group,
                trace,
                max_null: nulls.max_allocated(),
                failure: Some((k, e)),
                observed,
            };
        }

        let log = view.take_delta();
        if log.is_empty() {
            continue;
        }
        // Same-sweep cascading within the job: route to *later* entries
        // only; earlier ones were already processed, exactly as in the
        // sequential round, and will see these tuples via the barrier.
        // Per-relation logs accumulate into `delta` in slot order, so the
        // tuples delivered to a later entry are exactly a prefix of the
        // job delta — recorded in `consumed` so the barrier post routes
        // only the remainder to that dependency.
        for (rel, tuples) in log.relations() {
            for &target in triggers.triggered_by(rel) {
                if let Some(pos) = job.work[slot + 1..]
                    .iter()
                    .position(|(kk, _)| *kk == target)
                {
                    job.work[slot + 1 + pos].1.add_delta(rel, tuples);
                    *consumed.entry((target, rel.clone())).or_default() += tuples.len();
                }
            }
        }
        delta.absorb(&log);
    }

    GroupOutcome {
        delta,
        consumed,
        obligations,
        deferred,
        stats,
        group: job.group,
        trace,
        max_null: nulls.max_allocated(),
        failure: None,
        observed,
    }
}

/// The parallel standard chase: semantics of
/// [`crate::scheduler::chase_standard_delta`], sweeps executed by a worker
/// pool over conflict-free dependency groups, equality obligations unified
/// by the coordinator at the sweep barrier.
pub(crate) fn chase_standard_parallel(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
    threads: usize,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }
    chase_parallel_loop(ResumeState::fresh(start, deps), deps, config, threads)
}

/// Continue a checkpointed run on the parallel executor. Checkpoints are
/// sweep-aligned and mode-agnostic, so a run interrupted under any
/// scheduler resumes here.
pub(crate) fn chase_parallel_resume(
    state: ResumeState,
    deps: &[Dependency],
    config: &ChaseConfig,
    threads: usize,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }
    chase_parallel_loop(state, deps, config, threads)
}

fn chase_parallel_loop(
    state: ResumeState,
    deps: &[Dependency],
    config: &ChaseConfig,
    threads: usize,
) -> Result<ChaseResult, ChaseError> {
    let ResumeState {
        mut inst,
        rounds,
        next_null,
        mut nullmap,
        pending,
    } = state;
    let mut stats = ChaseStats {
        rounds,
        ..Default::default()
    };
    let mut nullgen = NullGenerator::starting_at(next_null);
    let mut sched = Scheduler::with_pending(deps, pending);
    let partition = Partition::build(deps, sched.triggers());
    let pool = WorkerPool::new(threads);
    let mode = format!("parallel{threads}");
    let names: Vec<String> = deps.iter().map(|d| d.name.to_string()).collect();
    let mut rec = Recorder::new(&names, &mode, &config.trace);
    let groups: Vec<usize> = (0..deps.len()).map(|k| partition.group_of(k)).collect();
    rec.set_groups(&groups);
    let budget = config.budget.anchored();
    let watch = TripWatch {
        deadline_at: budget.deadline_at(),
        cancel: config.cancel.clone(),
    };
    inst.begin_delta_tracking();

    loop {
        if stats.rounds >= config.max_rounds {
            let profile = Box::new(rec.finish());
            return Err(ChaseError::RoundLimit {
                rounds: stats.rounds,
                stats: Box::new(stats),
                profile,
            });
        }
        stats.rounds += 1;
        let sweep = stats.rounds as u64;
        if !sched.has_work() {
            break;
        }

        // Sweep-start interruption point, before any work of this sweep
        // (the aborted sweep is not counted).
        let mut tripped = trip_check(&budget, &config.cancel, &stats);
        if grom_fail::hit("sweep") {
            tripped.get_or_insert(InterruptReason::Fault);
        }
        if let Some(reason) = tripped {
            stats.rounds -= 1;
            return interrupted_return(
                reason,
                &mode,
                inst,
                &mut nullmap,
                &sched,
                stats,
                rec,
                nullgen.peek_next(),
            );
        }

        // Claim the whole sweep's worklist, bucketed by conflict group.
        // Egds claim like everyone else — no sequential segments remain.
        let mut buckets: BTreeMap<usize, GroupJob> = BTreeMap::new();
        for k in 0..deps.len() {
            let pending = sched.take(k);
            let g = partition.group_of(k);
            buckets
                .entry(g)
                .or_insert_with(|| GroupJob {
                    group: g,
                    work: Vec::new(),
                })
                .work
                .push((k, pending));
        }
        let jobs: Vec<GroupJob> = buckets
            .into_values()
            .filter(|j| j.work.iter().any(|(_, p)| !matches!(p, Pending::Idle)))
            .collect();
        if jobs.is_empty() {
            continue;
        }

        // Snapshot-execute the sweep. Null ranges and result order are
        // functions of the job index, so the sweep is deterministic under
        // any thread schedule.
        let base_label = nullgen.peek_next();
        let stride = jobs.len() as u64;
        let triggers = sched.triggers();
        let snapshot: &Instance = &inst;
        let frozen_nulls: &NullMap = &nullmap;
        let t_eval = Instant::now();
        let outcomes = match pool.run_timed_caught(jobs, |j, job| {
            let nulls = StridedNullGenerator::new(base_label, j as u64, stride);
            run_group_job(snapshot, deps, triggers, frozen_nulls, &watch, job, nulls)
        }) {
            Ok(outcomes) => outcomes,
            // A worker panic is contained by the pool (every thread is
            // still joined); surface it as a hard error instead of
            // aborting the process. The pool is stateless and reusable.
            Err(detail) => return Err(ChaseError::WorkerPanicked { detail }),
        };
        let evaluate_ns = t_eval.elapsed().as_nanos() as u64;
        let t_merge = Instant::now();

        // Barrier-entry fault point, plus the workers' observations (in
        // job order, so the recorded reason is deterministic).
        let mut tripped: Option<InterruptReason> = None;
        if grom_fail::hit("barrier") {
            tripped = Some(InterruptReason::Fault);
        }
        for (o, _) in &outcomes {
            if tripped.is_some() {
                break;
            }
            tripped = o.observed;
        }

        // Barrier, step 1 — unify the merged obligation sets on the
        // run-level null map: concatenate in job order, stable-sort by
        // declaration index (each dependency lives in exactly one job, so
        // per-dependency collection order is preserved), then unify.
        // Constant clashes surface here, deterministically.
        let mut obligations: Vec<&(usize, Value, Value)> = outcomes
            .iter()
            .flat_map(|(o, _)| o.obligations.iter())
            .collect();
        obligations.sort_by_key(|(k, _, _)| *k);
        let mut any_merge = false;
        let mut clash: Option<(usize, ChaseError)> = None;
        for (k, l, r) in obligations {
            match nullmap.unify(l, r) {
                Unify::Noop => {}
                Unify::Merged => {
                    any_merge = true;
                    stats.egd_merges += 1;
                }
                Unify::Clash(a, b) => {
                    clash = Some((*k, ChaseError::clash(&deps[*k].name, &a, &b)));
                    break;
                }
            }
        }

        // Barrier, step 2 — report the earliest failure by dependency
        // index (denials / comparisons from workers vs constant clashes
        // from the unification), mirroring declaration order.
        let worker_failure = outcomes
            .iter()
            .filter_map(|(o, _)| o.failure.as_ref())
            .min_by_key(|(fk, _)| *fk);
        let failure = match (worker_failure, clash) {
            (Some((wk, we)), Some((ck, ce))) => Some(if *wk <= ck { we.clone() } else { ce }),
            (Some((_, we)), None) => Some(we.clone()),
            (None, Some((_, ce))) => Some(ce),
            (None, None) => None,
        };
        if let Some(e) = failure {
            return Err(e);
        }

        // Barrier, step 3 — merge buffers into the master in job order
        // and route the merged deltas. Tracking is suspended for the
        // merge: the group logs already carry every inserted tuple, so
        // they are routed directly instead of being re-logged. Worker
        // trace buffers fold into the run recorder here, in job order, so
        // the profile is thread-schedule-independent.
        inst.end_delta_tracking();
        for (o, busy) in outcomes {
            stats.absorb(&o.stats);
            rec.group_job(o.group, busy.as_nanos() as u64);
            rec.merge_worker(sweep, o.trace);
            if let Some(m) = o.max_null {
                nullgen.advance_to(m + 1);
            }
            inst.absorb_delta(&o.delta)?;
            sched.post_job(&o.delta, &o.consumed);
            // Deps a worker deferred past the barrier substitution run as
            // full rescans next sweep, on the rewritten instance.
            for &k in &o.deferred {
                sched.reschedule_full(k);
            }
        }
        let merge_ns = t_merge.elapsed().as_nanos() as u64;

        // Coordinator-side budget check against the *global* counters the
        // absorb just updated (tuple/null caps live here, not in the
        // workers).
        if tripped.is_none() {
            tripped = trip_check(&budget, &config.cancel, &stats);
        }

        // Barrier, step 4 — one combined substitution pass and one
        // targeted invalidation for the whole sweep, if anything merged.
        if any_merge
            && apply_sweep_merges(
                &mut inst,
                &mut nullmap,
                &mut sched,
                &mut stats,
                &mut rec,
                sweep,
            )
        {
            tripped.get_or_insert(InterruptReason::Fault);
        }
        rec.end_sweep(sweep, Some(evaluate_ns), merge_ns);
        // Sweep-boundary interruption: the barrier has merged, routed and
        // substituted, and delta tracking is off — exactly the state a
        // checkpoint captures.
        if let Some(reason) = tripped {
            return interrupted_return(
                reason,
                &mode,
                inst,
                &mut nullmap,
                &sched,
                stats,
                rec,
                nullgen.peek_next(),
            );
        }
        inst.begin_delta_tracking();
    }

    inst.end_delta_tracking();
    Ok(ChaseResult {
        instance: inst,
        stats,
        profile: rec.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerMode;
    use crate::standard::{all_satisfied, chase_standard, chase_standard_full_rescan};
    use grom_data::canonical_render;
    use grom_lang::parser::{parse_dependency, parse_program};

    fn inst(facts: &[(&str, &[i64])]) -> Instance {
        let mut i = Instance::new();
        for (rel, vals) in facts {
            i.add(*rel, vals.iter().map(|&v| Value::int(v)).collect())
                .unwrap();
        }
        i
    }

    fn par(threads: usize) -> ChaseConfig {
        ChaseConfig::default().with_scheduler(SchedulerMode::Parallel { threads })
    }

    #[test]
    fn independent_partitions_match_sequential() {
        // Four disjoint copy chains; each is one conflict group.
        let mut text = String::new();
        for p in 0..4 {
            for i in (0..3).rev() {
                text.push_str(&format!(
                    "tgd t{p}_{i}: C{p}L{i}(x) -> C{p}L{}(x).\n",
                    i + 1
                ));
            }
        }
        let prog = parse_program(&text).unwrap();
        let mut start = Instance::new();
        for p in 0..4 {
            for r in 0..10 {
                start.add(format!("C{p}L0"), vec![Value::int(r)]).unwrap();
            }
        }
        let seq = chase_standard(start.clone(), &prog.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &prog.deps, &par(4)).unwrap();
        // Constant-only chains: byte-identical instances.
        assert_eq!(seq.instance.to_string(), parl.instance.to_string());
        assert!(parl.stats.delta_activations > 0);
    }

    #[test]
    fn existential_nulls_match_up_to_renaming() {
        let p = parse_program(
            "tgd a: S(x) -> T(x, w), U(w).\n\
             tgd b: S2(x) -> V(x, w).",
        )
        .unwrap();
        let start = inst(&[("S", &[1]), ("S", &[2]), ("S2", &[7])]);
        let seq = chase_standard(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &p.deps, &par(2)).unwrap();
        assert_eq!(
            canonical_render(&seq.instance),
            canonical_render(&parl.instance)
        );
        assert_eq!(seq.stats.nulls_invented, parl.stats.nulls_invented);
        assert!(all_satisfied(&parl.instance, &p.deps));
    }

    #[test]
    fn egds_collect_obligations_and_agree() {
        let m = parse_dependency("tgd m: S(x) -> T(x, y).").unwrap();
        let k = parse_dependency("tgd k: S2(x, y) -> T(x, y).").unwrap();
        let e = parse_dependency("egd e: T(x, y1), T(x, y2) -> y1 = y2.").unwrap();
        let deps = vec![m, k, e];
        let start = inst(&[("S", &[1]), ("S2", &[1, 42])]);
        let seq =
            chase_standard_full_rescan(start.clone(), &deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &deps, &par(3)).unwrap();
        assert_eq!(
            canonical_render(&seq.instance),
            canonical_render(&parl.instance)
        );
        let t: Vec<_> = parl.instance.tuples("T").collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].get(1), Some(&Value::int(42)));
        assert!(parl.stats.obligations_batched >= 1);
    }

    #[test]
    fn egd_between_tgds_no_longer_segments_the_sweep() {
        // tgd | egd | tgd: previously the egd was a sequential segment
        // boundary; now the whole dependency set runs as pool jobs and the
        // egd's obligations resolve at the barrier. Results must still
        // match the full-rescan reference exactly (up to null renaming).
        let p = parse_program(
            "tgd a: S(x) -> T(x, w).\n\
             egd e: T(x, y1), T(x, y2) -> y1 = y2.\n\
             tgd b: S2(x, y) -> T(x, y).",
        )
        .unwrap();
        // All three deps touch T: one conflict group, no `None` slots.
        let part = Partition::build(&p.deps, &TriggerIndex::build(&p.deps));
        assert_eq!(part.group_count(), 1);
        for k in 0..p.deps.len() {
            assert_eq!(part.group_of(k), 0);
        }
        let start = inst(&[("S", &[1]), ("S2", &[1, 9]), ("S2", &[2, 3])]);
        let seq =
            chase_standard_full_rescan(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &p.deps, &par(2)).unwrap();
        assert_eq!(
            canonical_render(&seq.instance),
            canonical_render(&parl.instance)
        );
        // The unification resolved a's invented null to 9.
        let mut ys: Vec<_> = parl
            .instance
            .tuples("T")
            .filter_map(|t| t.get(1).unwrap().as_int())
            .collect();
        ys.sort_unstable();
        assert_eq!(ys, vec![3, 9]);
        assert!(all_satisfied(&parl.instance, &p.deps));
    }

    #[test]
    fn parallel_merge_bearing_sweep_substitutes_once() {
        // Two egds over relations nobody writes: two independent pool
        // jobs collect obligations concurrently, the coordinator applies
        // ONE substitution pass at the barrier.
        let p = parse_program(
            "egd e1: T(x, y1), T(x, y2) -> y1 = y2.\n\
             egd e2: U(x, y1), U(x, y2) -> y1 = y2.",
        )
        .unwrap();
        let part = Partition::build(&p.deps, &TriggerIndex::build(&p.deps));
        assert_eq!(part.group_count(), 2);
        let mut start = Instance::new();
        start.add("T", vec![Value::int(1), Value::null(0)]).unwrap();
        start.add("T", vec![Value::int(1), Value::int(5)]).unwrap();
        start.add("U", vec![Value::int(2), Value::null(1)]).unwrap();
        start.add("U", vec![Value::int(2), Value::int(7)]).unwrap();
        let res = chase_standard(start, &p.deps, &par(2)).unwrap();
        assert_eq!(res.stats.substitution_passes, 1);
        assert_eq!(res.stats.egd_merges, 2);
        assert_eq!(res.instance.tuples("T").count(), 1);
        assert_eq!(res.instance.tuples("U").count(), 1);
    }

    #[test]
    fn constant_clash_is_detected_at_the_barrier() {
        let e = parse_dependency("egd e: T(x, y1), T(x, y2) -> y1 = y2.").unwrap();
        let start = inst(&[("T", &[1, 10]), ("T", &[1, 20])]);
        match chase_standard(start, &[e], &par(2)) {
            Err(ChaseError::Failure { dependency, .. }) => {
                assert_eq!(dependency.as_ref(), "e");
            }
            other => panic!("expected clash failure, got {other:?}"),
        }
    }

    #[test]
    fn denials_fail_deterministically() {
        let p = parse_program(
            "tgd a: S(x) -> T(x, x).\n\
             dep n: T(x, x) -> false.",
        )
        .unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), &p.deps, &par(4));
        match res {
            Err(ChaseError::Failure { dependency, .. }) => {
                assert_eq!(dependency.as_ref(), "n");
            }
            other => panic!("expected denial failure, got {other:?}"),
        }
    }

    #[test]
    fn round_budget_is_honored() {
        let dep = parse_dependency("tgd m: R(x, y) -> R(y, z).").unwrap();
        let res = chase_standard(inst(&[("R", &[1, 2])]), &[dep], &par(2).with_max_rounds(20));
        assert!(matches!(
            res,
            Err(ChaseError::RoundLimit { rounds: 20, .. })
        ));
    }

    #[test]
    fn same_group_cascade_completes_within_a_sweep() {
        // Forward-declared chain: worker-local routing lets the whole
        // chain cascade inside one sweep, like the sequential round.
        let p = parse_program(
            "tgd t0: L0(x) -> L1(x).\n\
             tgd t1: L1(x) -> L2(x).\n\
             tgd t2: L2(x) -> L3(x).",
        )
        .unwrap();
        let start = inst(&[("L0", &[1]), ("L0", &[2])]);
        let seq = chase_standard(start.clone(), &p.deps, &ChaseConfig::default()).unwrap();
        let parl = chase_standard(start, &p.deps, &par(2)).unwrap();
        assert_eq!(seq.instance.to_string(), parl.instance.to_string());
        assert_eq!(parl.instance.tuples("L3").count(), 2);
        // The cascade needs no extra sweeps beyond the sequential rounds,
        // and the barrier must not re-activate dependencies on tuples the
        // worker-local routing already delivered.
        assert_eq!(parl.stats.rounds, seq.stats.rounds);
        assert_eq!(parl.stats.delta_activations, seq.stats.delta_activations);
    }

    #[test]
    fn single_thread_parallel_mode_still_works() {
        let p = parse_program("tgd a: S(x) -> T(x).").unwrap();
        let res = chase_standard(inst(&[("S", &[5])]), &p.deps, &par(1)).unwrap();
        assert_eq!(res.instance.tuples("T").count(), 1);
    }

    #[test]
    fn injected_worker_panic_is_contained() {
        let _g = grom_fail::test_lock();
        grom_fail::install("worker:panic@1").unwrap();
        let p = parse_program("tgd a: S(x) -> T(x).").unwrap();
        let res = chase_standard(inst(&[("S", &[1]), ("S", &[2])]), &p.deps, &par(2));
        grom_fail::clear();
        match res {
            Err(ChaseError::WorkerPanicked { detail }) => {
                assert!(
                    detail.contains("injected panic"),
                    "unexpected panic detail: {detail}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // Containment leaves no poisoned state behind: the same engine
        // config chases to completion immediately afterwards.
        let ok = chase_standard(inst(&[("S", &[1])]), &p.deps, &par(2)).unwrap();
        assert_eq!(ok.instance.tuples("T").count(), 1);
    }

    #[test]
    fn sweep_interrupt_checkpoint_resume_matches_uninterrupted() {
        use crate::checkpoint::{chase_resume, Checkpoint};
        use crate::config::InterruptReason;
        use crate::result::ChaseOutcome;

        let _g = grom_fail::test_lock();
        // Declared consumer-first so the worker-local cascade cannot finish
        // everything in sweep 1: `b`'s work lands in sweep 2, which is
        // where the fault directive interrupts.
        let p = parse_program(
            "tgd b: T(x, y) -> U(y).\n\
             tgd a: S(x) -> T(x, y).",
        )
        .unwrap();
        let start = inst(&[("S", &[1]), ("S", &[2])]);
        let full = chase_standard(start.clone(), &p.deps, &par(2)).unwrap();

        grom_fail::install("sweep:interrupt@2").unwrap();
        let res = chase_standard(start, &p.deps, &par(2));
        grom_fail::clear();
        let interrupted = match res {
            Err(ChaseError::Interrupted(i)) => i,
            other => panic!("expected an interruption, got {other:?}"),
        };
        assert_eq!(interrupted.reason, InterruptReason::Fault);

        // Round-trip the checkpoint through its JSON form, then resume.
        let cp = Checkpoint::from_json(&interrupted.checkpoint.to_json()).unwrap();
        let resumed = match chase_resume(&cp, &p.deps, &par(2)).unwrap() {
            ChaseOutcome::Completed(r) => r,
            other => panic!("resume should complete, got {other:?}"),
        };
        assert_eq!(
            canonical_render(&resumed.instance),
            canonical_render(&full.instance)
        );
    }
}
