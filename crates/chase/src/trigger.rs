//! Static trigger indexing for the delta-driven chase scheduler.
//!
//! The premise of a dependency can only gain new matches when a relation it
//! reads gains new tuples. The [`TriggerIndex`] precomputes, for every
//! relation name appearing in a positive premise literal, the set of
//! dependencies it *triggers* — so the scheduler can route per-relation
//! deltas straight to the dependencies that might care, instead of
//! re-evaluating every premise against the whole instance each round.
//!
//! Negated premise literals are deliberately excluded: the executable
//! fragment the chase accepts has no premise negation (the rewriter
//! eliminates it first; see [`crate::standard`]), and negation is
//! anti-monotone anyway — new tuples can only *remove* matches, never
//! create violations through a negated literal.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use grom_data::Instance;
use grom_lang::{Dependency, Literal, Term, Var};

/// Relation name → indices of the dependencies whose premise mentions it
/// positively.
#[derive(Debug, Clone, Default)]
pub struct TriggerIndex {
    by_relation: HashMap<Arc<str>, Vec<usize>>,
}

impl TriggerIndex {
    /// Build the index for `deps`; dependency `k` is triggered by every
    /// relation named in a positive literal of `deps[k].premise`.
    pub fn build(deps: &[Dependency]) -> Self {
        let mut by_relation: HashMap<Arc<str>, Vec<usize>> = HashMap::new();
        for (k, dep) in deps.iter().enumerate() {
            for lit in &dep.premise {
                if let Literal::Pos(a) = lit {
                    let slot = by_relation.entry(a.predicate.clone()).or_default();
                    // Premises may mention a relation twice (self-joins);
                    // one trigger entry suffices.
                    if slot.last() != Some(&k) {
                        slot.push(k);
                    }
                }
            }
        }
        Self { by_relation }
    }

    /// The dependencies triggered by new tuples in `relation`, in
    /// dependency order (possibly empty).
    pub fn triggered_by(&self, relation: &str) -> &[usize] {
        self.by_relation
            .get(relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct triggering relations.
    pub fn relation_count(&self) -> usize {
        self.by_relation.len()
    }
}

/// The composite join-key position sets each relation will be probed on
/// when chasing `deps`, derived from the same static premise analysis the
/// trigger index performs.
///
/// For a premise atom, a position is a *probe key* when its term is a
/// constant or a variable shared with another premise literal — exactly the
/// positions the evaluator's scan patterns bind when that atom is joined
/// last. For a disjunct (conclusion) atom, the probe keys are constants and
/// universal variables: satisfaction checks scan conclusions with premise
/// bindings seeded. Only sets of ≥ 2 positions are reported; single
/// columns are already covered by the per-column indexes.
pub fn join_keys(deps: &[Dependency]) -> BTreeMap<Arc<str>, BTreeSet<Vec<usize>>> {
    let mut out: BTreeMap<Arc<str>, BTreeSet<Vec<usize>>> = BTreeMap::new();
    let add =
        |out: &mut BTreeMap<Arc<str>, BTreeSet<Vec<usize>>>, rel: &Arc<str>, cols: Vec<usize>| {
            if cols.len() >= 2 {
                out.entry(rel.clone()).or_default().insert(cols);
            }
        };
    for dep in deps {
        // How many premise literals mention each variable?
        let mut occurs: HashMap<Var, usize> = HashMap::new();
        for lit in &dep.premise {
            let atom = match lit {
                Literal::Pos(a) | Literal::Neg(a) => a,
                Literal::Cmp(_) => continue,
            };
            let mut vars = BTreeSet::new();
            atom.collect_vars(&mut vars);
            for v in vars {
                *occurs.entry(v).or_default() += 1;
            }
        }
        for lit in &dep.premise {
            let atom = match lit {
                Literal::Pos(a) | Literal::Neg(a) => a,
                Literal::Cmp(_) => continue,
            };
            let cols: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => occurs.get(v).copied().unwrap_or(0) >= 2,
                })
                .map(|(i, _)| i)
                .collect();
            add(&mut out, &atom.predicate, cols);
        }
        let universal: BTreeSet<Var> = dep.universal_vars().into_iter().collect();
        for d in &dep.disjuncts {
            for atom in &d.atoms {
                let cols: Vec<usize> = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => universal.contains(v),
                    })
                    .map(|(i, _)| i)
                    .collect();
                add(&mut out, &atom.predicate, cols);
            }
        }
    }
    out
}

/// Install the [`join_keys`] of `deps` as composite-key indexes on `inst`.
/// Relations that do not exist yet remember the registration and build the
/// index when first created (see [`Instance::register_key`]). The chase
/// dispatcher calls this once per run, before the first sweep.
pub fn register_join_keys(inst: &mut Instance, deps: &[Dependency]) {
    for (rel, keys) in join_keys(deps) {
        for cols in keys {
            inst.register_key(&rel, &cols);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::parser::parse_program;

    #[test]
    fn premise_relations_trigger_their_dependencies() {
        let p = parse_program(
            "tgd a: S(x), R(x, y) -> T(x).\n\
             tgd b: R(x, y) -> U(y).\n\
             egd e: T(x), U(x) -> x = x.",
        )
        .unwrap();
        let ix = TriggerIndex::build(&p.deps);
        assert_eq!(ix.triggered_by("S"), &[0]);
        assert_eq!(ix.triggered_by("R"), &[0, 1]);
        assert_eq!(ix.triggered_by("T"), &[2]);
        assert_eq!(ix.triggered_by("U"), &[2]);
        // Conclusion-only relations trigger nothing.
        assert!(ix.triggered_by("Absent").is_empty());
        assert_eq!(ix.relation_count(), 4);
    }

    #[test]
    fn self_joins_register_once() {
        let p = parse_program("egd e: T(x, a), T(x, b) -> a = b.").unwrap();
        let ix = TriggerIndex::build(&p.deps);
        assert_eq!(ix.triggered_by("T"), &[0]);
    }

    #[test]
    fn join_keys_cover_shared_vars_and_conclusions() {
        let p = parse_program(
            "tgd a: R(x, y), S(y, x) -> T(x, y).\n\
             tgd b: U(x, x, z) -> V(z).",
        )
        .unwrap();
        let keys = join_keys(&p.deps);
        // R and S join on both columns (x and y are each shared).
        assert!(keys["R"].contains(&vec![0, 1]));
        assert!(keys["S"].contains(&vec![0, 1]));
        // The conclusion T is probed with both universal vars bound.
        assert!(keys["T"].contains(&vec![0, 1]));
        // U's repeated variable counts as one literal: x occurs in one
        // literal only, z too — no multi-column key, and V is unary.
        assert!(!keys.contains_key("U"));
        assert!(!keys.contains_key("V"));
    }

    #[test]
    fn register_join_keys_installs_indexes_eagerly_and_lazily() {
        let p = parse_program("tgd a: R(x, y), S(y, x) -> T(x, y).").unwrap();
        let mut inst = Instance::new();
        inst.add("R", vec![1.into(), 2.into()]).unwrap();
        register_join_keys(&mut inst, &p.deps);
        assert!(inst.relation("R").unwrap().key_specs().any(|k| k == [0, 1]));
        // T does not exist yet; the key appears when it is created.
        inst.add("T", vec![1.into(), 2.into()]).unwrap();
        assert!(inst.relation("T").unwrap().key_specs().any(|k| k == [0, 1]));
    }
}
