//! Static trigger indexing for the delta-driven chase scheduler.
//!
//! The premise of a dependency can only gain new matches when a relation it
//! reads gains new tuples. The [`TriggerIndex`] precomputes, for every
//! relation name appearing in a positive premise literal, the set of
//! dependencies it *triggers* — so the scheduler can route per-relation
//! deltas straight to the dependencies that might care, instead of
//! re-evaluating every premise against the whole instance each round.
//!
//! Negated premise literals are deliberately excluded: the executable
//! fragment the chase accepts has no premise negation (the rewriter
//! eliminates it first; see [`crate::standard`]), and negation is
//! anti-monotone anyway — new tuples can only *remove* matches, never
//! create violations through a negated literal.

use std::collections::HashMap;
use std::sync::Arc;

use grom_lang::{Dependency, Literal};

/// Relation name → indices of the dependencies whose premise mentions it
/// positively.
#[derive(Debug, Clone, Default)]
pub struct TriggerIndex {
    by_relation: HashMap<Arc<str>, Vec<usize>>,
}

impl TriggerIndex {
    /// Build the index for `deps`; dependency `k` is triggered by every
    /// relation named in a positive literal of `deps[k].premise`.
    pub fn build(deps: &[Dependency]) -> Self {
        let mut by_relation: HashMap<Arc<str>, Vec<usize>> = HashMap::new();
        for (k, dep) in deps.iter().enumerate() {
            for lit in &dep.premise {
                if let Literal::Pos(a) = lit {
                    let slot = by_relation.entry(a.predicate.clone()).or_default();
                    // Premises may mention a relation twice (self-joins);
                    // one trigger entry suffices.
                    if slot.last() != Some(&k) {
                        slot.push(k);
                    }
                }
            }
        }
        Self { by_relation }
    }

    /// The dependencies triggered by new tuples in `relation`, in
    /// dependency order (possibly empty).
    pub fn triggered_by(&self, relation: &str) -> &[usize] {
        self.by_relation
            .get(relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct triggering relations.
    pub fn relation_count(&self) -> usize {
        self.by_relation.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::parser::parse_program;

    #[test]
    fn premise_relations_trigger_their_dependencies() {
        let p = parse_program(
            "tgd a: S(x), R(x, y) -> T(x).\n\
             tgd b: R(x, y) -> U(y).\n\
             egd e: T(x), U(x) -> x = x.",
        )
        .unwrap();
        let ix = TriggerIndex::build(&p.deps);
        assert_eq!(ix.triggered_by("S"), &[0]);
        assert_eq!(ix.triggered_by("R"), &[0, 1]);
        assert_eq!(ix.triggered_by("T"), &[2]);
        assert_eq!(ix.triggered_by("U"), &[2]);
        // Conclusion-only relations trigger nothing.
        assert!(ix.triggered_by("Absent").is_empty());
        assert_eq!(ix.relation_count(), 4);
    }

    #[test]
    fn self_joins_register_once() {
        let p = parse_program("egd e: T(x, a), T(x, b) -> a = b.").unwrap();
        let ix = TriggerIndex::build(&p.deps);
        assert_eq!(ix.triggered_by("T"), &[0]);
    }
}
