//! The restricted chase for standard dependencies (tgds, egds, denials).
//!
//! The chase repeatedly looks for *violations* — premise matches for which
//! the (single) disjunct is not already satisfied — and repairs them:
//!
//! * **tgd-style** disjuncts add the conclusion atoms, witnessing each
//!   existential variable with a fresh labeled null (the *restricted* chase:
//!   a violation is only repaired if no extension homomorphism already
//!   satisfies the conclusion, so the engine never bloats instances with
//!   redundant nulls);
//! * **egd-style** disjuncts unify values through a [`NullMap`]; equating
//!   two distinct constants is a chase failure;
//! * **denials** (zero disjuncts) fail on any premise match;
//! * mixed disjuncts (atoms + equalities) combine both behaviours, and a
//!   disjunct whose comparisons do not hold under the match can never be
//!   repaired — also a failure. (These arise from greedy-ded scenarios.)
//!
//! For weakly-acyclic programs the result is a **universal solution** in the
//! sense of Fagin–Kolaitis–Miller–Popa; termination for arbitrary programs
//! is enforced by the round budget.

use std::time::Instant;

use grom_data::{Instance, NullGenerator, Value};
use grom_lang::{Bindings, Dependency, Term, Var};
use grom_trace::{ActivationKind, ActivationRecord, Recorder};

use grom_engine::{disjunct_satisfied, evaluate_body_streaming, Control, Db};

use crate::checkpoint::{Checkpoint, ResumeState};
use crate::config::{ChaseConfig, InterruptReason};
use crate::nullmap::{NullMap, Unify};
use crate::result::{ChaseError, ChaseOutcome, ChaseResult, ChaseStats, Interrupted};
use crate::scheduler::{trip_check, Pending};

/// Reject dependencies the standard chase cannot execute.
pub(crate) fn check_executable(dep: &Dependency, allow_deds: bool) -> Result<(), ChaseError> {
    if dep.has_negated_premise() {
        return Err(ChaseError::NotExecutable {
            dependency: dep.name.clone(),
            reason: "premise contains negated literals; run the rewriter first".into(),
        });
    }
    if !allow_deds && dep.disjuncts.len() > 1 {
        return Err(ChaseError::NotExecutable {
            dependency: dep.name.clone(),
            reason: "disjunctive conclusion requires the ded chase".into(),
        });
    }
    Ok(())
}

/// Collect every violating premise match of `dep` in `db`.
pub(crate) fn collect_violations(db: &impl Db, dep: &Dependency) -> Vec<Bindings> {
    let mut out = Vec::new();
    evaluate_body_streaming(db, &dep.premise, &Bindings::new(), |b| {
        if !dep.disjuncts.iter().any(|d| disjunct_satisfied(db, d, b)) {
            out.push(b.clone());
        }
        Control::Continue
    });
    out
}

/// Resolve every value of a binding through the null map (bindings become
/// stale when egds merge nulls after the match was found).
pub(crate) fn resolve_bindings(b: &Bindings, nm: &mut NullMap) -> Bindings {
    let mut out = Bindings::new();
    for (v, val) in b.iter() {
        out.bind(v.clone(), nm.resolve(val));
    }
    out
}

/// Apply one disjunct to repair a violation. Returns `true` if any null
/// merge happened (the caller must re-normalize the instance).
/// The parallel executor's equality-free twin is `apply_group_disjunct`
/// in [`crate::parallel`] — keep the comparison and atom semantics of the
/// two in sync.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_disjunct(
    inst: &mut Instance,
    dep: &Dependency,
    disjunct_idx: usize,
    bindings: &Bindings,
    nullmap: &mut NullMap,
    nullgen: &mut NullGenerator,
    stats: &mut ChaseStats,
) -> Result<bool, ChaseError> {
    let disjunct = &dep.disjuncts[disjunct_idx];

    // Comparisons over premise variables: if they do not hold for this
    // match, no repair can ever satisfy this disjunct.
    for c in &disjunct.cmps {
        if !bindings.eval_comparison(c).unwrap_or(false) {
            return Err(ChaseError::Failure {
                dependency: dep.name.clone(),
                detail: format!("disjunct comparison `{c}` cannot be satisfied at {bindings}"),
            });
        }
    }

    let mut merged = false;

    // Equalities: each one is an obligation routed through the union-find;
    // the batched schedulers resolve the instance once per sweep, the
    // full-rescan reference once per merging dependency.
    for (l, r) in &disjunct.eqs {
        let lv = eval_bound_term(l, bindings, dep)?;
        let rv = eval_bound_term(r, bindings, dep)?;
        stats.obligations_batched += 1;
        match nullmap.unify(&lv, &rv) {
            Unify::Noop => {}
            Unify::Merged => {
                merged = true;
                stats.egd_merges += 1;
            }
            Unify::Clash(a, b) => return Err(ChaseError::clash(&dep.name, &a, &b)),
        }
    }

    // Atoms: one fresh null per existential variable, shared across the
    // disjunct's atoms.
    if !disjunct.atoms.is_empty() {
        let mut fresh: std::collections::BTreeMap<Var, Value> = Default::default();
        for atom in &disjunct.atoms {
            let mut row = Vec::with_capacity(atom.args.len());
            for t in &atom.args {
                let v = match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => match bindings.get(v) {
                        Some(val) => nullmap.resolve(val),
                        None => fresh
                            .entry(v.clone())
                            .or_insert_with(|| {
                                stats.nulls_invented += 1;
                                nullgen.fresh()
                            })
                            .clone(),
                    },
                };
                row.push(v);
            }
            if inst.insert(&atom.predicate, row.into())? {
                stats.tuples_inserted += 1;
            }
        }
        stats.tgd_applications += 1;
    }

    Ok(merged)
}

pub(crate) fn eval_bound_term(
    t: &Term,
    bindings: &Bindings,
    dep: &Dependency,
) -> Result<Value, ChaseError> {
    bindings
        .eval_term(t)
        .ok_or_else(|| ChaseError::NotExecutable {
            dependency: dep.name.clone(),
            reason: format!("equality term `{t}` is not bound by the premise"),
        })
}

/// Run the standard chase over `start` with `deps`.
///
/// `start` is the working database: for data-exchange scenarios this is the
/// source instance (the chase adds target tuples into the same instance;
/// source and target relation names are disjoint by construction).
///
/// Dispatches on [`ChaseConfig::scheduler`]: the default delta-driven
/// scheduler ([`crate::scheduler`]) seeds premise evaluation from the
/// tuples inserted since each dependency was last checked; the parallel
/// executor ([`crate::parallel`]) runs the same worklist in worker-pool
/// sweeps over conflict-free dependency groups; the legacy full-rescan
/// loop re-evaluates every premise against the whole instance each round.
/// All produce the same solutions (up to the usual renaming of labeled
/// nulls) and the same failure modes.
pub fn chase_standard(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    // Wire up the composite join-key indexes the static premise analysis
    // predicts, before the first sweep touches the instance. Relations the
    // chase has yet to create pick their keys up on first insert.
    let mut start = start;
    crate::trigger::register_join_keys(&mut start, deps);
    match config.scheduler {
        crate::config::SchedulerMode::Delta => {
            crate::scheduler::chase_standard_delta(start, deps, config)
        }
        crate::config::SchedulerMode::FullRescan => chase_standard_full_rescan(start, deps, config),
        crate::config::SchedulerMode::Parallel { threads } => {
            crate::parallel::chase_standard_parallel(start, deps, config, threads)
        }
    }
}

/// Budget-aware entry point: like [`chase_standard`], but a budget or
/// cancellation stop surfaces as [`ChaseOutcome::Interrupted`] (carrying
/// the instance-so-far and a resumable checkpoint) instead of an error.
pub fn chase_standard_outcome(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseOutcome, ChaseError> {
    ChaseOutcome::from_run(chase_standard(start, deps, config))
}

/// The classical round-based chase loop: every round re-evaluates every
/// dependency's premise against the entire instance. Kept as the reference
/// implementation (the delta scheduler must agree with it — see the
/// `property_delta` suite and the `e7_delta_scaling` bench) and as the
/// explicit [`SchedulerMode::FullRescan`] escape hatch.
///
/// [`SchedulerMode::FullRescan`]: crate::config::SchedulerMode::FullRescan
pub fn chase_standard_full_rescan(
    start: Instance,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }
    chase_full_rescan_loop(ResumeState::fresh(start, deps), deps, config)
}

/// Continue a checkpointed run on the full-rescan loop. The pending
/// worklist is ignored — every round rescans every premise anyway, so any
/// sweep-aligned checkpoint resumes exactly here.
pub(crate) fn chase_full_rescan_resume(
    state: ResumeState,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    for dep in deps {
        check_executable(dep, false)?;
    }
    chase_full_rescan_loop(state, deps, config)
}

fn chase_full_rescan_loop(
    state: ResumeState,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    let ResumeState {
        mut inst,
        rounds,
        next_null,
        mut nullmap,
        pending: _,
    } = state;
    let mut stats = ChaseStats {
        rounds,
        ..Default::default()
    };
    let mut nullgen = NullGenerator::starting_at(next_null);
    let names: Vec<String> = deps.iter().map(|d| d.name.to_string()).collect();
    let mut rec = Recorder::new(&names, "full_rescan", &config.trace);
    let budget = config.budget.anchored();

    // Checkpoints from this loop schedule every dependency Full: the next
    // round would have rescanned everything regardless of provenance.
    let interrupted = |reason: InterruptReason,
                       inst: Instance,
                       nullmap: &mut NullMap,
                       stats: ChaseStats,
                       rec: Recorder,
                       next_null: u64|
     -> Result<ChaseResult, ChaseError> {
        let checkpoint = Checkpoint::capture(
            "full_rescan",
            stats.rounds,
            next_null,
            &inst,
            nullmap,
            vec![Pending::Full; deps.len()],
        );
        Err(ChaseError::Interrupted(Box::new(Interrupted {
            reason,
            instance: inst,
            stats,
            profile: rec.finish(),
            checkpoint,
        })))
    };

    loop {
        if stats.rounds >= config.max_rounds {
            let profile = Box::new(rec.finish());
            return Err(ChaseError::RoundLimit {
                rounds: stats.rounds,
                stats: Box::new(stats),
                profile,
            });
        }

        // Round-start interruption point, before this round is counted.
        let mut tripped = trip_check(&budget, &config.cancel, &stats);
        if grom_fail::hit("sweep") {
            tripped.get_or_insert(InterruptReason::Fault);
        }
        if let Some(reason) = tripped {
            return interrupted(reason, inst, &mut nullmap, stats, rec, nullgen.peek_next());
        }

        stats.rounds += 1;
        let sweep = stats.rounds as u64;
        let mut progressed = false;
        // Trips observed mid-round are recorded and acted on at the round
        // boundary — a started round always completes (see the exactness
        // note in `crate::scheduler`).
        let mut tripped: Option<InterruptReason> = None;

        for (k, dep) in deps.iter().enumerate() {
            let t0 = Instant::now();
            let tuples0 = stats.tuples_inserted;
            let obligations0 = stats.obligations_batched;
            if dep.is_denial() {
                if let Some(v) = grom_engine::find_violation(&inst, dep) {
                    return Err(ChaseError::Failure {
                        dependency: dep.name.clone(),
                        detail: format!("denial premise matched at {}", v.bindings),
                    });
                }
                rec.activation(
                    sweep,
                    &ActivationRecord {
                        dep: k,
                        kind: ActivationKind::Full,
                        seeded: 0,
                        violations: 0,
                        tuples: 0,
                        obligations: 0,
                        dedup_hits: 0,
                        wall_ns: t0.elapsed().as_nanos() as u64,
                    },
                );
                continue;
            }
            // `check_executable` guarantees exactly one disjunct here; a
            // trivially-true empty disjunct has no violations by definition.
            let violations = collect_violations(&inst, dep);
            let mut any_merge = false;
            for b in &violations {
                let b = resolve_bindings(b, &mut nullmap);
                // Re-check: earlier repairs in this batch (or merges) may
                // have satisfied this match already. Note the instance may
                // still contain stale nulls mid-batch; that only makes this
                // check conservative (it may repair redundantly, and the
                // final substitution merges the duplicates).
                if disjunct_satisfied(&inst, &dep.disjuncts[0], &b) {
                    continue;
                }
                let merged = apply_disjunct(
                    &mut inst,
                    dep,
                    0,
                    &b,
                    &mut nullmap,
                    &mut nullgen,
                    &mut stats,
                )?;
                any_merge |= merged;
                progressed = true;
            }
            rec.activation(
                sweep,
                &ActivationRecord {
                    dep: k,
                    kind: ActivationKind::Full,
                    seeded: 0,
                    violations: violations.len() as u64,
                    tuples: (stats.tuples_inserted - tuples0) as u64,
                    obligations: (stats.obligations_batched - obligations0) as u64,
                    dedup_hits: 0,
                    wall_ns: t0.elapsed().as_nanos() as u64,
                },
            );
            if any_merge {
                let ts = Instant::now();
                let changed = inst.substitute_nulls(|id| nullmap.lookup(id));
                stats.substitution_passes += 1;
                rec.substitution(sweep, 0, changed.len(), ts.elapsed().as_nanos() as u64);
                if grom_fail::hit("subst") {
                    tripped.get_or_insert(InterruptReason::Fault);
                }
            }
            if tripped.is_none() {
                tripped = trip_check(&budget, &config.cancel, &stats);
            }
        }
        rec.end_sweep(sweep, None, 0);

        if !progressed {
            // A reached fixpoint beats an interruption: the result is
            // final, so there is nothing to resume.
            break;
        }
        if let Some(reason) = tripped {
            return interrupted(reason, inst, &mut nullmap, stats, rec, nullgen.peek_next());
        }
    }

    Ok(ChaseResult {
        instance: inst,
        stats,
        profile: rec.finish(),
    })
}

/// Convenience for tests: do all `deps` hold in `inst`?
pub fn all_satisfied(inst: &Instance, deps: &[Dependency]) -> bool {
    deps.iter()
        .all(|d| grom_engine::dependency_satisfied(inst, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Tuple;
    use grom_lang::parser::{parse_dependency, parse_program};

    fn inst(facts: &[(&str, &[i64])]) -> Instance {
        let mut i = Instance::new();
        for (rel, vals) in facts {
            i.add(*rel, vals.iter().map(|&v| Value::int(v)).collect())
                .unwrap();
        }
        i
    }

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn copy_tgd() {
        let dep = parse_dependency("tgd m: S(x, y) -> T(x, y).").unwrap();
        let res = chase_standard(
            inst(&[("S", &[1, 2]), ("S", &[3, 4])]),
            std::slice::from_ref(&dep),
            &cfg(),
        )
        .unwrap();
        assert!(res
            .instance
            .contains_fact("T", &Tuple::new(vec![Value::int(1), Value::int(2)])));
        assert!(res
            .instance
            .contains_fact("T", &Tuple::new(vec![Value::int(3), Value::int(4)])));
        assert!(all_satisfied(&res.instance, &[dep]));
        assert_eq!(res.stats.tuples_inserted, 2);
        assert_eq!(res.stats.nulls_invented, 0);
    }

    #[test]
    fn existential_tgd_invents_nulls() {
        let dep = parse_dependency("tgd m: S(x) -> T(x, y), U(y).").unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), std::slice::from_ref(&dep), &cfg()).unwrap();
        // One shared fresh null across both conclusion atoms.
        assert_eq!(res.stats.nulls_invented, 1);
        let t: Vec<_> = res.instance.tuples("T").collect();
        let u: Vec<_> = res.instance.tuples("U").collect();
        assert_eq!(t.len(), 1);
        assert_eq!(u.len(), 1);
        assert_eq!(t[0].get(1), u[0].get(0));
        assert!(t[0].get(1).unwrap().is_null());
        assert!(all_satisfied(&res.instance, &[dep]));
    }

    #[test]
    fn restricted_chase_is_idempotent() {
        let dep = parse_dependency("tgd m: S(x) -> T(x, y).").unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), std::slice::from_ref(&dep), &cfg()).unwrap();
        let nulls_before = res.stats.nulls_invented;
        let res2 = chase_standard(res.instance, &[dep], &cfg()).unwrap();
        // Nothing new: the conclusion is already witnessed.
        assert_eq!(res2.stats.nulls_invented, 0);
        assert_eq!(res2.stats.tuples_inserted, 0);
        assert_eq!(nulls_before, 1);
    }

    #[test]
    fn egd_merges_null_with_constant() {
        // First tgd invents a null for y; then a second source tuple fixes
        // the value via the egd on T's key.
        let m = parse_dependency("tgd m: S(x) -> T(x, y).").unwrap();
        let k = parse_dependency("tgd k: S2(x, y) -> T(x, y).").unwrap();
        let e = parse_dependency("egd e: T(x, y1), T(x, y2) -> y1 = y2.").unwrap();
        let start = inst(&[("S", &[1]), ("S2", &[1, 42])]);
        let res = chase_standard(start, &[m.clone(), k.clone(), e.clone()], &cfg()).unwrap();
        let t: Vec<_> = res.instance.tuples("T").collect();
        assert_eq!(
            t.len(),
            1,
            "null tuple must merge with constant tuple: {t:?}"
        );
        assert_eq!(t[0].get(1), Some(&Value::int(42)));
        assert!(res.stats.egd_merges >= 1);
        assert!(all_satisfied(&res.instance, &[m, k, e]));
    }

    #[test]
    fn egd_clash_fails() {
        let e = parse_dependency("egd e: T(x, y1), T(x, y2) -> y1 = y2.").unwrap();
        let start = inst(&[("T", &[1, 10]), ("T", &[1, 20])]);
        match chase_standard(start, &[e], &cfg()) {
            Err(ChaseError::Failure { dependency, .. }) => {
                assert_eq!(dependency.as_ref(), "e");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn egd_merges_two_nulls() {
        let m1 = parse_dependency("tgd a: S(x) -> T(x, y).").unwrap();
        let m2 = parse_dependency("tgd b: S(x) -> U(x, y).").unwrap();
        let e = parse_dependency("egd e: T(x, y1), U(x, y2) -> y1 = y2.").unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), &[m1, m2, e.clone()], &cfg()).unwrap();
        let t: Vec<_> = res.instance.tuples("T").collect();
        let u: Vec<_> = res.instance.tuples("U").collect();
        assert_eq!(t[0].get(1), u[0].get(1));
        assert!(t[0].get(1).unwrap().is_null());
        assert!(grom_engine::dependency_satisfied(&res.instance, &e));
    }

    #[test]
    fn denial_fails_on_match() {
        let n = parse_dependency("dep n: T(x, x) -> false.").unwrap();
        let ok = chase_standard(inst(&[("T", &[1, 2])]), std::slice::from_ref(&n), &cfg());
        assert!(ok.is_ok());
        let bad = chase_standard(inst(&[("T", &[3, 3])]), &[n], &cfg());
        assert!(matches!(bad, Err(ChaseError::Failure { .. })));
    }

    #[test]
    fn denial_triggered_by_tgd_output() {
        // The tgd produces T(x, x) which the denial forbids.
        let m = parse_dependency("tgd m: S(x) -> T(x, x).").unwrap();
        let n = parse_dependency("dep n: T(x, x) -> false.").unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), &[m, n], &cfg());
        assert!(matches!(res, Err(ChaseError::Failure { .. })));
    }

    #[test]
    fn foreign_key_chain_terminates() {
        // Dept(d) -> Emp(e, d); Emp(e, d) -> Dept(d): weakly acyclic pair.
        let p = parse_program(
            "tgd a: Dept(d) -> Emp(e, d).\n\
             tgd b: Emp(e, d) -> Dept(d).",
        )
        .unwrap();
        let res = chase_standard(inst(&[("Dept", &[1])]), &p.deps, &cfg()).unwrap();
        assert_eq!(res.instance.tuples("Emp").count(), 1);
        assert_eq!(res.instance.tuples("Dept").count(), 1);
    }

    #[test]
    fn non_terminating_program_hits_round_limit() {
        // R(x, y) -> R(y, z): each application invents a new null — the
        // classic non-weakly-acyclic example.
        let dep = parse_dependency("tgd m: R(x, y) -> R(y, z).").unwrap();
        let res = chase_standard(
            inst(&[("R", &[1, 2])]),
            &[dep],
            &ChaseConfig::default().with_max_rounds(20),
        );
        assert!(matches!(
            res,
            Err(ChaseError::RoundLimit { rounds: 20, .. })
        ));
    }

    #[test]
    fn negated_premise_rejected() {
        let dep = parse_dependency("dep m: S(x), not B(x) -> T(x).").unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), &[dep], &cfg());
        assert!(matches!(res, Err(ChaseError::NotExecutable { .. })));
    }

    #[test]
    fn ded_rejected_by_standard_chase() {
        let dep = parse_dependency("ded d: S(x) -> T(x) | U(x).").unwrap();
        let res = chase_standard(inst(&[("S", &[1])]), &[dep], &cfg());
        assert!(matches!(res, Err(ChaseError::NotExecutable { .. })));
    }

    #[test]
    fn premise_comparisons_gate_matches() {
        let p = parse_program(
            "tgd lo: S(x, r), r < 2 -> Low(x).\n\
             tgd hi: S(x, r), r >= 4 -> High(x).",
        )
        .unwrap();
        let start = inst(&[("S", &[1, 1]), ("S", &[2, 3]), ("S", &[3, 5])]);
        let res = chase_standard(start, &p.deps, &cfg()).unwrap();
        let low: Vec<_> = res.instance.tuples("Low").collect();
        let high: Vec<_> = res.instance.tuples("High").collect();
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].get(0), Some(&Value::int(1)));
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].get(0), Some(&Value::int(3)));
    }

    #[test]
    fn mixed_disjunct_applies_atoms_and_equalities() {
        let dep = parse_dependency("dep d: S(x, y) -> T(x, z), x = y.").unwrap();
        // x = y holds only when the S tuple is diagonal; otherwise clash.
        let res =
            chase_standard(inst(&[("S", &[1, 1])]), std::slice::from_ref(&dep), &cfg()).unwrap();
        assert_eq!(res.instance.tuples("T").count(), 1);
        let res = chase_standard(inst(&[("S", &[1, 2])]), &[dep], &cfg());
        assert!(matches!(res, Err(ChaseError::Failure { .. })));
    }

    #[test]
    fn disjunct_comparison_violation_is_failure() {
        // Derived-scenario shape: conclusion requires y != 0 which is
        // unsatisfiable for the match (1, 0).
        let dep = parse_dependency("dep d: S(x, y) -> T(x), y != 0.").unwrap();
        let res = chase_standard(inst(&[("S", &[1, 0])]), &[dep], &cfg());
        assert!(matches!(res, Err(ChaseError::Failure { .. })));
    }

    #[test]
    fn chase_cascades_through_dependencies() {
        let p = parse_program(
            "tgd a: S(x) -> A(x).\n\
             tgd b: A(x) -> B(x).\n\
             tgd c: B(x) -> C(x).",
        )
        .unwrap();
        let res = chase_standard(inst(&[("S", &[7])]), &p.deps, &cfg()).unwrap();
        assert!(res
            .instance
            .contains_fact("C", &Tuple::new(vec![Value::int(7)])));
        // Cascade completes within few rounds.
        assert!(res.stats.rounds <= 4, "rounds = {}", res.stats.rounds);
    }

    #[test]
    fn egd_substitution_reaches_all_relations() {
        let m = parse_dependency("tgd m: S(x) -> T(x, y), U(y, x).").unwrap();
        let k = parse_dependency("tgd k: S2(x, y) -> T(x, y).").unwrap();
        let e = parse_dependency("egd e: T(x, a), T(x, b) -> a = b.").unwrap();
        let start = inst(&[("S", &[1]), ("S2", &[1, 9])]);
        let res = chase_standard(start, &[m, k, e], &cfg()).unwrap();
        // The null propagated into U must also have been replaced by 9.
        let u: Vec<_> = res.instance.tuples("U").collect();
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].get(0), Some(&Value::int(9)));
    }
}
