//! Weak acyclicity: the classical sufficient condition for chase
//! termination (Fagin, Kolaitis, Miller, Popa, *Data Exchange: Semantics
//! and Query Answering*).
//!
//! Build the **position graph**: nodes are positions `(predicate, column)`.
//! For every dependency and every disjunct of its conclusion, for every
//! universal variable `x` that occurs in the disjunct's atoms:
//!
//! * a **regular edge** from each premise position of `x` to each conclusion
//!   position of `x`;
//! * a **special edge** from each premise position of `x` to each position
//!   of every *existential* variable of the disjunct.
//!
//! The program is weakly acyclic iff no cycle goes through a special edge;
//! then the chase terminates in polynomially many steps. Deds are handled
//! by treating each disjunct as a separate tgd head — if every branch is
//! weakly acyclic, every greedy-chase scenario terminates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use grom_lang::{Dependency, Literal, Term, Var};

/// A position `(predicate, column index)` in the position graph.
pub type Position = (Arc<str>, usize);

/// The outcome of the analysis.
#[derive(Debug, Clone)]
pub struct WeakAcyclicityReport {
    pub weakly_acyclic: bool,
    /// For non-weakly-acyclic programs: a special edge that lies on a cycle.
    pub witness: Option<(Position, Position)>,
    /// Number of positions in the graph.
    pub positions: usize,
    pub regular_edges: usize,
    pub special_edges: usize,
}

impl fmt::Display for WeakAcyclicityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.weakly_acyclic {
            write!(
                f,
                "weakly acyclic ({} positions, {} regular + {} special edges)",
                self.positions, self.regular_edges, self.special_edges
            )
        } else {
            let (u, v) = self.witness.as_ref().expect("witness for non-WA");
            write!(
                f,
                "NOT weakly acyclic: special edge {}#{} -> {}#{} lies on a cycle",
                u.0, u.1, v.0, v.1
            )
        }
    }
}

/// Positions of each variable in the positive premise literals.
fn premise_positions(dep: &Dependency) -> BTreeMap<Var, Vec<Position>> {
    let mut out: BTreeMap<Var, Vec<Position>> = BTreeMap::new();
    for lit in &dep.premise {
        if let Literal::Pos(a) = lit {
            for (i, t) in a.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    out.entry(v.clone())
                        .or_default()
                        .push((a.predicate.clone(), i));
                }
            }
        }
    }
    out
}

/// Analyze a set of dependencies for weak acyclicity.
pub fn is_weakly_acyclic(deps: &[Dependency]) -> WeakAcyclicityReport {
    let mut regular: BTreeSet<(Position, Position)> = BTreeSet::new();
    let mut special: BTreeSet<(Position, Position)> = BTreeSet::new();

    for dep in deps {
        let prem = premise_positions(dep);
        let universal: BTreeSet<Var> = prem.keys().cloned().collect();
        for disjunct in &dep.disjuncts {
            // Conclusion positions per variable, and the existential set.
            let mut concl: BTreeMap<Var, Vec<Position>> = BTreeMap::new();
            for a in &disjunct.atoms {
                for (i, t) in a.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        concl
                            .entry(v.clone())
                            .or_default()
                            .push((a.predicate.clone(), i));
                    }
                }
            }
            let existential: Vec<&Var> = concl.keys().filter(|v| !universal.contains(*v)).collect();
            for (x, x_concl) in &concl {
                if !universal.contains(x) {
                    continue;
                }
                let Some(x_prem) = prem.get(x) else { continue };
                for p in x_prem {
                    for q in x_concl {
                        regular.insert((p.clone(), q.clone()));
                    }
                    for y in &existential {
                        for q in &concl[*y] {
                            special.insert((p.clone(), q.clone()));
                        }
                    }
                }
            }
        }
    }

    // Collect nodes and adjacency.
    let mut nodes: BTreeSet<Position> = BTreeSet::new();
    for (u, v) in regular.iter().chain(special.iter()) {
        nodes.insert(u.clone());
        nodes.insert(v.clone());
    }
    let mut adj: BTreeMap<&Position, Vec<&Position>> = BTreeMap::new();
    for (u, v) in regular.iter().chain(special.iter()) {
        adj.entry(u).or_default().push(v);
    }

    // A special edge (u, v) lies on a cycle iff u is reachable from v.
    let reaches = |from: &Position, to: &Position| -> bool {
        let mut seen: BTreeSet<&Position> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(next) = adj.get(n) {
                for m in next {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
        }
        false
    };

    let mut witness = None;
    for (u, v) in &special {
        if reaches(v, u) {
            witness = Some((u.clone(), v.clone()));
            break;
        }
    }

    WeakAcyclicityReport {
        weakly_acyclic: witness.is_none(),
        witness,
        positions: nodes.len(),
        regular_edges: regular.len(),
        special_edges: special.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::parser::{parse_dependency, parse_program};

    #[test]
    fn copy_tgd_is_weakly_acyclic() {
        let dep = parse_dependency("tgd m: S(x, y) -> T(x, y).").unwrap();
        let r = is_weakly_acyclic(&[dep]);
        assert!(r.weakly_acyclic);
        assert_eq!(r.special_edges, 0);
    }

    #[test]
    fn classic_non_terminating_tgd_detected() {
        // R(x, y) -> R(y, z): special edge into R#1 from R#1 via cycle.
        let dep = parse_dependency("tgd m: R(x, y) -> R(y, z).").unwrap();
        let r = is_weakly_acyclic(&[dep]);
        assert!(!r.weakly_acyclic);
        assert!(r.witness.is_some());
    }

    #[test]
    fn fk_pair_is_weakly_acyclic() {
        let p = parse_program(
            "tgd a: Dept(d) -> Emp(e, d).\n\
             tgd b: Emp(e, d) -> Dept(d).",
        )
        .unwrap();
        let r = is_weakly_acyclic(&p.deps);
        assert!(r.weakly_acyclic, "{r}");
        assert!(r.special_edges >= 1);
    }

    #[test]
    fn mutual_null_creation_detected() {
        // A(x) -> B(x, y); B(x, y) -> A(y): nulls feed back into A#0.
        let p = parse_program(
            "tgd a: A(x) -> B(x, y).\n\
             tgd b: B(x, y) -> A(y).",
        )
        .unwrap();
        let r = is_weakly_acyclic(&p.deps);
        assert!(!r.weakly_acyclic);
    }

    #[test]
    fn egds_and_denials_contribute_nothing() {
        let p = parse_program(
            "egd e: T(x, a), T(x, b) -> a = b.\n\
             dep n: T(x, x) -> false.",
        )
        .unwrap();
        let r = is_weakly_acyclic(&p.deps);
        assert!(r.weakly_acyclic);
        assert_eq!(r.positions, 0);
    }

    #[test]
    fn ded_branches_analyzed_separately() {
        // Safe branch plus a self-feeding branch: the ded is not WA.
        let dep = parse_dependency("ded d: R(x, y) -> S(x) | R(y, z).").unwrap();
        let r = is_weakly_acyclic(&[dep]);
        assert!(!r.weakly_acyclic);
    }

    #[test]
    fn display_reports() {
        let dep = parse_dependency("tgd m: S(x) -> T(x, y).").unwrap();
        let r = is_weakly_acyclic(&[dep]);
        assert!(r.to_string().contains("weakly acyclic"));
        let dep = parse_dependency("tgd m: R(x, y) -> R(y, z).").unwrap();
        let r = is_weakly_acyclic(&[dep]);
        assert!(r.to_string().contains("NOT weakly acyclic"));
    }
}
