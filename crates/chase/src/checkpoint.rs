//! Sweep-aligned chase checkpoints.
//!
//! Every chase loop interrupts only at a sweep (or round) boundary: the
//! sweep's equality obligations have been substituted into the instance,
//! the delta logs have been routed into the scheduler worklist, and the
//! null generator cursor is past every allocated label. A [`Checkpoint`]
//! captures exactly that state — instance, per-dependency pending work,
//! flattened `NullMap`, null cursor, and the round count — and
//! [`chase_resume`] continues from it to a final instance that is
//! `canonical_render`-identical to an uninterrupted run.
//!
//! Checkpoints serialize through the hand-rolled JSON layer of
//! `grom-trace`; instances and delta tuples ride inside JSON strings in
//! the fact-per-line text format of `grom_data::write_instance`, so the
//! file stays greppable and the value grammar lives in one place.

use std::collections::BTreeMap;
use std::sync::Arc;

use grom_data::{read_instance, write_instance, Instance, NullId, Tuple, Value};
use grom_lang::Dependency;
use grom_trace::json::{self, JsonValue};

use crate::config::{ChaseConfig, SchedulerMode};
use crate::nullmap::NullMap;
use crate::result::{ChaseError, ChaseOutcome, ChaseResult};
use crate::scheduler::Pending;

/// The relation name carrying the flattened null map in serialized form:
/// one row `__nullmap(N<label>, value)` per mapped label.
const NULLMAP_REL: &str = "__nullmap";

/// A resumable snapshot of an interrupted chase, captured at a sweep
/// boundary. Construct via an interrupted run (see
/// [`crate::Interrupted`]); re-hydrate from disk with
/// [`Checkpoint::from_json`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Scheduler mode of the interrupted run ("delta", "full_rescan",
    /// "parallel<n>"). Informational: resume follows the *config*'s mode,
    /// and the pending worklist is valid under any of them.
    mode: String,
    /// Rounds completed before the interruption; resume continues the
    /// round count from here so `max_rounds` stays cumulative.
    rounds: usize,
    /// Null-generator cursor: the next fresh label.
    next_null: u64,
    /// The instance-so-far (sources plus everything derived).
    instance: Instance,
    /// Flattened equality obligations, sorted by label: `label -> value`.
    nullmap: Vec<(u64, Value)>,
    /// Per-dependency pending work, index-aligned with the dependency set.
    pending: Vec<Pending>,
}

impl Checkpoint {
    pub(crate) fn capture(
        mode: &str,
        rounds: usize,
        next_null: u64,
        instance: &Instance,
        nullmap: &mut NullMap,
        pending: Vec<Pending>,
    ) -> Checkpoint {
        let mut flat: Vec<(u64, Value)> = nullmap
            .flatten()
            .into_iter()
            .map(|(NullId(label), v)| (label, v))
            .collect();
        flat.sort_by_key(|(label, _)| *label);
        Checkpoint {
            mode: mode.to_string(),
            rounds,
            next_null,
            instance: instance.clone(),
            nullmap: flat,
            pending,
        }
    }

    pub fn mode(&self) -> &str {
        &self.mode
    }

    pub fn rounds(&self) -> usize {
        self.rounds
    }

    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Map interned symbols back to plain strings everywhere a value can
    /// hide: the instance, the null map and the pending delta tuples.
    pub(crate) fn unintern(&mut self) {
        self.instance = self.instance.unintern_strings();
        for (_, v) in &mut self.nullmap {
            *v = v.unintern();
        }
        for p in &mut self.pending {
            if let Pending::Delta(map) = p {
                for tuples in map.values_mut() {
                    for t in tuples.iter_mut() {
                        *t = Tuple::new(t.values().iter().map(Value::unintern).collect());
                    }
                }
            }
        }
    }

    /// Rebuild the loop state this checkpoint froze. Fails when the
    /// checkpoint's worklist is not index-aligned with `deps` (a resume
    /// against a different program).
    pub(crate) fn restore(&self, deps: &[Dependency]) -> Result<ResumeState, ChaseError> {
        if self.pending.len() != deps.len() {
            return Err(ChaseError::NotExecutable {
                dependency: Arc::from("__checkpoint"),
                reason: format!(
                    "checkpoint worklist covers {} dependencies, program has {}",
                    self.pending.len(),
                    deps.len()
                ),
            });
        }
        let mut nullmap = NullMap::new();
        for (label, v) in &self.nullmap {
            // Re-unifying label -> value reproduces the flattened mapping:
            // constants win, and flatten targets are always the lowest
            // label of their class, so orientation is preserved.
            let _ = nullmap.unify(&Value::Null(NullId(*label)), v);
        }
        Ok(ResumeState {
            inst: self.instance.clone(),
            rounds: self.rounds,
            next_null: self.next_null,
            nullmap,
            pending: self.pending.clone(),
        })
    }

    // ------------------------------------------------------------- json --

    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"version\":2");
        let _ = write!(
            out,
            ",\"mode\":\"{}\",\"rounds\":{},\"next_null\":{}",
            json::escape(&self.mode),
            self.rounds,
            self.next_null
        );
        let _ = write!(
            out,
            ",\"instance\":\"{}\"",
            json::escape(&write_instance(&self.instance))
        );
        let _ = write!(
            out,
            ",\"nullmap\":\"{}\"",
            json::escape(&write_instance(&nullmap_to_instance(&self.nullmap)))
        );
        out.push_str(",\"pending\":[");
        for (i, p) in self.pending.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match p {
                Pending::Idle => out.push_str("{\"kind\":\"idle\"}"),
                Pending::Full => out.push_str("{\"kind\":\"full\"}"),
                Pending::Delta(map) => {
                    // v2 records the old/new partition of each delta entry
                    // alongside the tuples. Every pending tuple is *new*
                    // (unclaimed work awaiting its semi-naive anchor scan),
                    // so the partition is the per-relation count of the
                    // serialized lists — written explicitly so a reader can
                    // validate the claim-time cursor arithmetic against the
                    // checkpoint instead of trusting it.
                    let di = delta_to_instance(map);
                    let _ = write!(
                        out,
                        "{{\"kind\":\"delta\",\"tuples\":\"{}\",\"new\":{{",
                        json::escape(&write_instance(&di))
                    );
                    for (j, rel) in di.relation_names().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "\"{}\":{}",
                            json::escape(rel),
                            di.tuples(rel).count()
                        );
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("]}");
        out
    }

    pub fn from_json(text: &str) -> Result<Checkpoint, String> {
        let v = json::parse(text)?;
        let version = v
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("checkpoint has no version")?;
        // v1 carries the same payload without the partition record; all its
        // checkpointed delta tuples are treated as new, which is what they
        // are (pending work is never half-promoted at a sweep boundary).
        if version != 1 && version != 2 {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let mode = v
            .get("mode")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint has no mode")?
            .to_string();
        let rounds = v
            .get("rounds")
            .and_then(JsonValue::as_u64)
            .ok_or("checkpoint has no rounds")? as usize;
        let next_null = v
            .get("next_null")
            .and_then(JsonValue::as_u64)
            .ok_or("checkpoint has no next_null")?;
        let inst_text = v
            .get("instance")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint has no instance")?;
        let instance = read_instance(inst_text).map_err(|e| format!("checkpoint instance: {e}"))?;
        let nm_text = v
            .get("nullmap")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint has no nullmap")?;
        let nm_inst = read_instance(nm_text).map_err(|e| format!("checkpoint nullmap: {e}"))?;
        let nullmap = instance_to_nullmap(&nm_inst)?;
        let pending_json = match v.get("pending") {
            Some(JsonValue::Arr(items)) => items,
            _ => return Err("checkpoint has no pending array".into()),
        };
        let mut pending = Vec::with_capacity(pending_json.len());
        for item in pending_json {
            let kind = item
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or("pending entry has no kind")?;
            pending.push(match kind {
                "idle" => Pending::Idle,
                "full" => Pending::Full,
                "delta" => {
                    let text = item
                        .get("tuples")
                        .and_then(JsonValue::as_str)
                        .ok_or("delta pending entry has no tuples")?;
                    let di = read_instance(text).map_err(|e| format!("checkpoint delta: {e}"))?;
                    let map = instance_to_delta(&di);
                    // v2 checkpoints record the partition; validate it
                    // against the parsed lists so a truncated or edited
                    // tuple block cannot silently shift the old/new split.
                    if let Some(JsonValue::Obj(counts)) = item.get("new") {
                        for (rel, count) in counts {
                            let have = map.get(rel.as_str()).map_or(0, Vec::len) as u64;
                            if count.as_u64() != Some(have) {
                                return Err(format!(
                                    "delta partition mismatch for `{rel}`: \
                                     recorded {count:?} new tuples, parsed {have}"
                                ));
                            }
                        }
                    } else if version >= 2 {
                        return Err("v2 delta pending entry has no partition record".into());
                    }
                    Pending::Delta(map)
                }
                other => return Err(format!("unknown pending kind `{other}`")),
            });
        }
        Ok(Checkpoint {
            mode,
            rounds,
            next_null,
            instance,
            nullmap,
            pending,
        })
    }
}

/// Loop state rebuilt from a checkpoint (or built fresh at chase entry);
/// the shared currency of the three scheduler loops.
pub(crate) struct ResumeState {
    pub inst: Instance,
    pub rounds: usize,
    pub next_null: u64,
    pub nullmap: NullMap,
    pub pending: Vec<Pending>,
}

impl ResumeState {
    /// Fresh state for a run starting at `start`: no rounds, every
    /// dependency scheduled for its first full scan.
    pub(crate) fn fresh(start: Instance, deps: &[Dependency]) -> ResumeState {
        let next_null = start.max_null_label().map_or(0, |l| l + 1);
        ResumeState {
            inst: start,
            rounds: 0,
            next_null,
            nullmap: NullMap::new(),
            pending: vec![Pending::Full; deps.len()],
        }
    }
}

fn nullmap_to_instance(pairs: &[(u64, Value)]) -> Instance {
    let mut out = Instance::new();
    for (label, v) in pairs {
        out.add(NULLMAP_REL, vec![Value::Null(NullId(*label)), v.clone()])
            .expect("nullmap rows share one arity");
    }
    out
}

fn instance_to_nullmap(inst: &Instance) -> Result<Vec<(u64, Value)>, String> {
    let mut out = Vec::new();
    for t in inst.tuples(NULLMAP_REL) {
        match (t.get(0), t.get(1)) {
            (Some(Value::Null(NullId(label))), Some(v)) => out.push((*label, v.clone())),
            _ => return Err("malformed nullmap row".into()),
        }
    }
    Ok(out)
}

fn delta_to_instance(map: &BTreeMap<Arc<str>, Vec<Tuple>>) -> Instance {
    let mut out = Instance::new();
    for (rel, tuples) in map {
        for t in tuples {
            // Scheduler delta lists are duplicate-free (the delta log only
            // records genuinely new inserts), so this dedup is a no-op; it
            // also guards the trailing-rows invariant the semi-naive split
            // relies on, since a duplicate would inflate the claimed count.
            let _ = out.insert(rel, t.clone());
        }
    }
    out
}

fn instance_to_delta(inst: &Instance) -> BTreeMap<Arc<str>, Vec<Tuple>> {
    let mut out = BTreeMap::new();
    for rel in inst.relation_names() {
        let tuples: Vec<Tuple> = inst.tuples(rel).cloned().collect();
        if !tuples.is_empty() {
            out.insert(rel.clone(), tuples);
        }
    }
    out
}

/// Continue an interrupted chase from `checkpoint` under `config`'s
/// scheduler mode (any mode resumes any checkpoint: the pending worklist
/// is mode-agnostic, and the full-rescan loop simply rescans). `deps` must
/// be the same dependency set, in the same order, as the interrupted run.
///
/// The resumed run is itself budget-aware: it can complete, interrupt
/// again (fresh budget, cumulative round count), or fail hard, exactly
/// like a fresh chase.
pub fn chase_resume(
    checkpoint: &Checkpoint,
    deps: &[Dependency],
    config: &ChaseConfig,
) -> Result<ChaseOutcome, ChaseError> {
    let mut state = checkpoint.restore(deps)?;
    crate::trigger::register_join_keys(&mut state.inst, deps);
    let run: Result<ChaseResult, ChaseError> = match config.scheduler {
        SchedulerMode::Delta => crate::scheduler::chase_delta_resume(state, deps, config),
        SchedulerMode::FullRescan => crate::standard::chase_full_rescan_resume(state, deps, config),
        SchedulerMode::Parallel { threads } => {
            crate::parallel::chase_parallel_resume(state, deps, config, threads)
        }
    };
    ChaseOutcome::from_run(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut inst = Instance::new();
        inst.add("S", vec![Value::int(1), Value::str("a\"b")])
            .unwrap();
        inst.add("T", vec![Value::null(3), Value::bool(true)])
            .unwrap();
        let mut nullmap = NullMap::new();
        let _ = nullmap.unify(&Value::null(5), &Value::int(9));
        let _ = nullmap.unify(&Value::null(7), &Value::null(2));
        let mut delta = BTreeMap::new();
        delta.insert(
            Arc::from("S"),
            vec![Tuple::new(vec![Value::int(1), Value::str("a\"b")])],
        );
        Checkpoint::capture(
            "delta",
            4,
            11,
            &inst,
            &mut nullmap,
            vec![Pending::Idle, Pending::Full, Pending::Delta(delta)],
        )
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let cp = sample();
        let text = cp.to_json();
        // The envelope is valid JSON for the trace-layer parser.
        assert!(json::parse(&text).is_ok());
        let back = Checkpoint::from_json(&text).unwrap();
        assert_eq!(back.mode, cp.mode);
        assert_eq!(back.rounds, cp.rounds);
        assert_eq!(back.next_null, cp.next_null);
        assert_eq!(back.nullmap, cp.nullmap);
        assert_eq!(write_instance(&back.instance), write_instance(&cp.instance));
        assert_eq!(back.pending.len(), cp.pending.len());
        assert!(matches!(back.pending[0], Pending::Idle));
        assert!(matches!(back.pending[1], Pending::Full));
        match (&back.pending[2], &cp.pending[2]) {
            (Pending::Delta(a), Pending::Delta(b)) => assert_eq!(a, b),
            other => panic!("delta slot did not round-trip: {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_misaligned_programs() {
        use grom_lang::parser::parse_program;
        let cp = sample();
        let p = parse_program("tgd a: S(x, y) -> T(x, y).").unwrap();
        assert!(matches!(
            cp.restore(&p.deps),
            Err(ChaseError::NotExecutable { .. })
        ));
    }

    #[test]
    fn restore_reinstalls_the_null_map() {
        use grom_lang::parser::parse_program;
        let cp = sample();
        let p = parse_program(
            "tgd a: S(x, y) -> T(x, y).\n\
             tgd b: T(x, y) -> U(x).\n\
             tgd c: U(x) -> V(x).",
        )
        .unwrap();
        let state = cp.restore(&p.deps).unwrap();
        let mut nm = state.nullmap;
        assert_eq!(nm.resolve(&Value::null(5)), Value::int(9));
        assert_eq!(nm.resolve(&Value::null(7)), Value::null(2));
        assert_eq!(state.rounds, 4);
        assert_eq!(state.next_null, 11);
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        assert!(Checkpoint::from_json("{}").is_err());
        assert!(Checkpoint::from_json("{\"version\":2}").is_err());
        assert!(Checkpoint::from_json("{\"version\":3}").is_err());
        assert!(Checkpoint::from_json("not json").is_err());
        let cp = sample();
        let truncated = &cp.to_json()[..40];
        assert!(Checkpoint::from_json(truncated).is_err());
    }

    #[test]
    fn v2_envelope_records_and_validates_the_partition() {
        let cp = sample();
        let text = cp.to_json();
        assert!(text.starts_with("{\"version\":2"));
        // The sample's one delta entry holds one new S tuple.
        assert!(text.contains("\"new\":{\"S\":1}"), "{text}");
        // Tampering with the recorded partition is detected.
        let tampered = text.replace("\"new\":{\"S\":1}", "\"new\":{\"S\":7}");
        let err = Checkpoint::from_json(&tampered).unwrap_err();
        assert!(err.contains("partition mismatch"), "{err}");
        // A v2 delta entry without a partition record is rejected.
        let stripped = text.replace(",\"new\":{\"S\":1}", "");
        assert!(Checkpoint::from_json(&stripped).is_err());
    }

    #[test]
    fn v1_checkpoints_read_as_all_new() {
        // A v1 envelope is a v2 envelope without partition records; every
        // checkpointed delta tuple is treated as new.
        let cp = sample();
        let v1 = cp
            .to_json()
            .replace("{\"version\":2", "{\"version\":1")
            .replace(",\"new\":{\"S\":1}", "");
        let back = Checkpoint::from_json(&v1).unwrap();
        assert_eq!(back.mode, cp.mode);
        match (&back.pending[2], &cp.pending[2]) {
            (Pending::Delta(a), Pending::Delta(b)) => assert_eq!(a, b),
            other => panic!("v1 delta slot did not read back: {other:?}"),
        }
    }
}
