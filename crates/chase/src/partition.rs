//! Conflict-free dependency partitioning for the parallel chase executor.
//!
//! Two dependencies **conflict** when one's conclusion relations intersect
//! the other's premise or conclusion relations: running them concurrently
//! could hide a premise match (writer vs reader) or interleave writes into
//! the same relation (writer vs writer). The [`Partition`] groups
//! dependencies into the connected components of the conflict relation —
//! within a group execution must stay in declaration order, across groups
//! there is no interaction at all, so each group can run on its own worker
//! against a shared snapshot.
//!
//! Dependencies whose conclusion contains an *equality* (egds and mixed
//! tgd+egds) are excluded from every group: a null unification rewrites
//! tuples in arbitrary relations (wherever the merged null occurs), so its
//! effective write set is unbounded. The parallel loop runs them
//! sequentially at their declaration position, which also keeps the shared
//! [`NullMap`](crate::nullmap::NullMap) single-threaded.
//!
//! The premise side of the conflict test reuses the [`TriggerIndex`]: a
//! dependency reads exactly the relations that trigger it.

use std::collections::BTreeMap;
use std::sync::Arc;

use grom_lang::Dependency;

use crate::trigger::TriggerIndex;

/// The static partition of a dependency set into conflict-free groups.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `group_of[k]` — the group of dependency `k`, or `None` when `k`
    /// must run sequentially (its conclusion contains equalities).
    group_of: Vec<Option<usize>>,
    /// Members of each group, in dependency order.
    groups: Vec<Vec<usize>>,
}

/// Does this dependency qualify for group execution? Anything without
/// conclusion equalities: tgds, denials, and comparison-guarded tgds.
fn parallel_safe(dep: &Dependency) -> bool {
    dep.disjuncts.iter().all(|d| d.eqs.is_empty())
}

impl Partition {
    /// Partition `deps` using `triggers` (built over the same slice) for
    /// the premise-reader half of the conflict test.
    pub fn build(deps: &[Dependency], triggers: &TriggerIndex) -> Self {
        let n = deps.len();
        let mut uf = UnionFind::new(n);

        // Writer of each relation seen so far: writer/writer conflicts.
        let mut concluded_by: BTreeMap<Arc<str>, usize> = BTreeMap::new();
        for (k, dep) in deps.iter().enumerate() {
            if !parallel_safe(dep) {
                continue;
            }
            for disjunct in &dep.disjuncts {
                for atom in &disjunct.atoms {
                    let rel = &atom.predicate;
                    // Writer vs writer on the same relation.
                    match concluded_by.get(rel) {
                        Some(&other) => uf.union(k, other),
                        None => {
                            concluded_by.insert(rel.clone(), k);
                        }
                    }
                    // Writer vs reader: everything triggered by `rel`
                    // reads it in its premise.
                    for &reader in triggers.triggered_by(rel) {
                        if parallel_safe(&deps[reader]) {
                            uf.union(k, reader);
                        }
                    }
                }
            }
        }

        // Roots → dense group ids, in first-member order.
        let mut group_ids: BTreeMap<usize, usize> = BTreeMap::new();
        let mut group_of = vec![None; n];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (k, dep) in deps.iter().enumerate() {
            if !parallel_safe(dep) {
                continue;
            }
            let root = uf.find(k);
            let g = *group_ids.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            group_of[k] = Some(g);
            groups[g].push(k);
        }

        Self { group_of, groups }
    }

    /// The group of dependency `k`, or `None` when it runs sequentially.
    pub fn group_of(&self, k: usize) -> Option<usize> {
        self.group_of[k]
    }

    /// Number of conflict-free groups (the parallelism ceiling).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Members of group `g`, in dependency order.
    pub fn group(&self, g: usize) -> &[usize] {
        &self.groups[g]
    }
}

/// Plain union-find with path halving; small and allocation-free after
/// construction.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic orientation: higher root joins lower.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::parser::parse_program;

    fn partition(text: &str) -> (Partition, usize) {
        let p = parse_program(text).unwrap();
        let triggers = TriggerIndex::build(&p.deps);
        let n = p.deps.len();
        (Partition::build(&p.deps, &triggers), n)
    }

    #[test]
    fn independent_chains_form_one_group_each() {
        let (part, n) = partition(
            "tgd a0: A0(x) -> A1(x).\n\
             tgd a1: A1(x) -> A2(x).\n\
             tgd b0: B0(x) -> B1(x).\n\
             tgd b1: B1(x) -> B2(x).",
        );
        assert_eq!(n, 4);
        assert_eq!(part.group_count(), 2);
        assert_eq!(part.group_of(0), part.group_of(1));
        assert_eq!(part.group_of(2), part.group_of(3));
        assert_ne!(part.group_of(0), part.group_of(2));
        assert_eq!(part.group(0), &[0, 1]);
        assert_eq!(part.group(1), &[2, 3]);
    }

    #[test]
    fn shared_conclusion_relation_conflicts() {
        // Both write T: writer/writer conflict, one group.
        let (part, _) = partition(
            "tgd a: S(x) -> T(x).\n\
             tgd b: U(x) -> T(x).",
        );
        assert_eq!(part.group_count(), 1);
    }

    #[test]
    fn reader_of_written_relation_conflicts() {
        // b reads what a writes, even though their premises are disjoint.
        let (part, _) = partition(
            "tgd a: S(x) -> T(x).\n\
             dep b: T(x), T(y) -> false.",
        );
        assert_eq!(part.group_count(), 1);
        assert_eq!(part.group(0), &[0, 1]);
    }

    #[test]
    fn egds_are_sequential_and_do_not_glue_groups() {
        let (part, _) = partition(
            "tgd a: A0(x) -> A1(x).\n\
             egd e: A1(x, y1), A1(x, y2) -> y1 = y2.\n\
             tgd b: B0(x) -> B1(x).",
        );
        assert_eq!(part.group_of(1), None);
        assert_eq!(part.group_count(), 2);
        assert_ne!(part.group_of(0), part.group_of(2));
    }

    #[test]
    fn mixed_tgd_egd_disjunct_is_sequential() {
        let (part, _) = partition("dep d: S(x, y) -> T(x), x = y.");
        assert_eq!(part.group_of(0), None);
        assert_eq!(part.group_count(), 0);
    }

    #[test]
    fn source_only_tgds_are_independent() {
        // Disjoint read and write sets: maximal parallelism.
        let (part, _) = partition(
            "tgd a: S(x) -> T(x).\n\
             tgd b: U(x) -> V(x).\n\
             tgd c: W(x) -> X(x).",
        );
        assert_eq!(part.group_count(), 3);
    }
}
