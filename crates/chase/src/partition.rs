//! Conflict-free dependency partitioning for the parallel chase executor.
//!
//! Two dependencies **conflict** when one's conclusion relations intersect
//! the other's premise or conclusion relations: running them concurrently
//! could hide a premise match (writer vs reader) or interleave writes into
//! the same relation (writer vs writer). The [`Partition`] groups
//! dependencies into the connected components of the conflict relation —
//! within a group execution must stay in declaration order, across groups
//! there is no interaction at all, so each group can run on its own worker
//! against a shared snapshot.
//!
//! Dependencies whose conclusion contains an *equality* (egds and mixed
//! tgd+egds) participate like every other dependency. Their equality
//! repairs do **not** write the instance from a worker: workers only
//! *collect* obligations against a read-only snapshot of the
//! [`NullMap`](crate::nullmap::NullMap), and the coordinator performs the
//! one unbounded write — the combined null substitution — at the sweep
//! barrier, after every worker has finished. Within a sweep an egd is
//! therefore a pure *reader*: it conflicts with writers of its premise
//! relations (so it observes same-sweep insertions of its own group, like
//! the sequential round), while egds over relations nobody writes — and
//! its conclusion-equality "write set", which only exists at the barrier —
//! glue nothing. Egds no longer split sweeps into sequential segments.
//!
//! The premise side of the conflict test reuses the [`TriggerIndex`]: a
//! dependency reads exactly the relations that trigger it.

use std::collections::BTreeMap;
use std::sync::Arc;

use grom_lang::Dependency;

use crate::trigger::TriggerIndex;

/// The static partition of a dependency set into conflict-free groups.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `group_of[k]` — the group of dependency `k`. Every dependency is
    /// group-executable; equality conclusions are collected as obligations
    /// and resolved by the coordinator at the sweep barrier.
    group_of: Vec<usize>,
    /// Members of each group, in dependency order.
    groups: Vec<Vec<usize>>,
}

impl Partition {
    /// Partition `deps` using `triggers` (built over the same slice) for
    /// the premise-reader half of the conflict test.
    pub fn build(deps: &[Dependency], triggers: &TriggerIndex) -> Self {
        let n = deps.len();
        let mut uf = UnionFind::new(n);

        // Writer of each relation seen so far: writer/writer conflicts.
        let mut concluded_by: BTreeMap<Arc<str>, usize> = BTreeMap::new();
        for (k, dep) in deps.iter().enumerate() {
            for disjunct in &dep.disjuncts {
                for atom in &disjunct.atoms {
                    let rel = &atom.predicate;
                    // Writer vs writer on the same relation.
                    match concluded_by.get(rel) {
                        Some(&other) => uf.union(k, other),
                        None => {
                            concluded_by.insert(rel.clone(), k);
                        }
                    }
                    // Writer vs reader: everything triggered by `rel`
                    // reads it in its premise — including egds, which must
                    // see same-sweep insertions of the writer's group.
                    for &reader in triggers.triggered_by(rel) {
                        uf.union(k, reader);
                    }
                }
            }
        }

        // Roots → dense group ids, in first-member order.
        let mut group_ids: BTreeMap<usize, usize> = BTreeMap::new();
        let mut group_of = Vec::with_capacity(n);
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for k in 0..n {
            let root = uf.find(k);
            let g = *group_ids.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            group_of.push(g);
            groups[g].push(k);
        }

        Self { group_of, groups }
    }

    /// The group of dependency `k`.
    pub fn group_of(&self, k: usize) -> usize {
        self.group_of[k]
    }

    /// Number of conflict-free groups (the parallelism ceiling).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Members of group `g`, in dependency order.
    pub fn group(&self, g: usize) -> &[usize] {
        &self.groups[g]
    }
}

/// Plain union-find with path halving; small and allocation-free after
/// construction.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic orientation: higher root joins lower.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::parser::parse_program;

    fn partition(text: &str) -> (Partition, usize) {
        let p = parse_program(text).unwrap();
        let triggers = TriggerIndex::build(&p.deps);
        let n = p.deps.len();
        (Partition::build(&p.deps, &triggers), n)
    }

    #[test]
    fn independent_chains_form_one_group_each() {
        let (part, n) = partition(
            "tgd a0: A0(x) -> A1(x).\n\
             tgd a1: A1(x) -> A2(x).\n\
             tgd b0: B0(x) -> B1(x).\n\
             tgd b1: B1(x) -> B2(x).",
        );
        assert_eq!(n, 4);
        assert_eq!(part.group_count(), 2);
        assert_eq!(part.group_of(0), part.group_of(1));
        assert_eq!(part.group_of(2), part.group_of(3));
        assert_ne!(part.group_of(0), part.group_of(2));
        assert_eq!(part.group(0), &[0, 1]);
        assert_eq!(part.group(1), &[2, 3]);
    }

    #[test]
    fn shared_conclusion_relation_conflicts() {
        // Both write T: writer/writer conflict, one group.
        let (part, _) = partition(
            "tgd a: S(x) -> T(x).\n\
             tgd b: U(x) -> T(x).",
        );
        assert_eq!(part.group_count(), 1);
    }

    #[test]
    fn reader_of_written_relation_conflicts() {
        // b reads what a writes, even though their premises are disjoint.
        let (part, _) = partition(
            "tgd a: S(x) -> T(x).\n\
             dep b: T(x), T(y) -> false.",
        );
        assert_eq!(part.group_count(), 1);
        assert_eq!(part.group(0), &[0, 1]);
    }

    #[test]
    fn egds_are_group_members_not_boundaries() {
        // The egd reads A1, which tgd a writes: it joins a's group so its
        // delta activations see a's same-sweep insertions. It glues nothing
        // else — the unrelated b chain keeps its own group.
        let (part, _) = partition(
            "tgd a: A0(x) -> A1(x, x).\n\
             egd e: A1(x, y1), A1(x, y2) -> y1 = y2.\n\
             tgd b: B0(x) -> B1(x).",
        );
        assert_eq!(part.group_count(), 2);
        assert_eq!(part.group_of(1), part.group_of(0));
        assert_ne!(part.group_of(2), part.group_of(0));
    }

    #[test]
    fn egds_over_unwritten_relations_are_independent() {
        // Nobody writes R0/R1: each egd is a pure reader and gets its own
        // group — the k-way parallel obligation collection of the e9
        // workload.
        let (part, _) = partition(
            "egd e0: R0(x, y1), R0(x, y2) -> y1 = y2.\n\
             egd e1: R1(x, y1), R1(x, y2) -> y1 = y2.",
        );
        assert_eq!(part.group_count(), 2);
        assert_ne!(part.group_of(0), part.group_of(1));
    }

    #[test]
    fn mixed_tgd_egd_disjunct_writes_like_a_tgd() {
        // The atom half of a mixed disjunct is an ordinary conclusion
        // write; the equality half resolves at the barrier.
        let (part, _) = partition(
            "dep d: S(x, y) -> T(x), x = y.\n\
             dep r: T(x), T(y) -> false.",
        );
        assert_eq!(part.group_count(), 1);
        assert_eq!(part.group_of(1), part.group_of(0));
    }

    #[test]
    fn source_only_tgds_are_independent() {
        // Disjoint read and write sets: maximal parallelism.
        let (part, _) = partition(
            "tgd a: S(x) -> T(x).\n\
             tgd b: U(x) -> V(x).\n\
             tgd c: W(x) -> X(x).",
        );
        assert_eq!(part.group_count(), 3);
    }
}
