//! Chase configuration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grom_trace::TraceHandle;

/// How the standard chase schedules premise evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Delta-driven (semi-naive) scheduling: a trigger index routes newly
    /// inserted tuples to the dependencies whose premises read them, and
    /// evaluation is seeded from those deltas. Full rescans happen only on
    /// each dependency's first activation and after egd-driven null
    /// unifications. The default.
    Delta,
    /// The classical loop: every round re-evaluates every premise against
    /// the entire instance. Quadratic in rounds × instance size; kept as
    /// the reference implementation and for A/B benchmarking.
    FullRescan,
    /// Delta scheduling with sweeps executed by the parallel chase
    /// executor: the scheduler worklist is partitioned into conflict-free
    /// dependency groups (see [`crate::partition`]; egds are ordinary
    /// group members) and each group's activations run on a worker pool
    /// against an immutable snapshot of the instance. Per-worker insertion
    /// buffers are merged deterministically at the sweep barrier; equality
    /// obligations collected by the workers are unified there in
    /// declaration order and applied as one combined substitution pass per
    /// merge-bearing sweep. Results are identical to
    /// [`SchedulerMode::Delta`] up to the renaming of labeled nulls.
    Parallel {
        /// Worker-pool width; `0` and `1` both mean one worker.
        threads: usize,
    },
}

impl SchedulerMode {
    /// The mode for a requested thread count: [`SchedulerMode::Delta`] for
    /// zero or one thread (the sequential loop has no sweep-barrier
    /// overhead), [`SchedulerMode::Parallel`] otherwise.
    pub fn with_threads(threads: usize) -> Self {
        if threads >= 2 {
            SchedulerMode::Parallel { threads }
        } else {
            SchedulerMode::Delta
        }
    }
}

impl Default for SchedulerMode {
    /// [`SchedulerMode::Delta`], unless the `GROM_THREADS` environment
    /// variable requests two or more workers — the hook the CI thread
    /// matrix uses to run the whole test suite under the parallel
    /// executor.
    fn default() -> Self {
        let threads = std::env::var("GROM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1);
        SchedulerMode::with_threads(threads)
    }
}

/// Why a chase run stopped before reaching a fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The wall-clock deadline in [`Budget`] passed.
    Deadline,
    /// The derived-tuple cap in [`Budget`] was reached.
    TupleCap,
    /// The fresh-null cap in [`Budget`] was reached.
    NullCap,
    /// The [`CancelToken`] was cancelled (e.g. Ctrl-C in `grom run`).
    Cancelled,
    /// A `GROM_FAIL` directive forced the interruption (tests).
    Fault,
}

impl std::fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InterruptReason::Deadline => "wall-clock deadline exceeded",
            InterruptReason::TupleCap => "derived-tuple cap reached",
            InterruptReason::NullCap => "fresh-null cap reached",
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::Fault => "fault injected",
        };
        f.write_str(s)
    }
}

/// Resource budget for one chase run. All limits are optional; the default
/// budget is unbounded. Exhaustion does not discard work: the chase stops
/// at the next sweep boundary and returns [`crate::Interrupted`] with the
/// instance-so-far and a resumable checkpoint.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Duration>,
    max_tuples: Option<usize>,
    max_nulls: Option<usize>,
    /// The resolved deadline instant, anchored once per run (or once per
    /// ded-chase campaign) by [`Budget::anchored`].
    deadline_at: Option<Instant>,
}

impl Budget {
    /// An unbounded budget (the default).
    pub fn none() -> Self {
        Budget::default()
    }

    /// True when no limit is set: the chase can skip budget checks.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.deadline_at.is_none()
            && self.max_tuples.is_none()
            && self.max_nulls.is_none()
    }

    /// Stop after roughly `ms` milliseconds of wall-clock time.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Stop after deriving `n` tuples (counted via `tuples_inserted`).
    pub fn with_max_tuples(mut self, n: usize) -> Self {
        self.max_tuples = Some(n);
        self
    }

    /// Stop after inventing `n` labeled nulls.
    pub fn with_max_nulls(mut self, n: usize) -> Self {
        self.max_nulls = Some(n);
        self
    }

    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    pub fn max_tuples(&self) -> Option<usize> {
        self.max_tuples
    }

    pub fn max_nulls(&self) -> Option<usize> {
        self.max_nulls
    }

    /// Resolve the relative deadline into an absolute instant. Idempotent:
    /// an already-anchored budget is returned unchanged, so the ded chase
    /// can anchor once and the inner standard runs share one deadline.
    pub fn anchored(&self) -> Budget {
        let mut b = self.clone();
        if b.deadline_at.is_none() {
            if let Some(d) = b.deadline {
                b.deadline_at = Some(Instant::now() + d);
            }
        }
        b
    }

    /// The anchored deadline instant, if any. Workers use this to observe
    /// the deadline without cloning the whole budget.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.deadline_at
    }

    /// Check the budget against run counters. `tuples`/`nulls` are the
    /// run's `tuples_inserted` / `nulls_invented` so far.
    pub fn exceeded(&self, tuples: usize, nulls: usize) -> Option<InterruptReason> {
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Some(InterruptReason::Deadline);
            }
        }
        if let Some(cap) = self.max_tuples {
            if tuples >= cap {
                return Some(InterruptReason::TupleCap);
            }
        }
        if let Some(cap) = self.max_nulls {
            if nulls >= cap {
                return Some(InterruptReason::NullCap);
            }
        }
        None
    }
}

/// A shareable cancellation flag. Clones observe the same flag; cancelling
/// is sticky. The chase polls it cooperatively between activations, so a
/// cancelled run always stops at a sweep boundary with a valid checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Safe to call from another thread or a signal
    /// handler's sibling thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Budgets and knobs for the chase engine.
///
/// Defaults are generous enough for every scenario in this repository; the
/// round budget is the safety net for programs that are not weakly acyclic
/// (see [`crate::wa`]).
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Maximum number of chase rounds in the standard chase. A round visits
    /// every dependency once; weakly-acyclic programs converge long before
    /// any realistic budget.
    pub max_rounds: usize,
    /// Maximum number of standard scenarios the greedy ded chase will try
    /// before giving up (the scenario space is the product of the deds'
    /// disjunct counts).
    pub max_scenarios: usize,
    /// Maximum number of tree nodes the exhaustive ded chase will expand.
    pub max_nodes: usize,
    /// Maximum number of chase *steps* (single dependency applications) in
    /// one branch of the exhaustive chase.
    pub max_steps_per_branch: usize,
    /// Premise scheduling strategy for the standard chase (and therefore for
    /// every ded-chase scenario and exhaustive-chase node closure).
    pub scheduler: SchedulerMode,
    /// Event sink for the trace layer. Empty by default — per-dependency
    /// profiling is always on (see [`grom_trace::ChaseProfile`]), but JSONL
    /// events are only assembled and emitted when a sink is attached here.
    pub trace: TraceHandle,
    /// Resource budget; unbounded by default. Exhaustion interrupts the
    /// chase gracefully at a sweep boundary instead of erroring.
    pub budget: Budget,
    /// Cooperative cancellation flag, polled between activations. Share a
    /// clone with e.g. a signal handler to stop a running chase.
    pub cancel: CancelToken,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        Self {
            max_rounds: 10_000,
            max_scenarios: 4_096,
            max_nodes: 1_000_000,
            max_steps_per_branch: 1_000_000,
            scheduler: SchedulerMode::default(),
            trace: TraceHandle::none(),
            budget: Budget::none(),
            cancel: CancelToken::new(),
        }
    }
}

impl ChaseConfig {
    /// A configuration with a tight round budget, for tests that exercise
    /// non-terminating programs.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    pub fn with_max_scenarios(mut self, max_scenarios: usize) -> Self {
        self.max_scenarios = max_scenarios;
        self
    }

    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Select the premise scheduling strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Shorthand for [`SchedulerMode::with_threads`]: `threads >= 2` runs
    /// the parallel executor, anything less the sequential delta scheduler.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_scheduler(SchedulerMode::with_threads(threads))
    }

    /// Attach an event sink; the chase streams one JSONL event per
    /// activation / merge / sweep into it.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Set the resource budget for this run.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Use `cancel` as this run's cancellation token (keep a clone to
    /// trigger it from elsewhere).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_map_to_modes() {
        assert_eq!(SchedulerMode::with_threads(0), SchedulerMode::Delta);
        assert_eq!(SchedulerMode::with_threads(1), SchedulerMode::Delta);
        assert_eq!(
            SchedulerMode::with_threads(4),
            SchedulerMode::Parallel { threads: 4 }
        );
        let cfg = ChaseConfig::default().with_threads(2);
        assert_eq!(cfg.scheduler, SchedulerMode::Parallel { threads: 2 });
    }

    #[test]
    fn unbounded_budget_never_trips() {
        let b = Budget::none().anchored();
        assert!(b.is_unbounded());
        assert_eq!(b.exceeded(usize::MAX, usize::MAX), None);
    }

    #[test]
    fn caps_trip_in_priority_order() {
        let b = Budget::none().with_max_tuples(10).with_max_nulls(5);
        assert_eq!(b.exceeded(3, 2), None);
        assert_eq!(b.exceeded(10, 0), Some(InterruptReason::TupleCap));
        assert_eq!(b.exceeded(0, 5), Some(InterruptReason::NullCap));
    }

    #[test]
    fn deadline_only_trips_once_anchored_and_elapsed() {
        let b = Budget::none().with_deadline_ms(0);
        // Unanchored: the relative deadline alone never trips.
        assert_eq!(b.exceeded(0, 0), None);
        let b = b.anchored();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.exceeded(0, 0), Some(InterruptReason::Deadline));
        // Anchoring is idempotent.
        let again = b.anchored();
        assert_eq!(again.deadline_at(), b.deadline_at());
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
    }
}
