//! Chase configuration.

use grom_trace::TraceHandle;

/// How the standard chase schedules premise evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Delta-driven (semi-naive) scheduling: a trigger index routes newly
    /// inserted tuples to the dependencies whose premises read them, and
    /// evaluation is seeded from those deltas. Full rescans happen only on
    /// each dependency's first activation and after egd-driven null
    /// unifications. The default.
    Delta,
    /// The classical loop: every round re-evaluates every premise against
    /// the entire instance. Quadratic in rounds × instance size; kept as
    /// the reference implementation and for A/B benchmarking.
    FullRescan,
    /// Delta scheduling with sweeps executed by the parallel chase
    /// executor: the scheduler worklist is partitioned into conflict-free
    /// dependency groups (see [`crate::partition`]; egds are ordinary
    /// group members) and each group's activations run on a worker pool
    /// against an immutable snapshot of the instance. Per-worker insertion
    /// buffers are merged deterministically at the sweep barrier; equality
    /// obligations collected by the workers are unified there in
    /// declaration order and applied as one combined substitution pass per
    /// merge-bearing sweep. Results are identical to
    /// [`SchedulerMode::Delta`] up to the renaming of labeled nulls.
    Parallel {
        /// Worker-pool width; `0` and `1` both mean one worker.
        threads: usize,
    },
}

impl SchedulerMode {
    /// The mode for a requested thread count: [`SchedulerMode::Delta`] for
    /// zero or one thread (the sequential loop has no sweep-barrier
    /// overhead), [`SchedulerMode::Parallel`] otherwise.
    pub fn with_threads(threads: usize) -> Self {
        if threads >= 2 {
            SchedulerMode::Parallel { threads }
        } else {
            SchedulerMode::Delta
        }
    }
}

impl Default for SchedulerMode {
    /// [`SchedulerMode::Delta`], unless the `GROM_THREADS` environment
    /// variable requests two or more workers — the hook the CI thread
    /// matrix uses to run the whole test suite under the parallel
    /// executor.
    fn default() -> Self {
        let threads = std::env::var("GROM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1);
        SchedulerMode::with_threads(threads)
    }
}

/// Budgets and knobs for the chase engine.
///
/// Defaults are generous enough for every scenario in this repository; the
/// round budget is the safety net for programs that are not weakly acyclic
/// (see [`crate::wa`]).
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Maximum number of chase rounds in the standard chase. A round visits
    /// every dependency once; weakly-acyclic programs converge long before
    /// any realistic budget.
    pub max_rounds: usize,
    /// Maximum number of standard scenarios the greedy ded chase will try
    /// before giving up (the scenario space is the product of the deds'
    /// disjunct counts).
    pub max_scenarios: usize,
    /// Maximum number of tree nodes the exhaustive ded chase will expand.
    pub max_nodes: usize,
    /// Maximum number of chase *steps* (single dependency applications) in
    /// one branch of the exhaustive chase.
    pub max_steps_per_branch: usize,
    /// Premise scheduling strategy for the standard chase (and therefore for
    /// every ded-chase scenario and exhaustive-chase node closure).
    pub scheduler: SchedulerMode,
    /// Event sink for the trace layer. Empty by default — per-dependency
    /// profiling is always on (see [`grom_trace::ChaseProfile`]), but JSONL
    /// events are only assembled and emitted when a sink is attached here.
    pub trace: TraceHandle,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        Self {
            max_rounds: 10_000,
            max_scenarios: 4_096,
            max_nodes: 1_000_000,
            max_steps_per_branch: 1_000_000,
            scheduler: SchedulerMode::default(),
            trace: TraceHandle::none(),
        }
    }
}

impl ChaseConfig {
    /// A configuration with a tight round budget, for tests that exercise
    /// non-terminating programs.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    pub fn with_max_scenarios(mut self, max_scenarios: usize) -> Self {
        self.max_scenarios = max_scenarios;
        self
    }

    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Select the premise scheduling strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Shorthand for [`SchedulerMode::with_threads`]: `threads >= 2` runs
    /// the parallel executor, anything less the sequential delta scheduler.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_scheduler(SchedulerMode::with_threads(threads))
    }

    /// Attach an event sink; the chase streams one JSONL event per
    /// activation / merge / sweep into it.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_map_to_modes() {
        assert_eq!(SchedulerMode::with_threads(0), SchedulerMode::Delta);
        assert_eq!(SchedulerMode::with_threads(1), SchedulerMode::Delta);
        assert_eq!(
            SchedulerMode::with_threads(4),
            SchedulerMode::Parallel { threads: 4 }
        );
        let cfg = ChaseConfig::default().with_threads(2);
        assert_eq!(cfg.scheduler, SchedulerMode::Parallel { threads: 2 });
    }
}
