//! Null substitution map: the union-find underlying egd enforcement.
//!
//! Enforcing an equality `v = w` during the chase:
//!
//! * both constants, equal → nothing to do;
//! * both constants, different → **chase failure** (the paper: "we say
//!   nothing about the cases in which Σ_ST ∪ Σ_T fail");
//! * a labeled null and anything else → the null is *mapped to* the other
//!   value (constants win over nulls; between two nulls the higher label
//!   maps to the lower, keeping results deterministic).
//!
//! Mappings may chain (`N3 → N1`, then `N1 → 7`); [`NullMap::resolve`]
//! follows chains with path compression.

use std::collections::HashMap;

use grom_data::{NullId, Value};

/// Outcome of enforcing one equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unify {
    /// The two values were already identical after resolution.
    Noop,
    /// A null was mapped; the instance needs re-normalization.
    Merged,
    /// Two distinct constants were equated: the chase fails.
    Clash(Value, Value),
}

/// A substitution from null labels to values, with chain resolution.
#[derive(Debug, Clone, Default)]
pub struct NullMap {
    map: HashMap<NullId, Value>,
}

impl NullMap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Resolve a value through the map without mutating it (follows chains,
    /// no path compression). This is the read-only view the parallel chase
    /// executor hands to its workers: they resolve bindings against a
    /// frozen snapshot of the sweep-start map while *collecting* new
    /// equality obligations instead of unifying in place.
    pub fn resolve_frozen(&self, value: &Value) -> Value {
        let mut current = value.clone();
        while let Some(id) = current.as_null() {
            match self.map.get(&id) {
                Some(next) => current = next.clone(),
                None => break,
            }
        }
        current
    }

    /// Resolve a value through the map (follows chains, compresses paths).
    pub fn resolve(&mut self, value: &Value) -> Value {
        let Some(id) = value.as_null() else {
            return value.clone();
        };
        let Some(next) = self.map.get(&id).cloned() else {
            return value.clone();
        };
        let root = self.resolve(&next);
        if root != next {
            self.map.insert(id, root.clone());
        }
        root
    }

    /// Enforce `a = b`.
    pub fn unify(&mut self, a: &Value, b: &Value) -> Unify {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra == rb {
            return Unify::Noop;
        }
        match (ra.as_null(), rb.as_null()) {
            (None, None) => Unify::Clash(ra, rb),
            (Some(na), None) => {
                self.map.insert(na, rb);
                Unify::Merged
            }
            (None, Some(nb)) => {
                self.map.insert(nb, ra);
                Unify::Merged
            }
            (Some(na), Some(nb)) => {
                // Deterministic orientation: higher label maps to lower.
                if na > nb {
                    self.map.insert(na, rb);
                } else {
                    self.map.insert(nb, ra);
                }
                Unify::Merged
            }
        }
    }

    /// A lookup closure suitable for
    /// [`grom_data::Instance::substitute_nulls`]: maps a label to its fully
    /// resolved replacement, or `None` when unmapped.
    pub fn lookup(&mut self, id: NullId) -> Option<Value> {
        if !self.map.contains_key(&id) {
            return None;
        }
        Some(self.resolve(&Value::Null(id)))
    }

    /// A fully resolved snapshot of the substitution: every mapped label
    /// sent directly to its final value, chains collapsed once. This is the
    /// input of [`grom_data::Instance::substitute_nulls_batch`] — the
    /// one-pass sweep-level substitution of egd batching.
    pub fn flatten(&mut self) -> HashMap<NullId, Value> {
        let keys: Vec<NullId> = self.map.keys().copied().collect();
        keys.into_iter()
            .map(|id| {
                let root = self.resolve(&Value::Null(id));
                (id, root)
            })
            .collect()
    }

    /// Total number of merges recorded so far (mapped labels).
    pub fn merge_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_null_with_constant() {
        let mut m = NullMap::new();
        assert_eq!(m.unify(&Value::null(0), &Value::int(5)), Unify::Merged);
        assert_eq!(m.resolve(&Value::null(0)), Value::int(5));
        assert_eq!(m.unify(&Value::null(0), &Value::int(5)), Unify::Noop);
    }

    #[test]
    fn constant_clash_detected() {
        let mut m = NullMap::new();
        match m.unify(&Value::int(1), &Value::int(2)) {
            Unify::Clash(a, b) => {
                assert_eq!(a, Value::int(1));
                assert_eq!(b, Value::int(2));
            }
            other => panic!("expected clash, got {other:?}"),
        }
        assert_eq!(m.unify(&Value::str("x"), &Value::str("x")), Unify::Noop);
    }

    #[test]
    fn null_null_orientation_is_deterministic() {
        let mut m = NullMap::new();
        assert_eq!(m.unify(&Value::null(5), &Value::null(2)), Unify::Merged);
        assert_eq!(m.resolve(&Value::null(5)), Value::null(2));
        let mut m = NullMap::new();
        assert_eq!(m.unify(&Value::null(2), &Value::null(5)), Unify::Merged);
        assert_eq!(m.resolve(&Value::null(5)), Value::null(2));
    }

    #[test]
    fn chains_resolve_transitively() {
        let mut m = NullMap::new();
        m.unify(&Value::null(3), &Value::null(1));
        m.unify(&Value::null(1), &Value::int(7));
        assert_eq!(m.resolve(&Value::null(3)), Value::int(7));
        assert_eq!(m.resolve(&Value::null(1)), Value::int(7));
    }

    #[test]
    fn chained_clash_detected() {
        let mut m = NullMap::new();
        m.unify(&Value::null(0), &Value::int(1));
        m.unify(&Value::null(1), &Value::int(2));
        match m.unify(&Value::null(0), &Value::null(1)) {
            Unify::Clash(a, b) => {
                assert_eq!(a, Value::int(1));
                assert_eq!(b, Value::int(2));
            }
            other => panic!("expected clash, got {other:?}"),
        }
    }

    #[test]
    fn lookup_for_substitution() {
        let mut m = NullMap::new();
        m.unify(&Value::null(0), &Value::null(1));
        m.unify(&Value::null(1), &Value::int(9));
        assert_eq!(m.lookup(NullId(0)), Some(Value::int(9)));
        assert_eq!(m.lookup(NullId(1)), Some(Value::int(9)));
        assert_eq!(m.lookup(NullId(7)), None);
    }

    #[test]
    fn resolve_frozen_follows_chains_without_mutation() {
        let mut m = NullMap::new();
        m.unify(&Value::null(3), &Value::null(1));
        m.unify(&Value::null(1), &Value::int(7));
        let frozen = &m;
        assert_eq!(frozen.resolve_frozen(&Value::null(3)), Value::int(7));
        assert_eq!(frozen.resolve_frozen(&Value::null(9)), Value::null(9));
        assert_eq!(frozen.resolve_frozen(&Value::int(2)), Value::int(2));
    }

    #[test]
    fn flatten_collapses_chains() {
        let mut m = NullMap::new();
        m.unify(&Value::null(5), &Value::null(3));
        m.unify(&Value::null(3), &Value::null(1));
        m.unify(&Value::null(1), &Value::int(7));
        let flat = m.flatten();
        assert_eq!(flat.len(), 3);
        for id in [5u64, 3, 1] {
            assert_eq!(flat[&NullId(id)], Value::int(7));
        }
    }

    #[test]
    fn merge_count_tracks_mapped_labels() {
        let mut m = NullMap::new();
        assert_eq!(m.merge_count(), 0);
        m.unify(&Value::null(0), &Value::int(1));
        m.unify(&Value::null(2), &Value::null(3));
        assert_eq!(m.merge_count(), 2);
    }
}
