//! The conformance corpus: persisted scenarios with expected canonical
//! chase results, verified across every scheduler mode.
//!
//! One entry is a directory holding four files:
//!
//! ```text
//! corpus/<name>/
//!   spec.gen        # provenance: `spec: <line>` (regenerable) or
//!                   # `minimized-from: <text>` (shrunk fuzz finding)
//!   scenario.grom   # the dependency program (schemas + tgds/egds)
//!   source.facts    # the source instance, fact per line
//!   expected.txt    # canonical_render of the FullRescan chase result
//! ```
//!
//! `verify` re-chases an entry under `FullRescan`, `Delta`, `Parallel{2}`
//! and `Parallel{4}` and compares each canonical rendering against
//! `expected.txt`; for spec-born entries it additionally regenerates the
//! scenario from the recorded spec line and demands byte identity — the
//! determinism gate of the generator.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use grom_chase::{
    chase_standard, chase_standard_full_rescan, Budget, ChaseConfig, ChaseError, SchedulerMode,
};
use grom_data::{canonical_render, Instance};
use grom_lang::Dependency;

use crate::gen::{generate, parse_scenario_texts, random_spec};
use crate::minimize::minimize;
use crate::spec::ScenarioSpec;

pub const SPEC_FILE: &str = "spec.gen";
pub const PROGRAM_FILE: &str = "scenario.grom";
pub const SOURCE_FILE: &str = "source.facts";
pub const EXPECTED_FILE: &str = "expected.txt";

/// The scheduler modes every corpus entry must agree under, with the
/// stable names CI reports use.
pub fn all_modes() -> [(&'static str, SchedulerMode); 4] {
    [
        ("full_rescan", SchedulerMode::FullRescan),
        ("delta", SchedulerMode::Delta),
        ("parallel2", SchedulerMode::Parallel { threads: 2 }),
        ("parallel4", SchedulerMode::Parallel { threads: 4 }),
    ]
}

/// Where an entry came from.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// Regenerable from a spec line; verification enforces byte identity.
    Generated(ScenarioSpec),
    /// A minimized fuzz finding (or hand-written regression); the origin
    /// text records the spec that originally exposed it.
    Minimized { origin: String },
    /// Written by hand (e.g. the non-weakly-acyclic resilience entries);
    /// the note says why it exists. No regeneration check applies.
    Handwritten { note: String },
}

/// One corpus entry, fully in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    pub name: String,
    pub provenance: Provenance,
    pub program: String,
    pub source: String,
    /// `None` until recorded (freshly generated entries).
    pub expected: Option<String>,
    /// `Some(class)` turns verification inside out: every mode must *fail*
    /// in this [`error_class`] (e.g. `interrupted` for non-terminating
    /// entries chased under a budget) instead of matching `expected.txt`.
    pub expect: Option<String>,
    /// Derived-tuple budget applied when chasing this entry; what makes
    /// `expect: interrupted` entries deterministic across machines.
    pub max_tuples: Option<u64>,
}

/// Corpus-layer failures.
#[derive(Debug)]
pub enum CorpusError {
    Io {
        path: PathBuf,
        error: std::io::Error,
    },
    Malformed {
        path: PathBuf,
        detail: String,
    },
    Parse {
        name: String,
        detail: String,
    },
    Chase {
        name: String,
        detail: String,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            CorpusError::Malformed { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            CorpusError::Parse { name, detail } => write!(f, "entry `{name}`: {detail}"),
            CorpusError::Chase { name, detail } => {
                write!(f, "entry `{name}`: reference chase failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

fn io_err(path: &Path, error: std::io::Error) -> CorpusError {
    CorpusError::Io {
        path: path.to_path_buf(),
        error,
    }
}

impl CorpusEntry {
    /// Build a fresh (unrecorded) entry from a spec.
    pub fn from_spec(name: impl Into<String>, spec: &ScenarioSpec) -> CorpusEntry {
        let g = generate(spec);
        CorpusEntry {
            name: name.into(),
            provenance: Provenance::Generated(spec.clone()),
            program: g.program,
            source: g.source,
            expected: None,
            expect: None,
            max_tuples: None,
        }
    }

    /// Parse the entry's texts into chase inputs.
    pub fn parts(&self) -> Result<(Vec<Dependency>, Instance), CorpusError> {
        parse_scenario_texts(&self.program, &self.source).map_err(|detail| CorpusError::Parse {
            name: self.name.clone(),
            detail,
        })
    }

    /// Chase under the reference mode and store the canonical rendering as
    /// the expected result.
    pub fn record(&mut self, cfg: &ChaseConfig) -> Result<&str, CorpusError> {
        let (deps, inst) = self.parts()?;
        let rendered = chase_mode(&deps, inst, SchedulerMode::FullRescan, cfg).map_err(|e| {
            CorpusError::Chase {
                name: self.name.clone(),
                detail: e,
            }
        })?;
        self.expected = Some(rendered);
        Ok(self.expected.as_deref().expect("just set"))
    }
}

/// Chase `deps` over `inst` under one mode and canonically render the
/// result. Errors are rendered as a stable `chase error: <class>` line so
/// failing scenarios can still be compared across modes.
pub fn chase_mode(
    deps: &[Dependency],
    inst: Instance,
    mode: SchedulerMode,
    cfg: &ChaseConfig,
) -> Result<String, String> {
    let cfg = cfg.clone().with_scheduler(mode);
    let run = match mode {
        SchedulerMode::FullRescan => chase_standard_full_rescan(inst, deps, &cfg),
        _ => chase_standard(inst, deps, &cfg),
    };
    match run {
        Ok(res) => Ok(canonical_render(&res.instance)),
        Err(e) => Err(error_class(&e).to_string()),
    }
}

/// Stable error classification: two modes "agree" on a failing scenario
/// when they fail in the same class (the precise dependency/round may
/// legitimately differ between schedulers).
pub fn error_class(e: &ChaseError) -> &'static str {
    match e {
        ChaseError::Failure { .. } => "failure",
        ChaseError::RoundLimit { .. } => "round-limit",
        ChaseError::GreedyExhausted { .. } => "greedy-exhausted",
        ChaseError::NodeLimit { .. } => "node-limit",
        ChaseError::NoSolution { .. } => "no-solution",
        ChaseError::NotExecutable { .. } => "not-executable",
        ChaseError::Data(_) => "data-error",
        ChaseError::Interrupted(_) => "interrupted",
        ChaseError::WorkerPanicked { .. } => "worker-panicked",
    }
}

// ------------------------------------------------------------------ disk --

/// Write an entry to `<dir>/<name>/`, creating directories as needed.
/// Returns the entry directory.
pub fn write_entry(dir: &Path, entry: &CorpusEntry) -> Result<PathBuf, CorpusError> {
    let path = dir.join(&entry.name);
    fs::create_dir_all(&path).map_err(|e| io_err(&path, e))?;
    let mut spec_text = match &entry.provenance {
        Provenance::Generated(spec) => format!(
            "# regenerate: grom corpus gen --name {} --spec \"{spec}\"\nspec: {spec}\n",
            entry.name
        ),
        Provenance::Minimized { origin } => format!(
            "# minimized fuzz finding; not regenerable from a spec.\nminimized-from: {origin}\n"
        ),
        Provenance::Handwritten { note } => {
            format!("# hand-written entry; not regenerable from a spec.\nhandwritten: {note}\n")
        }
    };
    if let Some(n) = entry.max_tuples {
        spec_text.push_str(&format!("max-tuples: {n}\n"));
    }
    if let Some(class) = &entry.expect {
        spec_text.push_str(&format!("expect: {class}\n"));
    }
    let writes: [(&str, &str); 3] = [
        (SPEC_FILE, &spec_text),
        (PROGRAM_FILE, &entry.program),
        (SOURCE_FILE, &entry.source),
    ];
    for (file, text) in writes {
        let p = path.join(file);
        fs::write(&p, text).map_err(|e| io_err(&p, e))?;
    }
    if let Some(expected) = &entry.expected {
        let p = path.join(EXPECTED_FILE);
        // canonical_render output has no trailing newline; keep the file
        // POSIX-friendly and strip it back on read.
        fs::write(&p, format!("{expected}\n")).map_err(|e| io_err(&p, e))?;
    }
    Ok(path)
}

/// Read one entry from its directory.
pub fn read_entry(path: &Path) -> Result<CorpusEntry, CorpusError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| CorpusError::Malformed {
            path: path.to_path_buf(),
            detail: "entry directory has no utf-8 name".into(),
        })?
        .to_string();
    let read = |file: &str| -> Result<String, CorpusError> {
        let p = path.join(file);
        fs::read_to_string(&p).map_err(|e| io_err(&p, e))
    };
    let spec_text = read(SPEC_FILE)?;
    let mut provenance = None;
    let mut expect = None;
    let mut max_tuples = None;
    for line in spec_text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("spec:") {
            let spec = ScenarioSpec::parse(rest.trim()).map_err(|e| CorpusError::Malformed {
                path: path.join(SPEC_FILE),
                detail: e.to_string(),
            })?;
            provenance.get_or_insert(Provenance::Generated(spec));
        } else if let Some(rest) = line.strip_prefix("minimized-from:") {
            provenance.get_or_insert(Provenance::Minimized {
                origin: rest.trim().to_string(),
            });
        } else if let Some(rest) = line.strip_prefix("handwritten:") {
            provenance.get_or_insert(Provenance::Handwritten {
                note: rest.trim().to_string(),
            });
        } else if let Some(rest) = line.strip_prefix("expect:") {
            expect = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("max-tuples:") {
            max_tuples = Some(
                rest.trim()
                    .parse::<u64>()
                    .map_err(|e| CorpusError::Malformed {
                        path: path.join(SPEC_FILE),
                        detail: format!("bad max-tuples line: {e}"),
                    })?,
            );
        }
    }
    let provenance = provenance.ok_or_else(|| CorpusError::Malformed {
        path: path.join(SPEC_FILE),
        detail: "no `spec:`, `minimized-from:` or `handwritten:` line".into(),
    })?;
    let expected = match fs::read_to_string(path.join(EXPECTED_FILE)) {
        Ok(text) => Some(text.trim_end_matches('\n').to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(io_err(&path.join(EXPECTED_FILE), e)),
    };
    Ok(CorpusEntry {
        name,
        provenance,
        program: read(PROGRAM_FILE)?,
        source: read(SOURCE_FILE)?,
        expected,
        expect,
        max_tuples,
    })
}

/// List the entry directories of a corpus root, sorted by name.
pub fn list_entries(dir: &Path) -> Result<Vec<PathBuf>, CorpusError> {
    let mut out = Vec::new();
    let iter = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for item in iter {
        let item = item.map_err(|e| io_err(dir, e))?;
        let path = item.path();
        if path.is_dir() && path.join(SPEC_FILE).is_file() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

// ----------------------------------------------------------- verification --

/// Outcome of chasing one entry under one scheduler mode.
#[derive(Debug, Clone)]
pub struct ModeRun {
    pub mode: &'static str,
    pub wall_ms: f64,
    pub ok: bool,
    /// Mismatch/error description when not ok.
    pub detail: Option<String>,
}

/// Full verification report for one entry.
#[derive(Debug, Clone)]
pub struct EntryReport {
    pub name: String,
    /// `Some(false)` when the entry's recorded spec no longer regenerates
    /// its committed texts byte for byte; `None` for minimized entries.
    pub regen_ok: Option<bool>,
    pub modes: Vec<ModeRun>,
}

impl EntryReport {
    pub fn ok(&self) -> bool {
        self.regen_ok != Some(false) && self.modes.iter().all(|m| m.ok)
    }
}

/// Verify one entry: determinism (for spec-born entries) plus conformance
/// of every requested mode against the committed expected rendering.
pub fn verify_entry(
    entry: &CorpusEntry,
    modes: &[(&'static str, SchedulerMode)],
    cfg: &ChaseConfig,
) -> Result<EntryReport, CorpusError> {
    let regen_ok = match &entry.provenance {
        Provenance::Generated(spec) => {
            let g = generate(spec);
            Some(g.program == entry.program && g.source == entry.source)
        }
        Provenance::Minimized { .. } | Provenance::Handwritten { .. } => None,
    };
    let mut cfg = cfg.clone();
    if let Some(n) = entry.max_tuples {
        cfg = cfg.with_budget(Budget::none().with_max_tuples(n as usize));
    }
    // `expect: <class>` entries (e.g. non-terminating programs chased
    // under a tuple budget) must *fail* in that class under every mode;
    // no expected.txt applies. Everything else compares renderings.
    let expected = match entry.expect.as_deref() {
        Some(_) => None,
        None => Some(
            entry
                .expected
                .as_deref()
                .ok_or_else(|| CorpusError::Parse {
                    name: entry.name.clone(),
                    detail: format!("no committed {EXPECTED_FILE}; run `grom corpus record` first"),
                })?,
        ),
    };
    let (deps, inst) = entry.parts()?;
    let mut runs = Vec::new();
    for &(mode_name, mode) in modes {
        let t0 = Instant::now();
        let outcome = chase_mode(&deps, inst.clone(), mode, &cfg);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (ok, detail) = match (entry.expect.as_deref(), outcome) {
            (Some(want), Err(class)) if class == want => (true, None),
            (Some(want), Err(class)) => (
                false,
                Some(format!(
                    "expected `{want}` failure, chase failed with `{class}`"
                )),
            ),
            (Some(want), Ok(_)) => (
                false,
                Some(format!("expected `{want}` failure, chase completed")),
            ),
            (None, Ok(rendered)) if Some(rendered.as_str()) == expected => (true, None),
            (None, Ok(rendered)) => (
                false,
                Some(format!(
                    "canonical render mismatch ({} vs {} expected lines)",
                    rendered.lines().count(),
                    expected.map_or(0, |e| e.lines().count())
                )),
            ),
            (None, Err(class)) => (false, Some(format!("chase error: {class}"))),
        };
        runs.push(ModeRun {
            mode: mode_name,
            wall_ms,
            ok,
            detail,
        });
    }
    Ok(EntryReport {
        name: entry.name.clone(),
        regen_ok,
        modes: runs,
    })
}

// ------------------------------------------------------------------ fuzz --

/// Check one scenario for cross-mode divergence: chase under every mode
/// and compare canonical renderings (and error classes) against the
/// `FullRescan` reference. Returns a human-readable description of the
/// first divergence, or `None` when all modes agree.
pub fn divergence(deps: &[Dependency], inst: &Instance, cfg: &ChaseConfig) -> Option<String> {
    let reference = chase_mode(deps, inst.clone(), SchedulerMode::FullRescan, cfg);
    for (mode_name, mode) in all_modes().into_iter().skip(1) {
        let got = chase_mode(deps, inst.clone(), mode, cfg);
        match (&reference, &got) {
            (Ok(a), Ok(b)) if a == b => {}
            (Err(a), Err(b)) if a == b => {}
            _ => {
                let show = |r: &Result<String, String>| match r {
                    Ok(s) => format!("ok ({} lines)", s.lines().count()),
                    Err(c) => format!("error `{c}`"),
                };
                return Some(format!(
                    "mode {mode_name} diverges from full_rescan: {} vs {}",
                    show(&got),
                    show(&reference)
                ));
            }
        }
    }
    None
}

/// One divergence found (and minimized) by [`fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzFinding {
    /// Directory of the written minimized entry.
    pub entry_dir: PathBuf,
    /// Spec that first exposed the divergence.
    pub spec: ScenarioSpec,
    /// Divergence description from the *minimized* scenario.
    pub detail: String,
    /// Sizes before and after minimization: (deps, tuples).
    pub before: (usize, usize),
    pub after: (usize, usize),
}

/// Outcome of a fuzz campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    pub tried: usize,
    pub findings: Vec<FuzzFinding>,
    /// How many of `findings` are deadline exhaustions rather than
    /// cross-mode divergences.
    pub timed_out: usize,
}

/// Run `budget` random scenarios through every scheduler mode; divergences
/// are greedily minimized and written to `out_dir` as ready-to-commit
/// corpus entries (provenance `minimized-from`). The expected file records
/// the minimized scenario's *reference* (FullRescan) rendering, so dropping
/// the entry into `corpus/` turns the divergence into a red conformance
/// test until the bug is fixed.
pub fn fuzz(
    budget: usize,
    seed: u64,
    max_scale: usize,
    deadline_ms: Option<u64>,
    out_dir: &Path,
    cfg: &ChaseConfig,
    mut progress: impl FnMut(usize, &ScenarioSpec),
) -> Result<FuzzOutcome, CorpusError> {
    // The deadline bounds every individual chase of the campaign: one
    // pathological (non-terminating or explosive) scenario can no longer
    // hang the whole run. Exhaustions surface as findings below.
    let cfg = match deadline_ms {
        Some(ms) => cfg.clone().with_budget(Budget::none().with_deadline_ms(ms)),
        None => cfg.clone(),
    };
    let cfg = &cfg;
    let mut outcome = FuzzOutcome::default();
    for i in 0..budget {
        let spec = random_spec(seed.wrapping_add(i as u64), max_scale);
        progress(i, &spec);
        let g = generate(&spec);
        let (deps, inst) = g.parts().map_err(|detail| CorpusError::Parse {
            name: format!("fuzz seed {}", spec.seed),
            detail,
        })?;
        outcome.tried += 1;

        // Chase every mode once; a deadline exhaustion in any mode is its
        // own finding (written un-minimized — the shrinker would re-chase
        // the runaway program thousands of times), not a divergence.
        let results: Vec<(&'static str, Result<String, String>)> = all_modes()
            .into_iter()
            .map(|(mode_name, mode)| (mode_name, chase_mode(&deps, inst.clone(), mode, cfg)))
            .collect();
        let timed: Vec<&str> = results
            .iter()
            .filter(|(_, r)| r.as_ref().err().map(String::as_str) == Some("interrupted"))
            .map(|(mode_name, _)| *mode_name)
            .collect();
        if !timed.is_empty() {
            let detail = format!(
                "deadline of {}ms exceeded under: {}",
                deadline_ms.unwrap_or(0),
                timed.join(", ")
            );
            let entry = CorpusEntry {
                name: format!("timeout_{:08x}_{i:04}", seed),
                provenance: Provenance::Handwritten {
                    note: format!("fuzz deadline exhaustion; originating spec: {spec}"),
                },
                program: g.program.clone(),
                source: g.source.clone(),
                expected: None,
                expect: Some("interrupted".into()),
                max_tuples: None,
            };
            let dir = write_entry(out_dir, &entry)?;
            let detail_path = dir.join("divergence.txt");
            fs::write(&detail_path, format!("{detail}\n")).map_err(|e| io_err(&detail_path, e))?;
            let size = (deps.len(), inst.len());
            outcome.timed_out += 1;
            outcome.findings.push(FuzzFinding {
                entry_dir: dir,
                spec,
                detail,
                before: size,
                after: size,
            });
            continue;
        }
        let diverged = {
            let reference = &results[0].1;
            results[1..].iter().any(|(_, got)| match (reference, got) {
                (Ok(a), Ok(b)) => a != b,
                (Err(a), Err(b)) => a != b,
                _ => true,
            })
        };
        if !diverged {
            continue;
        }
        let before = (deps.len(), inst.len());
        let report = minimize(deps, inst, 5_000, |d, i| divergence(d, i, cfg).is_some());
        let detail = divergence(&report.deps, &report.instance, cfg)
            .unwrap_or_else(|| "divergence lost during minimization".into());
        let mut entry = CorpusEntry {
            name: format!("min_{:08x}_{i:04}", seed),
            provenance: Provenance::Minimized {
                origin: spec.to_string(),
            },
            program: render_minimized_program(&report.deps, &spec),
            source: grom_data::write_instance(&report.instance),
            expected: None,
            expect: None,
            max_tuples: None,
        };
        // Record the reference rendering when the reference chase still
        // succeeds; a failing reference leaves expected absent (the entry
        // then documents the divergence via spec.gen + this detail).
        let _ = entry.record(cfg);
        let dir = write_entry(out_dir, &entry)?;
        let detail_path = dir.join("divergence.txt");
        fs::write(&detail_path, format!("{detail}\n")).map_err(|e| io_err(&detail_path, e))?;
        outcome.findings.push(FuzzFinding {
            entry_dir: dir,
            spec,
            detail,
            before,
            after: (report.deps.len(), report.instance.len()),
        });
    }
    Ok(outcome)
}

/// Render a minimized dependency set as a parseable scenario program.
/// Schema blocks are intentionally omitted: the chase needs only the
/// dependencies, and a minimized program should stay minimal to read.
fn render_minimized_program(deps: &[Dependency], origin: &ScenarioSpec) -> String {
    let mut out = String::new();
    out.push_str("# minimized by grom-scenarios from a fuzz divergence.\n");
    out.push_str(&format!("# originating spec: {origin}\n"));
    for d in deps {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mix;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("grom_corpus_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            mix: Mix {
                copy: 1,
                vpart: 1,
                er: 1,
                ..Default::default()
            },
            depth: 2,
            egd_density: 0.5,
            seed: 7,
            scale: 1,
        }
    }

    #[test]
    fn entry_round_trips_through_disk_and_verifies() {
        let dir = tmp_dir("roundtrip");
        let cfg = ChaseConfig::default();
        let mut entry = CorpusEntry::from_spec("rt_entry", &small_spec());
        entry.record(&cfg).expect("reference chase succeeds");
        let path = write_entry(&dir, &entry).unwrap();
        let back = read_entry(&path).unwrap();
        assert_eq!(back, entry);

        let report = verify_entry(&back, &all_modes(), &cfg).unwrap();
        assert!(report.ok(), "fresh entry verifies: {report:?}");
        assert_eq!(report.regen_ok, Some(true));
        assert_eq!(report.modes.len(), 4);

        assert_eq!(list_entries(&dir).unwrap(), vec![path]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_expected_fails_verification() {
        let cfg = ChaseConfig::default();
        let mut entry = CorpusEntry::from_spec("tampered", &small_spec());
        entry.record(&cfg).unwrap();
        entry.expected = Some(format!("{}\nGhost(0)", entry.expected.unwrap()));
        let report = verify_entry(&entry, &all_modes(), &cfg).unwrap();
        assert!(!report.ok());
        assert!(report.modes.iter().all(|m| !m.ok));
    }

    #[test]
    fn tampered_program_fails_the_determinism_gate() {
        let cfg = ChaseConfig::default();
        let mut entry = CorpusEntry::from_spec("regen", &small_spec());
        entry.record(&cfg).unwrap();
        entry.program.push_str("# sneaky edit\n");
        // Chase results are unchanged (a comment), but regeneration from
        // the spec no longer reproduces the committed bytes.
        entry.record(&cfg).unwrap();
        let report = verify_entry(&entry, &all_modes(), &cfg).unwrap();
        assert_eq!(report.regen_ok, Some(false));
        assert!(!report.ok());
    }

    #[test]
    fn generated_scenarios_conform_across_modes() {
        let cfg = ChaseConfig::default();
        for seed in 0..12u64 {
            let spec = random_spec(seed, 2);
            let g = generate(&spec);
            let (deps, inst) = g.parts().unwrap();
            assert_eq!(
                divergence(&deps, &inst, &cfg),
                None,
                "spec `{spec}` diverges"
            );
        }
    }

    #[test]
    fn expect_interrupted_entry_verifies_under_every_mode() {
        let dir = tmp_dir("expect");
        let cfg = ChaseConfig::default();
        // A self-feeding tgd: not weakly acyclic, never terminates. With a
        // tuple budget every mode must interrupt, and the entry says so.
        let entry = CorpusEntry {
            name: "nwa_probe".into(),
            provenance: Provenance::Handwritten {
                note: "self-feeding tgd, chase cannot terminate".into(),
            },
            program: "tgd m: R(x, y) -> R(y, z).\n".into(),
            source: "R(1, 2).\n".into(),
            expected: None,
            expect: Some("interrupted".into()),
            max_tuples: Some(50),
        };
        let path = write_entry(&dir, &entry).unwrap();
        let back = read_entry(&path).unwrap();
        assert_eq!(back, entry);

        let report = verify_entry(&back, &all_modes(), &cfg).unwrap();
        assert!(report.ok(), "expect-entry verifies: {report:?}");
        assert_eq!(report.regen_ok, None);

        // Without the budget the expectation cannot be met in bounded
        // time, so a round-limit class shows up as the wrong failure.
        let mut unbudgeted = back.clone();
        unbudgeted.max_tuples = None;
        let report = verify_entry(&unbudgeted, &all_modes(), &cfg).unwrap();
        assert!(!report.ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuzz_deadline_exhaustion_is_a_finding() {
        let dir = tmp_dir("fuzz_deadline");
        let cfg = ChaseConfig::default();
        // A 0ms deadline trips at the first sweep of every scenario, so
        // each try becomes a timeout finding rather than a hang.
        let outcome = fuzz(2, 99, 1, Some(0), &dir, &cfg, |_, _| {}).unwrap();
        assert_eq!(outcome.tried, 2);
        assert_eq!(outcome.timed_out, 2);
        assert_eq!(outcome.findings.len(), 2);
        for f in &outcome.findings {
            assert!(f.detail.contains("deadline"));
            let entry = read_entry(&f.entry_dir).unwrap();
            assert_eq!(entry.expect.as_deref(), Some("interrupted"));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuzz_clean_run_finds_nothing() {
        let dir = tmp_dir("fuzz");
        let cfg = ChaseConfig::default();
        let outcome = fuzz(4, 99, 1, None, &dir, &cfg, |_, _| {}).unwrap();
        assert_eq!(outcome.tried, 4);
        assert!(outcome.findings.is_empty());
        assert_eq!(outcome.timed_out, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
