//! Greedy scenario minimization.
//!
//! The vendored proptest shim has no shrinking, so a failing generated
//! scenario would land in the corpus at full size without help. The
//! minimizer here is the missing shrink pass: given a failing
//! `(dependencies, instance)` pair and an oracle that decides whether a
//! candidate still fails, it greedily drops dependencies and source tuples
//! one at a time, looping until a fixed point — a scenario from which no
//! single dependency or tuple can be removed without losing the failure.
//!
//! Greedy single-element elimination is not globally minimal (that would
//! need delta debugging), but it converges fast, is deterministic, and in
//! practice shrinks generated divergences to a handful of lines — small
//! enough to read and to commit as a regression entry.

use grom_data::{Fact, Instance};
use grom_lang::Dependency;

/// Result of a [`minimize`] run.
#[derive(Debug, Clone)]
pub struct MinimizeReport {
    pub deps: Vec<Dependency>,
    pub instance: Instance,
    /// Number of oracle invocations spent.
    pub oracle_calls: usize,
    /// Number of full elimination passes until the fixed point.
    pub passes: usize,
    /// False when the run stopped on the oracle-call budget (the result
    /// still fails, it just may not be 1-minimal) or when the input did
    /// not fail at all (returned unchanged).
    pub converged: bool,
}

/// Greedily minimize a failing scenario. `oracle` must return `true` while
/// the candidate still exhibits the failure; the returned pair always
/// satisfies the oracle unless the input itself did not. `max_oracle_calls`
/// bounds the work (each candidate costs one call — typically a few chase
/// runs).
pub fn minimize<F>(
    deps: Vec<Dependency>,
    instance: Instance,
    max_oracle_calls: usize,
    oracle: F,
) -> MinimizeReport
where
    F: Fn(&[Dependency], &Instance) -> bool,
{
    let mut calls = 0usize;
    let check = |d: &[Dependency], i: &Instance, calls: &mut usize| {
        *calls += 1;
        oracle(d, i)
    };
    if !check(&deps, &instance, &mut calls) {
        return MinimizeReport {
            deps,
            instance,
            oracle_calls: calls,
            passes: 0,
            converged: false,
        };
    }

    let mut deps = deps;
    let mut facts: Vec<Fact> = instance.facts().collect();
    let mut passes = 0usize;
    let budget_left = |calls: usize| calls < max_oracle_calls;
    loop {
        passes += 1;
        let mut changed = false;
        // Dependencies first: dropping one usually removes whole relations
        // from play, making the tuple pass cheaper.
        let mut i = 0;
        while i < deps.len() {
            if !budget_left(calls) {
                return finish(deps, facts, calls, passes, false);
            }
            let mut candidate = deps.clone();
            candidate.remove(i);
            let inst = rebuild(&facts);
            if check(&candidate, &inst, &mut calls) {
                deps = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        let mut j = 0;
        while j < facts.len() {
            if !budget_left(calls) {
                return finish(deps, facts, calls, passes, false);
            }
            let mut candidate = facts.clone();
            candidate.remove(j);
            let inst = rebuild(&candidate);
            if check(&deps, &inst, &mut calls) {
                facts = candidate;
                changed = true;
            } else {
                j += 1;
            }
        }
        if !changed {
            return finish(deps, facts, calls, passes, true);
        }
    }
}

fn rebuild(facts: &[Fact]) -> Instance {
    // A subset of a well-formed fact list keeps arities consistent.
    Instance::from_facts(facts.iter().cloned()).expect("fact subset stays well-formed")
}

fn finish(
    deps: Vec<Dependency>,
    facts: Vec<Fact>,
    oracle_calls: usize,
    passes: usize,
    converged: bool,
) -> MinimizeReport {
    MinimizeReport {
        instance: rebuild(&facts),
        deps,
        oracle_calls,
        passes,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;
    use grom_lang::parser::parse_dependency;

    fn dep(text: &str) -> Dependency {
        parse_dependency(text).unwrap()
    }

    fn synthetic_inputs() -> (Vec<Dependency>, Instance) {
        let deps = vec![
            dep("tgd a: R0(x, y) -> R1(x, y)."),
            dep("tgd bad: R1(x, y) -> R2(x, y)."),
            dep("egd c: R2(x, y), R2(x, z) -> y = z."),
            dep("tgd d: R2(x, y) -> R0(y, x)."),
        ];
        let mut inst = Instance::new();
        for k in 0..4i64 {
            inst.add("R0", vec![Value::int(k), Value::int(k + 1)])
                .unwrap();
            inst.add("R1", vec![Value::int(k), Value::int(0)]).unwrap();
        }
        (deps, inst)
    }

    /// A synthetic "divergence": present exactly when the dependency named
    /// `bad` and the source fact `R0(0, 1)` are both in the scenario.
    fn oracle(deps: &[Dependency], inst: &Instance) -> bool {
        deps.iter().any(|d| d.name.as_ref() == "bad")
            && inst.contains_fact(
                "R0",
                &grom_data::Tuple::new(vec![Value::int(0), Value::int(1)]),
            )
    }

    #[test]
    fn known_divergent_scenario_minimizes_to_its_core() {
        let (deps, inst) = synthetic_inputs();
        let report = minimize(deps, inst, 10_000, oracle);
        assert!(report.converged);
        assert_eq!(report.deps.len(), 1, "only the culprit dependency remains");
        assert_eq!(report.deps[0].name.as_ref(), "bad");
        assert_eq!(report.instance.len(), 1, "only the culprit tuple remains");
        assert!(oracle(&report.deps, &report.instance));
    }

    #[test]
    fn minimization_reaches_a_stable_fixed_point() {
        let (deps, inst) = synthetic_inputs();
        let first = minimize(deps, inst, 10_000, oracle);
        let second = minimize(first.deps.clone(), first.instance.clone(), 10_000, oracle);
        assert!(second.converged);
        // Re-minimizing a minimal scenario changes nothing and needs only
        // the single no-progress pass.
        assert_eq!(second.passes, 1);
        assert_eq!(second.deps.len(), first.deps.len());
        assert_eq!(second.instance.len(), first.instance.len());
    }

    #[test]
    fn non_failing_input_returns_unchanged() {
        let (deps, inst) = synthetic_inputs();
        let report = minimize(deps.clone(), inst.clone(), 10_000, |_, _| false);
        assert!(!report.converged);
        assert_eq!(report.passes, 0);
        assert_eq!(report.deps.len(), deps.len());
        assert_eq!(report.instance.len(), inst.len());
    }

    #[test]
    fn budget_exhaustion_still_returns_a_failing_scenario() {
        let (deps, inst) = synthetic_inputs();
        let report = minimize(deps, inst, 3, oracle);
        assert!(!report.converged);
        assert!(oracle(&report.deps, &report.instance));
    }
}
