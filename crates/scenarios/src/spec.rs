//! Scenario specifications: the reproducible `(primitive mix, seed, scale)`
//! triple every generated scenario is rebuilt from.
//!
//! A spec serializes to a single line,
//!
//! ```text
//! mix=copy:1,vpart:2,er:1 depth=3 egd=0.50 seed=17 scale=2
//! ```
//!
//! and [`ScenarioSpec::parse`] inverts the `Display` rendering exactly,
//! so the line committed in a corpus entry's `spec.gen` is everything needed
//! to regenerate the entry byte for byte.

use std::fmt;

/// How many instances of each mapping primitive the scenario composes.
///
/// The primitives are the iBench-style building blocks of the paper's
/// benchmark methodology:
///
/// * `copy` — a copy chain `S → T_1 → … → T_depth`, declared in reverse
///   order (the delta-scheduling stressor);
/// * `fusion` — a self-join `S(x,y), S(y,z) → T(x,z)`;
/// * `vpart` — a vertical partition inventing a join key
///   (`S(id,a,b) → K(id,k), A(k,a), B(k,b)` with existential `k` plus the
///   key egd on `K`) — the labeled-null factory;
/// * `denorm` — a denormalizing join of two source tables into one target;
/// * `er` — an entity-resolution egd chain: invented representatives merged
///   along same-links, spread over several egds (the egd-cascade cliff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mix {
    pub copy: usize,
    pub fusion: usize,
    pub vpart: usize,
    pub denorm: usize,
    pub er: usize,
}

impl Mix {
    /// Total number of primitive instances in the mix.
    pub fn total(&self) -> usize {
        self.copy + self.fusion + self.vpart + self.denorm + self.er
    }

    fn parts(&self) -> [(&'static str, usize); 5] {
        [
            ("copy", self.copy),
            ("fusion", self.fusion),
            ("vpart", self.vpart),
            ("denorm", self.denorm),
            ("er", self.er),
        ]
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, count) in self.parts() {
            if count == 0 {
                continue;
            }
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{name}:{count}")?;
            first = false;
        }
        Ok(())
    }
}

/// A complete, self-describing scenario specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    pub mix: Mix,
    /// Chain length of the depth-bearing primitives (copy chains, er
    /// cluster size); the weak-acyclicity depth knob. At least 1.
    pub depth: usize,
    /// Egd density in `[0, 1]`: the probability of the optional key egds
    /// and the width of the er egd fan-out.
    pub egd_density: f64,
    /// RNG seed; every random draw of the generator derives from it.
    pub seed: u64,
    /// Instance-size multiplier. At least 1.
    pub scale: usize,
}

/// Errors raised by [`ScenarioSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mix={} depth={} egd={:.2} seed={} scale={}",
            self.mix, self.depth, self.egd_density, self.seed, self.scale
        )
    }
}

impl ScenarioSpec {
    /// Parse the one-line spec format produced by `Display`.
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        let mut mix = Mix::default();
        let mut saw_mix = false;
        let mut depth = 1usize;
        let mut egd_density = 0.0f64;
        let mut seed = 0u64;
        let mut scale = 1usize;
        for token in text.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| SpecError(format!("expected key=value, got `{token}`")))?;
            match key {
                "mix" => {
                    saw_mix = true;
                    for part in value.split(',').filter(|p| !p.is_empty()) {
                        let (name, count) = part
                            .split_once(':')
                            .ok_or_else(|| SpecError(format!("expected name:count in `{part}`")))?;
                        let count: usize = count
                            .parse()
                            .map_err(|_| SpecError(format!("bad count in `{part}`")))?;
                        match name {
                            "copy" => mix.copy = count,
                            "fusion" => mix.fusion = count,
                            "vpart" => mix.vpart = count,
                            "denorm" => mix.denorm = count,
                            "er" => mix.er = count,
                            _ => return Err(SpecError(format!("unknown primitive `{name}`"))),
                        }
                    }
                }
                "depth" => {
                    depth = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad depth `{value}`")))?
                }
                "egd" => {
                    egd_density = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad egd density `{value}`")))?
                }
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad seed `{value}`")))?
                }
                "scale" => {
                    scale = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad scale `{value}`")))?
                }
                _ => return Err(SpecError(format!("unknown key `{key}`"))),
            }
        }
        if !saw_mix {
            return Err(SpecError("missing `mix=`".into()));
        }
        let spec = ScenarioSpec {
            mix,
            depth,
            egd_density,
            seed,
            scale,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Reject degenerate specs the generator cannot honor.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.mix.total() == 0 {
            return Err(SpecError("empty primitive mix".into()));
        }
        if self.depth == 0 {
            return Err(SpecError("depth must be at least 1".into()));
        }
        if self.scale == 0 {
            return Err(SpecError("scale must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.egd_density) {
            return Err(SpecError(format!(
                "egd density {} outside [0, 1]",
                self.egd_density
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_display() {
        let spec = ScenarioSpec {
            mix: Mix {
                copy: 1,
                fusion: 0,
                vpart: 2,
                denorm: 0,
                er: 1,
            },
            depth: 3,
            egd_density: 0.5,
            seed: 17,
            scale: 2,
        };
        let line = spec.to_string();
        assert_eq!(
            line,
            "mix=copy:1,vpart:2,er:1 depth=3 egd=0.50 seed=17 scale=2"
        );
        assert_eq!(ScenarioSpec::parse(&line).unwrap(), spec);
    }

    #[test]
    fn degenerate_specs_rejected() {
        assert!(ScenarioSpec::parse("mix= depth=1 egd=0 seed=0 scale=1").is_err());
        assert!(ScenarioSpec::parse("mix=copy:1 depth=0 egd=0 seed=0 scale=1").is_err());
        assert!(ScenarioSpec::parse("mix=copy:1 depth=1 egd=2.0 seed=0 scale=1").is_err());
        assert!(ScenarioSpec::parse("mix=copy:1 depth=1 egd=0 seed=0 scale=0").is_err());
        assert!(ScenarioSpec::parse("mix=warp:1 depth=1 egd=0 seed=0 scale=1").is_err());
        assert!(ScenarioSpec::parse("depth=1").is_err());
        assert!(ScenarioSpec::parse("nonsense").is_err());
    }
}
