//! `grom-scenarios`: parameterized chase-scenario generation, the
//! committed conformance corpus, and greedy scenario minimization.
//!
//! The crate closes the loop the paper's evaluation methodology implies
//! but a reproduction has to build itself:
//!
//! 1. [`spec`] — one-line, fully reproducible scenario specifications
//!    (`mix=… depth=… egd=… seed=… scale=…`);
//! 2. [`gen`] — the iBench-style primitive composer turning a spec into a
//!    dependency program plus source instance, deterministically;
//! 3. [`corpus`] — on-disk entries pairing a scenario with its expected
//!    canonical chase rendering, verified under every scheduler mode;
//! 4. [`mod@minimize`] — the shrink pass proptest's vendored shim lacks,
//!    reducing fuzz-found divergences to committable regression entries.

pub mod corpus;
pub mod gen;
pub mod minimize;
pub mod spec;

pub use corpus::{
    all_modes, chase_mode, divergence, error_class, fuzz, list_entries, read_entry, verify_entry,
    write_entry, CorpusEntry, CorpusError, EntryReport, FuzzFinding, FuzzOutcome, ModeRun,
    Provenance,
};
pub use gen::{generate, parse_scenario_texts, random_spec, GeneratedScenario};
pub use minimize::{minimize, MinimizeReport};
pub use spec::{Mix, ScenarioSpec, SpecError};
