//! E7 — §3: "it relies on a fast and scalable chase engine … This
//! guarantees good scalability in executing mappings, even on large
//! databases".
//!
//! Chase throughput on the running example as `|I_S|` grows; the shape to
//! reproduce is near-linear scaling (constant rounds, roughly constant
//! tuples/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use grom::prelude::*;
use grom_bench::workloads::{
    running_example_scenario, running_example_source, RunningExampleConfig,
};

fn bench(c: &mut Criterion) {
    let scenario = running_example_scenario();
    let rewritten = scenario
        .rewrite(&RewriteOptions::default())
        .expect("rewrite succeeds");
    let mut group = c.benchmark_group("e7_chase_scalability");
    group.sample_size(10);

    for &products in &[1_000usize, 5_000, 20_000] {
        let source = running_example_source(&RunningExampleConfig {
            products,
            stores: 50,
            seed: 42,
        });
        group.throughput(Throughput::Elements(products as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(products),
            &source,
            |b, source| {
                b.iter(|| {
                    let res = grom::chase::chase_with_deds(
                        source.clone(),
                        &rewritten.deps,
                        &ChaseConfig::default(),
                    )
                    .expect("chase succeeds");
                    res.instance.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
