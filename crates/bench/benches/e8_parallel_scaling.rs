//! E8 — the parallel chase executor vs the sequential delta scheduler, on
//! the independent-chain workload of
//! [`grom_bench::parallel_scaling_workload`].
//!
//! Eight disjoint copy chains form eight conflict-free dependency groups,
//! so every delta sweep fans out across the worker pool; the join against
//! the shared static `K` relation keeps the per-tuple evaluation cost high
//! enough that the sweep barrier's sequential merge does not dominate. The
//! shape to reproduce: ≥1.5× speedup at 4 threads over
//! `SchedulerMode::Delta`, with speedup growing from 2 to 4 threads. All
//! modes must produce identical instances (checked on every tier before
//! timing — the workload copies constants, so equality is byte-for-byte).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use grom::chase::chase_standard;
use grom::prelude::*;
use grom_bench::parallel_scaling_workload;

const PARTITIONS: usize = 8;
const DEPTH: usize = 12;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_parallel_scaling");
    group.sample_size(10);

    for &width in &[500usize, 2_000] {
        let (deps, inst) = parallel_scaling_workload(PARTITIONS, DEPTH, width);
        let seq_cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);

        // Equivalence check before timing: identical final instances.
        let seq = chase_standard(inst.clone(), &deps, &seq_cfg).expect("delta chase succeeds");
        for threads in [2usize, 4] {
            let par_cfg = ChaseConfig::default().with_threads(threads);
            let par =
                chase_standard(inst.clone(), &deps, &par_cfg).expect("parallel chase succeeds");
            assert_eq!(
                seq.instance.to_string(),
                par.instance.to_string(),
                "schedulers disagree at width {width}, {threads} threads"
            );
        }

        let tuples = (PARTITIONS * width * (DEPTH + 1)) as u64;
        group.throughput(Throughput::Elements(tuples));
        group.bench_with_input(
            BenchmarkId::new("delta", width),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard((*inst).clone(), deps, &seq_cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
        for threads in [2usize, 4] {
            let par_cfg = ChaseConfig::default().with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("threads={threads}"), width),
                &(&deps, &inst),
                |b, (deps, inst)| {
                    b.iter(|| {
                        chase_standard((*inst).clone(), deps, &par_cfg)
                            .expect("chase succeeds")
                            .instance
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
