//! E5 — §4: "the greedy chase … is often surprisingly quick in returning
//! some solution. In other cases, when the constraints are more intricate,
//! [it] will take considerably more time, due to the fact that many of the
//! generated scenarios fail".
//!
//! Sweeps the density of denied branches: the number of scenarios the
//! greedy search burns before finding a satisfiable one grows sharply with
//! intricacy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use grom::chase::{chase_greedy, chase_greedy_backjump, ChaseConfig};
use grom_bench::workloads::{greedy_intricacy_attributable, greedy_intricacy_workload};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_greedy_chase");
    group.sample_size(10);

    for &frac in &[0.0f64, 0.2, 0.5, 0.8] {
        let (deps, inst) = greedy_intricacy_workload(10, frac, 3);
        group.bench_with_input(
            BenchmarkId::new("plain", format!("denied_{frac:.1}")),
            &(deps, inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    let res = chase_greedy(inst.clone(), deps, &ChaseConfig::default())
                        .expect("greedy eventually succeeds");
                    res.stats.scenarios_tried
                })
            },
        );
    }

    // E5b ablation: attributable failures let the backjumper skip ahead.
    for &frac in &[0.2f64, 0.8] {
        let (deps, inst) = greedy_intricacy_attributable(10, frac, 3);
        group.bench_with_input(
            BenchmarkId::new("plain_attributable", format!("denied_{frac:.1}")),
            &(deps.clone(), inst.clone()),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_greedy(inst.clone(), deps, &ChaseConfig::default())
                        .expect("greedy succeeds")
                        .stats
                        .scenarios_tried
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("backjump_attributable", format!("denied_{frac:.1}")),
            &(deps, inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_greedy_backjump(inst.clone(), deps, &ChaseConfig::default())
                        .expect("backjump succeeds")
                        .stats
                        .scenarios_tried
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
