//! E12 — semi-naive evaluation on multi-anchor premises: the versioned
//! delta scheduler vs the classical full-rescan loop on the composition
//! chain of [`grom_bench::seminaive_workload`].
//!
//! Every premise `E{i}(x, y), E{i}(y, z)` reads the same relation at two
//! positions, so each delta activation seeds both anchor positions. The
//! old/new version split makes the scheduler enumerate each two-hop match
//! exactly once (anchor scans new, the earlier atom scans old, the later
//! one old ∪ new) — no dedup set on the hot path. Both schedulers must
//! produce byte-identical instances (checked on every tier before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use grom::chase::{chase_standard, chase_standard_full_rescan};
use grom::prelude::*;
use grom_bench::workloads::seminaive_workload;

const LEVELS: usize = 6;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_seminaive");
    group.sample_size(10);

    for &width in &[500usize, 2_000, 8_000] {
        let (deps, inst) = seminaive_workload(LEVELS, width);
        let cfg = ChaseConfig::default();

        // Equivalence check before timing: identical final instances.
        let naive = chase_standard_full_rescan(inst.clone(), &deps, &cfg)
            .expect("full-rescan chase succeeds");
        let delta = chase_standard(inst.clone(), &deps, &cfg).expect("delta chase succeeds");
        assert_eq!(
            naive.instance.to_string(),
            delta.instance.to_string(),
            "schedulers disagree at width {width}"
        );

        group.throughput(Throughput::Elements(delta.instance.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("naive", width),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard_full_rescan((*inst).clone(), deps, &cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("delta", width),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard((*inst).clone(), deps, &cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
