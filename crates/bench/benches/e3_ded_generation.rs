//! E3 — §3: negation in view definitions forces deds (the `d0` pattern).
//!
//! Rewriting key egds over views with `k` negated atoms produces deds with
//! `1 + 2k` disjuncts; the rewriting itself stays in the millisecond range
//! (asserted shape: ded count = number of views, cost linear).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use grom::rewrite::{rewrite_program, RewriteOptions};
use grom_bench::workloads::negation_family;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_ded_generation");

    for &negs in &[0usize, 1, 2, 4] {
        let (views, deps) = negation_family(8, negs);
        group.bench_with_input(
            BenchmarkId::new("negated_atoms", negs),
            &(views, deps),
            |b, (views, deps)| {
                b.iter(|| {
                    let out = rewrite_program(views, deps, &RewriteOptions::default())
                        .expect("rewrite succeeds");
                    let deds = out.deds().count();
                    if negs == 0 {
                        assert_eq!(deds, 0);
                    } else {
                        assert_eq!(deds, 8);
                    }
                    deds
                })
            },
        );
    }

    for &n_views in &[8usize, 32, 128] {
        let (views, deps) = negation_family(n_views, 2);
        group.bench_with_input(
            BenchmarkId::new("views", n_views),
            &(views, deps),
            |b, (views, deps)| {
                b.iter(|| {
                    rewrite_program(views, deps, &RewriteOptions::default())
                        .expect("rewrite succeeds")
                        .deds()
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
