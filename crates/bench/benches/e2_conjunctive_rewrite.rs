//! E2 — §3: "the language of embedded dependencies is closed wrt unfolding
//! conjunctive views".
//!
//! Rewriting over conjunctive view families must stay in the tgd/egd
//! fragment (asserted) and scale linearly in the number of views and in
//! the view body size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use grom::rewrite::{rewrite_program, RewriteOptions};
use grom_bench::workloads::conjunctive_family;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_conjunctive_rewrite");

    for &n_views in &[4usize, 16, 64] {
        let (views, deps) = conjunctive_family(n_views, 3);
        group.bench_with_input(
            BenchmarkId::new("views", n_views),
            &(views, deps),
            |b, (views, deps)| {
                b.iter(|| {
                    let out = rewrite_program(views, deps, &RewriteOptions::default())
                        .expect("rewrite succeeds");
                    assert!(out.is_ded_free());
                    out.deps.len()
                })
            },
        );
    }

    for &body in &[2usize, 4, 8] {
        let (views, deps) = conjunctive_family(16, body);
        group.bench_with_input(
            BenchmarkId::new("body_size", body),
            &(views, deps),
            |b, (views, deps)| {
                b.iter(|| {
                    rewrite_program(views, deps, &RewriteOptions::default())
                        .expect("rewrite succeeds")
                        .deps
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
