//! E9 — sweep-level egd batching vs the per-dependency substitution of the
//! full-rescan reference, on the entity-resolution workload of
//! [`grom_bench::egd_scaling_workload`].
//!
//! Eight edge relations carry one key egd each; every cluster's chain of
//! labeled-null representatives collapses through long union-find merge
//! chains. The batched scheduler collects every egd's obligations and
//! applies **one** combined substitution pass per merge-bearing sweep
//! (asserted on `ChaseStats` before timing); the full-rescan loop rewrites
//! the instance once per merging egd per round. The shape to reproduce:
//! the batched scheduler wins by a margin that grows with the number of
//! egd relations, and all modes produce instances identical up to null
//! renaming (checked on every tier before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use grom::chase::{chase_standard, chase_standard_full_rescan};
use grom::data::canonical_render;
use grom::prelude::*;
use grom_bench::egd_scaling_workload;

const CHAIN: usize = 12;
const EGD_RELS: usize = 8;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_egd_scaling");
    group.sample_size(10);

    for &clusters in &[100usize, 400] {
        let (deps, inst) = egd_scaling_workload(clusters, CHAIN, EGD_RELS);
        let batched_cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);
        let naive_cfg = ChaseConfig::default().with_scheduler(SchedulerMode::FullRescan);

        // Equivalence and batching checks before timing.
        let naive = chase_standard_full_rescan(inst.clone(), &deps, &naive_cfg)
            .expect("full-rescan chase succeeds");
        let batched =
            chase_standard(inst.clone(), &deps, &batched_cfg).expect("batched chase succeeds");
        assert_eq!(
            canonical_render(&naive.instance),
            canonical_render(&batched.instance),
            "schedulers disagree at {clusters} clusters"
        );
        assert_eq!(
            batched.stats.substitution_passes, 1,
            "batched mode must substitute once per merge-bearing sweep"
        );
        assert!(
            naive.stats.substitution_passes >= EGD_RELS,
            "reference mode substitutes once per merging egd"
        );

        let tuples = batched.instance.len() as u64;
        group.throughput(Throughput::Elements(tuples));
        group.bench_with_input(
            BenchmarkId::new("naive", clusters),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard_full_rescan((*inst).clone(), deps, &naive_cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", clusters),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard((*inst).clone(), deps, &batched_cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
