//! E7d — the delta-driven chase scheduler vs the classical full-rescan
//! loop, on the reverse-declared copy chain of
//! [`grom_bench::delta_scaling_workload`].
//!
//! The naive loop propagates one chain level per round and re-scans every
//! populated premise each round — Θ(depth² · width); the delta scheduler
//! routes each level's freshly inserted tuples straight to the one
//! dependency that reads them — Θ(depth · width). The shape to reproduce:
//! the delta scheduler ≥3× faster on every tier (the asymptotic gap grows
//! with depth; width scales both sides linearly). Both schedulers must
//! produce identical instances (checked here on every tier before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use grom::chase::{chase_standard, chase_standard_full_rescan};
use grom::prelude::*;
use grom_bench::workloads::delta_scaling_workload;

const DEPTH: usize = 16;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_delta_scaling");
    group.sample_size(10);

    for &width in &[200usize, 1_000, 5_000] {
        let (deps, inst) = delta_scaling_workload(DEPTH, width);
        let cfg = ChaseConfig::default();

        // Equivalence check before timing: identical final instances.
        let naive = chase_standard_full_rescan(inst.clone(), &deps, &cfg)
            .expect("full-rescan chase succeeds");
        let delta = chase_standard(inst.clone(), &deps, &cfg).expect("delta chase succeeds");
        assert_eq!(
            naive.instance.to_string(),
            delta.instance.to_string(),
            "schedulers disagree at width {width}"
        );

        group.throughput(Throughput::Elements((width * (DEPTH + 1)) as u64));
        group.bench_with_input(
            BenchmarkId::new("naive", width),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard_full_rescan((*inst).clone(), deps, &cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("delta", width),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard((*inst).clone(), deps, &cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
