//! E1 — §2 + Figure 1: the paper's running example end to end.
//!
//! Measures the full pipeline (source-view materialization, rewriting,
//! greedy chase, target extraction) on the products/stores/ratings
//! scenario at growing source sizes. The shape to reproduce: one greedy
//! scenario suffices, cost grows near-linearly with `|I_S|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use grom::prelude::*;
use grom_bench::workloads::{
    running_example_scenario, running_example_source, RunningExampleConfig,
};

fn bench(c: &mut Criterion) {
    let scenario = running_example_scenario();
    let mut group = c.benchmark_group("e1_running_example");
    group.sample_size(10);
    for &products in &[100usize, 1_000, 5_000] {
        let source = running_example_source(&RunningExampleConfig {
            products,
            stores: 20,
            seed: 42,
        });
        let opts = PipelineOptions {
            skip_validation: true,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(products),
            &source,
            |b, source| {
                b.iter(|| {
                    let res = scenario.run(source, &opts).expect("pipeline succeeds");
                    assert!(!res.target.is_empty());
                    res.target.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
