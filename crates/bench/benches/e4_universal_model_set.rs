//! E4 — §3: "universal model sets may have exponential size wrt the size
//! of the source instance" (Deutsch–Nash–Remmel).
//!
//! The exhaustive ded chase over `k` independent violations of a binary
//! ded expands `2^(k+1) - 1` nodes and returns `2^k` leaves; the greedy
//! chase commits to one disjunct per ded and finishes in a single scenario.
//! This is the paper's core argument for the greedy strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use grom::chase::{chase_exhaustive, chase_greedy, ChaseConfig};
use grom_bench::workloads::universal_model_workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_universal_model_set");
    group.sample_size(10);

    for &k in &[4usize, 8, 12] {
        let (deps, inst) = universal_model_workload(k);
        group.bench_with_input(
            BenchmarkId::new("exhaustive", k),
            &(deps.clone(), inst.clone()),
            |b, (deps, inst)| {
                b.iter(|| {
                    let res = chase_exhaustive(inst.clone(), deps, &ChaseConfig::default())
                        .expect("exhaustive succeeds");
                    assert_eq!(res.solutions.len(), 1 << k);
                    res.solutions.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", k),
            &(deps, inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    let res = chase_greedy(inst.clone(), deps, &ChaseConfig::default())
                        .expect("greedy succeeds");
                    assert_eq!(res.stats.scenarios_tried, 1);
                    res.instance.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
