//! E11 — the interned, hash-indexed tuple store on string-keyed composite
//! joins ([`grom_bench::storage_scaling_workload`]).
//!
//! The workload chains two joins whose probe columns carry long,
//! shared-prefix string keys. The `plain` variant chases the instance as
//! parsed (string contents hashed and compared at every composite-index
//! probe); the `interned` variant first passes the instance and the
//! dependency constants through one `SymbolTable` — the pipeline's default
//! — so every probe compares dense symbol ids. Both variants run the same
//! delta scheduler over the same indexes and must produce canonically
//! identical instances (checked on every tier before timing); the shape to
//! reproduce is `interned` winning by a margin that grows with width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use grom::chase::chase_standard;
use grom::data::{canonical_render, Instance, SymbolTable};
use grom::intern_dependencies;
use grom::lang::Dependency;
use grom::prelude::*;
use grom_bench::storage_scaling_workload;

const KEYS: usize = 200;

fn interned_parts(deps: &[Dependency], inst: &Instance) -> (Vec<Dependency>, Instance) {
    let mut table = SymbolTable::new();
    let interned = inst.intern_strings(&mut table);
    (intern_dependencies(deps, &mut table), interned)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_storage_scaling");
    group.sample_size(10);

    for &width in &[4_000usize, 16_000] {
        let (deps, inst) = storage_scaling_workload(width, KEYS);
        let (ideps, iinst) = interned_parts(&deps, &inst);
        let cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);

        // Equivalence check before timing.
        let plain = chase_standard(inst.clone(), &deps, &cfg).expect("plain chase succeeds");
        let interned =
            chase_standard(iinst.clone(), &ideps, &cfg).expect("interned chase succeeds");
        assert_eq!(
            canonical_render(&plain.instance),
            canonical_render(&interned.instance.unintern_strings()),
            "interned storage diverges at width {width}"
        );

        let tuples = plain.instance.len() as u64;
        group.throughput(Throughput::Elements(tuples));
        group.bench_with_input(
            BenchmarkId::new("plain", width),
            &(&deps, &inst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard((*inst).clone(), deps, &cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("interned", width),
            &(&ideps, &iinst),
            |b, (deps, inst)| {
                b.iter(|| {
                    chase_standard((*inst).clone(), deps, &cfg)
                        .expect("chase succeeds")
                        .instance
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
