//! E6 — §4: "a possible alternative is to leverage the syntactic
//! restrictions over the use of negation that guarantee that no deds are
//! generated … GROM supports this process by highlighting problematic
//! views".
//!
//! Benchmarks the analyzer plus rewrite on the perverse (paper) scenario
//! and on the designer's ded-free reformulation, and the end-to-end chase
//! for both. The shape: the reformulated scenario rewrites to a ded-free
//! program and chases faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use grom::prelude::*;
use grom_bench::workloads::{restriction_pair, running_example_source, RunningExampleConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_restrictions");
    group.sample_size(10);

    let (perverse, reformulated) = restriction_pair();
    for (name, sc) in [("perverse", perverse), ("reformulated", reformulated)] {
        let deps: Vec<Dependency> = sc.all_dependencies().cloned().collect();
        let views = sc.target_views.clone();
        group.bench_with_input(
            BenchmarkId::new("analyze", name),
            &(views, deps),
            |b, (views, deps)| {
                b.iter(|| {
                    let (report, _) =
                        grom::rewrite::analyze(views, deps, &RewriteOptions::default())
                            .expect("analyze succeeds");
                    report.has_deds
                })
            },
        );

        let source = running_example_source(&RunningExampleConfig {
            products: 1_000,
            stores: 20,
            seed: 42,
        });
        let opts = PipelineOptions {
            skip_validation: true,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("pipeline_1k", name),
            &(sc, source),
            |b, (sc, source)| {
                b.iter(|| {
                    sc.run(source, &opts)
                        .expect("pipeline succeeds")
                        .target
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
