//! The bench-gate calibration workload.
//!
//! `BENCH_baseline.json` stores wall times from whatever machine generated
//! it; a CI runner from another hardware generation can be uniformly
//! slower or faster without any code change. To make the regression gate
//! portable, every harness run — and `bench_gate` itself — times one tiny
//! **fixed** workload. The ratio between the local figure and the
//! `calibration` record stored in the baseline estimates the machines'
//! relative speed, and the gate scales the baseline by it before applying
//! the threshold.
//!
//! The workload is a small deterministic chase (the reverse-declared copy
//! chain of [`crate::workloads::delta_scaling_workload`]) run under the
//! sequential delta scheduler: pure CPU + hashing, no I/O, no randomness,
//! representative of what every gated workload actually does. Best-of-N
//! keeps scheduler jitter out of the figure.

use std::time::Instant;

use grom::chase::{chase_standard, SchedulerMode};
use grom::prelude::ChaseConfig;

use crate::workloads::delta_scaling_workload;

/// The record name both the harness and the gate use for the calibration
/// figure.
pub const CALIBRATION_RECORD: &str = "calibration";

/// Chain depth / width of the fixed workload. Small enough to add
/// negligible time to a bench run, large enough (~10 ms on the reference
/// machine) to sit above timer noise.
const DEPTH: usize = 8;
const WIDTH: usize = 400;
const REPEATS: usize = 3;

/// Run the fixed calibration workload and return its best-of-3 wall time
/// in milliseconds.
pub fn calibration_ms() -> f64 {
    let (deps, inst) = delta_scaling_workload(DEPTH, WIDTH);
    let cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let res = chase_standard(inst.clone(), &deps, &cfg).expect("calibration chase succeeds");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        // Keep the optimizer honest: the result size feeds the check.
        assert_eq!(res.instance.len(), (DEPTH + 1) * WIDTH);
        best = best.min(ms);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive_and_finite() {
        let ms = calibration_ms();
        assert!(ms.is_finite() && ms > 0.0, "calibration_ms = {ms}");
    }
}
