//! Minimal fixed-width table rendering for experiment output, plus the
//! machine-readable bench record sink shared with CI.
//!
//! Every quantitative row the `experiments` binary prints can also be
//! [`record`]ed as a [`BenchRecord`]; when the `GROM_BENCH_JSON` env var
//! names a file, [`flush_jsonl_env`] appends one JSON line per record. The
//! vendored criterion shim emits the *same* line format behind the same
//! env var, so criterion benches, the experiments harness and the CI
//! regression gate (`bench_gate`) all speak one format:
//!
//! ```text
//! {"name":"e7d/delta/width=5000","wall_ms":12.345,"tuples":85000}
//! ```

use std::fmt;
use std::io::Write;
use std::sync::{Mutex, OnceLock};

/// Env var naming the JSONL file bench timings are appended to.
pub const BENCH_JSON_ENV: &str = "GROM_BENCH_JSON";

/// One timed workload: a stable name, the wall time, and the workload's
/// headline tuple count (0 when not meaningful).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub name: String,
    pub wall_ms: f64,
    pub tuples: u64,
}

impl BenchRecord {
    /// Serialize as one JSON line (the shared bench format).
    pub fn to_jsonl(&self) -> String {
        // Names are generated identifiers; escape the two JSON-significant
        // characters anyway so the line stays well-formed.
        let name = self.name.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\"name\":\"{}\",\"wall_ms\":{:.4},\"tuples\":{}}}",
            name, self.wall_ms, self.tuples
        )
    }
}

fn sink() -> &'static Mutex<Vec<BenchRecord>> {
    static SINK: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record one timed workload for a later [`flush_jsonl_env`].
pub fn record(name: impl Into<String>, wall_ms: f64, tuples: u64) {
    sink()
        .lock()
        .expect("bench sink poisoned")
        .push(BenchRecord {
            name: name.into(),
            wall_ms,
            tuples,
        });
}

/// Append every recorded workload to the file named by `GROM_BENCH_JSON`,
/// draining the sink. Returns the path written, or `None` when the env var
/// is unset (records are dropped — the run was interactive).
pub fn flush_jsonl_env() -> std::io::Result<Option<std::path::PathBuf>> {
    let records: Vec<BenchRecord> =
        std::mem::take(&mut *sink().lock().expect("bench sink poisoned"));
    let Ok(path) = std::env::var(BENCH_JSON_ENV) else {
        return Ok(None);
    };
    let path = std::path::PathBuf::from(path);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    for r in &records {
        writeln!(f, "{}", r.to_jsonl())?;
    }
    Ok(Some(path))
}

/// A printable table: the `experiments` binary renders one per experiment,
/// in the same row format EXPERIMENTS.md records.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if c.len() > w[i] {
                    w[i] = c.len();
                }
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{:-<width$}|", "", width = width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_well_formed() {
        let r = BenchRecord {
            name: "e1/products=100".into(),
            wall_ms: 1.23456,
            tuples: 42,
        };
        assert_eq!(
            r.to_jsonl(),
            r#"{"name":"e1/products=100","wall_ms":1.2346,"tuples":42}"#
        );
        let r = BenchRecord {
            name: "odd\"name\\".into(),
            wall_ms: 0.0,
            tuples: 0,
        };
        assert_eq!(
            r.to_jsonl(),
            r#"{"name":"odd\"name\\","wall_ms":0.0000,"tuples":0}"#
        );
    }

    #[test]
    fn renders_markdown_style() {
        let mut t = Table::new("E0: smoke", &["n", "time"]);
        t.row(vec!["10".into(), "1.5ms".into()]);
        t.row(vec!["1000".into(), "150ms".into()]);
        let s = t.to_string();
        assert!(s.contains("## E0: smoke"));
        assert!(s.contains("| n    | time  |"));
        assert!(s.contains("| 1000 | 150ms |"));
    }
}
