//! Minimal fixed-width table rendering for experiment output.

use std::fmt;

/// A printable table: the `experiments` binary renders one per experiment,
/// in the same row format EXPERIMENTS.md records.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if c.len() > w[i] {
                    w[i] = c.len();
                }
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{:-<width$}|", "", width = width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_style() {
        let mut t = Table::new("E0: smoke", &["n", "time"]);
        t.row(vec!["10".into(), "1.5ms".into()]);
        t.row(vec!["1000".into(), "150ms".into()]);
        let s = t.to_string();
        assert!(s.contains("## E0: smoke"));
        assert!(s.contains("| n    | time  |"));
        assert!(s.contains("| 1000 | 150ms |"));
    }
}
