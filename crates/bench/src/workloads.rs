//! Deterministic workload generators for experiments E1–E9.

use grom::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's §2 running example, verbatim (modulo `S-`/`T-` → `S_`/`T_`
/// and quoted rating constants → ints).
pub const RUNNING_EXAMPLE: &str = r#"
    schema source {
        S_Product(id: int, name: string, store: string, rating: int);
        S_Store(name: string, location: string);
    }
    schema target {
        T_Product(id: int, name: string, store: int);
        T_Store(id: int, name: string, address: string, phone: string);
        T_Rating(id: int, product: int, thumbsUp: int);
    }

    view Product(id, name) <- T_Product(id, name, store).
    view PopularProduct(pid, name) <-
        T_Product(pid, name, store), not T_Rating(rid, pid, 0).
    view AvgProduct(pid, name) <-
        T_Product(pid, name, store), T_Rating(rid, pid, 1),
        not PopularProduct(pid, name).
    view UnpopularProduct(pid, name) <-
        T_Product(pid, name, store),
        not AvgProduct(pid, name), not PopularProduct(pid, name).
    view SoldAt(pid, stid) <- T_Product(pid, pname, stid).
    view Store(id, name, addr) <- T_Store(id, name, addr, phone).

    tgd m0: S_Product(pid, name, store, rating), rating < 2
        -> UnpopularProduct(pid, name).
    tgd m1: S_Product(pid, name, store, rating), rating >= 2, rating < 4
        -> AvgProduct(pid, name).
    tgd m2: S_Product(pid, name, store, rating), rating >= 4
        -> PopularProduct(pid, name).
    tgd m3: S_Product(pid, name, store, rating), S_Store(store, location)
        -> SoldAt(pid, sid), Store(sid, store, location).

    egd e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.
"#;

/// Parse the running-example scenario.
pub fn running_example_scenario() -> MappingScenario {
    let prog = Program::parse(RUNNING_EXAMPLE).expect("running example parses");
    MappingScenario::from_program(&prog).expect("running example is well-formed")
}

/// Parameters for the running-example source generator.
#[derive(Debug, Clone)]
pub struct RunningExampleConfig {
    pub products: usize,
    pub stores: usize,
    pub seed: u64,
}

impl Default for RunningExampleConfig {
    fn default() -> Self {
        Self {
            products: 1_000,
            stores: 20,
            seed: 42,
        }
    }
}

/// Generate a source instance for the running example. Product names are
/// unique (the key egd `e0` is satisfiable), ratings uniform in `0..=5`, so
/// all three classification mappings fire.
pub fn running_example_source(cfg: &RunningExampleConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inst = Instance::new();
    for s in 0..cfg.stores {
        inst.add(
            "S_Store",
            vec![
                Value::str(format!("store_{s}")),
                Value::str(format!("city_{}", s % 7)),
            ],
        )
        .expect("fresh relation");
    }
    for p in 0..cfg.products {
        let rating: i64 = rng.gen_range(0..=5);
        let store = rng.gen_range(0..cfg.stores.max(1));
        inst.add(
            "S_Product",
            vec![
                Value::int(p as i64),
                Value::str(format!("product_{p}")),
                Value::str(format!("store_{store}")),
                Value::int(rating),
            ],
        )
        .expect("fresh relation");
    }
    inst
}

/// E2: a family of conjunctive (negation-free) views plus tgds and egds
/// over them. Rewriting must stay in the tgd/egd fragment (the classical
/// closure under conjunctive-view unfolding).
///
/// Each view `V_i(x0, x_b)` is a chain join of `body_size` base atoms; each
/// gets one copy tgd from `Src_i` and one key egd.
pub fn conjunctive_family(n_views: usize, body_size: usize) -> (ViewSet, Vec<Dependency>) {
    let mut text = String::new();
    for i in 0..n_views {
        text.push_str(&format!("view V{i}(x0, x{body_size}) <- "));
        for b in 0..body_size {
            if b > 0 {
                text.push_str(", ");
            }
            text.push_str(&format!("R{i}_{b}(x{b}, x{})", b + 1));
        }
        text.push_str(".\n");
        text.push_str(&format!("tgd m{i}: Src{i}(a, b) -> V{i}(a, b).\n"));
        text.push_str(&format!("egd e{i}: V{i}(a1, b), V{i}(a2, b) -> a1 = a2.\n"));
    }
    let prog = Program::parse(&text).expect("generated conjunctive family parses");
    (prog.views, prog.deps)
}

/// E3: views with `negated_per_view` negated base atoms each, plus a key
/// egd per view. Every negated atom in the view body surfaces as ded
/// disjuncts when the egd premise is unfolded (the `d0` pattern of the
/// paper, parameterized).
pub fn negation_family(n_views: usize, negated_per_view: usize) -> (ViewSet, Vec<Dependency>) {
    let mut text = String::new();
    for i in 0..n_views {
        text.push_str(&format!("view W{i}(x, n) <- Base{i}(x, n)"));
        for k in 0..negated_per_view {
            text.push_str(&format!(", not Neg{i}_{k}(x)"));
        }
        text.push_str(".\n");
        text.push_str(&format!("tgd m{i}: Src{i}(a, b) -> W{i}(a, b).\n"));
        text.push_str(&format!("egd e{i}: W{i}(a1, n), W{i}(a2, n) -> a1 = a2.\n"));
    }
    let prog = Program::parse(&text).expect("generated negation family parses");
    (prog.views, prog.deps)
}

/// E4: the universal-model-set blow-up: one binary ded `P(x) → Q(x) ∨ R(x)`
/// over `k` independent `P` facts. The exhaustive chase produces `2^k`
/// leaves; the greedy chase needs a single scenario.
pub fn universal_model_workload(k: usize) -> (Vec<Dependency>, Instance) {
    let prog = Program::parse("ded d: P(x) -> Q(x) | R(x).").expect("parses");
    let mut inst = Instance::new();
    for i in 0..k {
        inst.add("P", vec![Value::int(i as i64)]).expect("fresh");
    }
    (prog.deps, inst)
}

/// E5: greedy-chase intricacy. `k` independent binary deds
/// `P_i(x) → A_i(x) ∨ B_i(x)`; a `denied_frac` fraction of the `A_i`
/// branches is forbidden by denial constraints. The greedy search starts
/// from the all-`A` scenario, so the number of scenarios it burns grows
/// with the density of denied branches — the paper's "many of the generated
/// scenarios fail … and new ones need to be executed".
pub fn greedy_intricacy_workload(
    k_deds: usize,
    denied_frac: f64,
    seed: u64,
) -> (Vec<Dependency>, Instance) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::new();
    let denied: Vec<bool> = (0..k_deds).map(|_| rng.gen_bool(denied_frac)).collect();
    for (i, &d) in denied.iter().enumerate() {
        text.push_str(&format!("ded d{i}: P{i}(x) -> A{i}(x) | B{i}(x).\n"));
        if d {
            text.push_str(&format!("dep n{i}: A{i}(x) -> false.\n"));
        }
    }
    let prog = Program::parse(&text).expect("generated intricacy workload parses");
    let mut inst = Instance::new();
    for i in 0..k_deds {
        inst.add(format!("P{i}"), vec![Value::int(1)])
            .expect("fresh");
    }
    (prog.deps, inst)
}

/// E5b: like [`greedy_intricacy_workload`], but failures are *attributable*
/// — the cheapest disjunct of each ded is an equality that clashes directly
/// inside the derived dependency (`d{i}#0`) whenever the `P_i` fact is
/// off-diagonal. The backjumping search can exploit the failure witness;
/// the plain odometer cannot.
pub fn greedy_intricacy_attributable(
    k_deds: usize,
    denied_frac: f64,
    seed: u64,
) -> (Vec<Dependency>, Instance) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::new();
    let mut inst = Instance::new();
    for i in 0..k_deds {
        text.push_str(&format!("ded d{i}: P{i}(x, y) -> x = y | B{i}(x).\n"));
        let denied = rng.gen_bool(denied_frac);
        let y = if denied { 2 } else { 1 };
        inst.add(format!("P{i}"), vec![Value::int(1), Value::int(y)])
            .expect("fresh relation");
    }
    let prog = Program::parse(&text).expect("generated attributable workload parses");
    (prog.deps, inst)
}

/// E7d: the delta-scheduling separation workload — a chain of copy tgds
/// `L0 → L1 → … → L_depth` over `width` base tuples, with the dependencies
/// *declared in reverse order* (`t_{depth-1}` first).
///
/// The reverse declaration order makes the classical round-based chase
/// propagate exactly one level per round, re-scanning every populated
/// premise each time — Θ(depth² · width) work — while the delta scheduler
/// routes each level's insertions straight to the one dependency that
/// reads them — Θ(depth · width). The chain copies constants (no
/// existentials), so both schedulers produce byte-identical instances.
pub fn delta_scaling_workload(depth: usize, width: usize) -> (Vec<Dependency>, Instance) {
    let mut text = String::new();
    for i in (0..depth).rev() {
        text.push_str(&format!("tgd t{i}: L{i}(x, y) -> L{}(x, y).\n", i + 1));
    }
    let prog = Program::parse(&text).expect("generated delta-scaling workload parses");
    let mut inst = Instance::new();
    for r in 0..width {
        inst.add("L0", vec![Value::int(r as i64), Value::int((r % 7) as i64)])
            .expect("fresh relation");
    }
    (prog.deps, inst)
}

/// E12: the semi-naive separation workload — a chain of *multi-anchor*
/// composition tgds
///
/// ```text
/// c{i}:  E{i}(x, y), E{i}(y, z)  ->  E{i+1}(x, z)
/// ```
///
/// over a path graph `E0 = {(v, v+1) | v < width}`, declared in reverse
/// order as in [`delta_scaling_workload`]. Every premise reads the *same*
/// relation at two positions, so each delta activation seeds **both**
/// anchor positions: without old/new versioning the scheduler would
/// enumerate each two-hop match once per anchor and need a dedup set to
/// stay correct, while the semi-naive split (anchor scans new, earlier
/// atoms scan old, later atoms scan old ∪ new) enumerates it exactly once.
/// Level `k` holds the stride-`2^k` hops `(v, v + 2^k)` — the instance
/// stays linear in `width` while every sweep is join-heavy. Constants
/// only: all scheduler modes must produce byte-identical instances.
pub fn seminaive_workload(levels: usize, width: usize) -> (Vec<Dependency>, Instance) {
    let mut text = String::new();
    for i in (0..levels).rev() {
        text.push_str(&format!(
            "tgd c{i}: E{i}(x, y), E{i}(y, z) -> E{}(x, z).\n",
            i + 1
        ));
    }
    let prog = Program::parse(&text).expect("generated semi-naive workload parses");
    let mut inst = Instance::new();
    for v in 0..width {
        inst.add("E0", vec![Value::int(v as i64), Value::int(v as i64 + 1)])
            .expect("fresh relation");
    }
    (prog.deps, inst)
}

/// E8: the parallel-executor separation workload — `partitions`
/// *independent* copy chains (disjoint relations `P{p}L{i}`, reverse
/// declaration order as in [`delta_scaling_workload`]), each joining a
/// small shared static relation `K` on the way down:
///
/// ```text
/// t{p}{i}:  P{p}L{i}(x, y), K(y, z)  ->  P{p}L{i+1}(x, z)
/// ```
///
/// `K` is functional (`K(y, (y*3+1) % 7)`), so width is preserved level to
/// level. Nobody concludes `K`, so the conflict partition of the parallel
/// chase executor is exactly one group per chain — the workload that lets
/// a `threads`-wide pool run `partitions`-way parallel delta sweeps.
/// Everything copies constants, hence any two scheduler modes must produce
/// identical instances.
pub fn parallel_scaling_workload(
    partitions: usize,
    depth: usize,
    width: usize,
) -> (Vec<Dependency>, Instance) {
    let mut text = String::new();
    for p in 0..partitions {
        for i in (0..depth).rev() {
            text.push_str(&format!(
                "tgd t{p}_{i}: P{p}L{i}(x, y), K(y, z) -> P{p}L{}(x, z).\n",
                i + 1
            ));
        }
    }
    let prog = Program::parse(&text).expect("generated parallel-scaling workload parses");
    let mut inst = Instance::new();
    for y in 0..7i64 {
        inst.add("K", vec![Value::int(y), Value::int((y * 3 + 1) % 7)])
            .expect("fresh relation");
    }
    for p in 0..partitions {
        for r in 0..width {
            inst.add(
                format!("P{p}L0"),
                vec![Value::int(r as i64), Value::int((r % 7) as i64)],
            )
            .expect("fresh relation");
        }
    }
    (prog.deps, inst)
}

/// E9: the egd-heavy entity-resolution workload — sweep-level egd batching
/// vs the per-dependency substitution of the full-rescan reference.
///
/// `clusters` chains of `chain` records each: every record `x` starts with
/// its own labeled-null representative `Rep(x, N_x)`, and consecutive
/// records of a chain are linked by a `Same{j}` edge, with edges spread
/// round-robin over `egd_rels` relations. One egd per edge relation
/// (`Same{j}(x, y), Rep(x, r1), Rep(y, r2) -> r1 = r2`) merges
/// representatives along edges, so each cluster's `chain` nulls collapse
/// into one through long union-find merge chains. A `probe` tgd copies
/// `Rep` into `Out`, exercising the post-substitution targeted
/// invalidation.
///
/// The separation: all `egd_rels` egds violate in the same sweep, so the
/// batched scheduler applies **one** combined substitution pass
/// (`ChaseStats::substitution_passes == 1`) while the full-rescan loop
/// applies one per merging dependency per round — `egd_rels` instance-wide
/// passes. Nobody writes `Rep` or `Same{j}`, so the conflict partition
/// gives every egd its own group: the workload the parallel executor's
/// obligation collection fans out over.
pub fn egd_scaling_workload(
    clusters: usize,
    chain: usize,
    egd_rels: usize,
) -> (Vec<Dependency>, Instance) {
    assert!(chain >= 1 && egd_rels >= 1);
    let mut text = String::from("tgd probe: Rep(x, r) -> Out(x, r).\n");
    for j in 0..egd_rels {
        text.push_str(&format!(
            "egd e{j}: Same{j}(x, y), Rep(x, r1), Rep(y, r2) -> r1 = r2.\n"
        ));
    }
    let prog = Program::parse(&text).expect("generated egd-scaling workload parses");
    let mut inst = Instance::new();
    for c in 0..clusters {
        for i in 0..chain {
            let x = (c * chain + i) as i64;
            inst.add("Rep", vec![Value::int(x), Value::null(x as u64)])
                .expect("fresh relation");
            if i + 1 < chain {
                inst.add(
                    format!("Same{}", i % egd_rels),
                    vec![Value::int(x), Value::int(x + 1)],
                )
                .expect("fresh relation");
            }
        }
    }
    (prog.deps, inst)
}

/// E11: the storage-layer separation workload — string-keyed composite
/// joins where the interned, hash-indexed tuple store earns its keep.
///
/// Two chained joins over long string keys:
///
/// ```text
/// t0:  R(x, k, y), S(k, y, z)  ->  T(x, z)
/// t1:  T(x, z), D(z, w)        ->  U(x, w)
/// ```
///
/// `R` carries `width` rows whose second column is one of `keys` long,
/// shared prefix strings (worst case for content hashing and equality);
/// `S` joins on the **composite** `(k, y)` pair, so the static join-key
/// analysis installs a two-column hash index, and every premise match
/// probes it with a string component. Chasing the plain instance compares
/// string contents at every probe; interning the instance and the
/// dependencies first (`Instance::intern_strings` +
/// `grom::intern_dependencies`) turns each comparison into a dense-id
/// equality. Both runs must produce canonically identical instances.
pub fn storage_scaling_workload(width: usize, keys: usize) -> (Vec<Dependency>, Instance) {
    assert!(keys >= 1);
    let text = "tgd t0: R(x, k, y), S(k, y, z) -> T(x, z).\n\
                tgd t1: T(x, z), D(z, w) -> U(x, w).\n";
    let prog = Program::parse(text).expect("generated storage-scaling workload parses");
    // Long keys with a shared prefix: content comparison must walk the
    // whole prefix before it can distinguish two keys. The carried id `x`
    // is a (unique) string too, so the derived `T`/`U` tuples keep paying
    // string hashing in the dedup maps unless the run is interned.
    let key = |k: usize| format!("warehouse_partition_key_with_shared_prefix_{:06}", k % keys);
    let id = |i: usize| format!("customer_record_identifier_with_shared_prefix_{i:08}");
    let mut inst = Instance::new();
    for i in 0..width {
        inst.add(
            "R",
            vec![
                Value::str(id(i)),
                Value::str(key(i)),
                Value::int((i % 7) as i64),
            ],
        )
        .expect("fresh relation");
    }
    for k in 0..keys {
        for m in 0..7i64 {
            inst.add(
                "S",
                vec![
                    Value::str(key(k)),
                    Value::int(m),
                    Value::int(k as i64 * 7 + m),
                ],
            )
            .expect("fresh relation");
        }
    }
    for z in 0..(keys as i64 * 7) {
        inst.add("D", vec![Value::int(z), Value::int(z % 13)])
            .expect("fresh relation");
    }
    (prog.deps, inst)
}

/// E6: the §4 reformulation exercise. Returns `(perverse, reformulated)`:
/// the perverse scenario is the paper's running example (negation inside
/// `PopularProduct` forces the ded `d0`); the reformulated one replaces the
/// negation by an explicit positive flag table `T_NoZero`, trading a
/// physical-schema extension for a ded-free rewriting — exactly the
/// designer move the demo teaches.
pub fn restriction_pair() -> (MappingScenario, MappingScenario) {
    let perverse = running_example_scenario();
    let reformulated_text = r#"
        schema source {
            S_Product(id: int, name: string, store: string, rating: int);
            S_Store(name: string, location: string);
        }
        schema target {
            T_Product(id: int, name: string, store: int);
            T_Store(id: int, name: string, address: string, phone: string);
            T_Rating(id: int, product: int, thumbsUp: int);
            T_NoZero(product: int);
        }

        view Product(id, name) <- T_Product(id, name, store).
        view PopularProduct(pid, name) <-
            T_Product(pid, name, store), T_NoZero(pid).
        view SoldAt(pid, stid) <- T_Product(pid, pname, stid).
        view Store(id, name, addr) <- T_Store(id, name, addr, phone).

        tgd m2: S_Product(pid, name, store, rating), rating >= 4
            -> PopularProduct(pid, name).
        tgd m3: S_Product(pid, name, store, rating), S_Store(store, location)
            -> SoldAt(pid, sid), Store(sid, store, location).

        egd e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.
    "#;
    let prog = Program::parse(reformulated_text).expect("reformulated scenario parses");
    let reformulated =
        MappingScenario::from_program(&prog).expect("reformulated scenario is well-formed");
    (perverse, reformulated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom::rewrite::{analyze, rewrite_program, RewriteOptions};

    #[test]
    fn running_example_generator_is_deterministic() {
        let cfg = RunningExampleConfig {
            products: 50,
            stores: 5,
            seed: 7,
        };
        let a = running_example_source(&cfg);
        let b = running_example_source(&cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.tuples("S_Product").count(), 50);
        assert_eq!(a.tuples("S_Store").count(), 5);
    }

    #[test]
    fn running_example_pipeline_small() {
        let sc = running_example_scenario();
        let src = running_example_source(&RunningExampleConfig {
            products: 30,
            stores: 3,
            seed: 1,
        });
        let res = sc.run(&src, &PipelineOptions::default()).unwrap();
        assert!(res.validation.unwrap().ok);
        assert!(res.chase_stats.scenarios_tried >= 1);
    }

    #[test]
    fn conjunctive_family_is_ded_free() {
        let (views, deps) = conjunctive_family(8, 3);
        let out = rewrite_program(&views, &deps, &RewriteOptions::default()).unwrap();
        assert!(out.is_ded_free());
        assert!(out.warnings.is_empty());
        // One output per input (8 tgds + 8 egds).
        assert_eq!(out.deps.len(), 16);
    }

    #[test]
    fn negation_family_produces_deds() {
        let (views, deps) = negation_family(4, 2);
        let (report, out) = analyze(&views, &deps, &RewriteOptions::default()).unwrap();
        assert!(report.has_deds);
        // One ded per egd, with 1 + 2*negated disjuncts.
        let deds: Vec<_> = out.deds().collect();
        assert_eq!(deds.len(), 4);
        for d in &deds {
            assert_eq!(d.disjuncts.len(), 1 + 2 * 2);
        }
    }

    #[test]
    fn universal_model_counts() {
        let (deps, inst) = universal_model_workload(5);
        let ex =
            grom::chase::chase_exhaustive(inst.clone(), &deps, &ChaseConfig::default()).unwrap();
        assert_eq!(ex.solutions.len(), 32);
        let gr = grom::chase::chase_greedy(inst, &deps, &ChaseConfig::default()).unwrap();
        assert_eq!(gr.stats.scenarios_tried, 1);
    }

    #[test]
    fn intricacy_scenarios_grow_with_density() {
        let run = |frac: f64| {
            let (deps, inst) = greedy_intricacy_workload(8, frac, 3);
            grom::chase::chase_greedy(inst, &deps, &ChaseConfig::default())
                .unwrap()
                .stats
                .scenarios_tried
        };
        let low = run(0.0);
        let high = run(0.8);
        assert_eq!(low, 1);
        assert!(high > low, "high = {high}, low = {low}");
    }

    #[test]
    fn attributable_workload_separates_strategies() {
        let (deps, inst) = greedy_intricacy_attributable(8, 0.5, 3);
        let plain =
            grom::chase::chase_greedy(inst.clone(), &deps, &ChaseConfig::default()).unwrap();
        let jump =
            grom::chase::chase_greedy_backjump(inst, &deps, &ChaseConfig::default()).unwrap();
        // Backjumping is linear in the number of denied branches; the
        // plain odometer is exponential.
        assert!(jump.stats.scenarios_tried < plain.stats.scenarios_tried);
        assert!(jump.stats.scenarios_tried <= 9);
        // Both deliver valid solutions.
        for d in &deps {
            assert!(grom::engine::dependency_satisfied(&plain.instance, d));
            assert!(grom::engine::dependency_satisfied(&jump.instance, d));
        }
    }

    #[test]
    fn delta_scaling_workload_separates_schedulers() {
        use grom::chase::{chase_standard, chase_standard_full_rescan};
        let (deps, inst) = delta_scaling_workload(6, 20);
        assert_eq!(deps.len(), 6);
        let cfg = ChaseConfig::default();
        let delta = chase_standard(inst.clone(), &deps, &cfg).unwrap();
        let naive = chase_standard_full_rescan(inst, &deps, &cfg).unwrap();
        // Identical results, byte for byte (no nulls in this workload).
        assert_eq!(delta.instance.to_string(), naive.instance.to_string());
        assert_eq!(delta.instance.len(), 7 * 20);
        // The naive loop propagates one level per round and rescans every
        // dependency each time; the delta scheduler activates each
        // dependency's premise on its level's delta exactly once.
        assert!(delta.stats.delta_activations >= 5);
        assert!(naive.stats.full_rescans == 0 && naive.stats.delta_activations == 0);
        assert!(delta.stats.rounds >= 6);
    }

    #[test]
    fn seminaive_workload_agrees_across_schedulers() {
        use grom::chase::{chase_standard, chase_standard_full_rescan};
        let (deps, inst) = seminaive_workload(4, 20);
        assert_eq!(deps.len(), 4);
        let cfg = ChaseConfig::default();
        let delta = chase_standard(inst.clone(), &deps, &cfg).unwrap();
        let naive = chase_standard_full_rescan(inst, &deps, &cfg).unwrap();
        // Constants only: byte-identical instances.
        assert_eq!(delta.instance.to_string(), naive.instance.to_string());
        // Level k holds the stride-2^k hops (v, v + 2^k): width - 2^k + 1
        // tuples. 20 + 19 + 17 + 13 + 5.
        assert_eq!(delta.instance.len(), 74);
        // The multi-anchor deltas actually drive the run: every level past
        // the seed activates on its predecessor's insertions.
        assert!(delta.stats.delta_activations >= 3);
    }

    #[test]
    fn parallel_scaling_workload_partitions_are_independent() {
        use grom::chase::{chase_standard, Partition, SchedulerMode, TriggerIndex};
        let (deps, inst) = parallel_scaling_workload(4, 3, 15);
        assert_eq!(deps.len(), 12);
        // One conflict-free group per chain: the parallelism the e8 bench
        // exploits.
        let part = Partition::build(&deps, &TriggerIndex::build(&deps));
        assert_eq!(part.group_count(), 4);

        let seq = chase_standard(inst.clone(), &deps, &ChaseConfig::default()).unwrap();
        let par = chase_standard(
            inst,
            &deps,
            &ChaseConfig::default().with_scheduler(SchedulerMode::Parallel { threads: 4 }),
        )
        .unwrap();
        // Constant-only chains: byte-identical instances.
        assert_eq!(seq.instance.to_string(), par.instance.to_string());
        assert_eq!(seq.instance.len(), 7 + 4 * 15 * 4);
        assert!(par.stats.delta_activations > 0);
    }

    #[test]
    fn egd_scaling_workload_batches_merges() {
        use grom::chase::{
            chase_standard, chase_standard_full_rescan, Partition, SchedulerMode, TriggerIndex,
        };
        use grom::data::canonical_render;
        let (deps, inst) = egd_scaling_workload(6, 5, 3);
        assert_eq!(deps.len(), 4); // probe + 3 egds
                                   // Nobody writes Rep/Same{j}: the probe and each egd are their own
                                   // conflict group — 4-way parallel obligation collection.
        let part = Partition::build(&deps, &TriggerIndex::build(&deps));
        assert_eq!(part.group_count(), 4);

        let cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);
        let batched = chase_standard(inst.clone(), &deps, &cfg).unwrap();
        let naive =
            chase_standard_full_rescan(inst.clone(), &deps, &ChaseConfig::default()).unwrap();
        // Identical up to null renaming, and the egds hold at fixpoint.
        assert_eq!(
            canonical_render(&batched.instance),
            canonical_render(&naive.instance)
        );
        for d in &deps {
            assert!(grom::engine::dependency_satisfied(&batched.instance, d));
        }
        // Each cluster's 5 representatives merged into one: 6 * 4 merges.
        assert_eq!(batched.stats.egd_merges, 6 * 4);
        // The tentpole assertion: ONE substitution pass for the whole
        // merge-bearing sweep, vs one per merging egd in the reference.
        assert_eq!(batched.stats.substitution_passes, 1);
        assert!(naive.stats.substitution_passes >= 3);

        // The parallel executor agrees and batches identically.
        let par = chase_standard(
            inst,
            &deps,
            &ChaseConfig::default().with_scheduler(SchedulerMode::Parallel { threads: 4 }),
        )
        .unwrap();
        assert_eq!(
            canonical_render(&par.instance),
            canonical_render(&naive.instance)
        );
        assert_eq!(par.stats.substitution_passes, 1);
    }

    #[test]
    fn restriction_pair_contrast() {
        let (perverse, reformulated) = restriction_pair();
        let p_out = perverse.rewrite(&RewriteOptions::default()).unwrap();
        let r_out = reformulated.rewrite(&RewriteOptions::default()).unwrap();
        assert!(!p_out.is_ded_free());
        assert!(r_out.is_ded_free());
    }
}
