//! The experiment harness: regenerates every row recorded in
//! EXPERIMENTS.md (experiments E1–E9, one per quantitative claim of the
//! paper's §3–§4 plus the scheduler/executor separations).
//!
//! Usage: `cargo run --release -p grom-bench --bin experiments [-- e4 e5]`
//! (no arguments = run everything). `GROM_SCALE=2` doubles instance sizes;
//! `GROM_BENCH_PROFILE=fast` shrinks the expensive experiments to CI-sized
//! tiers; `GROM_BENCH_JSON=out.json` appends one JSON line per workload
//! (the format `bench_gate` compares against a committed baseline).

use std::time::Instant;

use grom::prelude::*;
use grom_bench::workloads::*;
use grom_bench::{record, Table};

fn scale() -> usize {
    std::env::var("GROM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The CI profile: small tiers, same workloads, same record names.
fn fast() -> bool {
    std::env::var("GROM_BENCH_PROFILE").as_deref() == Ok("fast")
}

/// Pick tiers for the current profile.
fn tiers(full: &[usize], fast_tiers: &[usize]) -> Vec<usize> {
    if fast() { fast_tiers } else { full }.to_vec()
}

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn ms_f(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// E1 — §2 + Fig. 1: the running example end to end at growing sizes.
fn e1() -> Table {
    let mut t = Table::new(
        "E1: running example end-to-end (rewrite + chase + validate)",
        &[
            "|I_S| products",
            "target tuples",
            "scenarios",
            "valid",
            "total ms",
        ],
    );
    let sc = running_example_scenario();
    for n in tiers(&[100usize, 1_000, 10_000], &[100, 1_000]) {
        let n = n * scale();
        let src = running_example_source(&RunningExampleConfig {
            products: n,
            stores: 20,
            seed: 42,
        });
        let t0 = Instant::now();
        let res = sc
            .run(&src, &PipelineOptions::default())
            .expect("pipeline succeeds");
        let elapsed = t0.elapsed();
        record(
            format!("e1/products={n}"),
            ms_f(elapsed),
            res.target.len() as u64,
        );
        t.row(vec![
            n.to_string(),
            res.target.len().to_string(),
            res.chase_stats.scenarios_tried.to_string(),
            res.validation.map(|v| v.ok).unwrap_or(false).to_string(),
            ms(elapsed),
        ]);
    }
    t
}

/// E2 — §3: conjunctive views ⇒ tgd/egd-only output, rewriting linear.
fn e2() -> Table {
    let mut t = Table::new(
        "E2: conjunctive-view rewriting (closure under unfolding)",
        &["#views", "body size", "outputs", "deds", "rewrite ms"],
    );
    for &(n, b) in &[(4usize, 2usize), (16, 2), (64, 2), (16, 4), (16, 8)] {
        let (views, deps) = conjunctive_family(n, b);
        let t0 = Instant::now();
        let out = grom::rewrite::rewrite_program(&views, &deps, &RewriteOptions::default())
            .expect("rewrite succeeds");
        let elapsed = t0.elapsed();
        record(
            format!("e2/views={n}/body={b}"),
            ms_f(elapsed),
            out.deps.len() as u64,
        );
        t.row(vec![
            n.to_string(),
            b.to_string(),
            out.deps.len().to_string(),
            out.deds().count().to_string(),
            ms(elapsed),
        ]);
    }
    t
}

/// E3 — §3: negation in views ⇒ deds; disjunct width grows with the number
/// of negated atoms (the d0 pattern).
fn e3() -> Table {
    let mut t = Table::new(
        "E3: ded generation from negated views (the d0 pattern)",
        &["#views", "negs/view", "deds", "max disjuncts", "rewrite ms"],
    );
    for &(n, k) in &[(8usize, 0usize), (8, 1), (8, 2), (8, 4), (32, 2)] {
        let (views, deps) = negation_family(n, k);
        let t0 = Instant::now();
        let out = grom::rewrite::rewrite_program(&views, &deps, &RewriteOptions::default())
            .expect("rewrite succeeds");
        let elapsed = t0.elapsed();
        record(
            format!("e3/views={n}/negs={k}"),
            ms_f(elapsed),
            out.deps.len() as u64,
        );
        let max_disj = out
            .deps
            .iter()
            .map(|d| d.disjuncts.len())
            .max()
            .unwrap_or(0);
        t.row(vec![
            n.to_string(),
            k.to_string(),
            out.deds().count().to_string(),
            max_disj.to_string(),
            ms(elapsed),
        ]);
    }
    t
}

/// E4 — §3: universal model sets are exponential; the greedy chase is not.
fn e4() -> Table {
    let mut t = Table::new(
        "E4: exhaustive vs greedy ded chase (universal model set blow-up)",
        &[
            "k violations",
            "exhaustive leaves",
            "nodes",
            "exhaustive ms",
            "greedy scenarios",
            "greedy ms",
        ],
    );
    for k in tiers(&[2usize, 4, 6, 8, 10, 12], &[2, 4, 6, 8]) {
        let (deps, inst) = universal_model_workload(k);
        let t0 = Instant::now();
        let ex = grom::chase::chase_exhaustive(inst.clone(), &deps, &ChaseConfig::default())
            .expect("exhaustive chase succeeds");
        let ex_ms = t0.elapsed();
        let t1 = Instant::now();
        let gr = grom::chase::chase_greedy(inst, &deps, &ChaseConfig::default())
            .expect("greedy chase succeeds");
        let gr_ms = t1.elapsed();
        record(
            format!("e4/exhaustive/k={k}"),
            ms_f(ex_ms),
            ex.solutions.len() as u64,
        );
        record(format!("e4/greedy/k={k}"), ms_f(gr_ms), 0);
        t.row(vec![
            k.to_string(),
            ex.solutions.len().to_string(),
            ex.stats.nodes_expanded.to_string(),
            ms(ex_ms),
            gr.stats.scenarios_tried.to_string(),
            ms(gr_ms),
        ]);
    }
    t
}

/// E5 — §4: greedy chase cost vs constraint intricacy.
fn e5() -> Table {
    let mut t = Table::new(
        "E5: greedy chase vs density of failing branches",
        &["denied frac", "scenarios tried", "scenarios failed", "ms"],
    );
    for &frac in &[0.0, 0.2, 0.5, 0.8] {
        let (deps, inst) = greedy_intricacy_workload(10, frac, 3);
        let t0 = Instant::now();
        let res = grom::chase::chase_greedy(inst, &deps, &ChaseConfig::default())
            .expect("greedy chase succeeds");
        let elapsed = t0.elapsed();
        record(
            format!("e5/frac={frac:.1}"),
            ms_f(elapsed),
            res.stats.scenarios_tried as u64,
        );
        t.row(vec![
            format!("{frac:.1}"),
            res.stats.scenarios_tried.to_string(),
            res.stats.scenarios_failed.to_string(),
            ms(elapsed),
        ]);
    }
    t
}

/// E5b — ablation: the paper's blind odometer search vs backjumping on the
/// ded whose derived dependency failed. Uses the *attributable* variant of
/// the intricacy workload (failures are equality clashes inside the derived
/// dependency); on the denial-based E5 workload the failure cannot be
/// attributed and both strategies behave identically.
fn e5b() -> Table {
    let mut t = Table::new(
        "E5b (ablation): plain greedy vs backjumping scenario search",
        &[
            "denied frac",
            "plain scenarios",
            "backjump scenarios",
            "plain ms",
            "backjump ms",
        ],
    );
    for &frac in &[0.0, 0.2, 0.5, 0.8] {
        let (deps, inst) = greedy_intricacy_attributable(10, frac, 3);
        let t0 = Instant::now();
        let plain = grom::chase::chase_greedy(inst.clone(), &deps, &ChaseConfig::default())
            .expect("plain greedy succeeds");
        let plain_ms = t0.elapsed();
        let t1 = Instant::now();
        let jump = grom::chase::chase_greedy_backjump(inst, &deps, &ChaseConfig::default())
            .expect("backjump greedy succeeds");
        let jump_ms = t1.elapsed();
        record(
            format!("e5b/plain/frac={frac:.1}"),
            ms_f(plain_ms),
            plain.stats.scenarios_tried as u64,
        );
        record(
            format!("e5b/backjump/frac={frac:.1}"),
            ms_f(jump_ms),
            jump.stats.scenarios_tried as u64,
        );
        t.row(vec![
            format!("{frac:.1}"),
            plain.stats.scenarios_tried.to_string(),
            jump.stats.scenarios_tried.to_string(),
            ms(plain_ms),
            ms(jump_ms),
        ]);
    }
    t
}

/// E6 — §4: the restriction analyzer and the reformulation exercise.
fn e6() -> Table {
    let mut t = Table::new(
        "E6: syntactic restrictions — perverse vs reformulated views",
        &[
            "scenario",
            "deds",
            "problematic views",
            "rewrite ms",
            "chase ms (1k products)",
        ],
    );
    let (perverse, reformulated) = restriction_pair();
    for (name, sc) in [("perverse", &perverse), ("reformulated", &reformulated)] {
        let t0 = Instant::now();
        let deps: Vec<Dependency> = sc.all_dependencies().cloned().collect();
        let (report, out) =
            grom::rewrite::analyze(&sc.target_views, &deps, &RewriteOptions::default())
                .expect("analyze succeeds");
        let rw_ms = t0.elapsed();

        let products = if fast() { 300 } else { 1_000 } * scale();
        let src = running_example_source(&RunningExampleConfig {
            products,
            stores: 20,
            seed: 42,
        });
        let opts = PipelineOptions {
            skip_validation: true,
            ..Default::default()
        };
        let t1 = Instant::now();
        sc.run(&src, &opts).expect("pipeline succeeds");
        let chase_ms = t1.elapsed();
        record(format!("e6/{name}"), ms_f(chase_ms), products as u64);

        t.row(vec![
            name.to_string(),
            out.deds().count().to_string(),
            report.problematic.len().to_string(),
            ms(rw_ms),
            ms(chase_ms),
        ]);
    }
    t
}

/// E7 — §3: chase scalability on the (ded-containing) running example.
fn e7() -> Table {
    let mut t = Table::new(
        "E7: chase scalability (running example, greedy strategy)",
        &[
            "|I_S| products",
            "target tuples",
            "chase rounds",
            "ms",
            "tuples/s",
        ],
    );
    let sc = running_example_scenario();
    for n in tiers(&[1_000usize, 5_000, 20_000, 50_000], &[1_000, 5_000]) {
        let n = n * scale();
        let src = running_example_source(&RunningExampleConfig {
            products: n,
            stores: 50,
            seed: 42,
        });
        let opts = PipelineOptions {
            skip_validation: true,
            ..Default::default()
        };
        let t0 = Instant::now();
        let res = sc.run(&src, &opts).expect("pipeline succeeds");
        let elapsed = t0.elapsed();
        record(
            format!("e7/products={n}"),
            ms_f(elapsed),
            res.target.len() as u64,
        );
        let throughput = res.target.len() as f64 / elapsed.as_secs_f64();
        t.row(vec![
            n.to_string(),
            res.target.len().to_string(),
            res.chase_stats.rounds.to_string(),
            ms(elapsed),
            format!("{throughput:.0}"),
        ]);
    }
    t
}

/// E7d — the tentpole experiment: delta-driven vs full-rescan scheduling on
/// the reverse-declared copy chain of
/// [`grom_bench::delta_scaling_workload`]. Both schedulers must produce
/// identical instances; the delta scheduler must win by a growing factor.
fn e7d() -> Table {
    use grom::chase::{chase_standard, chase_standard_full_rescan};
    let mut t = Table::new(
        "E7d: delta-driven vs full-rescan chase scheduling (copy chain, depth 16)",
        &[
            "width",
            "tuples",
            "naive ms",
            "delta ms",
            "speedup",
            "identical",
        ],
    );
    let depth = 16;
    for width in tiers(&[200usize, 1_000, 5_000], &[100, 500]) {
        let width = width * scale();
        let (deps, inst) = delta_scaling_workload(depth, width);
        let cfg = ChaseConfig::default();
        let t0 = Instant::now();
        let naive = chase_standard_full_rescan(inst.clone(), &deps, &cfg)
            .expect("full-rescan chase succeeds");
        let naive_ms = t0.elapsed();
        let t1 = Instant::now();
        let delta = chase_standard(inst, &deps, &cfg).expect("delta chase succeeds");
        let delta_ms = t1.elapsed();
        let identical = naive.instance.to_string() == delta.instance.to_string();
        assert!(identical, "schedulers disagree at width {width}");
        record(
            format!("e7d/naive/width={width}"),
            ms_f(naive_ms),
            naive.instance.len() as u64,
        );
        record(
            format!("e7d/delta/width={width}"),
            ms_f(delta_ms),
            delta.instance.len() as u64,
        );
        // Profile counters as zero-wall rows: visible in BENCH artifacts,
        // never gated on (sub-noise-floor by construction).
        record(
            format!("e7d/stats/width={width}/delta_acts"),
            0.0,
            delta.profile.total_delta_activations(),
        );
        record(
            format!("e7d/stats/width={width}/full_rescans"),
            0.0,
            delta.profile.total_full_rescans(),
        );
        record(
            format!("e7d/stats/width={width}/delta_hit_pct"),
            0.0,
            delta
                .profile
                .delta_hit_rate()
                .map_or(0, |r| (100.0 * r).round() as u64),
        );
        let speedup = naive_ms.as_secs_f64() / delta_ms.as_secs_f64().max(1e-9);
        t.row(vec![
            width.to_string(),
            delta.instance.len().to_string(),
            ms(naive_ms),
            ms(delta_ms),
            format!("{speedup:.1}x"),
            identical.to_string(),
        ]);
    }
    t
}

/// E8 — the parallel chase executor: worker-pool delta sweeps over the
/// independent chains of [`grom_bench::parallel_scaling_workload`] vs the
/// sequential delta scheduler. Instances must be identical; the speedup at
/// 4 threads is the tentpole figure (target: ≥1.5×).
fn e8() -> Table {
    use grom::chase::chase_standard;
    let mut t = Table::new(
        "E8: parallel chase executor vs sequential delta scheduler (8 chains, depth 12)",
        &[
            "width",
            "tuples",
            "delta ms",
            "2 threads ms",
            "4 threads ms",
            "speedup@4",
            "identical",
        ],
    );
    let (partitions, depth) = (8, 12);
    for width in tiers(&[500usize, 2_000], &[200, 600]) {
        let width = width * scale();
        let (deps, inst) = parallel_scaling_workload(partitions, depth, width);
        let seq_cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);
        let t0 = Instant::now();
        let seq = chase_standard(inst.clone(), &deps, &seq_cfg).expect("delta chase succeeds");
        let seq_ms = t0.elapsed();
        record(
            format!("e8_parallel_scaling/delta/width={width}"),
            ms_f(seq_ms),
            seq.instance.len() as u64,
        );

        let mut wall = [std::time::Duration::ZERO; 2];
        let mut identical = true;
        for (slot, threads) in [2usize, 4].into_iter().enumerate() {
            let par_cfg = ChaseConfig::default().with_threads(threads);
            let t1 = Instant::now();
            let par =
                chase_standard(inst.clone(), &deps, &par_cfg).expect("parallel chase succeeds");
            wall[slot] = t1.elapsed();
            identical &= par.instance.to_string() == seq.instance.to_string();
            assert!(identical, "schedulers disagree at width {width}");
            record(
                format!("e8_parallel_scaling/threads={threads}/width={width}"),
                ms_f(wall[slot]),
                par.instance.len() as u64,
            );
        }
        let speedup = seq_ms.as_secs_f64() / wall[1].as_secs_f64().max(1e-9);
        t.row(vec![
            width.to_string(),
            seq.instance.len().to_string(),
            ms(seq_ms),
            ms(wall[0]),
            ms(wall[1]),
            format!("{speedup:.2}x"),
            identical.to_string(),
        ]);
    }
    t
}

/// E9 — sweep-level egd batching: the batched delta scheduler vs the
/// full-rescan reference on the entity-resolution workload of
/// [`grom_bench::egd_scaling_workload`] (8 key egds, labeled-null
/// representatives merging through long union-find chains). Instances must
/// be identical up to null renaming; the batched scheduler must apply
/// exactly one substitution pass per merge-bearing sweep. Besides the wall
/// times, the JSONL records surface the `substitution_passes` and
/// `obligations_batched` counters of the batched run (encoded in the
/// `tuples` field with a zero wall time, so the regression gate treats
/// them as sub-noise-floor rows and never gates on them).
fn e9() -> Table {
    use grom::chase::{chase_standard, chase_standard_full_rescan};
    use grom::data::canonical_render;
    let mut t = Table::new(
        "E9: sweep-level egd batching vs per-dependency substitution (8 egds, chain 12)",
        &[
            "clusters",
            "tuples",
            "merges",
            "naive subst",
            "batched subst",
            "naive ms",
            "batched ms",
            "speedup",
            "identical",
        ],
    );
    let (chain, egd_rels) = (12, 8);
    for clusters in tiers(&[200usize, 800], &[100, 300]) {
        let clusters = clusters * scale();
        let (deps, inst) = egd_scaling_workload(clusters, chain, egd_rels);
        let naive_cfg = ChaseConfig::default().with_scheduler(SchedulerMode::FullRescan);
        let batched_cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);
        let t0 = Instant::now();
        let naive = chase_standard_full_rescan(inst.clone(), &deps, &naive_cfg)
            .expect("full-rescan chase succeeds");
        let naive_ms = t0.elapsed();
        let t1 = Instant::now();
        let batched = chase_standard(inst, &deps, &batched_cfg).expect("batched chase succeeds");
        let batched_ms = t1.elapsed();
        let identical = canonical_render(&naive.instance) == canonical_render(&batched.instance);
        assert!(identical, "schedulers disagree at {clusters} clusters");
        assert_eq!(
            batched.stats.substitution_passes, 1,
            "batched mode must substitute once per merge-bearing sweep"
        );
        record(
            format!("e9/naive/clusters={clusters}"),
            ms_f(naive_ms),
            naive.instance.len() as u64,
        );
        record(
            format!("e9/batched/clusters={clusters}"),
            ms_f(batched_ms),
            batched.instance.len() as u64,
        );
        record(
            format!("e9/stats/clusters={clusters}/substitution_passes"),
            0.0,
            batched.stats.substitution_passes as u64,
        );
        record(
            format!("e9/stats/clusters={clusters}/obligations_batched"),
            0.0,
            batched.stats.obligations_batched as u64,
        );
        record(
            format!("e9/stats/clusters={clusters}/delta_acts"),
            0.0,
            batched.profile.total_delta_activations(),
        );
        record(
            format!("e9/stats/clusters={clusters}/full_rescans"),
            0.0,
            batched.profile.total_full_rescans(),
        );
        record(
            format!("e9/stats/clusters={clusters}/delta_hit_pct"),
            0.0,
            batched
                .profile
                .delta_hit_rate()
                .map_or(0, |r| (100.0 * r).round() as u64),
        );
        let speedup = naive_ms.as_secs_f64() / batched_ms.as_secs_f64().max(1e-9);
        t.row(vec![
            clusters.to_string(),
            batched.instance.len().to_string(),
            batched.stats.egd_merges.to_string(),
            naive.stats.substitution_passes.to_string(),
            batched.stats.substitution_passes.to_string(),
            ms(naive_ms),
            ms(batched_ms),
            format!("{speedup:.1}x"),
            identical.to_string(),
        ]);
    }
    t
}

/// E10 — conformance-corpus cliff scenarios: the generator specs behind the
/// committed corpus entries of the same names (`corpus/<entry>/spec.gen`),
/// chased under every scheduler mode. This puts the corpus's cliff shapes —
/// deep copy chains, egd merge cascades, the dense all-primitive mix — on
/// the bench-gate radar, so a scheduler change that slows them down fails
/// CI even when the conformance output stays correct. The full profile
/// scales the instances up for timing signal; record names stay
/// profile-independent. Parallel-mode records carry `threads=` so the gate
/// reports them without gating (core-count dependent).
fn e10() -> Table {
    use grom::scenarios::{all_modes, generate, ScenarioSpec};
    let mut t = Table::new(
        "E10: corpus cliff scenarios across scheduler modes",
        &[
            "entry",
            "tuples",
            "full_rescan ms",
            "delta ms",
            "2 threads ms",
            "4 threads ms",
        ],
    );
    let cliffs = [
        ("copy_deep", "mix=copy:1 depth=8 egd=0.00 seed=102 scale=2"),
        ("er_cliff", "mix=er:1 depth=4 egd=1.00 seed=143 scale=3"),
        (
            "mix_all_scaled",
            "mix=copy:2,fusion:1,vpart:2,denorm:1,er:2 depth=3 egd=0.50 seed=163 scale=3",
        ),
        (
            "cliff_null_cascade",
            "mix=vpart:3,er:2 depth=5 egd=1.00 seed=171 scale=3",
        ),
    ];
    for (name, line) in cliffs {
        let mut spec = ScenarioSpec::parse(line).expect("cliff spec parses");
        spec.scale *= if fast() { 1 } else { 8 } * scale();
        let g = generate(&spec);
        let (deps, inst) = g.parts().expect("generated scenario parses");
        let cfg = ChaseConfig::default();
        let mut cells = vec![name.to_string(), String::new()];
        for (mode_name, mode) in all_modes() {
            let t0 = Instant::now();
            let rendered = grom::scenarios::chase_mode(&deps, inst.clone(), mode, &cfg)
                .expect("cliff scenario chases cleanly");
            let elapsed = t0.elapsed();
            let tuples = rendered.lines().count() as u64;
            let record_name = match mode {
                SchedulerMode::Parallel { threads } => {
                    format!("e10/{name}/threads={threads}")
                }
                _ => format!("e10/{name}/{mode_name}"),
            };
            record(record_name, ms_f(elapsed), tuples);
            cells[1] = tuples.to_string();
            cells.push(ms(elapsed));
        }
        t.row(cells);
    }
    t
}

/// E11 — the interned, hash-indexed tuple store on string-keyed composite
/// joins: chase the same workload with plain string values and with the
/// pipeline's symbol-interning choke point applied first. Same delta
/// scheduler, same join-key indexes; the only difference is whether probe
/// comparisons walk string contents or dense symbol ids.
fn e11() -> Table {
    use grom::chase::chase_standard;
    use grom::data::{canonical_render, SymbolTable};
    let mut t = Table::new(
        "E11: interned symbol storage vs plain strings (200 keys, composite joins)",
        &[
            "width",
            "tuples",
            "plain ms",
            "interned ms",
            "speedup",
            "identical",
        ],
    );
    let keys = 200;
    for width in tiers(&[4_000usize, 16_000], &[2_000, 4_000]) {
        let width = width * scale();
        let (deps, inst) = storage_scaling_workload(width, keys);
        let mut table = SymbolTable::new();
        let iinst = inst.intern_strings(&mut table);
        let ideps = grom::intern_dependencies(&deps, &mut table);
        let cfg = ChaseConfig::default().with_scheduler(SchedulerMode::Delta);
        let t0 = Instant::now();
        let plain = chase_standard(inst, &deps, &cfg).expect("plain chase succeeds");
        let plain_ms = t0.elapsed();
        let t1 = Instant::now();
        let interned = chase_standard(iinst, &ideps, &cfg).expect("interned chase succeeds");
        let interned_ms = t1.elapsed();
        let identical = canonical_render(&plain.instance)
            == canonical_render(&interned.instance.unintern_strings());
        assert!(identical, "interned storage diverges at width {width}");
        record(
            format!("e11/plain/width={width}"),
            ms_f(plain_ms),
            plain.instance.len() as u64,
        );
        record(
            format!("e11/interned/width={width}"),
            ms_f(interned_ms),
            interned.instance.len() as u64,
        );
        let speedup = plain_ms.as_secs_f64() / interned_ms.as_secs_f64().max(1e-9);
        t.row(vec![
            width.to_string(),
            plain.instance.len().to_string(),
            ms(plain_ms),
            ms(interned_ms),
            format!("{speedup:.2}x"),
            identical.to_string(),
        ]);
    }
    t
}

/// E12 — semi-naive evaluation on multi-anchor premises: the old/new
/// version split vs the full-rescan reference on the composition chain of
/// [`grom_bench::seminaive_workload`]. Every premise reads the same
/// relation at two positions, so each delta activation seeds both anchor
/// positions and only the versioned split keeps enumeration exactly-once
/// without a dedup set. Instances must be byte-identical. The zero-wall
/// stats rows surface the delta counters (true match counts under the
/// exactly-once contract) without being gated on.
fn e12() -> Table {
    use grom::chase::{chase_standard, chase_standard_full_rescan};
    let mut t = Table::new(
        "E12: semi-naive multi-anchor composition chain (6 levels)",
        &[
            "width",
            "tuples",
            "naive ms",
            "delta ms",
            "speedup",
            "identical",
        ],
    );
    let levels = 6;
    for width in tiers(&[1_000usize, 4_000, 16_000], &[500, 2_000]) {
        let width = width * scale();
        let (deps, inst) = seminaive_workload(levels, width);
        let cfg = ChaseConfig::default();
        let t0 = Instant::now();
        let naive = chase_standard_full_rescan(inst.clone(), &deps, &cfg)
            .expect("full-rescan chase succeeds");
        let naive_ms = t0.elapsed();
        let t1 = Instant::now();
        let delta = chase_standard(inst, &deps, &cfg).expect("delta chase succeeds");
        let delta_ms = t1.elapsed();
        let identical = naive.instance.to_string() == delta.instance.to_string();
        assert!(identical, "schedulers disagree at width {width}");
        record(
            format!("e12/naive/width={width}"),
            ms_f(naive_ms),
            naive.instance.len() as u64,
        );
        record(
            format!("e12/delta/width={width}"),
            ms_f(delta_ms),
            delta.instance.len() as u64,
        );
        record(
            format!("e12/stats/width={width}/delta_acts"),
            0.0,
            delta.profile.total_delta_activations(),
        );
        record(
            format!("e12/stats/width={width}/delta_hit_pct"),
            0.0,
            delta
                .profile
                .delta_hit_rate()
                .map_or(0, |r| (100.0 * r).round() as u64),
        );
        let speedup = naive_ms.as_secs_f64() / delta_ms.as_secs_f64().max(1e-9);
        t.row(vec![
            width.to_string(),
            delta.instance.len().to_string(),
            ms(naive_ms),
            ms(delta_ms),
            format!("{speedup:.1}x"),
            identical.to_string(),
        ]);
    }
    t
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("# GROM experiments (scale = {})\n", scale());
    type Experiment = (&'static str, fn() -> Table);
    let experiments: Vec<Experiment> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e5b", e5b),
        ("e6", e6),
        ("e7", e7),
        ("e7d", e7d),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
    ];
    for (name, f) in experiments {
        if want(name) {
            println!("{}", f());
        }
    }
    // The calibration figure every run contributes: `bench_gate` compares
    // its own local measurement against the baseline's to normalize wall
    // times across machines (see `grom_bench::calibration`).
    record(
        grom_bench::CALIBRATION_RECORD,
        grom_bench::calibration_ms(),
        0,
    );
    match grom_bench::flush_jsonl_env() {
        Ok(Some(path)) => println!("bench records appended to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write bench records: {e}");
            std::process::exit(1);
        }
    }
}
