//! The CI bench-regression gate.
//!
//! Usage:
//!
//! ```text
//! bench_gate <BENCH_baseline.json> <BENCH_candidate.json> [--threshold 0.25]
//! ```
//!
//! Both files hold the shared JSONL bench format (one
//! `{"name":…,"wall_ms":…}` object per line) emitted by the `experiments`
//! harness and the criterion shim behind `GROM_BENCH_JSON`. The gate fails
//! (exit code 1) when any workload present in the baseline
//!
//! * is missing from the candidate, or
//! * regressed by more than the threshold (default 25%, override with
//!   `--threshold` or `GROM_BENCH_GATE_THRESHOLD`), unless both timings
//!   are below the noise floor (default 5 ms, override with
//!   `GROM_BENCH_GATE_MIN_MS`) where shares of a millisecond are jitter,
//!   not signal.
//!
//! Workloads only present in the candidate do not fail the gate by default
//! — new benches should not need a baseline update to land — but each one
//! is called out with a `::warning::` annotation so an ungated workload is
//! a visible, deliberate state rather than a silent skip. Set
//! `GROM_BENCH_GATE_STRICT_NEW=1` to turn those warnings into failures
//! (useful right after regenerating the baseline, when nothing should be
//! new).
//!
//! ## Cross-machine calibration
//!
//! Baseline wall times come from whatever machine generated the file, so a
//! uniformly slower runner would trip the gate with no code change. When
//! the baseline carries a `calibration` record (the fixed workload of
//! `grom_bench::calibration`, emitted by every `experiments` run), the
//! gate obtains the *local* figure for the same workload — the candidate
//! file's record when present, otherwise by running the workload itself —
//! and multiplies every baseline time by `local / baseline` (clamped to
//! [0.25, 4]) before applying the threshold. Set
//! `GROM_BENCH_GATE_NO_CALIBRATION=1` to compare raw wall times.

use std::collections::BTreeMap;
use std::process::ExitCode;

use grom_bench::CALIBRATION_RECORD;

/// Parse one JSONL bench line into `(name, wall_ms)`. Tolerates unknown
/// extra fields; returns `None` for blank/malformed lines.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let name = extract_string(line, "name")?;
    let wall_ms = extract_number(line, "wall_ms")?;
    Some((name, wall_ms))
}

/// Extract the string value of `"key":"…"`, honoring `\"` and `\\` escapes.
fn extract_string(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut escaped = false;
    for c in line[start..].chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(out);
        } else {
            out.push(c);
        }
    }
    None
}

/// Extract the numeric value of `"key":123.45`.
fn extract_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Read a JSONL bench file into name → wall_ms. Repeated names keep the
/// **minimum** — appending several harness runs to one file and comparing
/// best-of-N is the cheap way to cut scheduler jitter out of a wall-time
/// gate.
fn read_records(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut out: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        if let Some((name, ms)) = parse_line(line) {
            out.entry(name)
                .and_modify(|best| *best = best.min(ms))
                .or_insert(ms);
        }
    }
    if out.is_empty() {
        return Err(format!("`{path}` contains no bench records"));
    }
    Ok(out)
}

struct GateConfig {
    threshold: f64,
    min_ms: f64,
    /// Baseline times are multiplied by this machine-speed ratio before
    /// judging; 1.0 disables normalization.
    scale: f64,
}

#[derive(Debug, PartialEq)]
enum Verdict {
    Ok,
    BelowNoiseFloor,
    Improved,
    Regressed,
    Missing,
}

fn judge(base_ms: f64, cand_ms: Option<f64>, cfg: &GateConfig) -> Verdict {
    let Some(cand_ms) = cand_ms else {
        return Verdict::Missing;
    };
    let base_ms = base_ms * cfg.scale;
    if base_ms < cfg.min_ms && cand_ms < cfg.min_ms {
        return Verdict::BelowNoiseFloor;
    }
    let ratio = cand_ms / base_ms.max(1e-9) - 1.0;
    if ratio > cfg.threshold {
        Verdict::Regressed
    } else if ratio < -cfg.threshold {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

/// The machine-speed ratio used to normalize baseline wall times: the
/// local calibration figure over the baseline's, clamped so a wildly
/// off calibration (throttled runner, debug build) cannot nullify the
/// gate. Returns 1.0 when the baseline has no calibration record.
fn calibration_scale(baseline: &BTreeMap<String, f64>, candidate: &BTreeMap<String, f64>) -> f64 {
    let Some(&base_cal) = baseline.get(CALIBRATION_RECORD) else {
        println!("calibration: baseline has no `{CALIBRATION_RECORD}` record; raw comparison");
        return 1.0;
    };
    let local_cal = match candidate.get(CALIBRATION_RECORD) {
        Some(&ms) => ms,
        None => grom_bench::calibration_ms(),
    };
    let scale = (local_cal / base_cal.max(1e-9)).clamp(0.25, 4.0);
    println!("calibration: baseline {base_cal:.2} ms, local {local_cal:.2} ms -> scale {scale:.2}");
    scale
}

/// Records whose wall time depends on how many hardware threads the
/// runner has (the `threads=N` tiers of the parallel-executor benches):
/// a machine-speed ratio measured single-threaded cannot normalize them.
fn is_core_count_dependent(name: &str) -> bool {
    name.contains("/threads=")
}

/// Candidate records the baseline knows nothing about (the calibration
/// record excluded). These run ungated, which is exactly the kind of
/// silent coverage gap that must be warned about, not skipped over.
fn unknown_records(
    baseline: &BTreeMap<String, f64>,
    candidate: &BTreeMap<String, f64>,
) -> Vec<String> {
    candidate
        .keys()
        .filter(|name| name.as_str() != CALIBRATION_RECORD && !baseline.contains_key(*name))
        .cloned()
        .collect()
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok()?.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = env_f64("GROM_BENCH_GATE_THRESHOLD").unwrap_or(0.25);
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            i += 1;
            threshold = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threshold requires a number");
                std::process::exit(2);
            });
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_gate <baseline.json> <candidate.json> [--threshold 0.25]");
        return ExitCode::from(2);
    }
    let (baseline, candidate) = match (read_records(&paths[0]), read_records(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let scale = if std::env::var("GROM_BENCH_GATE_NO_CALIBRATION").is_ok() {
        1.0
    } else {
        calibration_scale(&baseline, &candidate)
    };
    let cfg = GateConfig {
        threshold,
        min_ms: env_f64("GROM_BENCH_GATE_MIN_MS").unwrap_or(5.0),
        scale,
    };

    let mut failures = 0usize;
    println!(
        "bench gate: threshold +{:.0}%, noise floor {} ms, baseline scale {:.2}",
        cfg.threshold * 100.0,
        cfg.min_ms,
        cfg.scale
    );
    for (name, &base_ms) in &baseline {
        if name == CALIBRATION_RECORD {
            continue; // the normalizer itself is never gated
        }
        if is_core_count_dependent(name) {
            // Multi-threaded wall times depend on the runner's core
            // count, which the single-threaded calibration ratio cannot
            // normalize — reported, never gated.
            let shown = candidate
                .get(name)
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "-".into());
            println!("  {name}: {base_ms:.2} ms -> {shown} ms  [core-count dependent, not gated]");
            continue;
        }
        let cand_ms = candidate.get(name).copied();
        let verdict = judge(base_ms, cand_ms, &cfg);
        let shown = cand_ms
            .map(|m| format!("{m:.2}"))
            .unwrap_or_else(|| "-".into());
        let tag = match verdict {
            Verdict::Ok => "ok",
            Verdict::BelowNoiseFloor => "ok (noise floor)",
            Verdict::Improved => "improved",
            Verdict::Regressed => {
                failures += 1;
                "REGRESSED"
            }
            Verdict::Missing => {
                failures += 1;
                "MISSING"
            }
        };
        println!(
            "  {name}: {:.2} ms -> {shown} ms  [{tag}]",
            base_ms * cfg.scale
        );
    }
    let unknown = unknown_records(&baseline, &candidate);
    let strict_new = std::env::var("GROM_BENCH_GATE_STRICT_NEW").is_ok();
    for name in &unknown {
        // GitHub Actions renders `::warning::` lines as annotations, so a
        // workload running ungated is visible in the checks UI, not just
        // buried in the job log.
        println!("::warning::bench_gate: `{name}` has no baseline record and is NOT gated");
        if strict_new {
            failures += 1;
        }
    }
    if !unknown.is_empty() {
        println!(
            "  {} candidate workload(s) unknown to the baseline{}; regenerate \
             BENCH_baseline.json to gate them",
            unknown.len(),
            if strict_new {
                " (failing: GROM_BENCH_GATE_STRICT_NEW is set)"
            } else {
                ""
            }
        );
    }

    if failures > 0 {
        eprintln!(
            "bench gate FAILED: {failures} workload(s) regressed or missing. \
             If intentional, regenerate the baseline: \
             GROM_BENCH_PROFILE=fast GROM_BENCH_JSON=BENCH_baseline.json \
             cargo run --release -p grom-bench --bin experiments"
        );
        return ExitCode::from(1);
    }
    println!("bench gate passed ({} workloads)", baseline.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shared_jsonl_format() {
        let (name, ms) =
            parse_line(r#"{"name":"e7d/delta/width=500","wall_ms":12.3456,"tuples":8500}"#)
                .unwrap();
        assert_eq!(name, "e7d/delta/width=500");
        assert!((ms - 12.3456).abs() < 1e-9);
        // Criterion-shim lines carry iters instead of tuples.
        let (name, ms) =
            parse_line(r#"{"name":"e7_chase_scalability/1000","wall_ms":3.5,"iters":20}"#).unwrap();
        assert_eq!(name, "e7_chase_scalability/1000");
        assert!((ms - 3.5).abs() < 1e-9);
        // Escapes round-trip.
        let (name, _) = parse_line(r#"{"name":"odd\"name\\","wall_ms":1}"#).unwrap();
        assert_eq!(name, "odd\"name\\");
        assert!(parse_line("").is_none());
        assert!(parse_line("not json").is_none());
    }

    #[test]
    fn repeated_records_min_merge() {
        let dir = std::env::temp_dir().join(format!("bench_gate_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.json");
        std::fs::write(
            &path,
            "{\"name\":\"w\",\"wall_ms\":9.0}\n{\"name\":\"w\",\"wall_ms\":4.0}\n\
             {\"name\":\"w\",\"wall_ms\":6.0}\n",
        )
        .unwrap();
        let records = read_records(path.to_str().unwrap()).unwrap();
        assert_eq!(records["w"], 4.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verdicts() {
        let cfg = GateConfig {
            threshold: 0.25,
            min_ms: 5.0,
            scale: 1.0,
        };
        assert_eq!(judge(100.0, Some(110.0), &cfg), Verdict::Ok);
        assert_eq!(judge(100.0, Some(126.0), &cfg), Verdict::Regressed);
        assert_eq!(judge(100.0, Some(60.0), &cfg), Verdict::Improved);
        assert_eq!(judge(100.0, None, &cfg), Verdict::Missing);
        // Sub-floor jitter never fails the gate…
        assert_eq!(judge(1.0, Some(4.0), &cfg), Verdict::BelowNoiseFloor);
        // …but a genuine blow-up past the floor does.
        assert_eq!(judge(1.0, Some(50.0), &cfg), Verdict::Regressed);
    }

    #[test]
    fn calibration_scale_normalizes_judgements() {
        // A machine 2x slower than the baseline's: +120% raw wall time is
        // only +10% once normalized.
        let slow = GateConfig {
            threshold: 0.25,
            min_ms: 5.0,
            scale: 2.0,
        };
        assert_eq!(judge(100.0, Some(220.0), &slow), Verdict::Ok);
        assert_eq!(judge(100.0, Some(260.0), &slow), Verdict::Regressed);
        // A faster machine tightens the budget symmetrically.
        let fast = GateConfig {
            threshold: 0.25,
            min_ms: 5.0,
            scale: 0.5,
        };
        assert_eq!(judge(100.0, Some(70.0), &fast), Verdict::Regressed);
        assert_eq!(judge(100.0, Some(55.0), &fast), Verdict::Ok);
    }

    #[test]
    fn unknown_candidate_records_are_surfaced_not_skipped() {
        let mut baseline = BTreeMap::new();
        baseline.insert("e1/known".to_string(), 10.0);
        baseline.insert(CALIBRATION_RECORD.to_string(), 5.0);
        let mut candidate = BTreeMap::new();
        candidate.insert("e1/known".to_string(), 11.0);
        candidate.insert("e10/new_workload".to_string(), 3.0);
        candidate.insert(CALIBRATION_RECORD.to_string(), 5.0);
        assert_eq!(
            unknown_records(&baseline, &candidate),
            vec!["e10/new_workload".to_string()]
        );
        // Calibration is infrastructure, never an "unknown workload".
        candidate.remove("e10/new_workload");
        assert!(unknown_records(&baseline, &candidate).is_empty());
    }

    #[test]
    fn calibration_scale_prefers_candidate_record_and_clamps() {
        let mut baseline = BTreeMap::new();
        baseline.insert(CALIBRATION_RECORD.to_string(), 10.0);
        let mut candidate = BTreeMap::new();
        candidate.insert(CALIBRATION_RECORD.to_string(), 20.0);
        assert!((calibration_scale(&baseline, &candidate) - 2.0).abs() < 1e-9);
        // Wildly off figures are clamped so the gate stays meaningful.
        candidate.insert(CALIBRATION_RECORD.to_string(), 1000.0);
        assert!((calibration_scale(&baseline, &candidate) - 4.0).abs() < 1e-9);
        candidate.insert(CALIBRATION_RECORD.to_string(), 0.1);
        assert!((calibration_scale(&baseline, &candidate) - 0.25).abs() < 1e-9);
        // No baseline record: raw comparison.
        assert!((calibration_scale(&BTreeMap::new(), &candidate) - 1.0).abs() < 1e-9);
    }
}
