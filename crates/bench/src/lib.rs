//! # grom-bench — workloads and the experiment harness
//!
//! Deterministic workload generators for the experiments of DESIGN.md
//! (E1–E7), each reproducing a quantitative claim of the paper's §3–§4,
//! plus a small fixed-width table printer used by the `experiments` binary
//! and EXPERIMENTS.md.
//!
//! All generators are seeded and pure: the same parameters produce the same
//! scenario and instance, so criterion runs and the experiments binary are
//! reproducible.

pub mod calibration;
pub mod report;
pub mod workloads;

pub use calibration::{calibration_ms, CALIBRATION_RECORD};
pub use report::{flush_jsonl_env, record, BenchRecord, Table, BENCH_JSON_ENV};
pub use workloads::{
    conjunctive_family, delta_scaling_workload, egd_scaling_workload,
    greedy_intricacy_attributable, greedy_intricacy_workload, negation_family,
    parallel_scaling_workload, restriction_pair, running_example_scenario, running_example_source,
    storage_scaling_workload, universal_model_workload, RunningExampleConfig,
};
