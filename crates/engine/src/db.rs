//! The database abstraction the engine evaluates over.
//!
//! Source-to-target dependencies read two instances at once (the source
//! `I_S` and the growing target `J_T`); views read one; the parallel chase
//! executor reads an immutable snapshot *overlaid* with a worker's private
//! insertion buffer. [`Db`] abstracts over all of them so the same join
//! code serves every caller.
//!
//! The trait deliberately exposes *query* primitives (scan / estimate /
//! existence) rather than handing out `&Relation`: a composite database —
//! [`PairDb`], or the shard views of `grom-exec` — has no single relation
//! object to return for a name stored on both sides, but it can always
//! answer a pattern query by combining its parts.
//!
//! ## Resolved tokens and streaming scans
//!
//! The hot path resolves a relation name **once** per evaluation into an
//! opaque [`DbRel`] token ([`Db::resolve`]) and then addresses the relation
//! by token: [`Db::scan_rel`] streams matching tuples into a callback with
//! no intermediate `Vec`, [`Db::estimate_rel`] / [`Db::any_match_rel`] /
//! [`Db::len_rel`] answer planner queries. Token encodings are private to
//! each implementation (an [`Instance`] packs its dense
//! [`grom_data::RelId`]; composites pack one id per side). Tokens are only
//! meaningful on the database that issued them and remain valid as long as
//! that database is not mutated.
//!
//! The historical name-keyed methods (`scan_relation`, …) survive as
//! default implementations over `resolve`, so existing callers and tests
//! keep working; new code should resolve once and use the `_rel` forms.

use grom_data::{Instance, RelId, Span, Tuple, Value};

/// Flow control for streaming evaluation and scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    Continue,
    Stop,
}

/// An opaque, `Copy` token for a relation of a specific [`Db`], produced by
/// [`Db::resolve`]. The payload encoding is implementation-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DbRel(pub u64);

/// A version half of a relation, for semi-naive delta evaluation.
///
/// The cursor payload is an opaque value from
/// [`Db::cursor_before_last_rel`] — like [`DbRel`] tokens, cursors are only
/// meaningful on the database that issued them, and only against the
/// database state they were computed from. `Old(c)` selects tuples strictly
/// older than the cursor, `New(c)` the cursor's trailing tuples, `All` the
/// unversioned view (`Old(c) ∪ New(c)` for any valid `c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ver {
    All,
    Old(u64),
    New(u64),
}

/// Read access to a set of relations, via pattern queries.
///
/// Patterns follow [`grom_data::Relation::scan_each`]: `pattern[i] =
/// Some(v)` constrains column `i` to equal `v`; `None` leaves it free.
/// Absent relations behave as empty: [`Db::resolve`] returns `None`, and
/// the name-keyed defaults yield nothing / `false` / zero.
pub trait Db {
    /// Resolve `relation` to an opaque token, or `None` if it is absent
    /// (and therefore empty). Resolve once per evaluation, not per probe.
    fn resolve(&self, relation: &str) -> Option<DbRel>;

    /// Stream the tuples of `rel` matching `pattern` into `visit`, in
    /// insertion order, stopping early when `visit` returns
    /// [`Control::Stop`].
    fn scan_rel<'a>(
        &'a self,
        rel: DbRel,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&'a Tuple) -> Control,
    ) {
        self.scan_rel_v(rel, pattern, Ver::All, visit);
    }

    /// [`Db::scan_rel`] restricted to one version half. Required (no
    /// default): an implementation that ignored the version would silently
    /// drop matches from the semi-naive split, so every [`Db`] must state
    /// how it partitions its relations.
    fn scan_rel_v<'a>(
        &'a self,
        rel: DbRel,
        pattern: &[Option<Value>],
        ver: Ver,
        visit: &mut dyn FnMut(&'a Tuple) -> Control,
    );

    /// An index-based upper bound on the number of tuples of `rel` matching
    /// `pattern` — the join planner's cardinality estimate.
    fn estimate_rel(&self, rel: DbRel, pattern: &[Option<Value>]) -> usize {
        self.estimate_rel_v(rel, pattern, Ver::All)
    }

    /// [`Db::estimate_rel`] restricted to one version half.
    fn estimate_rel_v(&self, rel: DbRel, pattern: &[Option<Value>], ver: Ver) -> usize;

    /// The version cursor that splits off the last `n` tuples of `rel` as
    /// its *new* half: [`Ver::New`] of the returned cursor covers exactly
    /// the `n` most recently inserted tuples, [`Ver::Old`] everything
    /// older. This is how the delta scheduler versions a relation at claim
    /// time — a claimed delta of `n` tuples is, by the append-only row
    /// discipline, exactly the relation's trailing `n` tuples.
    fn cursor_before_last_rel(&self, rel: DbRel, n: usize) -> u64;

    /// Does any tuple of `rel` match `pattern`? Cheaper than a scan when
    /// only existence matters (negated literals, denial checks).
    fn any_match_rel(&self, rel: DbRel, pattern: &[Option<Value>]) -> bool {
        let mut found = false;
        self.scan_rel(rel, pattern, &mut |_| {
            found = true;
            Control::Stop
        });
        found
    }

    /// Number of tuples in `rel`.
    fn len_rel(&self, rel: DbRel) -> usize;

    /// Tuples of `relation` matching `pattern`, collected into a `Vec`.
    /// Name-keyed convenience over [`Db::resolve`] + [`Db::scan_rel`];
    /// prefer the streaming form on hot paths.
    fn scan_relation<'a>(&'a self, relation: &str, pattern: &[Option<Value>]) -> Vec<&'a Tuple> {
        let mut out = Vec::new();
        if let Some(rel) = self.resolve(relation) {
            self.scan_rel(rel, pattern, &mut |t| {
                out.push(t);
                Control::Continue
            });
        }
        out
    }

    /// Name-keyed convenience over [`Db::estimate_rel`].
    fn estimate_relation(&self, relation: &str, pattern: &[Option<Value>]) -> usize {
        self.resolve(relation)
            .map_or(0, |rel| self.estimate_rel(rel, pattern))
    }

    /// Name-keyed convenience over [`Db::any_match_rel`].
    fn any_match_relation(&self, relation: &str, pattern: &[Option<Value>]) -> bool {
        self.resolve(relation)
            .is_some_and(|rel| self.any_match_rel(rel, pattern))
    }

    /// Number of tuples in `relation` (0 if absent).
    fn relation_len(&self, relation: &str) -> usize {
        self.resolve(relation).map_or(0, |rel| self.len_rel(rel))
    }
}

/// Translate an engine-level version into a slot [`Span`] for a single
/// [`grom_data::Relation`], whose cursors are slot indexes.
fn span_of(ver: Ver) -> Span {
    match ver {
        Ver::All => Span::All,
        Ver::Old(c) => Span::Below(c as u32),
        Ver::New(c) => Span::AtLeast(c as u32),
    }
}

impl Db for Instance {
    fn resolve(&self, relation: &str) -> Option<DbRel> {
        self.rel_id(relation).map(|RelId(id)| DbRel(u64::from(id)))
    }

    fn scan_rel_v<'a>(
        &'a self,
        rel: DbRel,
        pattern: &[Option<Value>],
        ver: Ver,
        visit: &mut dyn FnMut(&'a Tuple) -> Control,
    ) {
        self.relation_by_id(RelId(rel.0 as u32))
            .scan_each_v(pattern, span_of(ver), &mut |t| visit(t) == Control::Continue);
    }

    fn estimate_rel_v(&self, rel: DbRel, pattern: &[Option<Value>], ver: Ver) -> usize {
        self.relation_by_id(RelId(rel.0 as u32))
            .estimate_v(pattern, span_of(ver))
    }

    fn cursor_before_last_rel(&self, rel: DbRel, n: usize) -> u64 {
        u64::from(self.relation_by_id(RelId(rel.0 as u32)).cursor_before_last(n))
    }

    fn any_match_rel(&self, rel: DbRel, pattern: &[Option<Value>]) -> bool {
        self.relation_by_id(RelId(rel.0 as u32)).any_match(pattern)
    }

    fn len_rel(&self, rel: DbRel) -> usize {
        self.relation_by_id(RelId(rel.0 as u32)).len()
    }
}

/// Two instances viewed as one database. Relation names must not overlap
/// (GROM enforces distinct source/target relation names, cf. the `S-`/`T-`
/// prefixes of the paper); if they do, the first instance wins.
///
/// Token encoding: bit 32 selects the side (0 = first, 1 = second), the low
/// 32 bits are the side's dense [`RelId`].
#[derive(Debug, Clone, Copy)]
pub struct PairDb<'a> {
    pub first: &'a Instance,
    pub second: &'a Instance,
}

const SIDE_BIT: u64 = 1 << 32;

impl<'a> PairDb<'a> {
    pub fn new(first: &'a Instance, second: &'a Instance) -> Self {
        Self { first, second }
    }

    /// Decode a token into the owning instance and its local [`RelId`].
    fn decode(&self, rel: DbRel) -> (&'a Instance, RelId) {
        let side = if rel.0 & SIDE_BIT == 0 {
            self.first
        } else {
            self.second
        };
        (side, RelId(rel.0 as u32))
    }
}

impl Db for PairDb<'_> {
    fn resolve(&self, relation: &str) -> Option<DbRel> {
        if let Some(RelId(id)) = self.first.rel_id(relation) {
            Some(DbRel(u64::from(id)))
        } else {
            self.second
                .rel_id(relation)
                .map(|RelId(id)| DbRel(SIDE_BIT | u64::from(id)))
        }
    }

    fn scan_rel_v<'b>(
        &'b self,
        rel: DbRel,
        pattern: &[Option<Value>],
        ver: Ver,
        visit: &mut dyn FnMut(&'b Tuple) -> Control,
    ) {
        let (side, id) = self.decode(rel);
        side.relation_by_id(id)
            .scan_each_v(pattern, span_of(ver), &mut |t| visit(t) == Control::Continue);
    }

    fn estimate_rel_v(&self, rel: DbRel, pattern: &[Option<Value>], ver: Ver) -> usize {
        let (side, id) = self.decode(rel);
        side.relation_by_id(id).estimate_v(pattern, span_of(ver))
    }

    fn cursor_before_last_rel(&self, rel: DbRel, n: usize) -> u64 {
        let (side, id) = self.decode(rel);
        u64::from(side.relation_by_id(id).cursor_before_last(n))
    }

    fn any_match_rel(&self, rel: DbRel, pattern: &[Option<Value>]) -> bool {
        let (side, id) = self.decode(rel);
        side.relation_by_id(id).any_match(pattern)
    }

    fn len_rel(&self, rel: DbRel) -> usize {
        let (side, id) = self.decode(rel);
        side.relation_by_id(id).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;

    #[test]
    fn pair_db_resolves_both_sides() {
        let mut a = Instance::new();
        a.add("S", vec![Value::int(1)]).unwrap();
        let mut b = Instance::new();
        b.add("T", vec![Value::int(2)]).unwrap();
        let db = PairDb::new(&a, &b);
        assert_eq!(db.scan_relation("S", &[None]).len(), 1);
        assert_eq!(db.scan_relation("T", &[None]).len(), 1);
        assert!(db.scan_relation("U", &[None]).is_empty());
        assert!(db.any_match_relation("S", &[Some(Value::int(1))]));
        assert!(!db.any_match_relation("S", &[Some(Value::int(9))]));
        assert_eq!(db.relation_len("S"), 1);
        assert_eq!(db.relation_len("U"), 0);
        assert_eq!(db.estimate_relation("T", &[None]), 1);
        assert_eq!(db.estimate_relation("U", &[None]), 0);
    }

    #[test]
    fn resolved_tokens_stream_and_stop() {
        let mut a = Instance::new();
        for i in 0..5 {
            a.add("S", vec![Value::int(i)]).unwrap();
        }
        let b = Instance::new();
        let db = PairDb::new(&a, &b);
        assert!(db.resolve("U").is_none());
        let s = db.resolve("S").unwrap();
        assert_eq!(db.len_rel(s), 5);
        assert_eq!(db.estimate_rel(s, &[None]), 5);
        assert!(db.any_match_rel(s, &[Some(Value::int(3))]));
        let mut seen = 0;
        db.scan_rel(s, &[None], &mut |_| {
            seen += 1;
            if seen == 2 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn versioned_scans_split_old_and_new() {
        let mut a = Instance::new();
        for i in 0..6 {
            a.add("S", vec![Value::int(i)]).unwrap();
        }
        let b = Instance::new();
        let db = PairDb::new(&a, &b);
        let s = db.resolve("S").unwrap();
        let c = db.cursor_before_last_rel(s, 2);
        let collect = |ver: Ver| {
            let mut out = Vec::new();
            db.scan_rel_v(s, &[None], ver, &mut |t| {
                out.push(t.get(0).cloned().unwrap());
                Control::Continue
            });
            out
        };
        assert_eq!(collect(Ver::New(c)), vec![Value::int(4), Value::int(5)]);
        assert_eq!(collect(Ver::Old(c)).len(), 4);
        assert_eq!(collect(Ver::All).len(), 6);
        assert_eq!(db.estimate_rel_v(s, &[None], Ver::New(c)), 2);
        // n = 0 puts everything in the old half.
        let frontier = db.cursor_before_last_rel(s, 0);
        assert!(collect(Ver::New(frontier)).is_empty());
        assert_eq!(collect(Ver::Old(frontier)).len(), 6);
    }

    #[test]
    fn second_side_tokens_decode() {
        let a = Instance::new();
        let mut b = Instance::new();
        b.add("T", vec![Value::int(2), Value::int(3)]).unwrap();
        let db = PairDb::new(&a, &b);
        let t = db.resolve("T").unwrap();
        assert_ne!(t.0 & SIDE_BIT, 0);
        assert_eq!(db.len_rel(t), 1);
        let mut hits = 0;
        db.scan_rel(t, &[Some(Value::int(2)), None], &mut |tu| {
            assert_eq!(tu.get(1), Some(&Value::int(3)));
            hits += 1;
            Control::Continue
        });
        assert_eq!(hits, 1);
    }
}
