//! The database abstraction the engine evaluates over.
//!
//! Source-to-target dependencies read two instances at once (the source
//! `I_S` and the growing target `J_T`); views read one. [`Db`] abstracts
//! over both so the same join code serves every caller.

use grom_data::{Instance, Relation};

/// Read access to a set of relations by name.
pub trait Db {
    /// The relation called `name`, if present and non-empty.
    fn relation(&self, name: &str) -> Option<&Relation>;

    /// Number of tuples in `name` (0 if absent) — used by the join planner.
    fn relation_len(&self, name: &str) -> usize {
        self.relation(name).map_or(0, Relation::len)
    }
}

impl Db for Instance {
    fn relation(&self, name: &str) -> Option<&Relation> {
        Instance::relation(self, name)
    }
}

/// Two instances viewed as one database. Relation names must not overlap
/// (GROM enforces distinct source/target relation names, cf. the `S-`/`T-`
/// prefixes of the paper); if they do, the first instance wins.
#[derive(Debug, Clone, Copy)]
pub struct PairDb<'a> {
    pub first: &'a Instance,
    pub second: &'a Instance,
}

impl<'a> PairDb<'a> {
    pub fn new(first: &'a Instance, second: &'a Instance) -> Self {
        Self { first, second }
    }
}

impl Db for PairDb<'_> {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.first
            .relation(name)
            .or_else(|| self.second.relation(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;

    #[test]
    fn pair_db_resolves_both_sides() {
        let mut a = Instance::new();
        a.add("S", vec![Value::int(1)]).unwrap();
        let mut b = Instance::new();
        b.add("T", vec![Value::int(2)]).unwrap();
        let db = PairDb::new(&a, &b);
        assert!(db.relation("S").is_some());
        assert!(db.relation("T").is_some());
        assert!(db.relation("U").is_none());
        assert_eq!(db.relation_len("S"), 1);
        assert_eq!(db.relation_len("U"), 0);
    }
}
