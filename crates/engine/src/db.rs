//! The database abstraction the engine evaluates over.
//!
//! Source-to-target dependencies read two instances at once (the source
//! `I_S` and the growing target `J_T`); views read one; the parallel chase
//! executor reads an immutable snapshot *overlaid* with a worker's private
//! insertion buffer. [`Db`] abstracts over all of them so the same join
//! code serves every caller.
//!
//! The trait deliberately exposes *query* primitives (scan / estimate /
//! existence) rather than handing out `&Relation`: a composite database —
//! [`PairDb`], or the shard views of `grom-exec` — has no single relation
//! object to return for a name stored on both sides, but it can always
//! answer a pattern query by combining its parts.

use grom_data::{Instance, Relation, Tuple, Value};

/// Read access to a set of relations by name, via pattern queries.
///
/// Patterns follow [`Relation::scan`]: `pattern[i] = Some(v)` constrains
/// column `i` to equal `v`; `None` leaves it free. Absent relations behave
/// as empty: `scan` yields nothing, `any_match` is false, `estimate` and
/// `relation_len` are zero.
pub trait Db {
    /// Tuples of `relation` matching `pattern`, in insertion order.
    fn scan_relation<'a>(&'a self, relation: &str, pattern: &[Option<Value>]) -> Vec<&'a Tuple>;

    /// An index-based upper bound on the number of tuples matching
    /// `pattern` — the join planner's cardinality estimate.
    fn estimate_relation(&self, relation: &str, pattern: &[Option<Value>]) -> usize;

    /// Does any tuple of `relation` match `pattern`? Cheaper than
    /// [`Db::scan_relation`] when only existence matters (negated literals,
    /// denial checks).
    fn any_match_relation(&self, relation: &str, pattern: &[Option<Value>]) -> bool;

    /// Number of tuples in `relation` (0 if absent).
    fn relation_len(&self, relation: &str) -> usize;
}

impl Db for Instance {
    fn scan_relation<'a>(&'a self, relation: &str, pattern: &[Option<Value>]) -> Vec<&'a Tuple> {
        self.relation(relation)
            .map(|rel| rel.scan(pattern))
            .unwrap_or_default()
    }

    fn estimate_relation(&self, relation: &str, pattern: &[Option<Value>]) -> usize {
        self.relation(relation)
            .map_or(0, |rel| rel.estimate(pattern))
    }

    fn any_match_relation(&self, relation: &str, pattern: &[Option<Value>]) -> bool {
        self.relation(relation)
            .is_some_and(|rel| rel.any_match(pattern))
    }

    fn relation_len(&self, relation: &str) -> usize {
        self.relation(relation).map_or(0, Relation::len)
    }
}

/// Two instances viewed as one database. Relation names must not overlap
/// (GROM enforces distinct source/target relation names, cf. the `S-`/`T-`
/// prefixes of the paper); if they do, the first instance wins.
#[derive(Debug, Clone, Copy)]
pub struct PairDb<'a> {
    pub first: &'a Instance,
    pub second: &'a Instance,
}

impl<'a> PairDb<'a> {
    pub fn new(first: &'a Instance, second: &'a Instance) -> Self {
        Self { first, second }
    }

    /// The instance holding `name`, if either does (first wins).
    fn side(&self, name: &str) -> Option<&'a Instance> {
        if self.first.relation(name).is_some() {
            Some(self.first)
        } else if self.second.relation(name).is_some() {
            Some(self.second)
        } else {
            None
        }
    }
}

impl Db for PairDb<'_> {
    fn scan_relation<'a>(&'a self, relation: &str, pattern: &[Option<Value>]) -> Vec<&'a Tuple> {
        self.side(relation)
            .map(|i| i.scan_relation(relation, pattern))
            .unwrap_or_default()
    }

    fn estimate_relation(&self, relation: &str, pattern: &[Option<Value>]) -> usize {
        self.side(relation)
            .map_or(0, |i| i.estimate_relation(relation, pattern))
    }

    fn any_match_relation(&self, relation: &str, pattern: &[Option<Value>]) -> bool {
        self.side(relation)
            .is_some_and(|i| i.any_match_relation(relation, pattern))
    }

    fn relation_len(&self, relation: &str) -> usize {
        self.side(relation).map_or(0, |i| i.relation_len(relation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;

    #[test]
    fn pair_db_resolves_both_sides() {
        let mut a = Instance::new();
        a.add("S", vec![Value::int(1)]).unwrap();
        let mut b = Instance::new();
        b.add("T", vec![Value::int(2)]).unwrap();
        let db = PairDb::new(&a, &b);
        assert_eq!(db.scan_relation("S", &[None]).len(), 1);
        assert_eq!(db.scan_relation("T", &[None]).len(), 1);
        assert!(db.scan_relation("U", &[None]).is_empty());
        assert!(db.any_match_relation("S", &[Some(Value::int(1))]));
        assert!(!db.any_match_relation("S", &[Some(Value::int(9))]));
        assert_eq!(db.relation_len("S"), 1);
        assert_eq!(db.relation_len("U"), 0);
        assert_eq!(db.estimate_relation("T", &[None]), 1);
        assert_eq!(db.estimate_relation("U", &[None]), 0);
    }
}
