//! Backtracking evaluation of conjunctions of literals.
//!
//! The evaluator enumerates all [`Bindings`] of the body variables such
//! that, over the given [`Db`]:
//!
//! * every positive atom matches a stored tuple,
//! * no negated atom matches any stored tuple (variables local to the
//!   negation are wildcards — the safe-Datalog `¬∃` reading), and
//! * every comparison holds under [`CmpOp::eval`] semantics.
//!
//! Strategy: a greedy join order recomputed at every step. Comparisons and
//! negations run as soon as their variables are bound (cheap filters first);
//! among positive atoms the evaluator picks the one with the smallest
//! index-based cardinality estimate under the current bindings
//! ([`grom_data::Relation::estimate`]) and probes it through the instance's
//! per-column indexes.
//!
//! Every entry point resolves the body's predicates to [`DbRel`] tokens
//! **once** ([`Db::resolve`]) and streams tuples through
//! [`Db::scan_rel`] — no per-probe name hashing and no per-scan `Vec`
//! allocation.
//!
//! [`CmpOp::eval`]: grom_lang::CmpOp::eval

use std::collections::{BTreeMap, BTreeSet};

use grom_lang::{Atom, Bindings, Literal, Term, Var};

use crate::db::{Db, DbRel, Ver};

pub use crate::db::Control;

/// Predicate name → resolved token (`None` = the relation is absent, i.e.
/// empty), computed once per evaluation. Databases are immutable for the
/// duration of an evaluation call, so tokens cannot go stale mid-solve.
type RelMap<'b> = BTreeMap<&'b str, Option<DbRel>>;

fn resolve_body<'b>(db: &impl Db, body: &'b [Literal]) -> RelMap<'b> {
    let mut rels = RelMap::new();
    for lit in body {
        let atom = match lit {
            Literal::Pos(a) | Literal::Neg(a) => a,
            Literal::Cmp(_) => continue,
        };
        rels.entry(atom.predicate.as_ref())
            .or_insert_with(|| db.resolve(&atom.predicate));
    }
    rels
}

/// Evaluate `body` over `db`, starting from `seed` bindings, collecting all
/// solutions.
pub fn evaluate_body(db: &impl Db, body: &[Literal], seed: &Bindings) -> Vec<Bindings> {
    let mut out = Vec::new();
    evaluate_body_streaming(db, body, seed, |b| {
        out.push(b.clone());
        Control::Continue
    });
    out
}

/// Is there at least one solution? Stops at the first.
pub fn has_match(db: &impl Db, body: &[Literal], seed: &Bindings) -> bool {
    let mut found = false;
    evaluate_body_streaming(db, body, seed, |_| {
        found = true;
        Control::Stop
    });
    found
}

/// Do `atoms` (a conjunction of positive atoms) embed into `db` under
/// `seed`?
///
/// This is the restricted-chase satisfaction check for a disjunct's
/// conclusion atoms, and it runs once per premise match of every
/// dependency — the hottest query the chase issues. It skips the general
/// evaluator's setup (no filters to order, no bindable-set, no seed
/// clone): atoms whose pattern is fully bound under the seed are decided
/// by a single index probe, and only the rest fall back to a recursive
/// join.
pub fn embed_atoms(db: &impl Db, atoms: &[grom_lang::Atom], seed: &Bindings) -> bool {
    let mut pattern: Vec<Option<grom_data::Value>> = Vec::new();
    let mut open: Vec<(&grom_lang::Atom, DbRel)> = Vec::new();
    for atom in atoms {
        let Some(rel) = db.resolve(&atom.predicate) else {
            return false; // absent relation: nothing embeds
        };
        seed.atom_pattern_into(atom, &mut pattern);
        if pattern.iter().all(Option::is_some) {
            if !db.any_match_rel(rel, &pattern) {
                return false;
            }
        } else {
            open.push((atom, rel));
        }
    }
    if open.is_empty() {
        return true;
    }
    let mut bindings = seed.clone();
    embed_open(db, &mut open, &mut bindings)
}

/// Recursive join over the not-fully-bound conclusion atoms: pick the atom
/// with the smallest index estimate, scan it, bind, recurse.
fn embed_open(
    db: &impl Db,
    open: &mut Vec<(&grom_lang::Atom, DbRel)>,
    bindings: &mut Bindings,
) -> bool {
    if open.is_empty() {
        return true;
    }
    let mut pattern: Vec<Option<grom_data::Value>> = Vec::new();
    let mut best = 0;
    if open.len() > 1 {
        let mut best_estimate = usize::MAX;
        for (i, (atom, rel)) in open.iter().enumerate() {
            bindings.atom_pattern_into(atom, &mut pattern);
            let e = db.estimate_rel(*rel, &pattern);
            if e < best_estimate {
                best_estimate = e;
                best = i;
            }
        }
    }
    let (atom, rel) = open.swap_remove(best);
    bindings.atom_pattern_into(atom, &mut pattern);
    let mut found = false;
    db.scan_rel(rel, &pattern, &mut |tuple| {
        if let Some(bound_here) = bind_tuple(atom, tuple, bindings) {
            found = embed_open(db, open, bindings);
            for v in &bound_here {
                bindings.unbind(v);
            }
            if found {
                return Control::Stop;
            }
        }
        Control::Continue
    });
    open.push((atom, rel));
    let i = open.len() - 1;
    open.swap(best, i);
    found
}

/// Streaming evaluation: `visit` is called on every solution and may stop
/// the enumeration early.
pub fn evaluate_body_streaming(
    db: &impl Db,
    body: &[Literal],
    seed: &Bindings,
    mut visit: impl FnMut(&Bindings) -> Control,
) {
    // Variables that *can* ever be bound: seed variables plus variables of
    // positive atoms. Variables of negated atoms outside this set are local
    // wildcards.
    let mut bindable: BTreeSet<Var> = seed.iter().map(|(v, _)| v.clone()).collect();
    for lit in body {
        if let Literal::Pos(a) = lit {
            a.collect_vars(&mut bindable);
        }
    }

    let rels = resolve_body(db, body);
    let mut remaining: Vec<(&Literal, Ver)> = body.iter().map(|l| (l, Ver::All)).collect();
    let mut bindings = seed.clone();
    solve(
        db,
        &mut remaining,
        &mut bindings,
        &rels,
        &bindable,
        &mut visit,
    );
}

/// Delta-seeded semi-naive evaluation: enumerate solutions of `body` that
/// use at least one tuple of `deltas` in a positive atom, each solution
/// exactly once.
///
/// `deltas` maps relation names to the tuples inserted since the premise
/// was last checked. For every positive atom whose predicate has a delta
/// entry, each delta tuple is bound to that atom (the *anchor*) and the
/// remaining literals are joined with the semi-naive version split:
/// positive atoms **before** the anchor that read a delta relation see only
/// that relation's *old* half ([`Ver::Old`] of the cursor that excludes the
/// delta), atoms after the anchor and non-delta atoms see everything, and
/// negations/comparisons always check the full database. A solution whose
/// first (in body position order) new tuple sits at position `p` is
/// therefore enumerated only with `p` as the anchor — at any later anchor,
/// position `p` reads the old half, which excludes its tuple. No caller-side
/// deduplication is needed; the chase scheduler asserts this in debug
/// builds.
///
/// The versioning relies on the scheduler's claim discipline: each delta
/// list holds exactly the relation's most recently inserted tuples, so
/// [`Db::cursor_before_last_rel`] of the list length separates the relation
/// into "everything except this delta" and "this delta".
///
/// This is the entry point of the delta-driven chase scheduler in
/// `grom-chase`: instead of rescanning a dependency's premise against the
/// whole instance every round, the scheduler seeds evaluation from the
/// tuples inserted since the premise was last checked.
///
/// Returns the number of delta tuples skipped by the anchor arity check —
/// stale entries logged before their relation's arity drifted. Callers
/// surface this in their statistics (`ChaseStats::stale_delta_skipped` in
/// the chase) instead of dropping the tuples silently; each stale tuple
/// counts once, regardless of how many anchor positions its relation has.
pub fn evaluate_body_from_delta(
    db: &impl Db,
    body: &[Literal],
    deltas: &[(&str, &[grom_data::Tuple])],
    mut visit: impl FnMut(&Bindings) -> Control,
) -> usize {
    let mut bindable: BTreeSet<Var> = BTreeSet::new();
    for lit in body {
        if let Literal::Pos(a) = lit {
            a.collect_vars(&mut bindable);
        }
    }

    let rels = resolve_body(db, body);
    // Old/new cursor per delta relation, computed once against the current
    // database state. Absent relations get no cursor; their premise atoms
    // cannot match stored tuples anyway, so they keep the unversioned view.
    let cursors: BTreeMap<&str, u64> = deltas
        .iter()
        .filter_map(|(name, tuples)| {
            let rel = rels.get(name).copied().flatten()?;
            Some((*name, db.cursor_before_last_rel(rel, tuples.len())))
        })
        .collect();

    let mut stale_skipped = 0;
    let mut counted: BTreeSet<&str> = BTreeSet::new();
    let mut bindings = Bindings::new();
    for anchor in 0..body.len() {
        let Literal::Pos(atom) = &body[anchor] else {
            continue;
        };
        let Some((_, delta_tuples)) = deltas
            .iter()
            .find(|(name, _)| *name == atom.predicate.as_ref())
        else {
            continue;
        };
        // Stale tuples are counted at their relation's first anchor
        // position only, so the count reflects tuples, not re-visits.
        let count_stale_here = counted.insert(atom.predicate.as_ref());
        let mut remaining: Vec<(&Literal, Ver)> = body
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != anchor)
            .map(|(i, l)| {
                let ver = match l {
                    Literal::Pos(a) if i < anchor => cursors
                        .get(a.predicate.as_ref())
                        .map_or(Ver::All, |&c| Ver::Old(c)),
                    _ => Ver::All,
                };
                (l, ver)
            })
            .collect();
        for tuple in *delta_tuples {
            if tuple.arity() != atom.args.len() {
                // Stale delta from an arity-drifted relation: counted, not
                // silently dropped.
                if count_stale_here {
                    stale_skipped += 1;
                }
                continue;
            }
            // One Bindings reused across delta tuples: cleared (keeping its
            // allocation) instead of rebuilt, and there is nothing to
            // unwind after the solve — the solve restores everything it
            // binds beyond the anchor.
            bindings.clear();
            if bind_tuple(atom, tuple, &mut bindings).is_none() {
                continue;
            }
            if solve(
                db,
                &mut remaining,
                &mut bindings,
                &rels,
                &bindable,
                &mut visit,
            ) == Control::Stop
            {
                return stale_skipped;
            }
        }
    }
    stale_skipped
}

/// Is `lit` ready to run as a filter under `bindings`?
fn filter_ready(lit: &Literal, bindings: &Bindings, bindable: &BTreeSet<Var>) -> bool {
    match lit {
        Literal::Cmp(c) => c.variables().iter().all(|v| bindings.contains(v)),
        Literal::Neg(a) => a
            .variables()
            .iter()
            .all(|v| bindings.contains(v) || !bindable.contains(v)),
        Literal::Pos(_) => false,
    }
}

/// Run a ready filter literal. `true` = passes.
fn run_filter(db: &impl Db, lit: &Literal, bindings: &Bindings, rels: &RelMap<'_>) -> bool {
    match lit {
        Literal::Cmp(c) => bindings.eval_comparison(c).unwrap_or(false),
        Literal::Neg(a) => {
            // Absent relations are empty, so the negation holds.
            let Some(Some(rel)) = rels.get(a.predicate.as_ref()) else {
                return true;
            };
            let pattern = bindings.atom_pattern(a);
            !db.any_match_rel(*rel, &pattern)
        }
        Literal::Pos(_) => unreachable!("positive atoms are not filters"),
    }
}

/// Extend `bindings` with the columns of `tuple` matched against `atom`'s
/// arguments; undo-list returned for backtracking. `None` if inconsistent
/// (repeated variable bound to two different values, or constant mismatch —
/// the latter is already excluded by the scan pattern but re-checked for
/// safety).
fn bind_tuple(atom: &Atom, tuple: &grom_data::Tuple, bindings: &mut Bindings) -> Option<Vec<Var>> {
    let mut bound_here = Vec::new();
    for (term, value) in atom.args.iter().zip(tuple.values()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    for v in &bound_here {
                        bindings.unbind(v);
                    }
                    return None;
                }
            }
            Term::Var(v) => match bindings.get(v) {
                Some(existing) if existing == value => {}
                Some(_) => {
                    for v in &bound_here {
                        bindings.unbind(v);
                    }
                    return None;
                }
                None => {
                    bindings.bind(v.clone(), value.clone());
                    bound_here.push(v.clone());
                }
            },
        }
    }
    Some(bound_here)
}

/// Each remaining literal carries the version half its scans are restricted
/// to: [`Ver::All`] everywhere except the semi-naive delta path, where
/// pre-anchor atoms over delta relations read [`Ver::Old`]. Filters
/// (negations, comparisons) ignore the version — they always check the full
/// database.
fn solve(
    db: &impl Db,
    remaining: &mut Vec<(&Literal, Ver)>,
    bindings: &mut Bindings,
    rels: &RelMap<'_>,
    bindable: &BTreeSet<Var>,
    visit: &mut impl FnMut(&Bindings) -> Control,
) -> Control {
    if remaining.is_empty() {
        return visit(bindings);
    }

    // 1. Run any ready filter (comparison / negation) first.
    if let Some(i) = remaining
        .iter()
        .position(|(l, _)| filter_ready(l, bindings, bindable))
    {
        let entry = remaining.remove(i);
        let ctrl = if run_filter(db, entry.0, bindings, rels) {
            solve(db, remaining, bindings, rels, bindable, visit)
        } else {
            Control::Continue
        };
        remaining.insert(i, entry);
        return ctrl;
    }

    // 2. Pick the cheapest positive atom to expand, by index-based
    //    cardinality estimate under the current bindings (the smallest
    //    index bucket among bound columns, or the relation size when
    //    nothing is bound yet). Absent relations estimate to zero and
    //    short-circuit the whole conjunction.
    let mut best: Option<(usize, Option<DbRel>, usize)> = None; // (idx, token, estimate)
    let mut scratch: Vec<Option<grom_data::Value>> = Vec::new();
    for (i, (lit, ver)) in remaining.iter().enumerate() {
        if let Literal::Pos(a) = lit {
            let rel = rels.get(a.predicate.as_ref()).copied().flatten();
            let estimate = match rel {
                Some(rel) => {
                    bindings.atom_pattern_into(a, &mut scratch);
                    db.estimate_rel_v(rel, &scratch, *ver)
                }
                None => 0,
            };
            if best.as_ref().is_none_or(|&(_, _, be)| estimate < be) {
                best = Some((i, rel, estimate));
            }
        }
    }

    let Some((i, rel, _)) = best else {
        // No positive atom and no ready filter: the body has an unsafe
        // comparison or negation over never-bound variables. Safety checks
        // upstream should prevent this; treat as no solution.
        return Control::Continue;
    };
    let Some(rel) = rel else {
        // The cheapest atom reads an absent (empty) relation: no solution.
        return Control::Continue;
    };

    let entry = remaining.remove(i);
    let (atom, ver) = match entry {
        (Literal::Pos(a), ver) => (a, ver),
        _ => unreachable!(),
    };
    bindings.atom_pattern_into(atom, &mut scratch);
    let pattern = scratch;
    let mut ctrl = Control::Continue;
    db.scan_rel_v(rel, &pattern, ver, &mut |tuple| {
        if let Some(bound_here) = bind_tuple(atom, tuple, bindings) {
            let c = solve(db, remaining, bindings, rels, bindable, visit);
            for v in &bound_here {
                bindings.unbind(v);
            }
            if c == Control::Stop {
                ctrl = Control::Stop;
                return Control::Stop;
            }
        }
        Control::Continue
    });
    remaining.insert(i, entry);
    ctrl
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::{Instance, Value};
    use grom_lang::{CmpOp, Comparison};

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    fn db() -> Instance {
        let mut inst = Instance::new();
        // Edges of a small graph.
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
            inst.add("E", vec![Value::int(a), Value::int(b)]).unwrap();
        }
        // Node labels.
        for (n, l) in [(1, "a"), (2, "b"), (3, "a"), (4, "b")] {
            inst.add("L", vec![Value::int(n), Value::str(l)]).unwrap();
        }
        inst
    }

    #[test]
    fn single_atom_all_solutions() {
        let inst = db();
        let body = vec![Literal::Pos(atom("E", &["x", "y"]))];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 4);
    }

    #[test]
    fn join_two_atoms() {
        let inst = db();
        // Paths of length 2: E(x,y), E(y,z).
        let body = vec![
            Literal::Pos(atom("E", &["x", "y"])),
            Literal::Pos(atom("E", &["y", "z"])),
        ];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        // 1->2->3, 2->3->4, 1->3->4.
        assert_eq!(sols.len(), 3);
        for s in &sols {
            let x = s.get(&"x".into()).unwrap().as_int().unwrap();
            let y = s.get(&"y".into()).unwrap().as_int().unwrap();
            let z = s.get(&"z".into()).unwrap().as_int().unwrap();
            assert!(x < y && y < z, "not a path: {x} {y} {z}");
        }
    }

    #[test]
    fn repeated_variable_in_one_atom() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::int(1), Value::int(1)]).unwrap();
        inst.add("R", vec![Value::int(1), Value::int(2)]).unwrap();
        let body = vec![Literal::Pos(atom("R", &["x", "x"]))];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(&"x".into()), Some(&Value::int(1)));
    }

    #[test]
    fn constants_in_atoms() {
        let inst = db();
        let body = vec![Literal::Pos(Atom::new(
            "L",
            vec![Term::var("n"), Term::cons("a")],
        ))];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn negation_filters() {
        let inst = db();
        // Nodes with no outgoing edge: L(n, l), not E(n, m).
        let body = vec![
            Literal::Pos(atom("L", &["n", "l"])),
            Literal::Neg(atom("E", &["n", "m"])),
        ];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(&"n".into()), Some(&Value::int(4)));
    }

    #[test]
    fn negation_on_missing_relation_holds() {
        let inst = db();
        let body = vec![
            Literal::Pos(atom("L", &["n", "l"])),
            Literal::Neg(atom("Absent", &["n"])),
        ];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 4);
    }

    #[test]
    fn comparisons_filter() {
        let inst = db();
        let body = vec![
            Literal::Pos(atom("E", &["x", "y"])),
            Literal::Cmp(Comparison::new(CmpOp::Gt, Term::var("y"), Term::cons(3i64))),
        ];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 1); // only 3 -> 4
    }

    #[test]
    fn seed_bindings_restrict() {
        let inst = db();
        let mut seed = Bindings::new();
        seed.bind("x".into(), Value::int(1));
        let body = vec![Literal::Pos(atom("E", &["x", "y"]))];
        let sols = evaluate_body(&inst, &body, &seed);
        assert_eq!(sols.len(), 2); // 1->2, 1->3
        for s in &sols {
            assert_eq!(s.get(&"x".into()), Some(&Value::int(1)));
        }
    }

    #[test]
    fn has_match_stops_early() {
        let inst = db();
        let body = vec![Literal::Pos(atom("E", &["x", "y"]))];
        assert!(has_match(&inst, &body, &Bindings::new()));
        let body = vec![Literal::Pos(atom("Absent", &["x"]))];
        assert!(!has_match(&inst, &body, &Bindings::new()));
    }

    #[test]
    fn empty_body_yields_seed() {
        let inst = db();
        let sols = evaluate_body(&inst, &[], &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let inst = db();
        let body = vec![
            Literal::Pos(atom("E", &["x", "y"])),
            Literal::Pos(atom("L", &["n", "l"])),
        ];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 16);
    }

    #[test]
    fn negation_with_local_wildcard_variable() {
        let mut inst = Instance::new();
        inst.add("P", vec![Value::int(1)]).unwrap();
        inst.add("P", vec![Value::int(2)]).unwrap();
        inst.add("Q", vec![Value::int(10), Value::int(1)]).unwrap();
        // P(x), not Q(w, x): w occurs only under negation — wildcard.
        let body = vec![
            Literal::Pos(atom("P", &["x"])),
            Literal::Neg(atom("Q", &["w", "x"])),
        ];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(&"x".into()), Some(&Value::int(2)));
    }

    #[test]
    fn nulls_join_by_label() {
        let mut inst = Instance::new();
        inst.add("A", vec![Value::null(0)]).unwrap();
        inst.add("B", vec![Value::null(0)]).unwrap();
        inst.add("B", vec![Value::null(1)]).unwrap();
        let body = vec![
            Literal::Pos(atom("A", &["x"])),
            Literal::Pos(atom("B", &["x"])),
        ];
        let sols = evaluate_body(&inst, &body, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(&"x".into()), Some(&Value::null(0)));
    }

    #[test]
    fn delta_seeding_restricts_to_new_tuples() {
        let inst = db();
        // Paths E(x,y), E(y,z) anchored at the new edge (2, 3): it can play
        // either role, giving 1->2->3 and 2->3->4.
        let body = vec![
            Literal::Pos(atom("E", &["x", "y"])),
            Literal::Pos(atom("E", &["y", "z"])),
        ];
        let delta = vec![grom_data::Tuple::new(vec![Value::int(2), Value::int(3)])];
        let mut sols = Vec::new();
        evaluate_body_from_delta(&inst, &body, &[("E", &delta)], |b| {
            sols.push(b.clone());
            Control::Continue
        });
        assert_eq!(sols.len(), 2);
        for s in &sols {
            let y = s.get(&"y".into()).unwrap().as_int().unwrap();
            assert!(y == 2 || y == 3);
        }
        // A delta on an unrelated relation seeds nothing.
        let mut count = 0;
        evaluate_body_from_delta(&inst, &body, &[("L", &delta)], |_| {
            count += 1;
            Control::Continue
        });
        assert_eq!(count, 0);
    }

    #[test]
    fn delta_seeding_counts_stale_arity_skips() {
        let inst = db();
        // E has arity 2; a unary delta tuple is stale and must be counted
        // once — not once per anchor position — and never silently dropped.
        let body = vec![
            Literal::Pos(atom("E", &["x", "y"])),
            Literal::Pos(atom("E", &["y", "z"])),
        ];
        let delta = vec![
            grom_data::Tuple::new(vec![Value::int(2)]),
            grom_data::Tuple::new(vec![Value::int(2), Value::int(3)]),
        ];
        let mut sols = 0;
        let skipped = evaluate_body_from_delta(&inst, &body, &[("E", &delta)], |_| {
            sols += 1;
            Control::Continue
        });
        assert_eq!(skipped, 1); // the stale tuple, once despite two anchors
        assert_eq!(sols, 2); // the well-formed tuple still seeds matches
        let skipped =
            evaluate_body_from_delta(&inst, &body, &[("E", &delta[1..])], |_| Control::Continue);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn delta_seeding_respects_constants_and_stop() {
        let inst = db();
        let body = vec![Literal::Pos(Atom::new(
            "L",
            vec![Term::var("n"), Term::cons("a")],
        ))];
        // Two delta tuples; only the "a"-labeled one matches the constant.
        let delta = vec![
            grom_data::Tuple::new(vec![Value::int(1), Value::str("a")]),
            grom_data::Tuple::new(vec![Value::int(2), Value::str("b")]),
        ];
        let mut sols = Vec::new();
        evaluate_body_from_delta(&inst, &body, &[("L", &delta)], |b| {
            sols.push(b.clone());
            Control::Continue
        });
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(&"n".into()), Some(&Value::int(1)));

        // Early stop is honored across anchors and tuples.
        let body = vec![Literal::Pos(atom("E", &["x", "y"]))];
        let delta: Vec<grom_data::Tuple> = inst.tuples("E").cloned().collect();
        let mut count = 0;
        evaluate_body_from_delta(&inst, &body, &[("E", &delta)], |_| {
            count += 1;
            Control::Stop
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn delta_seeding_enumerates_each_match_exactly_once() {
        // E = (0,1), (1,2), (2,3); the trailing two rows are the delta. The
        // path body E(x,y), E(y,z) has two anchors over E, and the match
        // (1,2)-(2,3) uses delta tuples at *both* positions: the old
        // per-anchor enumeration yielded it twice, the semi-naive split must
        // yield it only at its first new position (anchor 0).
        let mut inst = Instance::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            inst.add("E", vec![Value::int(a), Value::int(b)]).unwrap();
        }
        let delta = vec![
            grom_data::Tuple::new(vec![Value::int(1), Value::int(2)]),
            grom_data::Tuple::new(vec![Value::int(2), Value::int(3)]),
        ];
        let body = vec![
            Literal::Pos(atom("E", &["x", "y"])),
            Literal::Pos(atom("E", &["y", "z"])),
        ];
        let mut sols = Vec::new();
        evaluate_body_from_delta(&inst, &body, &[("E", &delta)], |b| {
            sols.push(b.clone());
            Control::Continue
        });
        // (0,1)-(1,2) anchored at position 1, (1,2)-(2,3) anchored at
        // position 0 — and nowhere else.
        assert_eq!(sols.len(), 2);
        let mut dedup = sols.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), sols.len(), "duplicate enumeration: {sols:?}");

        // A multi-relation delta finds the cross-relation match exactly once
        // as well: new-R at position 0 joined with new-S at position 1 is
        // anchored at position 0 only.
        let mut inst = Instance::new();
        inst.add("R", vec![Value::int(1), Value::int(2)]).unwrap();
        inst.add("S", vec![Value::int(2), Value::int(3)]).unwrap();
        let dr = vec![grom_data::Tuple::new(vec![Value::int(1), Value::int(2)])];
        let ds = vec![grom_data::Tuple::new(vec![Value::int(2), Value::int(3)])];
        let body = vec![
            Literal::Pos(atom("R", &["x", "y"])),
            Literal::Pos(atom("S", &["y", "z"])),
        ];
        let mut count = 0;
        evaluate_body_from_delta(&inst, &body, &[("R", &dr), ("S", &ds)], |_| {
            count += 1;
            Control::Continue
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn streaming_stop_is_respected() {
        let inst = db();
        let body = vec![Literal::Pos(atom("E", &["x", "y"]))];
        let mut count = 0;
        evaluate_body_streaming(&inst, &body, &Bindings::new(), |_| {
            count += 1;
            if count == 2 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(count, 2);
    }
}
