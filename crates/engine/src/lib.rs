//! # grom-engine — evaluation engine for GROM
//!
//! Evaluates the logic of `grom-lang` over the instances of `grom-data`:
//!
//! * [`eval`] — backtracking join evaluation of conjunctions of literals
//!   (positive atoms, negated atoms, comparison atoms) with index lookups
//!   and greedy literal ordering. This is the workhorse shared by view
//!   materialization, the chase's violation search and the validator.
//! * [`materialize`] — stratified materialization of non-recursive
//!   Datalog-with-negation view sets: the operator `Υ(I)` of the paper
//!   (applied to the source in the composition reduction of §3, and to the
//!   target by the validator).
//! * [`satisfy`] — satisfaction checks for dependencies: find premise
//!   matches that violate a tgd/egd/ded, or certify that an instance
//!   satisfies a set of dependencies.
//!
//! The engine evaluates over a [`Db`]: either a single [`Instance`] or a
//! pair of instances (source + target), since source-to-target dependencies
//! read both databases.
//!
//! [`Instance`]: grom_data::Instance

pub mod db;
pub mod eval;
pub mod materialize;
pub mod query;
pub mod satisfy;

pub use db::{Db, DbRel, PairDb, Ver};
pub use eval::{
    embed_atoms, evaluate_body, evaluate_body_from_delta, evaluate_body_streaming, has_match,
    Control,
};
pub use materialize::{
    materialize_views, materialize_views_tracked, MaterializeError, ViewMaterialization,
};
pub use query::Query;
pub use satisfy::{
    dependency_satisfied, disjunct_satisfied, disjunct_satisfied_resolved, find_violation,
    instance_satisfies, Violation,
};
