//! Stratified materialization of view sets: the `Υ(I)` operator.
//!
//! Views are materialized in a topological order of the view DAG
//! (definitions before uses), so when a rule body references another view —
//! positively or under negation — that view's extent is already available.
//! Non-recursion makes this a single pass; no fixpoint is needed.

use std::fmt;

use grom_data::{DataError, Instance};
use grom_lang::{Bindings, LangError, Term, ViewSet};

use crate::db::PairDb;
use crate::eval::evaluate_body;

/// Errors raised during materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaterializeError {
    /// The view set failed validation (recursion / safety).
    Lang(LangError),
    /// Tuple insertion failed (arity drift between rules of a union view —
    /// prevented upstream, but surfaced faithfully).
    Data(DataError),
}

impl fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterializeError::Lang(e) => write!(f, "materialization: {e}"),
            MaterializeError::Data(e) => write!(f, "materialization: {e}"),
        }
    }
}

impl std::error::Error for MaterializeError {}

impl From<LangError> for MaterializeError {
    fn from(e: LangError) -> Self {
        MaterializeError::Lang(e)
    }
}

impl From<DataError> for MaterializeError {
    fn from(e: DataError) -> Self {
        MaterializeError::Data(e)
    }
}

/// A materialization result with per-view delta reporting: the extents plus
/// the number of (deduplicated) tuples each view contributed.
///
/// Every declared view has an entry — views whose bodies matched nothing
/// report 0, they are not silently absent. Duplicate derivations across
/// union rules count once (the extents instance deduplicates).
#[derive(Debug, Clone)]
pub struct ViewMaterialization {
    /// The materialized view extents (view relations only).
    pub extents: Instance,
    /// View name → tuples inserted for it.
    pub per_view: std::collections::BTreeMap<std::sync::Arc<str>, usize>,
}

/// Materialize every view of `views` over the base instance `base`.
///
/// Returns a new instance containing **only** the view extents; callers that
/// want `base ∪ Υ(base)` (e.g. the pipeline's composition reduction) union
/// the result with `base` themselves.
pub fn materialize_views(views: &ViewSet, base: &Instance) -> Result<Instance, MaterializeError> {
    Ok(materialize_views_tracked(views, base)?.extents)
}

/// Like [`materialize_views`], additionally reporting the per-view deltas
/// (how many tuples each view contributed). The pipeline surfaces these in
/// its statistics.
pub fn materialize_views_tracked(
    views: &ViewSet,
    base: &Instance,
) -> Result<ViewMaterialization, MaterializeError> {
    let order = views.validate()?;
    let mut extents = Instance::new();
    for view in &order {
        for rule in views.rules_of(view) {
            // Rule bodies may read base tables and previously materialized
            // views; expose both through a PairDb.
            let db = PairDb::new(base, &extents);
            let solutions = evaluate_body(&db, &rule.body, &Bindings::new());
            for sol in solutions {
                let tuple = project_head(&sol, &rule.head.args);
                extents.insert(&rule.head.predicate, tuple.into())?;
            }
        }
    }
    // The extents instance started empty and deduplicates, so each view's
    // contribution is simply its relation's final size (0 when the view
    // derived nothing).
    let per_view = order
        .iter()
        .map(|view| {
            let count = extents.relation(view).map_or(0, grom_data::Relation::len);
            (view.clone(), count)
        })
        .collect();
    Ok(ViewMaterialization { extents, per_view })
}

/// Project a solution onto the head argument list.
fn project_head(sol: &Bindings, args: &[Term]) -> Vec<grom_data::Value> {
    args.iter()
        .map(|t| {
            sol.eval_term(t)
                .expect("safety guarantees head variables are bound")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::{Tuple, Value};
    use grom_lang::{Atom, Literal, ViewRule};

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    /// The paper's target views over a small target instance.
    fn paper_setup() -> (ViewSet, Instance) {
        let text = r#"
            view Product(id, name) <- T_Product(id, name, store).
            view PopularProduct(pid, name) <-
                T_Product(pid, name, store), not T_Rating(rid, pid, 0).
            view AvgProduct(pid, name) <-
                T_Product(pid, name, store), T_Rating(rid, pid, 1),
                not PopularProduct(pid, name).
            view UnpopularProduct(pid, name) <-
                T_Product(pid, name, store),
                not AvgProduct(pid, name), not PopularProduct(pid, name).
        "#;
        let prog = grom_lang::Program::parse(text).unwrap();

        let mut inst = Instance::new();
        // Product 1: no 0-ratings -> popular.
        // Product 2: a 0-rating and a 1-rating -> average.
        // Product 3: only 0-ratings -> unpopular.
        for (id, name) in [(1, "tv"), (2, "radio"), (3, "fridge")] {
            inst.add(
                "T_Product",
                vec![Value::int(id), Value::str(name), Value::int(100)],
            )
            .unwrap();
        }
        inst.add(
            "T_Rating",
            vec![Value::int(1), Value::int(2), Value::int(0)],
        )
        .unwrap();
        inst.add(
            "T_Rating",
            vec![Value::int(2), Value::int(2), Value::int(1)],
        )
        .unwrap();
        inst.add(
            "T_Rating",
            vec![Value::int(3), Value::int(3), Value::int(0)],
        )
        .unwrap();
        (prog.views, inst)
    }

    fn names_of(extents: &Instance, view: &str) -> Vec<i64> {
        let mut ids: Vec<i64> = extents
            .tuples(view)
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn paper_views_classify_products() {
        let (views, inst) = paper_setup();
        let extents = materialize_views(&views, &inst).unwrap();
        assert_eq!(names_of(&extents, "Product"), vec![1, 2, 3]);
        assert_eq!(names_of(&extents, "PopularProduct"), vec![1]);
        assert_eq!(names_of(&extents, "AvgProduct"), vec![2]);
        assert_eq!(names_of(&extents, "UnpopularProduct"), vec![3]);
    }

    #[test]
    fn union_views_accumulate() {
        let mut views = ViewSet::new();
        views
            .add_rule(ViewRule::new(
                atom("V", &["x"]),
                vec![Literal::Pos(atom("A", &["x"]))],
            ))
            .unwrap();
        views
            .add_rule(ViewRule::new(
                atom("V", &["x"]),
                vec![Literal::Pos(atom("B", &["x"]))],
            ))
            .unwrap();
        let mut inst = Instance::new();
        inst.add("A", vec![Value::int(1)]).unwrap();
        inst.add("B", vec![Value::int(2)]).unwrap();
        inst.add("B", vec![Value::int(1)]).unwrap(); // dedup across rules
        let extents = materialize_views(&views, &inst).unwrap();
        assert_eq!(names_of(&extents, "V"), vec![1, 2]);
    }

    #[test]
    fn constants_in_heads() {
        let mut views = ViewSet::new();
        views
            .add_rule(ViewRule::new(
                Atom::new("Tagged", vec![Term::var("x"), Term::cons("hot")]),
                vec![Literal::Pos(atom("A", &["x"]))],
            ))
            .unwrap();
        let mut inst = Instance::new();
        inst.add("A", vec![Value::int(1)]).unwrap();
        let extents = materialize_views(&views, &inst).unwrap();
        assert!(extents.contains_fact(
            "Tagged",
            &Tuple::new(vec![Value::int(1), Value::str("hot")])
        ));
    }

    #[test]
    fn empty_base_gives_empty_views() {
        let (views, _) = paper_setup();
        let extents = materialize_views(&views, &Instance::new()).unwrap();
        assert!(extents.is_empty());
    }

    #[test]
    fn view_over_view_chain() {
        let prog = grom_lang::Program::parse(
            "view V1(x) <- Base(x, y), y > 0.\n\
             view V2(x) <- V1(x), not Block(x).\n\
             view V3(x) <- V2(x).",
        )
        .unwrap();
        let mut inst = Instance::new();
        inst.add("Base", vec![Value::int(1), Value::int(5)])
            .unwrap();
        inst.add("Base", vec![Value::int(2), Value::int(-1)])
            .unwrap();
        inst.add("Base", vec![Value::int(3), Value::int(2)])
            .unwrap();
        inst.add("Block", vec![Value::int(3)]).unwrap();
        let extents = materialize_views(&prog.views, &inst).unwrap();
        assert_eq!(names_of(&extents, "V1"), vec![1, 3]);
        assert_eq!(names_of(&extents, "V2"), vec![1]);
        assert_eq!(names_of(&extents, "V3"), vec![1]);
    }

    #[test]
    fn tracked_materialization_reports_per_view_deltas() {
        let (views, inst) = paper_setup();
        let out = materialize_views_tracked(&views, &inst).unwrap();
        assert_eq!(out.per_view["Product"], 3);
        assert_eq!(out.per_view["PopularProduct"], 1);
        assert_eq!(out.per_view["AvgProduct"], 1);
        assert_eq!(out.per_view["UnpopularProduct"], 1);
        // Views that derive nothing still report, with count 0.
        let (views, _) = paper_setup();
        let out = materialize_views_tracked(&views, &Instance::new()).unwrap();
        assert_eq!(out.per_view.len(), 4);
        assert_eq!(out.per_view["Product"], 0);
        assert_eq!(out.per_view["UnpopularProduct"], 0);
        // Union rules deduplicate: 1 appears in both A and B but counts once.
        let mut views = ViewSet::new();
        views
            .add_rule(ViewRule::new(
                atom("V", &["x"]),
                vec![Literal::Pos(atom("A", &["x"]))],
            ))
            .unwrap();
        views
            .add_rule(ViewRule::new(
                atom("V", &["x"]),
                vec![Literal::Pos(atom("B", &["x"]))],
            ))
            .unwrap();
        let mut inst = Instance::new();
        inst.add("A", vec![Value::int(1)]).unwrap();
        inst.add("B", vec![Value::int(1)]).unwrap();
        let out = materialize_views_tracked(&views, &inst).unwrap();
        assert_eq!(out.per_view["V"], 1);
    }

    #[test]
    fn recursion_is_reported() {
        let prog = grom_lang::Program::parse("view V(x) <- W(x).\nview W(x) <- V(x).").unwrap();
        let err = materialize_views(&prog.views, &Instance::new()).unwrap_err();
        assert!(matches!(err, MaterializeError::Lang(_)));
    }

    #[test]
    fn nulls_flow_through_views() {
        let prog = grom_lang::Program::parse("view V(x, y) <- A(x, y).").unwrap();
        let mut inst = Instance::new();
        inst.add("A", vec![Value::int(1), Value::null(7)]).unwrap();
        let extents = materialize_views(&prog.views, &inst).unwrap();
        assert!(extents.contains_fact("V", &Tuple::new(vec![Value::int(1), Value::null(7)])));
    }
}
