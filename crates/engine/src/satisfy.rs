//! Satisfaction checks for dependencies.
//!
//! A dependency `premise → D_1 ∨ … ∨ D_k` is satisfied by a database when
//! every premise match extends to *some* disjunct: its equalities and
//! comparisons hold under the match, and its atoms embed into the database
//! (existential variables may map to any stored value, including labeled
//! nulls). A denial (`k = 0`) is satisfied when the premise never matches.
//!
//! These checks serve three callers:
//! * the chase, to decide whether a dependency still has violations,
//! * the validator in `grom` (the soundness certificate: `V_T(J_T)` must
//!   satisfy the original semantic mapping), and
//! * tests comparing greedy and exhaustive ded-chase results.

use std::fmt;

use grom_lang::{Bindings, Dependency, Disjunct};

use crate::db::Db;
use crate::eval::{embed_atoms, evaluate_body_streaming, Control};

/// A witness that a dependency is violated: the premise match for which no
/// disjunct can be satisfied.
#[derive(Debug, Clone)]
pub struct Violation {
    pub dependency: std::sync::Arc<str>,
    pub bindings: Bindings,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency `{}` violated at {}",
            self.dependency, self.bindings
        )
    }
}

/// Is `disjunct` satisfied in `db` under the premise match `bindings`?
pub fn disjunct_satisfied(db: &impl Db, disjunct: &Disjunct, bindings: &Bindings) -> bool {
    // Equalities: both sides must be bound (safety) and equal.
    for (l, r) in &disjunct.eqs {
        let (Some(lv), Some(rv)) = (bindings.eval_term(l), bindings.eval_term(r)) else {
            return false;
        };
        if lv != rv {
            return false;
        }
    }
    // Comparisons: must be bound and hold.
    for c in &disjunct.cmps {
        if !bindings.eval_comparison(c).unwrap_or(false) {
            return false;
        }
    }
    // Atoms: embed as a conjunctive query seeded with the premise match.
    if disjunct.atoms.is_empty() {
        return true;
    }
    embed_atoms(db, &disjunct.atoms, bindings)
}

/// Is `disjunct` satisfied under `bindings` once every bound value is
/// resolved through `resolve`?
///
/// This is the *satisfied-under-pending-obligations* recheck of the chase's
/// sweep-level egd batching: equality obligations are recorded in a
/// union-find but the instance is only rewritten once per sweep, so a
/// violation matched against the un-rewritten instance may carry nulls
/// that already have pending replacements. Resolving the bound values
/// before the check lets such stale violations be skipped without an
/// instance rewrite. A satisfied verdict is always genuine, because
/// substitution is a homomorphism and never destroys an embedding. The
/// converse does not hold: stored tuples are *not* resolved, so a
/// disjunct with conclusion atoms can test unsatisfied even though the
/// pending rewrite would satisfy it — repairing it then invents a
/// redundant fresh null the substitution cannot merge away. Callers must
/// not apply atom-bearing repairs while obligations are pending (the
/// chase flushes or defers them first); for equality- and comparison-only
/// disjuncts the check is exact.
pub fn disjunct_satisfied_resolved(
    db: &impl Db,
    disjunct: &Disjunct,
    bindings: &Bindings,
    resolve: &mut impl FnMut(&grom_data::Value) -> grom_data::Value,
) -> bool {
    let mut resolved = Bindings::new();
    for (var, val) in bindings.iter() {
        resolved.bind(var.clone(), resolve(val));
    }
    disjunct_satisfied(db, disjunct, &resolved)
}

/// Find the first violation of `dep` in `db`, if any.
pub fn find_violation(db: &impl Db, dep: &Dependency) -> Option<Violation> {
    let mut found = None;
    evaluate_body_streaming(db, &dep.premise, &Bindings::new(), |b| {
        let ok = dep.disjuncts.iter().any(|d| disjunct_satisfied(db, d, b));
        if ok {
            Control::Continue
        } else {
            found = Some(Violation {
                dependency: dep.name.clone(),
                bindings: b.clone(),
            });
            Control::Stop
        }
    });
    found
}

/// Does `db` satisfy `dep`?
pub fn dependency_satisfied(db: &impl Db, dep: &Dependency) -> bool {
    find_violation(db, dep).is_none()
}

/// Check a whole set of dependencies; returns one witness per violated
/// dependency (empty = all satisfied).
pub fn instance_satisfies<'d>(
    db: &impl Db,
    deps: impl IntoIterator<Item = &'d Dependency>,
) -> Vec<Violation> {
    deps.into_iter()
        .filter_map(|d| find_violation(db, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::{Instance, Value};
    use grom_lang::parser::parse_dependency;

    fn inst(facts: &[(&str, &[i64])]) -> Instance {
        let mut i = Instance::new();
        for (rel, vals) in facts {
            i.add(*rel, vals.iter().map(|&v| Value::int(v)).collect())
                .unwrap();
        }
        i
    }

    #[test]
    fn tgd_satisfaction() {
        let dep = parse_dependency("tgd m: S(x) -> T(x, y).").unwrap();
        // Satisfied: T has a tuple for x=1 with any second column.
        let db = inst(&[("S", &[1]), ("T", &[1, 9])]);
        assert!(dependency_satisfied(&db, &dep));
        // Violated: S(2) has no T-tuple.
        let db = inst(&[("S", &[1]), ("S", &[2]), ("T", &[1, 9])]);
        let v = find_violation(&db, &dep).unwrap();
        assert_eq!(v.dependency.as_ref(), "m");
        assert_eq!(v.bindings.get(&"x".into()), Some(&Value::int(2)));
    }

    #[test]
    fn existential_witness_may_be_a_null() {
        let dep = parse_dependency("tgd m: S(x) -> T(x, y).").unwrap();
        let mut db = inst(&[("S", &[1])]);
        db.add("T", vec![Value::int(1), Value::null(0)]).unwrap();
        assert!(dependency_satisfied(&db, &dep));
    }

    #[test]
    fn egd_satisfaction() {
        let dep = parse_dependency("egd e: T(x, n), T(y, n) -> x = y.").unwrap();
        let db = inst(&[("T", &[1, 7]), ("T", &[2, 8])]);
        assert!(dependency_satisfied(&db, &dep));
        let db = inst(&[("T", &[1, 7]), ("T", &[2, 7])]);
        assert!(!dependency_satisfied(&db, &dep));
    }

    #[test]
    fn denial_satisfaction() {
        let dep = parse_dependency("dep n: T(x, x) -> false.").unwrap();
        let db = inst(&[("T", &[1, 2])]);
        assert!(dependency_satisfied(&db, &dep));
        let db = inst(&[("T", &[3, 3])]);
        assert!(!dependency_satisfied(&db, &dep));
    }

    #[test]
    fn ded_satisfied_by_any_disjunct() {
        // The paper's d0 shape.
        let dep = parse_dependency("ded d0: P(p1, n), P(p2, n) -> p1 = p2 | R(r, p1) | R(r2, p2).")
            .unwrap();
        // Same name, different ids, but p2 has an R-tuple: satisfied.
        let db = inst(&[("P", &[1, 7]), ("P", &[2, 7]), ("R", &[5, 2])]);
        assert!(dependency_satisfied(&db, &dep));
        // No R-tuples and different ids: violated.
        let db = inst(&[("P", &[1, 7]), ("P", &[2, 7])]);
        assert!(!dependency_satisfied(&db, &dep));
        // Equal ids satisfy the first disjunct.
        let db = inst(&[("P", &[1, 7])]);
        assert!(dependency_satisfied(&db, &dep));
    }

    #[test]
    fn disjunct_with_comparison() {
        let dep = parse_dependency("dep d: S(x, y) -> T(x), y > 0.").unwrap();
        let db = inst(&[("S", &[1, 5]), ("T", &[1])]);
        assert!(dependency_satisfied(&db, &dep));
        let db = inst(&[("S", &[1, -5]), ("T", &[1])]);
        assert!(!dependency_satisfied(&db, &dep));
    }

    #[test]
    fn premise_with_comparison() {
        let dep = parse_dependency("tgd m: S(x, r), r >= 4 -> T(x).").unwrap();
        // r = 3 < 4: premise never matches, trivially satisfied.
        let db = inst(&[("S", &[1, 3])]);
        assert!(dependency_satisfied(&db, &dep));
        let db = inst(&[("S", &[1, 4])]);
        assert!(!dependency_satisfied(&db, &dep));
    }

    #[test]
    fn premise_with_negation() {
        let dep = parse_dependency("dep d: S(x), not Block(x) -> T(x).").unwrap();
        let db = inst(&[("S", &[1]), ("Block", &[1])]);
        assert!(dependency_satisfied(&db, &dep));
        let db = inst(&[("S", &[1])]);
        assert!(!dependency_satisfied(&db, &dep));
    }

    #[test]
    fn resolved_recheck_sees_pending_obligations() {
        // egd disjunct y1 = y2: the raw bindings carry two distinct nulls,
        // but under a pending-obligation resolver mapping N1 -> N0 the
        // equality holds and the violation is stale.
        let dep = parse_dependency("egd e: T(x, y1), T(x, y2) -> y1 = y2.").unwrap();
        let db = Instance::new();
        let mut b = Bindings::new();
        b.bind("x".into(), Value::int(1));
        b.bind("y1".into(), Value::null(0));
        b.bind("y2".into(), Value::null(1));
        assert!(!disjunct_satisfied(&db, &dep.disjuncts[0], &b));
        let mut resolve = |v: &Value| {
            if v == &Value::null(1) {
                Value::null(0)
            } else {
                v.clone()
            }
        };
        assert!(disjunct_satisfied_resolved(
            &db,
            &dep.disjuncts[0],
            &b,
            &mut resolve
        ));
        // An identity resolver changes nothing.
        let mut id = |v: &Value| v.clone();
        assert!(!disjunct_satisfied_resolved(
            &db,
            &dep.disjuncts[0],
            &b,
            &mut id
        ));
    }

    #[test]
    fn instance_satisfies_reports_per_dependency() {
        let d1 = parse_dependency("tgd a: S(x) -> T(x, y).").unwrap();
        let d2 = parse_dependency("dep b: S(x) -> false.").unwrap();
        let db = inst(&[("S", &[1])]);
        let violations = instance_satisfies(&db, [&d1, &d2]);
        assert_eq!(violations.len(), 2);
        let names: Vec<&str> = violations.iter().map(|v| v.dependency.as_ref()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn equality_of_nulls_by_label() {
        let dep = parse_dependency("egd e: T(x, n), T(y, n) -> x = y.").unwrap();
        let mut db = Instance::new();
        db.add("T", vec![Value::null(0), Value::int(7)]).unwrap();
        db.add("T", vec![Value::null(0), Value::int(7)]).unwrap(); // dedup: same tuple
        assert!(dependency_satisfied(&db, &dep));
        db.add("T", vec![Value::null(1), Value::int(7)]).unwrap();
        assert!(!dependency_satisfied(&db, &dep)); // N0 != N1
    }
}
