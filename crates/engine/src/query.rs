//! Queries over (possibly incomplete) instances: naive evaluation and
//! **certain answers**.
//!
//! Target instances produced by the chase are *naive tables*: they contain
//! labeled nulls. The standard query-answering semantics in data exchange
//! (Fagin–Kolaitis–Miller–Popa) is **certain answers**: the tuples returned
//! by the query on *every* possible completion of the instance. For unions
//! of conjunctive queries, naive evaluation — treat nulls as plain values,
//! then discard answers that still contain nulls — computes exactly the
//! certain answers over universal solutions, which is what
//! [`Query::certain_answers`] implements. [`Query::answers`] returns the
//! raw naive answers (nulls included) for callers that want the full
//! picture.
//!
//! Queries may have several rules (unions) and may use negation and
//! comparisons in bodies, with the usual safety conditions; for queries
//! with negation the certain-answer guarantee no longer holds in general
//! (negation is not preserved by homomorphisms) — the naive semantics is
//! still well-defined and documented as such.

use std::collections::BTreeSet;
use std::fmt;

use grom_data::{Tuple, Value};
use grom_lang::{Atom, Bindings, LangError, Literal, Term, ViewRule};

use crate::db::Db;
use crate::eval::evaluate_body;

/// A query: one or more rules sharing a head predicate (a union of
/// conjunctive queries with negation and comparisons).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    rules: Vec<ViewRule>,
}

impl Query {
    /// Build a query from rules; they must agree on head predicate and
    /// arity, and each must be safe.
    pub fn new(rules: Vec<ViewRule>) -> Result<Query, LangError> {
        let mut iter = rules.iter();
        let first = iter.next().ok_or_else(|| LangError::Unsafe {
            context: "query".into(),
            detail: "a query needs at least one rule".into(),
        })?;
        for r in iter {
            if r.head.predicate != first.head.predicate {
                return Err(LangError::Unsafe {
                    context: "query".into(),
                    detail: format!(
                        "rules disagree on head predicate: `{}` vs `{}`",
                        first.head.predicate, r.head.predicate
                    ),
                });
            }
            if r.head.arity() != first.head.arity() {
                return Err(LangError::ViewArityMismatch {
                    view: first.head.predicate.clone(),
                    expected: first.head.arity(),
                    actual: r.head.arity(),
                });
            }
        }
        for r in &rules {
            grom_lang::safety::check_view_rule(r)?;
        }
        Ok(Query { rules })
    }

    /// Parse a query from one or more `view Head(..) <- body.` rules.
    pub fn parse(text: &str) -> Result<Query, LangError> {
        let prog = grom_lang::Program::parse(text)?;
        Query::new(prog.views.rules().to_vec())
    }

    /// The head predicate name.
    pub fn head_predicate(&self) -> &str {
        &self.rules[0].head.predicate
    }

    /// The head arity.
    pub fn arity(&self) -> usize {
        self.rules[0].head.arity()
    }

    fn project(head: &Atom, b: &Bindings) -> Tuple {
        let values: Vec<Value> = head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => b
                    .get(v)
                    .cloned()
                    .expect("safety guarantees head variables are bound"),
            })
            .collect();
        Tuple::new(values)
    }

    /// Naive answers: evaluate every rule, project onto the head, union.
    /// Answers may contain labeled nulls.
    pub fn answers(&self, db: &impl Db) -> BTreeSet<Tuple> {
        let mut out = BTreeSet::new();
        for rule in &self.rules {
            for b in evaluate_body(db, &rule.body, &Bindings::new()) {
                out.insert(Self::project(&rule.head, &b));
            }
        }
        out
    }

    /// Certain answers: naive answers with null-containing tuples dropped.
    ///
    /// For negation-free queries over a universal solution this is exactly
    /// the set of certain answers of the data-exchange setting.
    pub fn certain_answers(&self, db: &impl Db) -> BTreeSet<Tuple> {
        self.answers(db)
            .into_iter()
            .filter(|t| !t.has_nulls())
            .collect()
    }

    /// Does the query use negated literals in any rule? (Certain-answer
    /// guarantees only cover the negation-free fragment.)
    pub fn uses_negation(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.body.iter().any(Literal::is_negated))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Instance;

    fn db() -> Instance {
        let mut inst = Instance::new();
        inst.add("T", vec![Value::int(1), Value::str("a")]).unwrap();
        inst.add("T", vec![Value::int(2), Value::null(0)]).unwrap();
        inst.add("U", vec![Value::int(1)]).unwrap();
        inst.add("U", vec![Value::int(2)]).unwrap();
        inst
    }

    #[test]
    fn naive_answers_include_nulls() {
        let q = Query::parse("view Q(x, l) <- T(x, l).").unwrap();
        let ans = q.answers(&db());
        assert_eq!(ans.len(), 2);
        assert!(ans.iter().any(|t| t.has_nulls()));
    }

    #[test]
    fn certain_answers_drop_null_tuples() {
        let q = Query::parse("view Q(x, l) <- T(x, l).").unwrap();
        let certain = q.certain_answers(&db());
        assert_eq!(certain.len(), 1);
        let t = certain.iter().next().unwrap();
        assert_eq!(t.get(0), Some(&Value::int(1)));
    }

    #[test]
    fn join_projection_keeps_constant_part() {
        // Even though T(2, N0) has a null label, the *join* on x produces
        // a fully-constant answer for Q(x) — certain.
        let q = Query::parse("view Q(x) <- T(x, l), U(x).").unwrap();
        let certain = q.certain_answers(&db());
        assert_eq!(certain.len(), 2);
    }

    #[test]
    fn union_queries() {
        let q = Query::parse("view Q(x) <- T(x, l).\nview Q(x) <- U(x).").unwrap();
        let ans = q.certain_answers(&db());
        assert_eq!(ans.len(), 2); // 1 and 2, deduplicated across rules
    }

    #[test]
    fn constants_in_heads() {
        let q = Query::parse("view Q(x, 9) <- U(x).").unwrap();
        let ans = q.certain_answers(&db());
        assert!(ans.iter().all(|t| t.get(1) == Some(&Value::int(9))));
    }

    #[test]
    fn negation_detection_and_semantics() {
        let q = Query::parse("view Q(x) <- U(x), not T(x, l).").unwrap();
        assert!(q.uses_negation());
        // Naive semantics: T(2, N0) exists, so only... both 1 and 2 have
        // T-rows; no answers.
        assert!(q.certain_answers(&db()).is_empty());
    }

    #[test]
    fn mismatched_rules_rejected() {
        assert!(Query::parse("view Q(x) <- U(x).\nview R(x) <- U(x).").is_err());
        assert!(Query::parse("view Q(x) <- U(x).\nview Q(x, y) <- T(x, y).").is_err());
        assert!(Query::parse("view Q(x, w) <- U(x).").is_err()); // unsafe head
    }

    #[test]
    fn comparisons_in_query_bodies() {
        let q = Query::parse("view Q(x) <- U(x), x >= 2.").unwrap();
        let ans = q.certain_answers(&db());
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.iter().next().unwrap().get(0), Some(&Value::int(2)));
    }
}
