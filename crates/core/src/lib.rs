//! # GROM — a General Rewriter of Semantic Mappings
//!
//! A faithful reimplementation of the GROM system (Mecca, Rull, Santoro,
//! Teniente — EDBT 2016): data exchange through *semantic schemas*.
//!
//! A [`MappingScenario`] bundles the objects of Figure 2 of the paper:
//!
//! * a **source** and a **target** relational schema (`S`, `T`),
//! * optional **semantic schemas** over each (`V_S`, `V_T`), defined by
//!   views in non-recursive Datalog with negation (`Υ_S`, `Υ_T`),
//! * **mappings** `Σ_{V_S,V_T}`: source-to-target tgds written against the
//!   semantic schemas, with comparison atoms,
//! * **target constraints** `Σ_{V_T}`: egds (keys/functional dependencies),
//!   tgds (inclusion/foreign keys) and denials over the target semantic
//!   schema.
//!
//! [`MappingScenario::run`] executes the full GROM pipeline:
//!
//! 1. materialize the source views and treat their extents as source
//!    relations (the composition reduction of §3),
//! 2. **rewrite** the semantic mappings into executable dependencies over
//!    the physical schemas (`grom-rewrite`) — plain tgds/egds when views
//!    are conjunctive, deds when negation requires them,
//! 3. **chase** the source instance with the rewritten program
//!    (`grom-chase`; greedy scenario search for deds),
//! 4. extract the target instance `J_T`, and optionally
//! 5. **validate** the soundness contract: `Υ_T(J_T)` must satisfy the
//!    original semantic mapping (the paper's soundness theorem, checked
//!    instance by instance).
//!
//! ```
//! use grom::prelude::*;
//!
//! let program = Program::parse(r#"
//!     schema source { S_Emp(name: string, dept: string); }
//!     schema target { T_Emp(name: string); T_Dept(name: string, dept: string); }
//!     view Employee(n, d) <- T_Emp(n), T_Dept(n, d).
//!     tgd m: S_Emp(n, d) -> Employee(n, d).
//! "#).unwrap();
//! let scenario = MappingScenario::from_program(&program).unwrap();
//!
//! let mut source = Instance::new();
//! source.add("S_Emp", vec![Value::str("ann"), Value::str("db")]).unwrap();
//!
//! let result = scenario.run(&source, &PipelineOptions::default()).unwrap();
//! assert_eq!(result.target.tuples("T_Emp").count(), 1);
//! assert!(result.validation.as_ref().unwrap().ok);
//! ```

pub mod config;
pub mod pipeline;
pub mod scenario;
pub mod validate;

pub use config::GromConfig;
pub use grom_chase::{Budget, CancelToken, ChaseConfig, Checkpoint, SchedulerMode};
pub use grom_trace::{ChaseProfile, TraceHandle};
pub use pipeline::{intern_dependencies, ExchangeResult, PipelineError, PipelineOptions};
pub use scenario::MappingScenario;
pub use validate::{validate_solution, ValidationReport};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::config::GromConfig;
    pub use crate::pipeline::{ExchangeResult, PipelineError, PipelineOptions};
    pub use crate::scenario::MappingScenario;
    pub use crate::validate::{validate_solution, ValidationReport};
    pub use grom_chase::{
        Budget, CancelToken, ChaseConfig, ChaseError, ChaseOutcome, ChaseStats, Checkpoint,
        InterruptReason, SchedulerMode,
    };
    pub use grom_data::{Fact, Instance, Schema, Tuple, Value};
    pub use grom_lang::{Atom, DepClass, Dependency, Literal, Program, Term, ViewSet};
    pub use grom_rewrite::{analyze, RestrictionReport, RewriteOptions, RewriteOutput};
    pub use grom_trace::{ChaseProfile, TraceHandle};
}

// Re-export the sub-crates for power users.
pub use grom_chase as chase;
pub use grom_data as data;
pub use grom_engine as engine;
pub use grom_exec as exec;
pub use grom_lang as lang;
pub use grom_rewrite as rewrite;
pub use grom_scenarios as scenarios;
pub use grom_trace as trace;
