//! One flat, builder-style configuration for the whole pipeline.
//!
//! Historically callers assembled a [`ChaseConfig`] and wrapped it in
//! [`PipelineOptions`], duplicating the chase knobs across two structs and
//! two `with_threads` builders. [`GromConfig`] is the single front door:
//! every knob lives here once, and [`MappingScenario::run_with`] consumes
//! it directly. The two legacy structs remain as thin shims — existing
//! examples and tests keep compiling — and [`GromConfig`] converts into
//! either via [`From`].
//!
//! [`MappingScenario::run_with`]: crate::MappingScenario::run_with

use grom_chase::{Budget, CancelToken, ChaseConfig, SchedulerMode};
use grom_rewrite::RewriteOptions;
use grom_trace::TraceHandle;

use crate::pipeline::PipelineOptions;

/// Every pipeline and chase knob, flattened into one builder.
///
/// ```
/// use grom::{GromConfig, SchedulerMode};
///
/// let cfg = GromConfig::new()
///     .with_threads(4)
///     .with_max_rounds(500)
///     .with_core_minimize(true);
/// assert_eq!(cfg.scheduler, SchedulerMode::Parallel { threads: 4 });
/// ```
#[derive(Debug, Clone)]
pub struct GromConfig {
    /// Maximum number of chase rounds (see [`ChaseConfig::max_rounds`]).
    pub max_rounds: usize,
    /// Maximum standard scenarios the greedy ded chase tries.
    pub max_scenarios: usize,
    /// Maximum tree nodes the exhaustive ded chase expands.
    pub max_nodes: usize,
    /// Maximum chase steps in one branch of the exhaustive chase.
    pub max_steps_per_branch: usize,
    /// Premise scheduling strategy (sequential delta, full rescan, or the
    /// parallel executor).
    pub scheduler: SchedulerMode,
    /// Options for the view-unfolding rewriter.
    pub rewrite: RewriteOptions,
    /// Skip the post-hoc soundness validation.
    pub skip_validation: bool,
    /// Skip type-checking the source instance against the source schema.
    pub skip_typecheck: bool,
    /// Core-minimize the chased target (Fagin–Kolaitis–Popa).
    pub core_minimize: bool,
    /// Intern string constants through one symbol table before the chase
    /// (on by default; see [`PipelineOptions::interning`]).
    pub interning: bool,
    /// Event sink for the chase's JSONL trace stream. Profiling itself is
    /// always on; attaching a sink additionally streams one event per
    /// activation, merge and sweep (see [`grom_chase::TraceSink`]).
    pub trace: TraceHandle,
    /// Resource budget for the chase (wall-clock deadline, derived-tuple
    /// cap, fresh-null cap). Exhaustion interrupts at a sweep boundary
    /// with a resumable checkpoint instead of failing.
    pub budget: Budget,
    /// Cooperative cancellation token, checked at the same sweep
    /// boundaries as the budget (hook it to Ctrl-C for graceful stops).
    pub cancel: CancelToken,
}

impl Default for GromConfig {
    fn default() -> Self {
        let chase = ChaseConfig::default();
        let pipeline = PipelineOptions::default();
        Self {
            max_rounds: chase.max_rounds,
            max_scenarios: chase.max_scenarios,
            max_nodes: chase.max_nodes,
            max_steps_per_branch: chase.max_steps_per_branch,
            scheduler: chase.scheduler,
            rewrite: pipeline.rewrite,
            skip_validation: pipeline.skip_validation,
            skip_typecheck: pipeline.skip_typecheck,
            core_minimize: pipeline.core_minimize,
            interning: pipeline.interning,
            trace: TraceHandle::none(),
            budget: chase.budget,
            cancel: chase.cancel,
        }
    }
}

impl GromConfig {
    /// The default configuration (same as [`GromConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Run the chase on `threads` workers; `threads <= 1` selects the
    /// sequential delta scheduler.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_scheduler(SchedulerMode::with_threads(threads))
    }

    /// Select the premise scheduling strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Cap the number of chase rounds.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Cap the number of greedy ded-chase scenarios.
    pub fn with_max_scenarios(mut self, max_scenarios: usize) -> Self {
        self.max_scenarios = max_scenarios;
        self
    }

    /// Cap the number of exhaustive ded-chase nodes.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Override the rewriter options.
    pub fn with_rewrite(mut self, rewrite: RewriteOptions) -> Self {
        self.rewrite = rewrite;
        self
    }

    /// Skip (or re-enable) the post-hoc soundness validation.
    pub fn with_skip_validation(mut self, skip: bool) -> Self {
        self.skip_validation = skip;
        self
    }

    /// Skip (or re-enable) source type-checking.
    pub fn with_skip_typecheck(mut self, skip: bool) -> Self {
        self.skip_typecheck = skip;
        self
    }

    /// Core-minimize the chased target.
    pub fn with_core_minimize(mut self, core_minimize: bool) -> Self {
        self.core_minimize = core_minimize;
        self
    }

    /// Enable or disable symbol interning for the chase.
    pub fn with_interning(mut self, interning: bool) -> Self {
        self.interning = interning;
        self
    }

    /// Attach a trace sink: the chase streams one JSONL event per
    /// activation, merge and sweep into it.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Bound the chase by a resource budget; exhaustion interrupts with a
    /// resumable checkpoint instead of failing.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Install a cancellation token the chase polls at sweep boundaries.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl From<&GromConfig> for ChaseConfig {
    fn from(cfg: &GromConfig) -> Self {
        ChaseConfig {
            max_rounds: cfg.max_rounds,
            max_scenarios: cfg.max_scenarios,
            max_nodes: cfg.max_nodes,
            max_steps_per_branch: cfg.max_steps_per_branch,
            scheduler: cfg.scheduler,
            trace: cfg.trace.clone(),
            budget: cfg.budget.clone(),
            cancel: cfg.cancel.clone(),
        }
    }
}

impl From<GromConfig> for ChaseConfig {
    fn from(cfg: GromConfig) -> Self {
        Self::from(&cfg)
    }
}

impl From<&GromConfig> for PipelineOptions {
    fn from(cfg: &GromConfig) -> Self {
        PipelineOptions {
            rewrite: cfg.rewrite.clone(),
            chase: cfg.into(),
            skip_validation: cfg.skip_validation,
            skip_typecheck: cfg.skip_typecheck,
            core_minimize: cfg.core_minimize,
            interning: cfg.interning,
        }
    }
}

impl From<GromConfig> for PipelineOptions {
    fn from(cfg: GromConfig) -> Self {
        Self::from(&cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_flatten_into_both_legacy_structs() {
        let cfg = GromConfig::new()
            .with_threads(4)
            .with_max_rounds(77)
            .with_core_minimize(true)
            .with_interning(false)
            .with_skip_validation(true);
        let chase: ChaseConfig = (&cfg).into();
        assert_eq!(chase.max_rounds, 77);
        assert_eq!(chase.scheduler, SchedulerMode::Parallel { threads: 4 });
        let pipeline: PipelineOptions = cfg.into();
        assert_eq!(pipeline.chase.max_rounds, 77);
        assert!(pipeline.core_minimize);
        assert!(!pipeline.interning);
        assert!(pipeline.skip_validation);
        assert!(!pipeline.skip_typecheck);
    }

    #[test]
    fn defaults_match_the_legacy_defaults() {
        let cfg = GromConfig::default();
        let chase: ChaseConfig = (&cfg).into();
        let legacy = ChaseConfig::default();
        assert_eq!(chase.max_rounds, legacy.max_rounds);
        assert_eq!(chase.max_scenarios, legacy.max_scenarios);
        assert_eq!(chase.max_nodes, legacy.max_nodes);
        assert_eq!(chase.max_steps_per_branch, legacy.max_steps_per_branch);
        let pipeline: PipelineOptions = (&cfg).into();
        assert!(!pipeline.skip_validation);
        assert!(pipeline.interning);
    }
}
