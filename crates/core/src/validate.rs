//! The soundness certificate: does `Υ_T(J_T)` satisfy the original
//! semantic mapping?
//!
//! GROM's rewriting is sound but not complete (§3): *whenever the rewritten
//! program admits a universal solution `J_T`, then `Υ_T(J_T)` is a solution
//! of the original source-to-semantic mapping*. This module checks that
//! property on concrete instances — it is both a user-facing sanity report
//! and the oracle for the repository's property-based soundness tests.
//!
//! Procedure: materialize the source views over `I_S` and the target views
//! over `J_T`, take the union of all four instances (relation names are
//! disjoint by scenario validation), and evaluate every original mapping
//! and target constraint over it.

use std::fmt;

use grom_data::Instance;
use grom_engine::{instance_satisfies, materialize_views};

use crate::pipeline::PipelineError;
use crate::scenario::MappingScenario;

/// The outcome of validating a solution.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// All original dependencies satisfied?
    pub ok: bool,
    /// Names of violated dependencies with a witness description.
    pub violations: Vec<String>,
    /// Number of dependencies checked.
    pub checked: usize,
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok {
            write!(f, "solution valid ({} dependencies checked)", self.checked)
        } else {
            writeln!(f, "solution INVALID ({} checked):", self.checked)?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Check that `target` is a solution of `scenario` for `source`: every
/// mapping and every target constraint holds over the *semantic* instances
/// (view extents), which is the paper's notion of solution.
pub fn validate_solution(
    scenario: &MappingScenario,
    source: &Instance,
    target: &Instance,
) -> Result<ValidationReport, PipelineError> {
    let source_extents = materialize_views(&scenario.source_views, source)?;
    let target_extents = materialize_views(&scenario.target_views, target)?;

    let mut combined = source.clone();
    combined.absorb(&source_extents)?;
    combined.absorb(target)?;
    combined.absorb(&target_extents)?;

    let deps: Vec<_> = scenario.all_dependencies().cloned().collect();
    let violations = instance_satisfies(&combined, deps.iter());
    Ok(ValidationReport {
        ok: violations.is_empty(),
        violations: violations.iter().map(|v| v.to_string()).collect(),
        checked: deps.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::Value;
    use grom_lang::Program;

    fn simple_scenario() -> MappingScenario {
        let prog = Program::parse(
            r#"
            schema source { S_P(id: int, rating: int); }
            schema target { T_P(id: int); T_R(id: int, val: int); }
            view Good(x) <- T_P(x), not T_R(x, 0).
            tgd m: S_P(x, r), r >= 4 -> Good(x).
            "#,
        )
        .unwrap();
        MappingScenario::from_program(&prog).unwrap()
    }

    #[test]
    fn valid_solution_accepted() {
        let sc = simple_scenario();
        let mut source = Instance::new();
        source
            .add("S_P", vec![Value::int(1), Value::int(5)])
            .unwrap();
        let mut target = Instance::new();
        target.add("T_P", vec![Value::int(1)]).unwrap();
        let report = validate_solution(&sc, &source, &target).unwrap();
        assert!(report.ok, "{report}");
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn missing_tuple_detected() {
        let sc = simple_scenario();
        let mut source = Instance::new();
        source
            .add("S_P", vec![Value::int(1), Value::int(5)])
            .unwrap();
        let target = Instance::new();
        let report = validate_solution(&sc, &source, &target).unwrap();
        assert!(!report.ok);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains('m'));
    }

    #[test]
    fn view_semantics_respected_by_validator() {
        // T_P(1) present but a 0-rating kills Good(1): invalid.
        let sc = simple_scenario();
        let mut source = Instance::new();
        source
            .add("S_P", vec![Value::int(1), Value::int(5)])
            .unwrap();
        let mut target = Instance::new();
        target.add("T_P", vec![Value::int(1)]).unwrap();
        target
            .add("T_R", vec![Value::int(9), Value::int(1)])
            .unwrap();
        // T_R(9, 1): second column is the product? No — schema is
        // T_R(id, val); the view negates T_R(x, 0) i.e. val = 0 for the
        // same id... T_R(1, 0) is the killer:
        let report = validate_solution(&sc, &source, &target).unwrap();
        assert!(report.ok);

        target
            .add("T_R", vec![Value::int(1), Value::int(0)])
            .unwrap();
        let report = validate_solution(&sc, &source, &target).unwrap();
        assert!(!report.ok, "{report}");
    }

    #[test]
    fn target_constraints_checked() {
        let prog = Program::parse(
            r#"
            schema source { S(x: int); }
            schema target { T(x: int, y: int); }
            egd key: T(x, a), T(x, b) -> a = b.
            tgd m: S(x) -> T(x, y).
            "#,
        )
        .unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        let mut source = Instance::new();
        source.add("S", vec![Value::int(1)]).unwrap();
        let mut target = Instance::new();
        target.add("T", vec![Value::int(1), Value::int(7)]).unwrap();
        let report = validate_solution(&sc, &source, &target).unwrap();
        assert!(report.ok);
        target.add("T", vec![Value::int(1), Value::int(8)]).unwrap();
        let report = validate_solution(&sc, &source, &target).unwrap();
        assert!(!report.ok);
        assert!(report.violations[0].contains("key"));
    }

    #[test]
    fn report_display() {
        let sc = simple_scenario();
        let report = validate_solution(&sc, &Instance::new(), &Instance::new()).unwrap();
        assert!(report.to_string().contains("valid"));
    }
}
