//! The GROM pipeline: materialize source views → rewrite → chase →
//! extract the target instance → validate.

use std::fmt;

use grom_chase::{
    chase_with_deds, ChaseConfig, ChaseError, ChaseProfile, ChaseStats, WeakAcyclicityReport,
};
use grom_data::{DataError, Instance, SymbolTable, Value};
use grom_engine::MaterializeError;
use grom_lang::{Atom, Comparison, Dependency, Disjunct, LangError, Literal, Term};
use grom_rewrite::{rewrite_program, RewriteError, RewriteOptions, RewriteOutput};

use crate::scenario::MappingScenario;
use crate::validate::{validate_solution, ValidationReport};

/// Options for [`MappingScenario::run`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    pub rewrite: RewriteOptions,
    pub chase: ChaseConfig,
    /// Skip the post-hoc soundness validation (it re-materializes the
    /// target views; disable for large benchmark runs).
    pub skip_validation: bool,
    /// Type-check the source instance against the source schema before
    /// running (on by default).
    pub skip_typecheck: bool,
    /// Minimize the chased target towards its **core** (Fagin–Kolaitis–
    /// Popa): fold away redundant labeled nulls such as the duplicate
    /// `T_Product` rows the `SoldAt` unfolding creates in the running
    /// example. The core of a universal solution is itself a universal
    /// solution, so validation still holds. Off by default (extra cost).
    pub core_minimize: bool,
    /// Intern string constants before the chase (on by default): the
    /// working instance and the rewritten dependencies pass through one
    /// [`SymbolTable`], so premise joins compare dense symbol ids instead
    /// of string contents. The target is un-interned on extraction, so
    /// results are byte-identical either way.
    pub interning: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            rewrite: RewriteOptions::default(),
            chase: ChaseConfig::default(),
            skip_validation: false,
            skip_typecheck: false,
            core_minimize: false,
            interning: true,
        }
    }
}

impl PipelineOptions {
    /// Run the chase on `threads` workers (the parallel executor of
    /// `grom-exec`); `threads <= 1` selects the sequential delta
    /// scheduler. Results are identical up to the renaming of labeled
    /// nulls. Also reachable via the `GROM_THREADS` environment variable
    /// (see [`grom_chase::SchedulerMode`]) and `grom run --threads`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.chase = self.chase.with_threads(threads);
        self
    }

    /// Enable or disable symbol interning for the chase (see
    /// [`PipelineOptions::interning`]).
    pub fn with_interning(mut self, interning: bool) -> Self {
        self.interning = interning;
        self
    }
}

/// Rewrite every string constant in `deps` to its interned symbol in
/// `table`, so dependency constants compare against [`Value::Sym`] instance
/// columns by id. Non-string values pass through unchanged. The pipeline
/// calls this with the same table that interned the working instance —
/// using a different table would silently break constant/instance joins.
pub fn intern_dependencies(deps: &[Dependency], table: &mut SymbolTable) -> Vec<Dependency> {
    fn value(v: &Value, table: &mut SymbolTable) -> Value {
        match v {
            Value::Str(s) => Value::Sym(table.intern(s)),
            other => other.clone(),
        }
    }
    fn term(t: &Term, table: &mut SymbolTable) -> Term {
        match t {
            Term::Const(v) => Term::Const(value(v, table)),
            var => var.clone(),
        }
    }
    fn atom(a: &Atom, table: &mut SymbolTable) -> Atom {
        Atom {
            predicate: a.predicate.clone(),
            args: a.args.iter().map(|t| term(t, table)).collect(),
        }
    }
    fn cmp(c: &Comparison, table: &mut SymbolTable) -> Comparison {
        Comparison::new(c.op, term(&c.lhs, table), term(&c.rhs, table))
    }
    deps.iter()
        .map(|d| Dependency {
            name: d.name.clone(),
            premise: d
                .premise
                .iter()
                .map(|l| match l {
                    Literal::Pos(a) => Literal::Pos(atom(a, table)),
                    Literal::Neg(a) => Literal::Neg(atom(a, table)),
                    Literal::Cmp(c) => Literal::Cmp(cmp(c, table)),
                })
                .collect(),
            disjuncts: d
                .disjuncts
                .iter()
                .map(|dj| Disjunct {
                    atoms: dj.atoms.iter().map(|a| atom(a, table)).collect(),
                    eqs: dj
                        .eqs
                        .iter()
                        .map(|(l, r)| (term(l, table), term(r, table)))
                        .collect(),
                    cmps: dj.cmps.iter().map(|c| cmp(c, table)).collect(),
                })
                .collect(),
        })
        .collect()
}

/// Everything the pipeline produces.
#[derive(Debug, Clone)]
pub struct ExchangeResult {
    /// The generated target instance `J_T` (target-schema relations only).
    pub target: Instance,
    /// The extents of the source views (empty when there is no source
    /// semantic schema).
    pub source_view_extents: Instance,
    /// Per-view tuple counts of the source materialization (the deltas
    /// reported by [`grom_engine::materialize_views_tracked`]).
    pub source_view_counts: std::collections::BTreeMap<std::sync::Arc<str>, usize>,
    /// The rewritten program and its diagnostics.
    pub rewritten: RewriteOutput,
    /// Termination analysis of the rewritten program.
    pub wa_report: WeakAcyclicityReport,
    /// Chase statistics (rounds, nulls, scenario counts, …).
    pub chase_stats: ChaseStats,
    /// Per-dependency chase profile (wall time, activation splits, sweep
    /// phase timings; see [`grom_chase::render_report`]).
    pub chase_profile: ChaseProfile,
    /// Core-minimization statistics, when requested via
    /// [`PipelineOptions::core_minimize`].
    pub core_stats: Option<grom_chase::CoreStats>,
    /// The soundness certificate, unless validation was skipped.
    pub validation: Option<ValidationReport>,
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// Scenario-level structural problems (sides, undeclared predicates…).
    Scenario(String),
    Lang(LangError),
    Data(DataError),
    Rewrite(RewriteError),
    Materialize(MaterializeError),
    Chase(ChaseError),
}

impl PipelineError {
    pub fn scenario(msg: impl Into<String>) -> Self {
        PipelineError::Scenario(msg.into())
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Scenario(m) => write!(f, "scenario error: {m}"),
            PipelineError::Lang(e) => write!(f, "{e}"),
            PipelineError::Data(e) => write!(f, "{e}"),
            PipelineError::Rewrite(e) => write!(f, "{e}"),
            PipelineError::Materialize(e) => write!(f, "{e}"),
            PipelineError::Chase(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<LangError> for PipelineError {
    fn from(e: LangError) -> Self {
        PipelineError::Lang(e)
    }
}
impl From<DataError> for PipelineError {
    fn from(e: DataError) -> Self {
        PipelineError::Data(e)
    }
}
impl From<RewriteError> for PipelineError {
    fn from(e: RewriteError) -> Self {
        PipelineError::Rewrite(e)
    }
}
impl From<MaterializeError> for PipelineError {
    fn from(e: MaterializeError) -> Self {
        PipelineError::Materialize(e)
    }
}
impl From<ChaseError> for PipelineError {
    fn from(e: ChaseError) -> Self {
        PipelineError::Chase(e)
    }
}

impl MappingScenario {
    /// Rewrite the scenario's semantic mappings into executable
    /// dependencies over the physical schemas (no chase). Source views are
    /// *not* unfolded — they are materialized at run time (the composition
    /// reduction of §3), so the rewriting only unfolds target views.
    pub fn rewrite(&self, options: &RewriteOptions) -> Result<RewriteOutput, PipelineError> {
        let deps: Vec<Dependency> = self.all_dependencies().cloned().collect();
        Ok(rewrite_program(&self.target_views, &deps, options)?)
    }

    /// Run the full pipeline with a flat [`crate::GromConfig`] — the
    /// preferred entry point; [`MappingScenario::run`] with hand-assembled
    /// [`PipelineOptions`] remains for existing callers.
    pub fn run_with(
        &self,
        source: &Instance,
        config: &crate::GromConfig,
    ) -> Result<ExchangeResult, PipelineError> {
        self.run(source, &config.into())
    }

    /// Run the full pipeline on a source instance.
    pub fn run(
        &self,
        source: &Instance,
        options: &PipelineOptions,
    ) -> Result<ExchangeResult, PipelineError> {
        self.validate()?;
        if !options.skip_typecheck {
            self.typecheck_source(source)?;
        }

        // 1. Materialize the source semantic schema (if any) and extend the
        //    working database with its extents.
        let materialized = grom_engine::materialize_views_tracked(&self.source_views, source)?;
        let source_view_extents = materialized.extents;
        let source_view_counts = materialized.per_view;
        let mut working = source.clone();
        working.absorb(&source_view_extents)?;

        // 2. Rewrite against the target views.
        let rewritten = self.rewrite(&options.rewrite)?;

        // 3. Termination analysis (informational — the chase also has a
        //    round budget).
        let wa_report = grom_chase::is_weakly_acyclic(&rewritten.deps);

        // 4. Chase (greedy ded strategy when deds are present). With
        //    interning on, the working instance and the dependency
        //    constants pass through one symbol table first, so every join
        //    and dedup inside the chase compares dense ids; the extraction
        //    below folds the symbols back into plain strings. An
        //    interrupted chase is un-interned the same way before it
        //    propagates, so its checkpoint serializes plain strings and
        //    resumes without the run's symbol table.
        let result = if options.interning {
            let mut table = SymbolTable::new();
            let interned = working.intern_strings(&mut table);
            let deps = intern_dependencies(&rewritten.deps, &mut table);
            match chase_with_deds(interned, &deps, &options.chase) {
                Ok(r) => r,
                Err(ChaseError::Interrupted(mut i)) => {
                    i.unintern();
                    return Err(PipelineError::Chase(ChaseError::Interrupted(i)));
                }
                Err(e) => return Err(e.into()),
            }
        } else {
            chase_with_deds(working, &rewritten.deps, &options.chase)?
        };

        // 5. Extract the target instance: target-schema relations only,
        //    un-interned back to string constants.
        let mut target = self.extract_target(&result.instance)?;

        // 5b. Optional core minimization of the universal solution.
        let core_stats = options
            .core_minimize
            .then(|| grom_chase::core_minimize(&mut target));

        // 6. Soundness certificate.
        let validation = if options.skip_validation {
            None
        } else {
            Some(validate_solution(self, source, &target)?)
        };

        Ok(ExchangeResult {
            target,
            source_view_extents,
            source_view_counts,
            rewritten,
            wa_report,
            chase_stats: result.stats,
            chase_profile: result.profile,
            core_stats,
            validation,
        })
    }

    /// Project a chased instance down to the target schema, folding
    /// interned symbols back into plain string constants.
    pub fn extract_target(&self, chased: &Instance) -> Result<Instance, PipelineError> {
        let mut target = Instance::new();
        for rel in self.target_schema.relations() {
            for t in chased.tuples(rel.name()) {
                let values: Vec<Value> = t.values().iter().map(Value::unintern).collect();
                target.insert(rel.name(), values.into())?;
            }
        }
        Ok(target)
    }

    /// Continue an interrupted pipeline run from a chase checkpoint.
    ///
    /// The scenario is re-rewritten to recover the dependency set the
    /// checkpoint's worklist is aligned with; source materialization is
    /// skipped — the checkpoint instance already contains the sources and
    /// everything derived from them. Interning is likewise skipped:
    /// checkpoints always store plain strings (see
    /// [`grom_chase::Interrupted::unintern`]).
    ///
    /// Scenarios whose rewriting produces disjunctive embedded
    /// dependencies chase a *derived* dependency set per ded scenario; a
    /// checkpoint from such a run resumes exactly only under the same
    /// derived set, which this method does not reconstruct — it fails up
    /// front instead of resuming against the wrong program.
    pub fn resume(
        &self,
        checkpoint: &grom_chase::Checkpoint,
        options: &PipelineOptions,
    ) -> Result<grom_chase::ChaseOutcome, PipelineError> {
        self.validate()?;
        let rewritten = self.rewrite(&options.rewrite)?;
        if !rewritten.is_ded_free() {
            return Err(PipelineError::scenario(
                "cannot resume a checkpoint for a scenario with disjunctive \
                 dependencies: the ded campaign chases derived programs the \
                 checkpoint worklist is not aligned with",
            ));
        }
        Ok(grom_chase::chase_resume(
            checkpoint,
            &rewritten.deps,
            &options.chase,
        )?)
    }

    /// Check a source instance against the source schema: every relation
    /// declared, every tuple well-typed.
    pub fn typecheck_source(&self, source: &Instance) -> Result<(), PipelineError> {
        for name in source.relation_names() {
            let Some(rel_schema) = self.source_schema.relation(name) else {
                return Err(PipelineError::scenario(format!(
                    "source instance populates `{name}`, which is not in the source schema"
                )));
            };
            for t in source.tuples(name) {
                rel_schema.check_tuple(t)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_data::{Tuple, Value};
    use grom_lang::Program;

    fn paper_scenario() -> MappingScenario {
        let prog = Program::parse(crate::scenario::tests::PAPER_SCENARIO).unwrap();
        MappingScenario::from_program(&prog).unwrap()
    }

    fn paper_source() -> Instance {
        let mut s = Instance::new();
        // (id, name, store, rating)
        for (id, name, store, rating) in [
            (1, "tv", "acme", 5),
            (2, "radio", "acme", 3),
            (3, "fridge", "bestbuy", 1),
        ] {
            s.add(
                "S_Product",
                vec![
                    Value::int(id),
                    Value::str(name),
                    Value::str(store),
                    Value::int(rating),
                ],
            )
            .unwrap();
        }
        for (name, loc) in [("acme", "rome"), ("bestbuy", "milan")] {
            s.add("S_Store", vec![Value::str(name), Value::str(loc)])
                .unwrap();
        }
        s
    }

    #[test]
    fn paper_running_example_end_to_end() {
        let sc = paper_scenario();
        let res = sc
            .run(&paper_source(), &PipelineOptions::default())
            .unwrap();

        // Every product id lands in T_Product. (The universal solution may
        // contain extra tuples with labeled nulls — e.g. the SoldAt
        // unfolding re-derives products — so count distinct ids.)
        let mut pids: Vec<i64> = res
            .target
            .tuples("T_Product")
            .filter_map(|t| t.get(0).unwrap().as_int())
            .collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids, vec![1, 2, 3]);
        // The average product (rating 3) needs a 1-rating witness; the
        // unpopular one (rating 1) needs a 0-rating witness.
        let ratings: Vec<&Tuple> = res.target.tuples("T_Rating").collect();
        assert!(ratings.len() >= 2, "ratings: {ratings:?}");
        // Stores are created with invented ids.
        assert!(res.target.tuples("T_Store").count() >= 2);

        // The soundness certificate holds.
        let validation = res.validation.unwrap();
        assert!(validation.ok, "{validation}");

        // e0 over negated views makes the rewritten program contain deds.
        assert!(!res.rewritten.is_ded_free());
    }

    #[test]
    fn classification_respects_view_semantics() {
        let sc = paper_scenario();
        let res = sc
            .run(&paper_source(), &PipelineOptions::default())
            .unwrap();
        // Materialize the target views over J_T and check the product
        // classification matches the source ratings.
        let extents = grom_engine::materialize_views(&sc.target_views, &res.target).unwrap();
        let ids = |view: &str| -> Vec<i64> {
            let mut v: Vec<i64> = extents
                .tuples(view)
                .map(|t| t.get(0).unwrap().as_int().unwrap())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(ids("PopularProduct"), vec![1]);
        assert_eq!(ids("AvgProduct"), vec![2]);
        assert_eq!(ids("UnpopularProduct"), vec![3]);
    }

    #[test]
    fn key_conflict_makes_chase_fail() {
        // Two distinct popular products with the same name violate e0; the
        // rewritten ded d0 lets the chase invent a 0-rating for one of them
        // — but then that product must not be popular, which m2 forces it
        // to be: the pipeline must fail (paper: "we say nothing about the
        // cases in which the rewritten mappings fail").
        let sc = paper_scenario();
        let mut source = Instance::new();
        for (id, name) in [(1, "tv"), (2, "tv")] {
            source
                .add(
                    "S_Product",
                    vec![
                        Value::int(id),
                        Value::str(name),
                        Value::str("acme"),
                        Value::int(5),
                    ],
                )
                .unwrap();
        }
        source
            .add("S_Store", vec![Value::str("acme"), Value::str("rome")])
            .unwrap();
        let res = sc.run(&source, &PipelineOptions::default());
        assert!(
            matches!(res, Err(PipelineError::Chase(_))),
            "expected chase failure, got {res:?}"
        );
    }

    #[test]
    fn source_views_materialize_and_feed_mappings() {
        let prog = Program::parse(
            r#"
            schema source { S_Emp(name: string, salary: int); }
            schema target { T_Rich(name: string); }
            view RichEmp(n) <- S_Emp(n, s), s > 100.
            tgd m: RichEmp(n) -> T_Rich(n).
            "#,
        )
        .unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        let mut source = Instance::new();
        source
            .add("S_Emp", vec![Value::str("ann"), Value::int(200)])
            .unwrap();
        source
            .add("S_Emp", vec![Value::str("bob"), Value::int(50)])
            .unwrap();
        let res = sc.run(&source, &PipelineOptions::default()).unwrap();
        assert_eq!(res.source_view_extents.tuples("RichEmp").count(), 1);
        let rich: Vec<_> = res.target.tuples("T_Rich").collect();
        assert_eq!(rich.len(), 1);
        assert_eq!(rich[0].get(0), Some(&Value::str("ann")));
        assert!(res.validation.unwrap().ok);
    }

    #[test]
    fn source_view_counts_reported() {
        let prog = Program::parse(
            r#"
            schema source { S_Emp(name: string, salary: int); }
            schema target { T_Rich(name: string); }
            view RichEmp(n) <- S_Emp(n, s), s > 100.
            tgd m: RichEmp(n) -> T_Rich(n).
            "#,
        )
        .unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        let mut source = Instance::new();
        source
            .add("S_Emp", vec![Value::str("ann"), Value::int(200)])
            .unwrap();
        source
            .add("S_Emp", vec![Value::str("cyn"), Value::int(300)])
            .unwrap();
        let res = sc.run(&source, &PipelineOptions::default()).unwrap();
        assert_eq!(res.source_view_counts["RichEmp"], 2);
    }

    #[test]
    fn full_rescan_scheduler_agrees_with_delta_default() {
        use grom_chase::SchedulerMode;
        let sc = paper_scenario();
        let delta = sc
            .run(&paper_source(), &PipelineOptions::default())
            .unwrap();
        let naive_opts = PipelineOptions {
            chase: ChaseConfig::default().with_scheduler(SchedulerMode::FullRescan),
            ..Default::default()
        };
        let naive = sc.run(&paper_source(), &naive_opts).unwrap();
        assert!(delta.validation.unwrap().ok);
        assert!(naive.validation.unwrap().ok);
        // Identical targets up to null relabeling.
        assert_eq!(
            grom_data::canonical_render(&delta.target),
            grom_data::canonical_render(&naive.target)
        );
        // The delta run actually exercised delta scheduling.
        assert!(delta.chase_stats.delta_activations > 0);
        assert_eq!(naive.chase_stats.delta_activations, 0);
    }

    #[test]
    fn parallel_pipeline_agrees_with_sequential() {
        let sc = paper_scenario();
        let seq = sc
            .run(&paper_source(), &PipelineOptions::default())
            .unwrap();
        let par_opts = PipelineOptions::default().with_threads(4);
        let par = sc.run(&paper_source(), &par_opts).unwrap();
        assert!(par.validation.unwrap().ok);
        assert_eq!(
            grom_data::canonical_render(&seq.target),
            grom_data::canonical_render(&par.target)
        );
    }

    #[test]
    fn typecheck_rejects_bad_source() {
        let sc = paper_scenario();
        let mut source = Instance::new();
        source.add("Unknown", vec![Value::int(1)]).unwrap();
        let err = sc.run(&source, &PipelineOptions::default()).unwrap_err();
        assert!(err.to_string().contains("not in the source schema"));

        let mut source = Instance::new();
        source
            .add("S_Store", vec![Value::int(3), Value::str("x")])
            .unwrap();
        let err = sc.run(&source, &PipelineOptions::default()).unwrap_err();
        assert!(matches!(err, PipelineError::Data(_)));
    }

    #[test]
    fn empty_source_gives_empty_target() {
        let sc = paper_scenario();
        let res = sc
            .run(&Instance::new(), &PipelineOptions::default())
            .unwrap();
        assert!(res.target.is_empty());
        assert!(res.validation.unwrap().ok);
    }

    #[test]
    fn skip_validation_option() {
        let sc = paper_scenario();
        let opts = PipelineOptions {
            skip_validation: true,
            ..Default::default()
        };
        let res = sc.run(&paper_source(), &opts).unwrap();
        assert!(res.validation.is_none());
    }

    #[test]
    fn core_minimization_folds_redundant_witnesses() {
        // Two mappings target T: one with an existential witness, one with
        // concrete data. The restricted chase (visiting `a` before `b`)
        // leaves a redundant T(1, N) beside T(1, 5); the core folds it and
        // the result still validates (the core of a universal solution is a
        // universal solution).
        let prog = Program::parse(
            r#"
            schema source { S(x: int); S2(x: int, y: int); }
            schema target { T(x: int, y: int); }
            view V(x) <- T(x, y).
            view V2(x, y) <- T(x, y).
            tgd a: S(x) -> V(x).
            tgd b: S2(x, y) -> V2(x, y).
            "#,
        )
        .unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        let mut source = Instance::new();
        source.add("S", vec![Value::int(1)]).unwrap();
        source
            .add("S2", vec![Value::int(1), Value::int(5)])
            .unwrap();

        let plain = sc.run(&source, &PipelineOptions::default()).unwrap();
        assert_eq!(plain.target.tuples("T").count(), 2);

        let opts = PipelineOptions {
            core_minimize: true,
            ..Default::default()
        };
        let cored = sc.run(&source, &opts).unwrap();
        let stats = cored.core_stats.unwrap();
        assert_eq!(stats.nulls_folded, 1, "{stats:?}");
        assert_eq!(cored.target.tuples("T").count(), 1);
        let t: Vec<_> = cored.target.tuples("T").collect();
        assert_eq!(t[0].get(1), Some(&Value::int(5)));
        assert!(cored.validation.unwrap().ok);
    }

    #[test]
    fn paper_scenario_is_already_core() {
        // In the running example every invented store block is linked to
        // its own product row, so nothing folds: the chase output is its
        // own core (a meaningful negative result).
        let sc = paper_scenario();
        let opts = PipelineOptions {
            core_minimize: true,
            ..Default::default()
        };
        let res = sc.run(&paper_source(), &opts).unwrap();
        assert_eq!(res.core_stats.unwrap().nulls_folded, 0);
        assert!(res.validation.unwrap().ok);
    }

    #[test]
    fn wa_report_present() {
        let sc = paper_scenario();
        let res = sc
            .run(&paper_source(), &PipelineOptions::default())
            .unwrap();
        assert!(res.wa_report.weakly_acyclic, "{}", res.wa_report);
    }
}
