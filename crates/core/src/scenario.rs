//! Mapping scenarios: the input bundle of Figure 2.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use grom_data::Schema;
use grom_lang::{Dependency, Literal, Program, ViewRule, ViewSet};

use crate::pipeline::PipelineError;

/// A complete GROM mapping scenario.
///
/// Dependencies are split into **mappings** (premise touches the source
/// side) and **target constraints** (premise entirely on the target side);
/// [`MappingScenario::from_program`] performs that split automatically, and
/// likewise assigns each view to the source or target semantic schema by
/// the base tables it (transitively) reads.
#[derive(Debug, Clone, Default)]
pub struct MappingScenario {
    pub source_schema: Schema,
    pub target_schema: Schema,
    /// `Υ_S`: views whose base tables all belong to the source schema.
    pub source_views: ViewSet,
    /// `Υ_T`: views whose base tables all belong to the target schema.
    pub target_views: ViewSet,
    /// `Σ_{V_S,V_T}`: source-to-target dependencies (over views or base).
    pub mappings: Vec<Dependency>,
    /// `Σ_{V_T}`: constraints over the target (semantic) schema.
    pub target_constraints: Vec<Dependency>,
}

/// Which side of the scenario a predicate belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Source,
    Target,
}

impl MappingScenario {
    /// Build a scenario from a parsed [`Program`]. The program must declare
    /// schemas named `source` and `target`; views and dependencies are
    /// assigned to sides automatically. Inline facts are ignored here (load
    /// them separately into an [`grom_data::Instance`]).
    pub fn from_program(program: &Program) -> Result<MappingScenario, PipelineError> {
        program.validate().map_err(PipelineError::Lang)?;
        let source_schema = program
            .schema("source")
            .cloned()
            .ok_or_else(|| PipelineError::scenario("program declares no `source` schema"))?;
        let target_schema = program
            .schema("target")
            .cloned()
            .ok_or_else(|| PipelineError::scenario("program declares no `target` schema"))?;

        let mut scenario = MappingScenario {
            source_schema,
            target_schema,
            ..Default::default()
        };

        // Assign views to sides by the base tables they transitively read.
        // Views reading no base tables at all default to the target side.
        for rule in program.views.rules() {
            scenario.classify_and_add_rule(rule.clone(), &program.views)?;
        }
        scenario
            .source_views
            .validate()
            .map_err(PipelineError::Lang)?;
        scenario
            .target_views
            .validate()
            .map_err(PipelineError::Lang)?;

        for dep in &program.deps {
            match scenario.dependency_side(dep)? {
                Side::Target => scenario.target_constraints.push(dep.clone()),
                Side::Source => scenario.mappings.push(dep.clone()),
            }
        }

        scenario.validate()?;
        Ok(scenario)
    }

    /// The side of a predicate: a physical relation's schema, or a view's
    /// transitive base tables.
    pub fn predicate_side(&self, pred: &str) -> Option<Side> {
        if self.source_schema.contains(pred) || self.source_views.is_view(pred) {
            Some(Side::Source)
        } else if self.target_schema.contains(pred) || self.target_views.is_view(pred) {
            Some(Side::Target)
        } else {
            None
        }
    }

    fn classify_and_add_rule(
        &mut self,
        rule: ViewRule,
        all_views: &ViewSet,
    ) -> Result<(), PipelineError> {
        let mut bases = BTreeSet::new();
        collect_base_predicates(&rule.head.predicate, all_views, &mut bases);
        let mut sides = BTreeSet::new();
        for b in &bases {
            if self.source_schema.contains(b) {
                sides.insert("source");
            } else if self.target_schema.contains(b) {
                sides.insert("target");
            } else {
                return Err(PipelineError::scenario(format!(
                    "view `{}` reads `{b}`, which is in neither schema",
                    rule.head.predicate
                )));
            }
        }
        if sides.len() > 1 {
            return Err(PipelineError::scenario(format!(
                "view `{}` mixes source and target base tables",
                rule.head.predicate
            )));
        }
        let target_side = sides.first().copied() != Some("source");
        let set = if target_side {
            &mut self.target_views
        } else {
            &mut self.source_views
        };
        set.add_rule(rule).map_err(PipelineError::Lang)
    }

    /// Classify a dependency: `Target` when every premise predicate lives
    /// on the target side, `Source` (a mapping) otherwise.
    fn dependency_side(&self, dep: &Dependency) -> Result<Side, PipelineError> {
        let mut any_source = false;
        for lit in &dep.premise {
            if let Some(atom) = lit.atom() {
                match self.predicate_side(&atom.predicate) {
                    Some(Side::Source) => any_source = true,
                    Some(Side::Target) => {}
                    None => {
                        return Err(PipelineError::scenario(format!(
                            "dependency `{}` mentions undeclared predicate `{}`",
                            dep.name, atom.predicate
                        )))
                    }
                }
            }
        }
        Ok(if any_source {
            Side::Source
        } else {
            Side::Target
        })
    }

    /// Structural validation beyond what `from_program` guarantees; also
    /// callable on hand-assembled scenarios.
    pub fn validate(&self) -> Result<(), PipelineError> {
        // Schemas must not share relation names (the paper's S-/T- prefix
        // convention); the chase relies on it.
        for rel in self.source_schema.relations() {
            if self.target_schema.contains(rel.name()) {
                return Err(PipelineError::scenario(format!(
                    "relation `{}` appears in both schemas; use distinct names",
                    rel.name()
                )));
            }
        }
        // Views must not collide with physical relations or each other.
        let mut seen: BTreeSet<Arc<str>> = BTreeSet::new();
        for v in self
            .source_views
            .view_names()
            .chain(self.target_views.view_names())
        {
            if self.source_schema.contains(v) || self.target_schema.contains(v) {
                return Err(PipelineError::scenario(format!(
                    "view `{v}` collides with a physical relation name"
                )));
            }
            if !seen.insert(v.clone()) {
                return Err(PipelineError::scenario(format!(
                    "view `{v}` defined on both sides"
                )));
            }
        }
        // Mappings must conclude on the target side.
        for dep in &self.mappings {
            for d in &dep.disjuncts {
                for a in &d.atoms {
                    if self.predicate_side(&a.predicate) != Some(Side::Target) {
                        return Err(PipelineError::scenario(format!(
                            "mapping `{}` concludes on non-target predicate `{}`",
                            dep.name, a.predicate
                        )));
                    }
                }
            }
        }
        // Target constraints must stay on the target side entirely.
        for dep in &self.target_constraints {
            for p in dep.predicates() {
                if self.predicate_side(&p) != Some(Side::Target) {
                    return Err(PipelineError::scenario(format!(
                        "target constraint `{}` mentions non-target predicate `{p}`",
                        dep.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// All dependencies (mappings then target constraints).
    pub fn all_dependencies(&self) -> impl Iterator<Item = &Dependency> {
        self.mappings.iter().chain(self.target_constraints.iter())
    }
}

/// Transitively collect the base (non-view) predicates reachable from
/// `pred` through view definitions.
fn collect_base_predicates(pred: &Arc<str>, views: &ViewSet, out: &mut BTreeSet<Arc<str>>) {
    if !views.is_view(pred) {
        out.insert(pred.clone());
        return;
    }
    for rule in views.rules_of(pred) {
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => {
                    collect_base_predicates(&a.predicate, views, out)
                }
                Literal::Cmp(_) => {}
            }
        }
    }
}

impl fmt::Display for MappingScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema source {{")?;
        for rel in self.source_schema.relations() {
            writeln!(f, "  {rel};")?;
        }
        writeln!(f, "}}")?;
        writeln!(f, "schema target {{")?;
        for rel in self.target_schema.relations() {
            writeln!(f, "  {rel};")?;
        }
        writeln!(f, "}}")?;
        write!(f, "{}", self.source_views)?;
        write!(f, "{}", self.target_views)?;
        for d in self.all_dependencies() {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's full running example as a program text.
    pub(crate) const PAPER_SCENARIO: &str = r#"
        schema source {
            S_Product(id: int, name: string, store: string, rating: int);
            S_Store(name: string, location: string);
        }
        schema target {
            T_Product(id: int, name: string, store: int);
            T_Store(id: int, name: string, address: string, phone: string);
            T_Rating(id: int, product: int, thumbsUp: int);
        }

        view Product(id, name) <- T_Product(id, name, store).
        view PopularProduct(pid, name) <-
            T_Product(pid, name, store), not T_Rating(rid, pid, 0).
        view AvgProduct(pid, name) <-
            T_Product(pid, name, store), T_Rating(rid, pid, 1),
            not PopularProduct(pid, name).
        view UnpopularProduct(pid, name) <-
            T_Product(pid, name, store),
            not AvgProduct(pid, name), not PopularProduct(pid, name).
        view SoldAt(pid, stid) <- T_Product(pid, pname, stid).
        view Store(id, name, addr) <- T_Store(id, name, addr, phone).

        tgd m0: S_Product(pid, name, store, rating), rating < 2
            -> UnpopularProduct(pid, name).
        tgd m1: S_Product(pid, name, store, rating), rating >= 2, rating < 4
            -> AvgProduct(pid, name).
        tgd m2: S_Product(pid, name, store, rating), rating >= 4
            -> PopularProduct(pid, name).
        tgd m3: S_Product(pid, name, store, rating), S_Store(store, location)
            -> SoldAt(pid, sid), Store(sid, store, location).

        egd e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.
    "#;

    #[test]
    fn paper_scenario_classifies_correctly() {
        let prog = Program::parse(PAPER_SCENARIO).unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        assert_eq!(sc.source_schema.len(), 2);
        assert_eq!(sc.target_schema.len(), 3);
        assert_eq!(sc.source_views.len(), 0);
        assert_eq!(sc.target_views.len(), 6);
        assert_eq!(sc.mappings.len(), 4);
        assert_eq!(sc.target_constraints.len(), 1);
        assert_eq!(sc.target_constraints[0].name.as_ref(), "e0");
    }

    #[test]
    fn source_views_are_classified_by_base_tables() {
        let prog = Program::parse(
            r#"
            schema source { S_A(x: int); }
            schema target { T_B(x: int); }
            view CleanA(x) <- S_A(x), x > 0.
            view TargetB(x) <- T_B(x).
            tgd m: CleanA(x) -> TargetB(x).
            "#,
        )
        .unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        assert!(sc.source_views.is_view("CleanA"));
        assert!(sc.target_views.is_view("TargetB"));
        assert_eq!(sc.mappings.len(), 1);
    }

    #[test]
    fn view_over_chained_views_resolves_base_tables() {
        let prog = Program::parse(
            r#"
            schema source { S_A(x: int); }
            schema target { T_B(x: int); }
            view V1(x) <- T_B(x).
            view V2(x) <- V1(x).
            tgd m: S_A(x) -> V2(x).
            "#,
        )
        .unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        assert!(sc.target_views.is_view("V2"));
    }

    #[test]
    fn mixed_side_view_rejected() {
        let prog = Program::parse(
            r#"
            schema source { S_A(x: int); }
            schema target { T_B(x: int); }
            view Bad(x) <- S_A(x), T_B(x).
            tgd m: S_A(x) -> T_B(x).
            "#,
        )
        .unwrap();
        let err = MappingScenario::from_program(&prog).unwrap_err();
        assert!(err.to_string().contains("mixes source and target"));
    }

    #[test]
    fn missing_schema_rejected() {
        let prog = Program::parse("schema source { S(x: int); }").unwrap();
        let err = MappingScenario::from_program(&prog).unwrap_err();
        assert!(err.to_string().contains("target"));
    }

    #[test]
    fn shared_relation_name_rejected() {
        let prog =
            Program::parse("schema source { R(x: int); }\nschema target { R(x: int); }").unwrap();
        let err = MappingScenario::from_program(&prog).unwrap_err();
        assert!(err.to_string().contains("both schemas"));
    }

    #[test]
    fn mapping_concluding_on_source_rejected() {
        let prog = Program::parse(
            r#"
            schema source { S_A(x: int); }
            schema target { T_B(x: int); }
            tgd m: S_A(x) -> S_A(x).
            "#,
        )
        .unwrap();
        let err = MappingScenario::from_program(&prog).unwrap_err();
        assert!(err.to_string().contains("non-target"));
    }

    #[test]
    fn undeclared_predicate_rejected() {
        let prog = Program::parse(
            r#"
            schema source { S_A(x: int); }
            schema target { T_B(x: int); }
            tgd m: Mystery(x) -> T_B(x).
            "#,
        )
        .unwrap();
        let err = MappingScenario::from_program(&prog).unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn target_only_premise_is_constraint() {
        let prog = Program::parse(
            r#"
            schema source { S_A(x: int); }
            schema target { T_B(x: int, y: int); }
            egd key: T_B(x, a), T_B(x, b) -> a = b.
            tgd m: S_A(x) -> T_B(x, y).
            "#,
        )
        .unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        assert_eq!(sc.target_constraints.len(), 1);
        assert_eq!(sc.mappings.len(), 1);
    }

    #[test]
    fn display_includes_everything() {
        let prog = Program::parse(PAPER_SCENARIO).unwrap();
        let sc = MappingScenario::from_program(&prog).unwrap();
        let text = sc.to_string();
        assert!(text.contains("schema source"));
        assert!(text.contains("view PopularProduct"));
        assert!(text.contains("dep e0"));
    }
}
