//! The `grom` command-line tool: the scriptable counterpart of the demo's
//! GUI (Figure 3 of the paper).
//!
//! ```text
//! grom rewrite  <scenario.grom>                      print the rewritten program
//! grom analyze  <scenario.grom>                      restriction report (problematic views)
//! grom run      <scenario.grom> [data.facts]         full pipeline; prints J_T
//!               [--core] [--no-validate] [--quiet] [--threads N] [--trace out.jsonl]
//! grom explain  <scenario.grom|corpus-entry|corpus>  chase + dominance report
//!               [data.facts] [--threads N] [--top N] [--slowest N] [--trace out.jsonl]
//! grom validate <scenario.grom> <source.facts> <target.facts>
//!                                                    check an existing solution
//! grom corpus   <gen|record|verify|fuzz|list> ...    conformance-corpus tooling
//! ```
//!
//! Scenario files use the language documented in `grom_lang::parser`; data
//! files are fact-per-line (`grom_data::io`). A scenario's inline `fact`s
//! are always loaded; a data file adds to them.
//!
//! `run` and `explain` stream a JSONL chase trace when `--trace <path>` is
//! given (or the `GROM_TRACE` environment variable is set) — one event per
//! activation, merge and sweep; see the README's Observability section.

use std::process::ExitCode;

use grom::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  grom rewrite  <scenario.grom>\n  grom analyze  <scenario.grom>\n  \
         grom run      <scenario.grom> [data.facts] [--core] [--no-validate] [--quiet] \
         [--threads N] [--trace out.jsonl]\n                \
         [--deadline-ms MS] [--max-tuples N] [--checkpoint <file>] [--resume <file>]\n  \
         grom explain  <scenario.grom|corpus-entry|corpus> [data.facts] [--threads N] \
         [--top N] [--slowest N] [--trace out.jsonl]\n  \
         grom validate <scenario.grom> <source.facts> <target.facts>\n  \
         grom corpus   gen    --name <entry> --spec \"<spec>\" [--dir corpus]\n  \
         grom corpus   record [--dir corpus] [entry...]\n  \
         grom corpus   verify [--dir corpus] [--summary-md <file>] [entry...]\n  \
         grom corpus   fuzz   [--budget N] [--seed S] [--max-scale K] [--deadline-ms MS] \
         [--out <dir>]\n  \
         grom corpus   list   [--dir corpus]"
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("grom: {msg}");
    ExitCode::FAILURE
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Program::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_scenario(path: &str) -> Result<(MappingScenario, Instance), String> {
    let program = load_program(path)?;
    let mut inline = Instance::new();
    for f in &program.facts {
        inline
            .insert_fact(f.clone())
            .map_err(|e| format!("{path}: inline facts: {e}"))?;
    }
    let scenario = MappingScenario::from_program(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok((scenario, inline))
}

/// Render a data error against the file it came from: a `file:line:`
/// prefix when the error carries line context (so terminals make it
/// clickable), and the offending relation named in the message either way.
fn describe_data_error(path: &str, e: &grom::data::GromError) -> String {
    match e.line() {
        // Syntax errors embed their own `line N:` prefix; print just the
        // message so the line appears once, in the clickable position.
        Some(line) => match e.unwrap_context() {
            grom::data::GromError::Syntax { message, .. } => format!("{path}:{line}: {message}"),
            inner => format!("{path}:{line}: {inner}"),
        },
        None => format!("{path}: {e}"),
    }
}

fn load_facts(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    grom::data::read_instance(&text).map_err(|e| describe_data_error(path, &e))
}

/// Resolve the trace destination: the `--trace` flag wins, then the
/// `GROM_TRACE` environment variable; neither yields the no-op handle.
fn open_trace(flag: Option<&str>) -> Result<TraceHandle, String> {
    let path = flag
        .map(str::to_string)
        .or_else(|| std::env::var("GROM_TRACE").ok());
    match path.as_deref() {
        Some(p) if !p.is_empty() => {
            let sink = grom::trace::JsonlSink::create(std::path::Path::new(p))
                .map_err(|e| format!("cannot create trace file `{p}`: {e}"))?;
            Ok(TraceHandle::new(std::sync::Arc::new(sink)))
        }
        _ => Ok(TraceHandle::none()),
    }
}

fn cmd_rewrite(path: &str) -> ExitCode {
    let (scenario, _) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let out = match scenario.rewrite(&RewriteOptions::default()) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    for dep in &out.deps {
        println!("[{}] {}", dep.class(), dep);
    }
    if !out.warnings.is_empty() {
        eprintln!("\nwarnings (sound strengthenings):");
        for w in &out.warnings {
            eprintln!("  {w}");
        }
    }
    for (name, causes) in &out.ded_causes {
        let causes: Vec<String> = causes.iter().map(|c| c.to_string()).collect();
        eprintln!("ded `{name}` caused by: {}", causes.join(", "));
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(path: &str) -> ExitCode {
    let (scenario, _) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let deps: Vec<Dependency> = scenario.all_dependencies().cloned().collect();
    match analyze(&scenario.target_views, &deps, &RewriteOptions::default()) {
        Ok((report, _)) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// Hook SIGINT to a [`CancelToken`]: the first Ctrl-C requests a graceful,
/// sweep-aligned interruption (the handler only flips an atomic, which is
/// async-signal-safe). Installing twice is a no-op.
#[cfg(unix)]
fn install_ctrl_c(token: &CancelToken) {
    use std::sync::OnceLock;
    static CTRL_C_TOKEN: OnceLock<CancelToken> = OnceLock::new();
    extern "C" fn on_sigint(_sig: i32) {
        if let Some(t) = CTRL_C_TOKEN.get() {
            t.cancel();
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    if CTRL_C_TOKEN.set(token.clone()).is_ok() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
fn install_ctrl_c(_token: &CancelToken) {}

/// Report an interrupted chase: partial statistics always, a checkpoint
/// file when the caller asked for one. Exit code 3 distinguishes "stopped
/// resumable" from hard failures.
fn report_interrupted(
    i: &grom::chase::Interrupted,
    checkpoint_path: Option<&str>,
    quiet: bool,
) -> ExitCode {
    eprintln!(
        "chase interrupted ({}) after {} rounds; instance so far has {} tuples",
        i.reason,
        i.stats.rounds,
        i.instance.len()
    );
    if !quiet {
        eprintln!("chase: {}", i.stats);
    }
    match checkpoint_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, i.checkpoint.to_json()) {
                return fail(format!("cannot write checkpoint `{p}`: {e}"));
            }
            eprintln!(
                "checkpoint written to `{p}`; continue with `grom run <scenario> --resume {p}`"
            );
        }
        None => eprintln!("hint: pass `--checkpoint <file>` to save a resumable checkpoint"),
    }
    ExitCode::from(3)
}

fn cmd_run(path: &str, rest: &[String]) -> ExitCode {
    let mut data_file: Option<&str> = None;
    let mut core = false;
    let mut no_validate = false;
    let mut quiet = false;
    let mut threads: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_tuples: Option<usize> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => core = true,
            "--no-validate" => no_validate = true,
            "--quiet" => quiet = true,
            "--threads" => {
                threads = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => return fail("--threads requires a positive integer"),
                };
            }
            "--trace" => {
                trace_path = match args.next() {
                    Some(p) => Some(p.clone()),
                    None => return fail("--trace requires a file path"),
                };
            }
            "--deadline-ms" => {
                deadline_ms = match args.next().and_then(|v| v.parse().ok()) {
                    Some(ms) => Some(ms),
                    None => return fail("--deadline-ms requires a millisecond count"),
                };
            }
            "--max-tuples" => {
                max_tuples = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => return fail("--max-tuples requires a positive integer"),
                };
            }
            "--checkpoint" => {
                checkpoint_path = match args.next() {
                    Some(p) => Some(p.clone()),
                    None => return fail("--checkpoint requires a file path"),
                };
            }
            "--resume" => {
                resume_path = match args.next() {
                    Some(p) => Some(p.clone()),
                    None => return fail("--resume requires a checkpoint file"),
                };
            }
            flag if flag.starts_with("--") => {
                return fail(format!("unknown flag `{flag}`"));
            }
            file => data_file = Some(file),
        }
    }

    let (scenario, mut source) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if let Some(f) = data_file {
        match load_facts(f) {
            Ok(extra) => {
                if let Err(e) = source.absorb(&extra) {
                    return fail(describe_data_error(f, &e));
                }
            }
            Err(e) => return fail(e),
        }
    }

    let trace = match open_trace(trace_path.as_deref()) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let mut config = GromConfig::new()
        .with_skip_validation(no_validate)
        .with_core_minimize(core)
        .with_trace(trace);
    if let Some(n) = threads {
        config = config.with_threads(n);
    }
    let mut budget = Budget::none();
    if let Some(ms) = deadline_ms {
        budget = budget.with_deadline_ms(ms);
    }
    if let Some(n) = max_tuples {
        budget = budget.with_max_tuples(n);
    }
    config = config.with_budget(budget);
    let cancel = CancelToken::new();
    install_ctrl_c(&cancel);
    config = config.with_cancel(cancel);

    if let Some(rp) = resume_path {
        if data_file.is_some() {
            return fail("--resume continues from a checkpoint; do not also pass a data file");
        }
        let text = match std::fs::read_to_string(&rp) {
            Ok(t) => t,
            Err(e) => return fail(format!("cannot read checkpoint `{rp}`: {e}")),
        };
        let checkpoint = match Checkpoint::from_json(&text) {
            Ok(c) => c,
            Err(e) => return fail(format!("{rp}: {e}")),
        };
        let options: PipelineOptions = (&config).into();
        return match scenario.resume(&checkpoint, &options) {
            Ok(ChaseOutcome::Completed(res)) => {
                let target = match scenario.extract_target(&res.instance) {
                    Ok(t) => t,
                    Err(e) => return fail(e),
                };
                print!("{target}");
                if !quiet {
                    eprintln!("chase: {}", res.stats);
                }
                ExitCode::SUCCESS
            }
            Ok(ChaseOutcome::Interrupted(i)) => {
                report_interrupted(&i, checkpoint_path.as_deref(), quiet)
            }
            Err(e) => fail(e),
        };
    }

    match scenario.run_with(&source, &config) {
        Ok(result) => {
            print!("{}", result.target);
            if !quiet {
                eprintln!("chase: {}", result.chase_stats);
                eprintln!("termination: {}", result.wa_report);
                if let Some(cs) = &result.core_stats {
                    eprintln!(
                        "core: folded {} nulls, removed {} tuples",
                        cs.nulls_folded, cs.tuples_removed
                    );
                }
                if let Some(v) = &result.validation {
                    eprintln!("{v}");
                }
            }
            if result.validation.map(|v| !v.ok).unwrap_or(false) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(PipelineError::Chase(ChaseError::Interrupted(i))) => {
            report_interrupted(&i, checkpoint_path.as_deref(), quiet)
        }
        Err(e) => fail(e),
    }
}

fn cmd_validate(scenario_path: &str, source_path: &str, target_path: &str) -> ExitCode {
    let (scenario, inline) = match load_scenario(scenario_path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let mut source = inline;
    match load_facts(source_path) {
        Ok(s) => {
            if let Err(e) = source.absorb(&s) {
                return fail(describe_data_error(source_path, &e));
            }
        }
        Err(e) => return fail(e),
    }
    let target = match load_facts(target_path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    match validate_solution(&scenario, &source, &target) {
        Ok(report) => {
            println!("{report}");
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(e),
    }
}

// -------------------------------------------------------------- explain --

mod explain_cli {
    use super::{fail, load_facts, load_scenario, open_trace};
    use grom::chase::{chase_standard, render_report, ChaseConfig, ReportOptions};
    use grom::prelude::*;
    use grom::scenarios::{chase_mode, list_entries, read_entry};
    use std::path::{Path, PathBuf};
    use std::process::ExitCode;
    use std::time::Instant;

    /// Cross-check the profile against the run's `ChaseStats`: activation
    /// and tuple counts must agree exactly. Prints the comparison either
    /// way; returns whether it held.
    fn reconcile(profile: &ChaseProfile, stats: &ChaseStats) -> bool {
        let acts = (stats.full_rescans + stats.delta_activations) as u64;
        let tuples = stats.tuples_inserted as u64;
        let ok = profile.total_activations() == acts && profile.total_tuples_produced() == tuples;
        println!(
            "reconcile: activations {}/{} tuples {}/{}{}",
            profile.total_activations(),
            acts,
            profile.total_tuples_produced(),
            tuples,
            if ok { "" } else { "  MISMATCH" }
        );
        ok
    }

    fn report(profile: &ChaseProfile, stats: &ChaseStats, top: usize) -> bool {
        print!("{}", render_report(profile, &ReportOptions { top }));
        println!("chase: {stats}");
        reconcile(profile, stats)
    }

    /// The default config plus the entry's committed derived-tuple budget,
    /// if any — without it the `expect: interrupted` entries never
    /// terminate under an unbudgeted chase.
    fn entry_config(entry: &grom::scenarios::CorpusEntry) -> ChaseConfig {
        let mut cfg = ChaseConfig::default();
        if let Some(n) = entry.max_tuples {
            cfg = cfg.with_budget(Budget::none().with_max_tuples(n as usize));
        }
        cfg
    }

    /// Chase one corpus entry under `mode` with tracing on and print its
    /// dominance report.
    fn explain_entry(
        dir: &Path,
        mode: SchedulerMode,
        top: usize,
        trace: &TraceHandle,
    ) -> Result<bool, String> {
        let entry = read_entry(dir).map_err(|e| e.to_string())?;
        let (deps, inst) = entry.parts().map_err(|e| e.to_string())?;
        let cfg = entry_config(&entry)
            .with_scheduler(mode)
            .with_trace(trace.clone());
        println!("== {} ==", entry.name);
        match chase_standard(inst, &deps, &cfg) {
            Ok(res) => Ok(report(&res.profile, &res.stats, top)),
            // Budgeted (non-terminating) entries still profile their prefix.
            Err(ChaseError::Interrupted(i)) => {
                println!("(interrupted by budget: {}; partial profile)", i.reason);
                Ok(report(&i.profile, &i.stats, top))
            }
            Err(e) => Err(format!("entry `{}`: {e}", entry.name)),
        }
    }

    /// Rank a corpus root's entries by an untraced delta-mode chase and
    /// keep the `n` slowest — the ones worth a full explain.
    fn slowest_entries(root: &Path, n: usize) -> Result<Vec<PathBuf>, String> {
        let dirs = list_entries(root).map_err(|e| e.to_string())?;
        if dirs.is_empty() {
            return Err(format!("no corpus entries under `{}`", root.display()));
        }
        let mut timed = Vec::new();
        for dir in dirs {
            let entry = read_entry(&dir).map_err(|e| e.to_string())?;
            let (deps, inst) = entry.parts().map_err(|e| e.to_string())?;
            let cfg = entry_config(&entry);
            let t0 = Instant::now();
            // Failing entries still cost wall time; rank them like the rest.
            let _ = chase_mode(&deps, inst, SchedulerMode::Delta, &cfg);
            timed.push((t0.elapsed(), dir));
        }
        timed.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        timed.truncate(n.max(1));
        Ok(timed.into_iter().map(|(_, d)| d).collect())
    }

    /// Explain a full `.grom` scenario: run the pipeline (validation
    /// skipped — this is a chase diagnosis, not a soundness check) and
    /// report on its chase profile.
    fn explain_program(
        path: &str,
        data_file: Option<&str>,
        threads: Option<usize>,
        top: usize,
        trace: &TraceHandle,
    ) -> Result<bool, String> {
        let (scenario, mut source) = load_scenario(path)?;
        if let Some(f) = data_file {
            let extra = load_facts(f)?;
            source.absorb(&extra).map_err(|e| e.to_string())?;
        }
        let mut config = GromConfig::new()
            .with_skip_validation(true)
            .with_trace(trace.clone());
        if let Some(n) = threads {
            config = config.with_threads(n);
        }
        let result = scenario
            .run_with(&source, &config)
            .map_err(|e| e.to_string())?;
        Ok(report(&result.chase_profile, &result.chase_stats, top))
    }

    pub fn cmd_explain(path: &str, rest: &[String]) -> ExitCode {
        let mut threads: Option<usize> = None;
        let mut top = 10usize;
        let mut slowest = 2usize;
        let mut trace_path: Option<String> = None;
        let mut data_file: Option<&str> = None;
        let mut args = rest.iter();
        while let Some(arg) = args.next() {
            let mut number = |flag: &str| -> Result<usize, ExitCode> {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail(format!("{flag} requires a positive integer")))
            };
            match arg.as_str() {
                "--threads" => match number("--threads") {
                    Ok(n) => threads = Some(n),
                    Err(code) => return code,
                },
                "--top" => match number("--top") {
                    Ok(n) => top = n,
                    Err(code) => return code,
                },
                "--slowest" => match number("--slowest") {
                    Ok(n) => slowest = n,
                    Err(code) => return code,
                },
                "--trace" => {
                    trace_path = match args.next() {
                        Some(p) => Some(p.clone()),
                        None => return fail("--trace requires a file path"),
                    };
                }
                flag if flag.starts_with("--") => {
                    return fail(format!("unknown flag `{flag}`"));
                }
                file => data_file = Some(file),
            }
        }
        let trace = match open_trace(trace_path.as_deref()) {
            Ok(t) => t,
            Err(e) => return fail(e),
        };
        let mode = match threads {
            Some(n) => SchedulerMode::with_threads(n),
            None => SchedulerMode::Delta,
        };

        let target = Path::new(path);
        let outcome: Result<bool, String> = if target.is_dir() {
            if target.join(grom::scenarios::corpus::PROGRAM_FILE).is_file() {
                explain_entry(target, mode, top, &trace)
            } else {
                // A corpus root: time everything cheaply, then explain the
                // slowest entries with tracing on.
                slowest_entries(target, slowest).and_then(|dirs| {
                    let mut all_ok = true;
                    for dir in dirs {
                        all_ok &= explain_entry(&dir, mode, top, &trace)?;
                    }
                    Ok(all_ok)
                })
            }
        } else {
            explain_program(path, data_file, threads, top, &trace)
        };
        match outcome {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => {
                eprintln!("grom: profile does not reconcile with chase stats");
                ExitCode::FAILURE
            }
            Err(e) => fail(e),
        }
    }
}

// --------------------------------------------------------------- corpus --

mod corpus_cli {
    use super::fail;
    use grom::chase::ChaseConfig;
    use grom::scenarios::{
        all_modes, fuzz, list_entries, read_entry, verify_entry, write_entry, CorpusEntry,
        EntryReport, ScenarioSpec,
    };
    use std::path::{Path, PathBuf};
    use std::process::ExitCode;

    /// Flags shared by the corpus subcommands: `--key value` pairs plus
    /// positional entry names.
    struct Flags {
        dir: PathBuf,
        names: Vec<String>,
        spec: Option<String>,
        name: Option<String>,
        summary_md: Option<PathBuf>,
        budget: usize,
        seed: u64,
        max_scale: usize,
        deadline_ms: u64,
        out: Option<PathBuf>,
        force: bool,
    }

    fn parse_flags(rest: &[String]) -> Result<Flags, String> {
        let mut flags = Flags {
            dir: PathBuf::from("corpus"),
            names: Vec::new(),
            spec: None,
            name: None,
            summary_md: None,
            budget: 64,
            seed: 1,
            max_scale: 2,
            deadline_ms: 5000,
            out: None,
            force: false,
        };
        let mut args = rest.iter();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--dir" => flags.dir = PathBuf::from(value("--dir")?),
                "--spec" => flags.spec = Some(value("--spec")?),
                "--name" => flags.name = Some(value("--name")?),
                "--summary-md" => flags.summary_md = Some(PathBuf::from(value("--summary-md")?)),
                "--budget" => {
                    flags.budget = value("--budget")?
                        .parse()
                        .map_err(|_| "--budget requires an integer".to_string())?
                }
                "--seed" => {
                    flags.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed requires an integer".to_string())?
                }
                "--max-scale" => {
                    flags.max_scale = value("--max-scale")?
                        .parse()
                        .map_err(|_| "--max-scale requires a positive integer".to_string())?
                }
                "--deadline-ms" => {
                    flags.deadline_ms = value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms requires a millisecond count".to_string())?
                }
                "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
                "--force" => flags.force = true,
                flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
                name => flags.names.push(name.to_string()),
            }
        }
        Ok(flags)
    }

    /// Resolve the entries to operate on: explicit names, or all of them.
    fn select_entries(dir: &Path, names: &[String]) -> Result<Vec<CorpusEntry>, String> {
        let paths: Vec<PathBuf> = if names.is_empty() {
            list_entries(dir).map_err(|e| e.to_string())?
        } else {
            names.iter().map(|n| dir.join(n)).collect()
        };
        if paths.is_empty() {
            return Err(format!("no corpus entries under `{}`", dir.display()));
        }
        paths
            .iter()
            .map(|p| read_entry(p).map_err(|e| e.to_string()))
            .collect()
    }

    fn cmd_gen(flags: Flags) -> ExitCode {
        let (Some(name), Some(spec_line)) = (&flags.name, &flags.spec) else {
            return fail("corpus gen needs --name and --spec");
        };
        let spec = match ScenarioSpec::parse(spec_line) {
            Ok(s) => s,
            Err(e) => return fail(e),
        };
        if flags.dir.join(name).exists() && !flags.force {
            return fail(format!(
                "entry `{name}` already exists (use --force to overwrite)"
            ));
        }
        let mut entry = CorpusEntry::from_spec(name.clone(), &spec);
        if let Err(e) = entry.record(&ChaseConfig::default()) {
            return fail(e);
        }
        match write_entry(&flags.dir, &entry) {
            Ok(path) => {
                println!(
                    "wrote {} ({} expected lines)",
                    path.display(),
                    entry.expected.as_deref().map_or(0, |e| e.lines().count())
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        }
    }

    fn cmd_record(flags: Flags) -> ExitCode {
        let entries = match select_entries(&flags.dir, &flags.names) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        let cfg = ChaseConfig::default();
        for mut entry in entries {
            if let Err(e) = entry.record(&cfg) {
                return fail(e);
            }
            match write_entry(&flags.dir, &entry) {
                Ok(path) => println!("recorded {}", path.display()),
                Err(e) => return fail(e),
            }
        }
        ExitCode::SUCCESS
    }

    fn render_summary_md(reports: &[EntryReport]) -> String {
        let modes: Vec<&str> = all_modes().iter().map(|(n, _)| *n).collect();
        let mut out = String::from("### Corpus conformance\n\n");
        out.push_str(&format!("| entry | regen | {} |\n", modes.join(" | ")));
        out.push_str(&format!("|---|---|{}\n", "---|".repeat(modes.len())));
        for r in reports {
            let regen = match r.regen_ok {
                Some(true) => "ok",
                Some(false) => "MISMATCH",
                None => "n/a",
            };
            let cells: Vec<String> = r
                .modes
                .iter()
                .map(|m| {
                    if m.ok {
                        format!("{:.1} ms", m.wall_ms)
                    } else {
                        "FAIL".to_string()
                    }
                })
                .collect();
            out.push_str(&format!(
                "| {} | {} | {} |\n",
                r.name,
                regen,
                cells.join(" | ")
            ));
        }
        out.push_str("\n**Per-mode totals:** ");
        let totals: Vec<String> = modes
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let total: f64 = reports.iter().map(|r| r.modes[i].wall_ms).sum();
                format!("{name} {total:.1} ms")
            })
            .collect();
        out.push_str(&totals.join(", "));
        out.push('\n');
        out
    }

    fn cmd_verify(flags: Flags) -> ExitCode {
        let entries = match select_entries(&flags.dir, &flags.names) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        let cfg = ChaseConfig::default();
        let modes = all_modes();
        let mut reports = Vec::new();
        let mut failures = 0usize;
        let mut total_wall_ms = 0.0f64;
        for entry in &entries {
            let report = match verify_entry(entry, &modes, &cfg) {
                Ok(r) => r,
                Err(e) => return fail(e),
            };
            let status = if report.ok() { "ok" } else { "FAIL" };
            let entry_wall: f64 = report.modes.iter().map(|m| m.wall_ms).sum();
            total_wall_ms += entry_wall;
            let timing: Vec<String> = report
                .modes
                .iter()
                .map(|m| format!("{}={:.1}ms", m.mode, m.wall_ms))
                .collect();
            println!(
                "{:<28} {:<4} {:>7.1}ms  {}",
                report.name,
                status,
                entry_wall,
                timing.join(" ")
            );
            if report.regen_ok == Some(false) {
                println!("    regeneration from spec is not byte-identical");
            }
            for m in report.modes.iter().filter(|m| !m.ok) {
                println!(
                    "    {}: {}",
                    m.mode,
                    m.detail.as_deref().unwrap_or("failed")
                );
            }
            if !report.ok() {
                failures += 1;
            }
            reports.push(report);
        }
        let md = render_summary_md(&reports);
        if let Some(path) = &flags.summary_md {
            if let Err(e) = std::fs::write(path, &md) {
                return fail(format!("cannot write `{}`: {e}", path.display()));
            }
        }
        println!(
            "{} entries verified, {} failing, {} modes each, {:.1}ms total wall",
            reports.len(),
            failures,
            modes.len(),
            total_wall_ms
        );
        if failures > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }

    fn cmd_fuzz(flags: Flags) -> ExitCode {
        let out_dir = flags
            .out
            .clone()
            .unwrap_or_else(|| PathBuf::from("fuzz-findings"));
        let cfg = ChaseConfig::default();
        println!(
            "fuzzing {} scenarios (seed {}, max scale {}) -> {}",
            flags.budget,
            flags.seed,
            flags.max_scale,
            out_dir.display()
        );
        let deadline = if flags.deadline_ms == 0 {
            None
        } else {
            Some(flags.deadline_ms)
        };
        let outcome = match fuzz(
            flags.budget,
            flags.seed,
            flags.max_scale,
            deadline,
            &out_dir,
            &cfg,
            |i, spec| {
                if i % 16 == 0 {
                    println!("  [{i}] {spec}");
                }
            },
        ) {
            Ok(o) => o,
            Err(e) => return fail(e),
        };
        println!(
            "tried {} scenarios, {} divergences ({} deadline exhaustions)",
            outcome.tried,
            outcome.findings.len(),
            outcome.timed_out
        );
        for f in &outcome.findings {
            println!(
                "  {}: {} (from {} deps/{} tuples to {} deps/{} tuples)\n    spec: {}",
                f.entry_dir.display(),
                f.detail,
                f.before.0,
                f.before.1,
                f.after.0,
                f.after.1,
                f.spec
            );
        }
        if outcome.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }

    fn cmd_list(flags: Flags) -> ExitCode {
        let entries = match select_entries(&flags.dir, &flags.names) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        for entry in &entries {
            let origin = match &entry.provenance {
                grom::scenarios::Provenance::Generated(spec) => format!("spec: {spec}"),
                grom::scenarios::Provenance::Minimized { origin } => {
                    format!("minimized-from: {origin}")
                }
                grom::scenarios::Provenance::Handwritten { note } => {
                    format!("handwritten: {note}")
                }
            };
            println!("{:<28} {}", entry.name, origin);
        }
        ExitCode::SUCCESS
    }

    pub fn cmd_corpus(rest: &[String]) -> Option<ExitCode> {
        let (sub, rest) = rest.split_first()?;
        let flags = match parse_flags(rest) {
            Ok(f) => f,
            Err(e) => return Some(fail(e)),
        };
        match sub.as_str() {
            "gen" => Some(cmd_gen(flags)),
            "record" => Some(cmd_record(flags)),
            "verify" => Some(cmd_verify(flags)),
            "fuzz" => Some(cmd_fuzz(flags)),
            "list" => Some(cmd_list(flags)),
            _ => None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("rewrite", [path]) => cmd_rewrite(path),
            ("analyze", [path]) => cmd_analyze(path),
            ("run", [path, rest @ ..]) => cmd_run(path, rest),
            ("explain", [path, rest @ ..]) => explain_cli::cmd_explain(path, rest),
            ("validate", [sc, src, tgt]) => cmd_validate(sc, src, tgt),
            ("corpus", rest) => corpus_cli::cmd_corpus(rest).unwrap_or_else(usage),
            _ => usage(),
        },
        None => usage(),
    }
}
