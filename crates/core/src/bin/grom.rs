//! The `grom` command-line tool: the scriptable counterpart of the demo's
//! GUI (Figure 3 of the paper).
//!
//! ```text
//! grom rewrite  <scenario.grom>                      print the rewritten program
//! grom analyze  <scenario.grom>                      restriction report (problematic views)
//! grom run      <scenario.grom> [data.facts]         full pipeline; prints J_T
//!               [--core] [--no-validate] [--quiet] [--threads N]
//! grom validate <scenario.grom> <source.facts> <target.facts>
//!                                                    check an existing solution
//! ```
//!
//! Scenario files use the language documented in `grom_lang::parser`; data
//! files are fact-per-line (`grom_data::io`). A scenario's inline `fact`s
//! are always loaded; a data file adds to them.

use std::process::ExitCode;

use grom::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  grom rewrite  <scenario.grom>\n  grom analyze  <scenario.grom>\n  \
         grom run      <scenario.grom> [data.facts] [--core] [--no-validate] [--quiet] \
         [--threads N]\n  \
         grom validate <scenario.grom> <source.facts> <target.facts>"
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("grom: {msg}");
    ExitCode::FAILURE
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Program::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_scenario(path: &str) -> Result<(MappingScenario, Instance), String> {
    let program = load_program(path)?;
    let mut inline = Instance::new();
    for f in &program.facts {
        inline
            .insert_fact(f.clone())
            .map_err(|e| format!("{path}: inline facts: {e}"))?;
    }
    let scenario = MappingScenario::from_program(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok((scenario, inline))
}

fn load_facts(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    grom::data::read_instance(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_rewrite(path: &str) -> ExitCode {
    let (scenario, _) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let out = match scenario.rewrite(&RewriteOptions::default()) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    for dep in &out.deps {
        println!("[{}] {}", dep.class(), dep);
    }
    if !out.warnings.is_empty() {
        eprintln!("\nwarnings (sound strengthenings):");
        for w in &out.warnings {
            eprintln!("  {w}");
        }
    }
    for (name, causes) in &out.ded_causes {
        let causes: Vec<String> = causes.iter().map(|c| c.to_string()).collect();
        eprintln!("ded `{name}` caused by: {}", causes.join(", "));
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(path: &str) -> ExitCode {
    let (scenario, _) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let deps: Vec<Dependency> = scenario.all_dependencies().cloned().collect();
    match analyze(&scenario.target_views, &deps, &RewriteOptions::default()) {
        Ok((report, _)) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_run(path: &str, rest: &[String]) -> ExitCode {
    let mut data_file: Option<&str> = None;
    let mut core = false;
    let mut no_validate = false;
    let mut quiet = false;
    let mut threads: Option<usize> = None;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => core = true,
            "--no-validate" => no_validate = true,
            "--quiet" => quiet = true,
            "--threads" => {
                threads = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => return fail("--threads requires a positive integer"),
                };
            }
            flag if flag.starts_with("--") => {
                return fail(format!("unknown flag `{flag}`"));
            }
            file => data_file = Some(file),
        }
    }

    let (scenario, mut source) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if let Some(f) = data_file {
        match load_facts(f) {
            Ok(extra) => {
                if let Err(e) = source.absorb(&extra) {
                    return fail(e);
                }
            }
            Err(e) => return fail(e),
        }
    }

    let mut options = PipelineOptions {
        skip_validation: no_validate,
        core_minimize: core,
        ..Default::default()
    };
    if let Some(n) = threads {
        options = options.with_threads(n);
    }
    match scenario.run(&source, &options) {
        Ok(result) => {
            print!("{}", result.target);
            if !quiet {
                eprintln!("chase: {}", result.chase_stats);
                eprintln!("termination: {}", result.wa_report);
                if let Some(cs) = &result.core_stats {
                    eprintln!(
                        "core: folded {} nulls, removed {} tuples",
                        cs.nulls_folded, cs.tuples_removed
                    );
                }
                if let Some(v) = &result.validation {
                    eprintln!("{v}");
                }
            }
            if result.validation.map(|v| !v.ok).unwrap_or(false) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_validate(scenario_path: &str, source_path: &str, target_path: &str) -> ExitCode {
    let (scenario, inline) = match load_scenario(scenario_path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let mut source = inline;
    match load_facts(source_path) {
        Ok(s) => {
            if let Err(e) = source.absorb(&s) {
                return fail(e);
            }
        }
        Err(e) => return fail(e),
    }
    let target = match load_facts(target_path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    match validate_solution(&scenario, &source, &target) {
        Ok(report) => {
            println!("{report}");
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(e),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("rewrite", [path]) => cmd_rewrite(path),
            ("analyze", [path]) => cmd_analyze(path),
            ("run", [path, rest @ ..]) => cmd_run(path, rest),
            ("validate", [sc, src, tgt]) => cmd_validate(sc, src, tgt),
            _ => usage(),
        },
        None => usage(),
    }
}
