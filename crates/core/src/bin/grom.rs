//! The `grom` command-line tool: the scriptable counterpart of the demo's
//! GUI (Figure 3 of the paper).
//!
//! ```text
//! grom rewrite  <scenario.grom>                      print the rewritten program
//! grom analyze  <scenario.grom>                      restriction report (problematic views)
//! grom run      <scenario.grom> [data.facts]         full pipeline; prints J_T
//!               [--core] [--no-validate] [--quiet] [--threads N]
//! grom validate <scenario.grom> <source.facts> <target.facts>
//!                                                    check an existing solution
//! grom corpus   <gen|record|verify|fuzz|list> ...    conformance-corpus tooling
//! ```
//!
//! Scenario files use the language documented in `grom_lang::parser`; data
//! files are fact-per-line (`grom_data::io`). A scenario's inline `fact`s
//! are always loaded; a data file adds to them.

use std::process::ExitCode;

use grom::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  grom rewrite  <scenario.grom>\n  grom analyze  <scenario.grom>\n  \
         grom run      <scenario.grom> [data.facts] [--core] [--no-validate] [--quiet] \
         [--threads N]\n  \
         grom validate <scenario.grom> <source.facts> <target.facts>\n  \
         grom corpus   gen    --name <entry> --spec \"<spec>\" [--dir corpus]\n  \
         grom corpus   record [--dir corpus] [entry...]\n  \
         grom corpus   verify [--dir corpus] [--summary-md <file>] [entry...]\n  \
         grom corpus   fuzz   [--budget N] [--seed S] [--max-scale K] [--out <dir>]\n  \
         grom corpus   list   [--dir corpus]"
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("grom: {msg}");
    ExitCode::FAILURE
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Program::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_scenario(path: &str) -> Result<(MappingScenario, Instance), String> {
    let program = load_program(path)?;
    let mut inline = Instance::new();
    for f in &program.facts {
        inline
            .insert_fact(f.clone())
            .map_err(|e| format!("{path}: inline facts: {e}"))?;
    }
    let scenario = MappingScenario::from_program(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok((scenario, inline))
}

/// Render a data error against the file it came from: a `file:line:`
/// prefix when the error carries line context (so terminals make it
/// clickable), and the offending relation named in the message either way.
fn describe_data_error(path: &str, e: &grom::data::GromError) -> String {
    match e.line() {
        // Syntax errors embed their own `line N:` prefix; print just the
        // message so the line appears once, in the clickable position.
        Some(line) => match e.unwrap_context() {
            grom::data::GromError::Syntax { message, .. } => format!("{path}:{line}: {message}"),
            inner => format!("{path}:{line}: {inner}"),
        },
        None => format!("{path}: {e}"),
    }
}

fn load_facts(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    grom::data::read_instance(&text).map_err(|e| describe_data_error(path, &e))
}

fn cmd_rewrite(path: &str) -> ExitCode {
    let (scenario, _) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let out = match scenario.rewrite(&RewriteOptions::default()) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    for dep in &out.deps {
        println!("[{}] {}", dep.class(), dep);
    }
    if !out.warnings.is_empty() {
        eprintln!("\nwarnings (sound strengthenings):");
        for w in &out.warnings {
            eprintln!("  {w}");
        }
    }
    for (name, causes) in &out.ded_causes {
        let causes: Vec<String> = causes.iter().map(|c| c.to_string()).collect();
        eprintln!("ded `{name}` caused by: {}", causes.join(", "));
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(path: &str) -> ExitCode {
    let (scenario, _) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let deps: Vec<Dependency> = scenario.all_dependencies().cloned().collect();
    match analyze(&scenario.target_views, &deps, &RewriteOptions::default()) {
        Ok((report, _)) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_run(path: &str, rest: &[String]) -> ExitCode {
    let mut data_file: Option<&str> = None;
    let mut core = false;
    let mut no_validate = false;
    let mut quiet = false;
    let mut threads: Option<usize> = None;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => core = true,
            "--no-validate" => no_validate = true,
            "--quiet" => quiet = true,
            "--threads" => {
                threads = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => return fail("--threads requires a positive integer"),
                };
            }
            flag if flag.starts_with("--") => {
                return fail(format!("unknown flag `{flag}`"));
            }
            file => data_file = Some(file),
        }
    }

    let (scenario, mut source) = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if let Some(f) = data_file {
        match load_facts(f) {
            Ok(extra) => {
                if let Err(e) = source.absorb(&extra) {
                    return fail(describe_data_error(f, &e));
                }
            }
            Err(e) => return fail(e),
        }
    }

    let mut config = GromConfig::new()
        .with_skip_validation(no_validate)
        .with_core_minimize(core);
    if let Some(n) = threads {
        config = config.with_threads(n);
    }
    match scenario.run_with(&source, &config) {
        Ok(result) => {
            print!("{}", result.target);
            if !quiet {
                eprintln!("chase: {}", result.chase_stats);
                eprintln!("termination: {}", result.wa_report);
                if let Some(cs) = &result.core_stats {
                    eprintln!(
                        "core: folded {} nulls, removed {} tuples",
                        cs.nulls_folded, cs.tuples_removed
                    );
                }
                if let Some(v) = &result.validation {
                    eprintln!("{v}");
                }
            }
            if result.validation.map(|v| !v.ok).unwrap_or(false) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_validate(scenario_path: &str, source_path: &str, target_path: &str) -> ExitCode {
    let (scenario, inline) = match load_scenario(scenario_path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let mut source = inline;
    match load_facts(source_path) {
        Ok(s) => {
            if let Err(e) = source.absorb(&s) {
                return fail(describe_data_error(source_path, &e));
            }
        }
        Err(e) => return fail(e),
    }
    let target = match load_facts(target_path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    match validate_solution(&scenario, &source, &target) {
        Ok(report) => {
            println!("{report}");
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(e),
    }
}

// --------------------------------------------------------------- corpus --

mod corpus_cli {
    use super::fail;
    use grom::chase::ChaseConfig;
    use grom::scenarios::{
        all_modes, fuzz, list_entries, read_entry, verify_entry, write_entry, CorpusEntry,
        EntryReport, ScenarioSpec,
    };
    use std::path::{Path, PathBuf};
    use std::process::ExitCode;

    /// Flags shared by the corpus subcommands: `--key value` pairs plus
    /// positional entry names.
    struct Flags {
        dir: PathBuf,
        names: Vec<String>,
        spec: Option<String>,
        name: Option<String>,
        summary_md: Option<PathBuf>,
        budget: usize,
        seed: u64,
        max_scale: usize,
        out: Option<PathBuf>,
        force: bool,
    }

    fn parse_flags(rest: &[String]) -> Result<Flags, String> {
        let mut flags = Flags {
            dir: PathBuf::from("corpus"),
            names: Vec::new(),
            spec: None,
            name: None,
            summary_md: None,
            budget: 64,
            seed: 1,
            max_scale: 2,
            out: None,
            force: false,
        };
        let mut args = rest.iter();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--dir" => flags.dir = PathBuf::from(value("--dir")?),
                "--spec" => flags.spec = Some(value("--spec")?),
                "--name" => flags.name = Some(value("--name")?),
                "--summary-md" => flags.summary_md = Some(PathBuf::from(value("--summary-md")?)),
                "--budget" => {
                    flags.budget = value("--budget")?
                        .parse()
                        .map_err(|_| "--budget requires an integer".to_string())?
                }
                "--seed" => {
                    flags.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed requires an integer".to_string())?
                }
                "--max-scale" => {
                    flags.max_scale = value("--max-scale")?
                        .parse()
                        .map_err(|_| "--max-scale requires a positive integer".to_string())?
                }
                "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
                "--force" => flags.force = true,
                flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
                name => flags.names.push(name.to_string()),
            }
        }
        Ok(flags)
    }

    /// Resolve the entries to operate on: explicit names, or all of them.
    fn select_entries(dir: &Path, names: &[String]) -> Result<Vec<CorpusEntry>, String> {
        let paths: Vec<PathBuf> = if names.is_empty() {
            list_entries(dir).map_err(|e| e.to_string())?
        } else {
            names.iter().map(|n| dir.join(n)).collect()
        };
        if paths.is_empty() {
            return Err(format!("no corpus entries under `{}`", dir.display()));
        }
        paths
            .iter()
            .map(|p| read_entry(p).map_err(|e| e.to_string()))
            .collect()
    }

    fn cmd_gen(flags: Flags) -> ExitCode {
        let (Some(name), Some(spec_line)) = (&flags.name, &flags.spec) else {
            return fail("corpus gen needs --name and --spec");
        };
        let spec = match ScenarioSpec::parse(spec_line) {
            Ok(s) => s,
            Err(e) => return fail(e),
        };
        if flags.dir.join(name).exists() && !flags.force {
            return fail(format!(
                "entry `{name}` already exists (use --force to overwrite)"
            ));
        }
        let mut entry = CorpusEntry::from_spec(name.clone(), &spec);
        if let Err(e) = entry.record(&ChaseConfig::default()) {
            return fail(e);
        }
        match write_entry(&flags.dir, &entry) {
            Ok(path) => {
                println!(
                    "wrote {} ({} expected lines)",
                    path.display(),
                    entry.expected.as_deref().map_or(0, |e| e.lines().count())
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        }
    }

    fn cmd_record(flags: Flags) -> ExitCode {
        let entries = match select_entries(&flags.dir, &flags.names) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        let cfg = ChaseConfig::default();
        for mut entry in entries {
            if let Err(e) = entry.record(&cfg) {
                return fail(e);
            }
            match write_entry(&flags.dir, &entry) {
                Ok(path) => println!("recorded {}", path.display()),
                Err(e) => return fail(e),
            }
        }
        ExitCode::SUCCESS
    }

    fn render_summary_md(reports: &[EntryReport]) -> String {
        let modes: Vec<&str> = all_modes().iter().map(|(n, _)| *n).collect();
        let mut out = String::from("### Corpus conformance\n\n");
        out.push_str(&format!("| entry | regen | {} |\n", modes.join(" | ")));
        out.push_str(&format!("|---|---|{}\n", "---|".repeat(modes.len())));
        for r in reports {
            let regen = match r.regen_ok {
                Some(true) => "ok",
                Some(false) => "MISMATCH",
                None => "n/a",
            };
            let cells: Vec<String> = r
                .modes
                .iter()
                .map(|m| {
                    if m.ok {
                        format!("{:.1} ms", m.wall_ms)
                    } else {
                        "FAIL".to_string()
                    }
                })
                .collect();
            out.push_str(&format!(
                "| {} | {} | {} |\n",
                r.name,
                regen,
                cells.join(" | ")
            ));
        }
        out.push_str("\n**Per-mode totals:** ");
        let totals: Vec<String> = modes
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let total: f64 = reports.iter().map(|r| r.modes[i].wall_ms).sum();
                format!("{name} {total:.1} ms")
            })
            .collect();
        out.push_str(&totals.join(", "));
        out.push('\n');
        out
    }

    fn cmd_verify(flags: Flags) -> ExitCode {
        let entries = match select_entries(&flags.dir, &flags.names) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        let cfg = ChaseConfig::default();
        let modes = all_modes();
        let mut reports = Vec::new();
        let mut failures = 0usize;
        for entry in &entries {
            let report = match verify_entry(entry, &modes, &cfg) {
                Ok(r) => r,
                Err(e) => return fail(e),
            };
            let status = if report.ok() { "ok" } else { "FAIL" };
            let timing: Vec<String> = report
                .modes
                .iter()
                .map(|m| format!("{}={:.1}ms", m.mode, m.wall_ms))
                .collect();
            println!("{:<28} {:<4} {}", report.name, status, timing.join(" "));
            if report.regen_ok == Some(false) {
                println!("    regeneration from spec is not byte-identical");
            }
            for m in report.modes.iter().filter(|m| !m.ok) {
                println!(
                    "    {}: {}",
                    m.mode,
                    m.detail.as_deref().unwrap_or("failed")
                );
            }
            if !report.ok() {
                failures += 1;
            }
            reports.push(report);
        }
        let md = render_summary_md(&reports);
        if let Some(path) = &flags.summary_md {
            if let Err(e) = std::fs::write(path, &md) {
                return fail(format!("cannot write `{}`: {e}", path.display()));
            }
        }
        println!(
            "{} entries verified, {} failing, {} modes each",
            reports.len(),
            failures,
            modes.len()
        );
        if failures > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }

    fn cmd_fuzz(flags: Flags) -> ExitCode {
        let out_dir = flags
            .out
            .clone()
            .unwrap_or_else(|| PathBuf::from("fuzz-findings"));
        let cfg = ChaseConfig::default();
        println!(
            "fuzzing {} scenarios (seed {}, max scale {}) -> {}",
            flags.budget,
            flags.seed,
            flags.max_scale,
            out_dir.display()
        );
        let outcome = match fuzz(
            flags.budget,
            flags.seed,
            flags.max_scale,
            &out_dir,
            &cfg,
            |i, spec| {
                if i % 16 == 0 {
                    println!("  [{i}] {spec}");
                }
            },
        ) {
            Ok(o) => o,
            Err(e) => return fail(e),
        };
        println!(
            "tried {} scenarios, {} divergences",
            outcome.tried,
            outcome.findings.len()
        );
        for f in &outcome.findings {
            println!(
                "  {}: {} (from {} deps/{} tuples to {} deps/{} tuples)\n    spec: {}",
                f.entry_dir.display(),
                f.detail,
                f.before.0,
                f.before.1,
                f.after.0,
                f.after.1,
                f.spec
            );
        }
        if outcome.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }

    fn cmd_list(flags: Flags) -> ExitCode {
        let entries = match select_entries(&flags.dir, &flags.names) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        for entry in &entries {
            let origin = match &entry.provenance {
                grom::scenarios::Provenance::Generated(spec) => format!("spec: {spec}"),
                grom::scenarios::Provenance::Minimized { origin } => {
                    format!("minimized-from: {origin}")
                }
            };
            println!("{:<28} {}", entry.name, origin);
        }
        ExitCode::SUCCESS
    }

    pub fn cmd_corpus(rest: &[String]) -> Option<ExitCode> {
        let (sub, rest) = rest.split_first()?;
        let flags = match parse_flags(rest) {
            Ok(f) => f,
            Err(e) => return Some(fail(e)),
        };
        match sub.as_str() {
            "gen" => Some(cmd_gen(flags)),
            "record" => Some(cmd_record(flags)),
            "verify" => Some(cmd_verify(flags)),
            "fuzz" => Some(cmd_fuzz(flags)),
            "list" => Some(cmd_list(flags)),
            _ => None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("rewrite", [path]) => cmd_rewrite(path),
            ("analyze", [path]) => cmd_analyze(path),
            ("run", [path, rest @ ..]) => cmd_run(path, rest),
            ("validate", [sc, src, tgt]) => cmd_validate(sc, src, tgt),
            ("corpus", rest) => corpus_cli::cmd_corpus(rest).unwrap_or_else(usage),
            _ => usage(),
        },
        None => usage(),
    }
}
