//! Parser for the GROM scenario language.
//!
//! The textual language replaces the demo's GUI mapping designer. Grammar
//! (EBNF-ish; `#`/`//` start line comments):
//!
//! ```text
//! program    := item*
//! item       := schema | view | dep | fact
//! schema     := "schema" IDENT "{" reldecl* "}"
//! reldecl    := IDENT "(" coldecl ("," coldecl)* ")" ";"
//! coldecl    := IDENT ":" ("int" | "string" | "bool" | "any")
//! view       := "view" atom "<-" body "."
//! dep        := ("tgd" | "egd" | "ded" | "dep") [IDENT ":"] body "->" conclusion "."
//! conclusion := "false" | disjunct ("|" disjunct)*
//! disjunct   := citem ("," citem)*
//! citem      := atom | term cmpop term          // "=" makes an equality
//! body       := literal ("," literal)*
//! literal    := "not" atom | atom | term cmpop term
//! atom       := IDENT "(" [term ("," term)*] ")"
//! term       := IDENT | INT | STRING | "true" | "false"
//! fact       := ["fact"] atom "."               // arguments must be constants
//! cmpop      := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//! ```
//!
//! Identifiers in term position are **variables**; constants are numbers,
//! quoted strings and `true`/`false` (matching the paper's convention of
//! quoting data values, e.g. `T-Rating(rid, pid, '0')`). The `tgd` / `egd`
//! keywords assert the dependency's class and are verified; `ded` and `dep`
//! accept any shape.

use grom_data::{ColumnSchema, ColumnType, Fact, RelationSchema, Schema, Value};

use crate::ast::{Atom, CmpOp, Comparison, Literal, Term};
use crate::dependency::{DepClass, Dependency, Disjunct};
use crate::error::LangError;
use crate::program::Program;
use crate::view::ViewRule;

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Colon,
    Semi,
    Dot,
    Pipe,
    Arrow,    // ->
    RevArrow, // <-
    Eq,       // = or ==
    Neq,      // !=
    Lt,
    Leq,
    Gt,
    Geq,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Pipe => f.write_str("`|`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::RevArrow => f.write_str("`<-`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Neq => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Leq => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Geq => f.write_str("`>=`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(text: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (l0, c0) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if bytes[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col);
            }
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '{' => {
                push!(Tok::LBrace, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '}' => {
                push!(Tok::RBrace, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '(' => {
                push!(Tok::LParen, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            ')' => {
                push!(Tok::RParen, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            ',' => {
                push!(Tok::Comma, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            ':' => {
                push!(Tok::Colon, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            ';' => {
                push!(Tok::Semi, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '.' => {
                push!(Tok::Dot, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '|' => {
                push!(Tok::Pipe, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '=' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                }
                push!(Tok::Eq, l0, c0);
            }
            '!' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Neq, l0, c0);
                } else {
                    return Err(LangError::parse(l0, c0, "expected `!=`"));
                }
            }
            '<' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Leq, l0, c0);
                } else if i < bytes.len() && bytes[i] == '-' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::RevArrow, l0, c0);
                } else {
                    push!(Tok::Lt, l0, c0);
                }
            }
            '>' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Geq, l0, c0);
                } else {
                    push!(Tok::Gt, l0, c0);
                }
            }
            '-' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '>' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Arrow, l0, c0);
                } else if i < bytes.len() && bytes[i].is_ascii_digit() {
                    let mut n: i64 = 0;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        n = n * 10 + (bytes[i] as i64 - '0' as i64);
                        advance(&mut i, &mut line, &mut col);
                    }
                    push!(Tok::Int(-n), l0, c0);
                } else {
                    return Err(LangError::parse(
                        l0,
                        c0,
                        "expected `->` or a number after `-`",
                    ));
                }
            }
            '"' | '\'' => {
                let quote = c;
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LangError::parse(l0, c0, "unterminated string literal"));
                    }
                    let d = bytes[i];
                    if d == quote {
                        advance(&mut i, &mut line, &mut col);
                        break;
                    }
                    if d == '\\' {
                        advance(&mut i, &mut line, &mut col);
                        if i >= bytes.len() {
                            return Err(LangError::parse(l0, c0, "unterminated escape"));
                        }
                        let e = bytes[i];
                        s.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '"' => '"',
                            '\'' => '\'',
                            other => {
                                return Err(LangError::parse(
                                    line,
                                    col,
                                    format!("unknown escape `\\{other}`"),
                                ))
                            }
                        });
                        advance(&mut i, &mut line, &mut col);
                    } else {
                        s.push(d);
                        advance(&mut i, &mut line, &mut col);
                    }
                }
                push!(Tok::Str(s), l0, c0);
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n * 10 + (bytes[i] as i64 - '0' as i64);
                    advance(&mut i, &mut line, &mut col);
                }
                push!(Tok::Int(n), l0, c0);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    s.push(bytes[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                push!(Tok::Ident(s), l0, c0);
            }
            other => {
                return Err(LangError::parse(
                    l0,
                    c0,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Counter for auto-naming unnamed dependencies.
    dep_counter: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Spanned {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        let s = self.peek();
        LangError::parse(s.line, s.col, msg.into())
    }

    fn expect(&mut self, tok: Tok) -> Result<(), LangError> {
        if self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek().tok)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek().tok {
            Tok::Eq => CmpOp::Eq,
            Tok::Neq => CmpOp::Neq,
            Tok::Lt => CmpOp::Lt,
            Tok::Leq => CmpOp::Leq,
            Tok::Gt => CmpOp::Gt,
            Tok::Geq => CmpOp::Geq,
            _ => return None,
        };
        self.next();
        Some(op)
    }

    fn term(&mut self) -> Result<Term, LangError> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                self.next();
                match s.as_str() {
                    "true" => Ok(Term::Const(Value::bool(true))),
                    "false" => Ok(Term::Const(Value::bool(false))),
                    _ => {
                        if s.contains('$') {
                            return Err(self.err("`$` is reserved for generated variables"));
                        }
                        Ok(Term::var(s))
                    }
                }
            }
            Tok::Int(i) => {
                self.next();
                Ok(Term::Const(Value::int(i)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Term::Const(Value::str(s)))
            }
            other => Err(self.err(format!("expected a term, found {other}"))),
        }
    }

    fn atom_args(&mut self) -> Result<Vec<Term>, LangError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                args.push(self.term()?);
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn atom(&mut self) -> Result<Atom, LangError> {
        let name = self.expect_ident()?;
        let args = self.atom_args()?;
        Ok(Atom::new(name, args))
    }

    /// A body literal: `not atom`, `atom`, or `term op term`.
    fn literal(&mut self) -> Result<Literal, LangError> {
        if self.is_keyword("not") {
            self.next();
            return Ok(Literal::Neg(self.atom()?));
        }
        // Atom iff IDENT followed by LParen (and not a boolean constant).
        if let Tok::Ident(s) = &self.peek().tok {
            if s != "true" && s != "false" && self.peek2().tok == Tok::LParen {
                return Ok(Literal::Pos(self.atom()?));
            }
        }
        let lhs = self.term()?;
        let op = self
            .cmp_op()
            .ok_or_else(|| self.err("expected a comparison operator"))?;
        let rhs = self.term()?;
        Ok(Literal::Cmp(Comparison::new(op, lhs, rhs)))
    }

    fn body(&mut self) -> Result<Vec<Literal>, LangError> {
        let mut lits = vec![self.literal()?];
        while self.peek().tok == Tok::Comma {
            self.next();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    fn disjunct(&mut self) -> Result<Disjunct, LangError> {
        let mut d = Disjunct::default();
        loop {
            // Atom iff IDENT followed by LParen.
            let is_atom = matches!(&self.peek().tok, Tok::Ident(s)
                if s != "true" && s != "false" && self.peek2().tok == Tok::LParen);
            if is_atom {
                d.atoms.push(self.atom()?);
            } else {
                let lhs = self.term()?;
                let op = self
                    .cmp_op()
                    .ok_or_else(|| self.err("expected a comparison operator"))?;
                let rhs = self.term()?;
                if op == CmpOp::Eq {
                    d.eqs.push((lhs, rhs));
                } else {
                    d.cmps.push(Comparison::new(op, lhs, rhs));
                }
            }
            if self.peek().tok == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(d)
    }

    fn dependency(&mut self, keyword: &str) -> Result<Dependency, LangError> {
        // Optional name: IDENT ':'.
        let name = if matches!(&self.peek().tok, Tok::Ident(_)) && self.peek2().tok == Tok::Colon {
            let n = self.expect_ident()?;
            self.expect(Tok::Colon)?;
            n
        } else {
            self.dep_counter += 1;
            format!("{}_{}", keyword, self.dep_counter)
        };
        let premise = self.body()?;
        self.expect(Tok::Arrow)?;

        let mut disjuncts = Vec::new();
        if self.is_keyword("false") && self.peek2().tok == Tok::Dot {
            self.next(); // consume `false`: a denial.
        } else {
            disjuncts.push(self.disjunct()?);
            while self.peek().tok == Tok::Pipe {
                self.next();
                disjuncts.push(self.disjunct()?);
            }
        }
        self.expect(Tok::Dot)?;

        let dep = Dependency::new(name, premise, disjuncts);
        // The `tgd`/`egd` keywords assert the class.
        let class = dep.class();
        let ok = match keyword {
            "tgd" => class == DepClass::Tgd,
            "egd" => class == DepClass::Egd,
            _ => true,
        };
        if !ok {
            return Err(self.err(format!(
                "dependency `{}` declared as {keyword} but has class {class}",
                dep.name
            )));
        }
        Ok(dep)
    }

    fn view_rule(&mut self) -> Result<ViewRule, LangError> {
        let head = self.atom()?;
        self.expect(Tok::RevArrow)?;
        let body = self.body()?;
        self.expect(Tok::Dot)?;
        Ok(ViewRule::new(head, body))
    }

    fn schema_decl(&mut self) -> Result<(String, Schema), LangError> {
        let name = self.expect_ident()?;
        self.expect(Tok::LBrace)?;
        let mut schema = Schema::new();
        while self.peek().tok != Tok::RBrace {
            let rel_name = self.expect_ident()?;
            self.expect(Tok::LParen)?;
            let mut cols = Vec::new();
            loop {
                let col_name = self.expect_ident()?;
                self.expect(Tok::Colon)?;
                let ty_name = self.expect_ident()?;
                let ty = match ty_name.as_str() {
                    "int" => ColumnType::Int,
                    "string" => ColumnType::String,
                    "bool" => ColumnType::Bool,
                    "any" => ColumnType::Any,
                    other => {
                        return Err(self.err(format!(
                            "unknown column type `{other}` (expected int/string/bool/any)"
                        )))
                    }
                };
                cols.push(ColumnSchema::new(col_name, ty));
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            let rel = RelationSchema::new(&rel_name, cols).map_err(|e| {
                let s = self.peek();
                LangError::parse(s.line, s.col, e.to_string())
            })?;
            schema.add_relation(rel).map_err(|e| {
                let s = self.peek();
                LangError::parse(s.line, s.col, e.to_string())
            })?;
        }
        self.expect(Tok::RBrace)?;
        Ok((name, schema))
    }

    fn fact(&mut self) -> Result<Fact, LangError> {
        let atom = self.atom()?;
        self.expect(Tok::Dot)?;
        let mut values = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(v) => values.push(v.clone()),
                Term::Var(v) => {
                    return Err(self.err(format!(
                        "facts must be ground; `{v}` is a variable (quote strings)"
                    )))
                }
            }
        }
        Ok(Fact::new(atom.predicate.as_ref(), values))
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut prog = Program::default();
        loop {
            match &self.peek().tok {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "schema" => {
                        self.next();
                        let (name, schema) = self.schema_decl()?;
                        if prog.schemas.contains_key(&name) {
                            return Err(self.err(format!("schema `{name}` declared twice")));
                        }
                        prog.schemas.insert(name, schema);
                    }
                    "view" => {
                        self.next();
                        let rule = self.view_rule()?;
                        prog.views.add_rule(rule).map_err(|e| {
                            let s = self.peek();
                            LangError::parse(s.line, s.col, e.to_string())
                        })?;
                    }
                    "tgd" | "egd" | "ded" | "dep" => {
                        let kw = kw.clone();
                        self.next();
                        let dep = self.dependency(&kw)?;
                        prog.deps.push(dep);
                    }
                    "fact" => {
                        self.next();
                        prog.facts.push(self.fact()?);
                    }
                    _ => {
                        // A bare atom is a fact.
                        if self.peek2().tok == Tok::LParen {
                            prog.facts.push(self.fact()?);
                        } else {
                            return Err(self.err(format!(
                                "expected a declaration (schema/view/tgd/egd/ded/dep/fact), \
                                 found identifier `{kw}`"
                            )));
                        }
                    }
                },
                other => {
                    return Err(self.err(format!("expected a declaration, found {other}")));
                }
            }
        }
        Ok(prog)
    }
}

/// Parse a full program; see the module docs for the grammar.
pub fn parse_program(text: &str) -> Result<Program, LangError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        dep_counter: 0,
    };
    p.program()
}

/// Parse a single dependency declaration, e.g.
/// `tgd m: S(x), x < 2 -> T(x, y).`
pub fn parse_dependency(text: &str) -> Result<Dependency, LangError> {
    let prog = parse_program(text)?;
    match prog.deps.len() {
        1 => Ok(prog.deps.into_iter().next().unwrap()),
        n => Err(LangError::parse(
            1,
            1,
            format!("expected exactly one dependency, found {n}"),
        )),
    }
}

/// Parse a single view rule, e.g. `view V(x) <- A(x), not B(x).`
pub fn parse_view_rule(text: &str) -> Result<ViewRule, LangError> {
    let prog = parse_program(text)?;
    let rules = prog.views.rules();
    match rules.len() {
        1 => Ok(rules[0].clone()),
        n => Err(LangError::parse(
            1,
            1,
            format!("expected exactly one view rule, found {n}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::DepClass;

    #[test]
    fn parse_paper_running_example() {
        let text = r#"
            # The GROM running example (EDBT 2016, Section 2).
            schema source {
                S_Product(id: int, name: string, store: string, rating: int);
                S_Store(name: string, location: string);
            }
            schema target {
                T_Product(id: int, name: string, store: int);
                T_Store(id: int, name: string, address: string, phone: string);
                T_Rating(id: int, product: int, thumbsUp: int);
            }

            view Product(id, name) <- T_Product(id, name, store).
            view PopularProduct(pid, name) <-
                T_Product(pid, name, store), not T_Rating(rid, pid, 0).
            view AvgProduct(pid, name) <-
                T_Product(pid, name, store), T_Rating(rid, pid, 1),
                not PopularProduct(pid, name).
            view UnpopularProduct(pid, name) <-
                T_Product(pid, name, store),
                not AvgProduct(pid, name), not PopularProduct(pid, name).
            view SoldAt(pid, stid) <- T_Product(pid, pname, stid).
            view Store(id, name, addr) <- T_Store(id, name, addr, phone).

            tgd m0: S_Product(pid, name, store, rating), rating < 2
                -> UnpopularProduct(pid, name).
            tgd m1: S_Product(pid, name, store, rating), rating >= 2, rating < 4
                -> AvgProduct(pid, name).
            tgd m2: S_Product(pid, name, store, rating), rating >= 4
                -> PopularProduct(pid, name).
            tgd m3: S_Product(pid, name, store, rating), S_Store(store, location)
                -> SoldAt(pid, sid), Store(sid, store, location).

            egd e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.

            fact S_Product(1, "tv", "acme", 5).
            fact S_Store("acme", "rome").
        "#;
        let prog = parse_program(text).unwrap();
        assert_eq!(prog.schemas.len(), 2);
        assert_eq!(prog.views.len(), 6);
        assert_eq!(prog.deps.len(), 5);
        assert_eq!(prog.facts.len(), 2);
        prog.validate().unwrap();
        assert!(prog.undeclared_predicates().is_empty());

        let m3 = &prog.deps[3];
        assert_eq!(m3.name.as_ref(), "m3");
        assert_eq!(m3.class(), DepClass::Tgd);
        // sid is existential in m3.
        let ex: Vec<String> = m3
            .existential_vars(0)
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(ex, vec!["sid"]);

        let e0 = &prog.deps[4];
        assert_eq!(e0.class(), DepClass::Egd);
    }

    #[test]
    fn parse_ded_with_disjuncts() {
        let dep = parse_dependency(
            "ded d0: T_Product(p1, n, s1), T_Product(p2, n, s2) \
             -> p1 = p2 | T_Rating(r, p1, 0) | T_Rating(r2, p2, 0).",
        )
        .unwrap();
        assert_eq!(dep.class(), DepClass::Ded);
        assert_eq!(dep.disjuncts.len(), 3);
        assert_eq!(dep.disjuncts[0].eqs.len(), 1);
        assert_eq!(dep.disjuncts[1].atoms.len(), 1);
    }

    #[test]
    fn parse_denial() {
        let dep = parse_dependency("dep n: T(x, x) -> false.").unwrap();
        assert_eq!(dep.class(), DepClass::Denial);
    }

    #[test]
    fn tgd_keyword_class_checked() {
        let err = parse_dependency("tgd bad: T(x, y) -> x = y.").unwrap_err();
        assert!(err.to_string().contains("class"));
        let err = parse_dependency("egd bad: T(x, y) -> U(x).").unwrap_err();
        assert!(err.to_string().contains("class"));
    }

    #[test]
    fn parse_string_and_bool_constants() {
        let dep = parse_dependency("dep d: S(x, \"acme\", 'roma', true, -7) -> T(x).").unwrap();
        let args = &dep.premise[0].atom().unwrap().args;
        assert_eq!(args[1], Term::Const(Value::str("acme")));
        assert_eq!(args[2], Term::Const(Value::str("roma")));
        assert_eq!(args[3], Term::Const(Value::bool(true)));
        assert_eq!(args[4], Term::Const(Value::int(-7)));
    }

    #[test]
    fn bare_fact_without_keyword() {
        let prog = parse_program("S_Product(1, \"tv\", \"acme\", 5).").unwrap();
        assert_eq!(prog.facts.len(), 1);
    }

    #[test]
    fn non_ground_fact_rejected() {
        let err = parse_program("fact S(x).").unwrap_err();
        assert!(err.to_string().contains("ground"));
    }

    #[test]
    fn comparison_in_conclusion_disjunct() {
        let dep = parse_dependency("dep d: S(x, y) -> T(x), y != 0 | x = y.").unwrap();
        assert_eq!(dep.disjuncts.len(), 2);
        assert_eq!(dep.disjuncts[0].cmps.len(), 1);
        assert_eq!(dep.disjuncts[0].atoms.len(), 1);
        assert_eq!(dep.disjuncts[1].eqs.len(), 1);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("view V(x) <- A(x)\nview W(y) <- B(y).").unwrap_err();
        match err {
            LangError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn dollar_variables_rejected() {
        // `$` cannot be lexed as part of an identifier at all.
        let err = parse_program("view V(x) <- A($x_1).").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }));
    }

    #[test]
    fn unterminated_string_reported() {
        let err = parse_program("fact S(\"oops).").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn display_round_trip_of_dependency() {
        let text = "ded d0: T_Product(p1, n, s1), T_Product(p2, n, s2) \
                    -> p1 = p2 | T_Rating(r, p1, 0) | T_Rating(r2, p2, 0).";
        let dep = parse_dependency(text).unwrap();
        let printed = dep.to_string();
        // `Display` uses the generic `dep` keyword.
        let reparsed = parse_dependency(&printed).unwrap();
        assert_eq!(dep, reparsed);
    }

    #[test]
    fn display_round_trip_of_view_rule() {
        let rule = parse_view_rule(
            "view AvgProduct(pid, name) <- T_Product(pid, name, store), \
             T_Rating(rid, pid, 1), not PopularProduct(pid, name).",
        )
        .unwrap();
        let reparsed = parse_view_rule(&rule.to_string()).unwrap();
        assert_eq!(rule, reparsed);
    }

    #[test]
    fn empty_program_parses() {
        let prog = parse_program("  # nothing here\n // just comments\n").unwrap();
        assert!(prog.deps.is_empty());
        assert!(prog.views.is_empty());
    }

    #[test]
    fn auto_named_dependencies() {
        let prog = parse_program("dep A(x) -> B(x).\ndep A(x) -> C(x).").unwrap();
        assert_eq!(prog.deps.len(), 2);
        assert_ne!(prog.deps[0].name, prog.deps[1].name);
    }
}
