//! View definitions: the semantic schemas `V_S`, `V_T`.
//!
//! A semantic schema is a set of virtual predicates defined over base
//! tables (and over other views) by rules in **non-recursive Datalog with
//! negation**. A view may have several rules — a union — and rule bodies
//! may contain negated base atoms (view `v2` of the paper negates
//! `T-Rating`) or negated view atoms (`v3` negates `PopularProduct`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::ast::{Atom, Literal};
use crate::error::LangError;
use crate::safety;
use crate::strata;

/// One rule `Head(x̄) ⇐ body` of a view definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewRule {
    pub head: Atom,
    pub body: Vec<Literal>,
}

impl ViewRule {
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Self { head, body }
    }

    /// Predicates this rule reads, split into (positive, negated).
    pub fn referenced_predicates(&self) -> (BTreeSet<Arc<str>>, BTreeSet<Arc<str>>) {
        let mut pos = BTreeSet::new();
        let mut neg = BTreeSet::new();
        for lit in &self.body {
            match lit {
                Literal::Pos(a) => {
                    pos.insert(a.predicate.clone());
                }
                Literal::Neg(a) => {
                    neg.insert(a.predicate.clone());
                }
                Literal::Cmp(_) => {}
            }
        }
        (pos, neg)
    }
}

impl fmt::Display for ViewRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view {} <- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{l}")?;
        }
        f.write_str(".")
    }
}

/// A set of view definitions, validated to be non-recursive and safe.
///
/// Use builder-style construction via [`ViewSet::new`] /
/// [`ViewSet::from_rules`]; [`ViewSet::validate`] performs the checks and is
/// required before the set is handed to the engine or the rewriter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewSet {
    rules: Vec<ViewRule>,
    /// view predicate → indexes into `rules`, in declaration order.
    by_pred: BTreeMap<Arc<str>, Vec<usize>>,
}

impl ViewSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_rules(rules: impl IntoIterator<Item = ViewRule>) -> Result<Self, LangError> {
        let mut vs = ViewSet::new();
        for r in rules {
            vs.add_rule(r)?;
        }
        Ok(vs)
    }

    /// Add a rule. Rules for the same head predicate form a union and must
    /// agree on arity.
    pub fn add_rule(&mut self, rule: ViewRule) -> Result<(), LangError> {
        let pred = rule.head.predicate.clone();
        if let Some(first) = self.by_pred.get(&pred).and_then(|v| v.first()) {
            let expected = self.rules[*first].head.arity();
            if rule.head.arity() != expected {
                return Err(LangError::ViewArityMismatch {
                    view: pred,
                    expected,
                    actual: rule.head.arity(),
                });
            }
        }
        self.by_pred.entry(pred).or_default().push(self.rules.len());
        self.rules.push(rule);
        Ok(())
    }

    /// Is `pred` a view (as opposed to a base table)?
    pub fn is_view(&self, pred: &str) -> bool {
        self.by_pred.contains_key(pred)
    }

    /// The rules defining `pred`, in declaration order (empty if not a view).
    pub fn rules_of(&self, pred: &str) -> Vec<&ViewRule> {
        self.by_pred
            .get(pred)
            .map(|ix| ix.iter().map(|&i| &self.rules[i]).collect())
            .unwrap_or_default()
    }

    /// All rules, in declaration order.
    pub fn rules(&self) -> &[ViewRule] {
        &self.rules
    }

    /// The view predicate names, sorted.
    pub fn view_names(&self) -> impl Iterator<Item = &Arc<str>> {
        self.by_pred.keys()
    }

    pub fn len(&self) -> usize {
        self.by_pred.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The arity of view `pred`, if defined.
    pub fn arity_of(&self, pred: &str) -> Option<usize> {
        self.by_pred
            .get(pred)
            .and_then(|ix| ix.first())
            .map(|&i| self.rules[i].head.arity())
    }

    /// Base (non-view) predicates read anywhere in the definitions.
    pub fn base_predicates(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        for rule in &self.rules {
            let (pos, neg) = rule.referenced_predicates();
            for p in pos.into_iter().chain(neg) {
                if !self.is_view(&p) {
                    out.insert(p);
                }
            }
        }
        out
    }

    /// Validate the set: safety of every rule and non-recursion of the view
    /// graph. Returns the materialization order (a topological order of the
    /// view predicates: definitions before uses).
    pub fn validate(&self) -> Result<Vec<Arc<str>>, LangError> {
        for rule in &self.rules {
            safety::check_view_rule(rule)?;
        }
        strata::materialization_order(self)
    }

    /// The union of two view sets (e.g. `Υ_S ∪ Υ_T`); predicates may not be
    /// defined in both.
    pub fn union(&self, other: &ViewSet) -> Result<ViewSet, LangError> {
        let mut out = self.clone();
        for rule in &other.rules {
            if self.is_view(&rule.head.predicate) {
                // Unioning rule sets for the same predicate across schemas
                // would silently change semantics; treat as arity conflict
                // style error via a dedicated message.
                return Err(LangError::Unsafe {
                    context: format!("view `{}`", rule.head.predicate),
                    detail: "defined in both view sets being combined".into(),
                });
            }
            out.add_rule(rule.clone())?;
        }
        Ok(out)
    }
}

impl fmt::Display for ViewSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    /// The paper's target semantic schema (views v1–v6, §2), with `0`/`1`
    /// rating constants as ints.
    pub(crate) fn paper_views() -> ViewSet {
        let mut vs = ViewSet::new();
        // v1: Product(id, name) <- T_Product(id, name, store)
        vs.add_rule(ViewRule::new(
            atom("Product", &["id", "name"]),
            vec![Literal::Pos(atom("T_Product", &["id", "name", "store"]))],
        ))
        .unwrap();
        // v2: PopularProduct(pid, name) <- T_Product(pid,name,store), not T_Rating(rid,pid,0)
        vs.add_rule(ViewRule::new(
            atom("PopularProduct", &["pid", "name"]),
            vec![
                Literal::Pos(atom("T_Product", &["pid", "name", "store"])),
                Literal::Neg(Atom::new(
                    "T_Rating",
                    vec![Term::var("rid"), Term::var("pid"), Term::cons(0i64)],
                )),
            ],
        ))
        .unwrap();
        // v3: AvgProduct <- T_Product, T_Rating(rid,pid,1), not PopularProduct
        vs.add_rule(ViewRule::new(
            atom("AvgProduct", &["pid", "name"]),
            vec![
                Literal::Pos(atom("T_Product", &["pid", "name", "store"])),
                Literal::Pos(Atom::new(
                    "T_Rating",
                    vec![Term::var("rid"), Term::var("pid"), Term::cons(1i64)],
                )),
                Literal::Neg(atom("PopularProduct", &["pid", "name"])),
            ],
        ))
        .unwrap();
        // v4: UnpopularProduct <- T_Product, not AvgProduct, not PopularProduct
        vs.add_rule(ViewRule::new(
            atom("UnpopularProduct", &["pid", "name"]),
            vec![
                Literal::Pos(atom("T_Product", &["pid", "name", "store"])),
                Literal::Neg(atom("AvgProduct", &["pid", "name"])),
                Literal::Neg(atom("PopularProduct", &["pid", "name"])),
            ],
        ))
        .unwrap();
        // v5: SoldAt(pid, stid) <- T_Product(pid, pname, stid)
        vs.add_rule(ViewRule::new(
            atom("SoldAt", &["pid", "stid"]),
            vec![Literal::Pos(atom("T_Product", &["pid", "pname", "stid"]))],
        ))
        .unwrap();
        // v6: Store(id, name, addr) <- T_Store(id, name, addr, phone)
        vs.add_rule(ViewRule::new(
            atom("Store", &["id", "name", "addr"]),
            vec![Literal::Pos(atom(
                "T_Store",
                &["id", "name", "addr", "phone"],
            ))],
        ))
        .unwrap();
        vs
    }

    #[test]
    fn union_views_group_and_check_arity() {
        let mut vs = ViewSet::new();
        vs.add_rule(ViewRule::new(
            atom("V", &["x"]),
            vec![Literal::Pos(atom("A", &["x"]))],
        ))
        .unwrap();
        vs.add_rule(ViewRule::new(
            atom("V", &["y"]),
            vec![Literal::Pos(atom("B", &["y"]))],
        ))
        .unwrap();
        assert_eq!(vs.rules_of("V").len(), 2);
        assert_eq!(vs.arity_of("V"), Some(1));

        let err = vs
            .add_rule(ViewRule::new(
                atom("V", &["x", "y"]),
                vec![Literal::Pos(atom("A", &["x"]))],
            ))
            .unwrap_err();
        assert!(matches!(err, LangError::ViewArityMismatch { .. }));
    }

    #[test]
    fn paper_views_validate_and_order() {
        let vs = paper_views();
        assert_eq!(vs.len(), 6);
        assert!(vs.is_view("PopularProduct"));
        assert!(!vs.is_view("T_Product"));
        let order = vs.validate().unwrap();
        let pos = |name: &str| order.iter().position(|p| p.as_ref() == name).unwrap();
        // Definitions must come before uses: Popular < Avg < Unpopular.
        assert!(pos("PopularProduct") < pos("AvgProduct"));
        assert!(pos("AvgProduct") < pos("UnpopularProduct"));
    }

    #[test]
    fn base_predicates_of_paper_views() {
        let vs = paper_views();
        let base: Vec<String> = vs.base_predicates().iter().map(|p| p.to_string()).collect();
        assert_eq!(base, vec!["T_Product", "T_Rating", "T_Store"]);
    }

    #[test]
    fn recursive_views_rejected() {
        let mut vs = ViewSet::new();
        vs.add_rule(ViewRule::new(
            atom("V", &["x"]),
            vec![Literal::Pos(atom("W", &["x"]))],
        ))
        .unwrap();
        vs.add_rule(ViewRule::new(
            atom("W", &["x"]),
            vec![Literal::Pos(atom("V", &["x"]))],
        ))
        .unwrap();
        let err = vs.validate().unwrap_err();
        assert!(matches!(err, LangError::RecursiveViews { .. }));
    }

    #[test]
    fn self_recursion_rejected() {
        let mut vs = ViewSet::new();
        vs.add_rule(ViewRule::new(
            atom("V", &["x"]),
            vec![
                Literal::Pos(atom("A", &["x"])),
                Literal::Neg(atom("V", &["x"])),
            ],
        ))
        .unwrap();
        assert!(matches!(
            vs.validate().unwrap_err(),
            LangError::RecursiveViews { .. }
        ));
    }

    #[test]
    fn view_set_union_rejects_double_definitions() {
        let mut a = ViewSet::new();
        a.add_rule(ViewRule::new(
            atom("V", &["x"]),
            vec![Literal::Pos(atom("A", &["x"]))],
        ))
        .unwrap();
        let b = a.clone();
        assert!(a.union(&b).is_err());

        let mut c = ViewSet::new();
        c.add_rule(ViewRule::new(
            atom("W", &["x"]),
            vec![Literal::Pos(atom("B", &["x"]))],
        ))
        .unwrap();
        let u = a.union(&c).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn display_round_trip_syntax() {
        let vs = paper_views();
        let text = vs.to_string();
        assert!(text.contains(
            "view PopularProduct(pid, name) <- T_Product(pid, name, store), not T_Rating(rid, pid, 0)."
        ));
    }
}
