//! Dependencies: tgds, egds, denials and deds in one uniform shape.
//!
//! GROM's rewriting output lives in the language of **disjunctive embedded
//! dependencies** (§3 of the paper, after Deutsch–Nash–Remmel): sentences
//!
//! ```text
//! ∀x̄  premise(x̄)  →  ∨_i  ∃ȳ_i  disjunct_i(x̄, ȳ_i)
//! ```
//!
//! where the premise is a conjunction of literals and every disjunct is a
//! conjunction of relational atoms, equalities and comparisons. The familiar
//! dependency classes are special cases, recovered by [`Dependency::class`]:
//!
//! | disjuncts | content            | class   |
//! |-----------|--------------------|---------|
//! | 1         | atoms only         | tgd     |
//! | 1         | equalities only    | egd     |
//! | 1         | atoms + equalities | tgd+egd |
//! | 0         | —                  | denial  |
//! | ≥ 2       | anything           | ded     |
//!
//! The paper's `d0` is a ded with three disjuncts; its `m0`–`m3` are tgds
//! and its `e0` is an egd, all representable here without loss.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::ast::{body_variables, Atom, Comparison, Literal, Term, Var};
use crate::subst::TermSubst;

/// One disjunct of a dependency conclusion: an existentially quantified
/// conjunction of atoms, equalities and comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Disjunct {
    pub atoms: Vec<Atom>,
    pub eqs: Vec<(Term, Term)>,
    pub cmps: Vec<Comparison>,
}

impl Disjunct {
    pub fn atoms(atoms: Vec<Atom>) -> Self {
        Disjunct {
            atoms,
            ..Default::default()
        }
    }

    pub fn equality(lhs: Term, rhs: Term) -> Self {
        Disjunct {
            eqs: vec![(lhs, rhs)],
            ..Default::default()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty() && self.eqs.is_empty() && self.cmps.is_empty()
    }

    /// All distinct variables of this disjunct, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        let mut push = |v: &Var| {
            if seen.insert(v.clone()) {
                out.push(v.clone());
            }
        };
        for a in &self.atoms {
            for t in &a.args {
                if let Term::Var(v) = t {
                    push(v);
                }
            }
        }
        for (l, r) in &self.eqs {
            for t in [l, r] {
                if let Term::Var(v) = t {
                    push(v);
                }
            }
        }
        for c in &self.cmps {
            for t in [&c.lhs, &c.rhs] {
                if let Term::Var(v) = t {
                    push(v);
                }
            }
        }
        out
    }

    pub fn apply(&self, subst: &TermSubst) -> Disjunct {
        Disjunct {
            atoms: self.atoms.iter().map(|a| subst.apply_atom(a)).collect(),
            eqs: self
                .eqs
                .iter()
                .map(|(l, r)| (subst.apply_term(l), subst.apply_term(r)))
                .collect(),
            cmps: self
                .cmps
                .iter()
                .map(|c| subst.apply_comparison(c))
                .collect(),
        }
    }
}

impl fmt::Display for Disjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            Ok(())
        };
        for a in &self.atoms {
            sep(f)?;
            write!(f, "{a}")?;
        }
        for (l, r) in &self.eqs {
            sep(f)?;
            write!(f, "{l} = {r}")?;
        }
        for c in &self.cmps {
            sep(f)?;
            write!(f, "{c}")?;
        }
        if first {
            // An empty disjunct is the trivially-true conclusion; it should
            // never survive normalization, but print something parseable.
            f.write_str("true")?;
        }
        Ok(())
    }
}

/// The classification of a dependency; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepClass {
    /// One disjunct, relational atoms only.
    Tgd,
    /// One disjunct, equalities only.
    Egd,
    /// One disjunct mixing atoms and equalities.
    TgdEgd,
    /// No disjuncts: the premise must never match.
    Denial,
    /// Two or more disjuncts: a genuine disjunctive embedded dependency.
    Ded,
}

impl fmt::Display for DepClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepClass::Tgd => "tgd",
            DepClass::Egd => "egd",
            DepClass::TgdEgd => "tgd+egd",
            DepClass::Denial => "denial",
            DepClass::Ded => "ded",
        };
        f.write_str(s)
    }
}

/// A dependency `premise → disjunct_1 ∨ … ∨ disjunct_k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependency {
    /// A label for diagnostics and provenance (`m0`, `e0`, `d0`, …).
    pub name: Arc<str>,
    pub premise: Vec<Literal>,
    pub disjuncts: Vec<Disjunct>,
}

impl Dependency {
    pub fn new(name: impl AsRef<str>, premise: Vec<Literal>, disjuncts: Vec<Disjunct>) -> Self {
        Self {
            name: Arc::from(name.as_ref()),
            premise,
            disjuncts,
        }
    }

    /// A plain tgd `premise → ∃ȳ atoms`.
    pub fn tgd(name: impl AsRef<str>, premise: Vec<Literal>, conclusion: Vec<Atom>) -> Self {
        Self::new(name, premise, vec![Disjunct::atoms(conclusion)])
    }

    /// A plain egd `premise → lhs = rhs`.
    pub fn egd(name: impl AsRef<str>, premise: Vec<Literal>, lhs: Term, rhs: Term) -> Self {
        Self::new(name, premise, vec![Disjunct::equality(lhs, rhs)])
    }

    /// A denial constraint `premise → ⊥`.
    pub fn denial(name: impl AsRef<str>, premise: Vec<Literal>) -> Self {
        Self::new(name, premise, Vec::new())
    }

    /// Classify; see [`DepClass`].
    pub fn class(&self) -> DepClass {
        match self.disjuncts.len() {
            0 => DepClass::Denial,
            1 => {
                let d = &self.disjuncts[0];
                match (d.atoms.is_empty(), d.eqs.is_empty()) {
                    (false, true) => DepClass::Tgd,
                    (true, false) => DepClass::Egd,
                    _ => DepClass::TgdEgd,
                }
            }
            _ => DepClass::Ded,
        }
    }

    pub fn is_ded(&self) -> bool {
        self.disjuncts.len() >= 2
    }

    pub fn is_denial(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// The universally quantified variables: those of the premise.
    pub fn universal_vars(&self) -> Vec<Var> {
        body_variables(&self.premise)
    }

    /// The existential variables of disjunct `i`: its variables that do not
    /// occur in the premise.
    pub fn existential_vars(&self, i: usize) -> Vec<Var> {
        let universal: BTreeSet<Var> = self.universal_vars().into_iter().collect();
        self.disjuncts[i]
            .variables()
            .into_iter()
            .filter(|v| !universal.contains(v))
            .collect()
    }

    /// Does the premise contain negated literals? Executable (chaseable)
    /// dependencies — the rewriter's output — never do.
    pub fn has_negated_premise(&self) -> bool {
        self.premise.iter().any(Literal::is_negated)
    }

    /// Predicates referenced anywhere in this dependency.
    pub fn predicates(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        for l in &self.premise {
            if let Some(a) = l.atom() {
                out.insert(a.predicate.clone());
            }
        }
        for d in &self.disjuncts {
            for a in &d.atoms {
                out.insert(a.predicate.clone());
            }
        }
        out
    }

    /// Rename variables via a substitution (used to freshen apart during
    /// rewriting). The caller is responsible for the substitution being a
    /// renaming where that matters.
    pub fn apply(&self, subst: &TermSubst) -> Dependency {
        Dependency {
            name: self.name.clone(),
            premise: subst.apply_body(&self.premise),
            disjuncts: self.disjuncts.iter().map(|d| d.apply(subst)).collect(),
        }
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dep {}: ", self.name)?;
        for (i, l) in self.premise.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{l}")?;
        }
        f.write_str(" -> ")?;
        if self.disjuncts.is_empty() {
            f.write_str("false")?;
        } else {
            for (i, d) in self.disjuncts.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write!(f, "{d}")?;
            }
        }
        f.write_str(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    fn d0() -> Dependency {
        // The paper's ded d0:
        // TProduct(p1,n,s1), TProduct(p2,n,s2) ->
        //   p1 = p2 | TRating(r,p1,0) | TRating(r2,p2,0)
        Dependency::new(
            "d0",
            vec![
                Literal::Pos(atom("TProduct", &["p1", "n", "s1"])),
                Literal::Pos(atom("TProduct", &["p2", "n", "s2"])),
            ],
            vec![
                Disjunct::equality(Term::var("p1"), Term::var("p2")),
                Disjunct::atoms(vec![atom("TRating", &["r", "p1"])]),
                Disjunct::atoms(vec![atom("TRating", &["r2", "p2"])]),
            ],
        )
    }

    #[test]
    fn classification() {
        let tgd = Dependency::tgd(
            "m",
            vec![Literal::Pos(atom("S", &["x"]))],
            vec![atom("T", &["x", "y"])],
        );
        assert_eq!(tgd.class(), DepClass::Tgd);

        let egd = Dependency::egd(
            "e",
            vec![Literal::Pos(atom("T", &["x", "y"]))],
            Term::var("x"),
            Term::var("y"),
        );
        assert_eq!(egd.class(), DepClass::Egd);

        let denial = Dependency::denial("n", vec![Literal::Pos(atom("T", &["x", "x"]))]);
        assert_eq!(denial.class(), DepClass::Denial);
        assert!(denial.is_denial());

        assert_eq!(d0().class(), DepClass::Ded);
        assert!(d0().is_ded());

        let mixed = Dependency::new(
            "x",
            vec![Literal::Pos(atom("S", &["x", "y"]))],
            vec![Disjunct {
                atoms: vec![atom("T", &["x", "z"])],
                eqs: vec![(Term::var("x"), Term::var("y"))],
                cmps: vec![],
            }],
        );
        assert_eq!(mixed.class(), DepClass::TgdEgd);
    }

    #[test]
    fn universal_and_existential_vars() {
        let dep = d0();
        let uni: Vec<String> = dep.universal_vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(uni, vec!["p1", "n", "s1", "p2", "s2"]);
        let ex1: Vec<String> = dep
            .existential_vars(1)
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(ex1, vec!["r"]);
        let ex0: Vec<String> = dep
            .existential_vars(0)
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(ex0.is_empty());
    }

    #[test]
    fn negated_premise_detection() {
        let dep = Dependency::tgd(
            "m",
            vec![
                Literal::Pos(atom("S", &["x"])),
                Literal::Neg(atom("R", &["x"])),
            ],
            vec![atom("T", &["x"])],
        );
        assert!(dep.has_negated_premise());
        assert!(!d0().has_negated_premise());
    }

    #[test]
    fn predicates_collected() {
        let preds: Vec<String> = d0().predicates().iter().map(|p| p.to_string()).collect();
        assert_eq!(preds, vec!["TProduct", "TRating"]);
    }

    #[test]
    fn display_is_parser_syntax() {
        let dep = Dependency::tgd(
            "m2",
            vec![
                Literal::Pos(atom("SProduct", &["pid", "name", "store", "rating"])),
                Literal::Cmp(Comparison::new(
                    CmpOp::Geq,
                    Term::var("rating"),
                    Term::cons(4i64),
                )),
            ],
            vec![atom("PopularProduct", &["pid", "name"])],
        );
        assert_eq!(
            dep.to_string(),
            "dep m2: SProduct(pid, name, store, rating), rating >= 4 -> PopularProduct(pid, name)."
        );
        let denial = Dependency::denial("n0", vec![Literal::Pos(atom("T", &["x", "x"]))]);
        assert_eq!(denial.to_string(), "dep n0: T(x, x) -> false.");
        assert_eq!(
            d0().to_string(),
            "dep d0: TProduct(p1, n, s1), TProduct(p2, n, s2) -> p1 = p2 | TRating(r, p1) | TRating(r2, p2)."
        );
    }

    #[test]
    fn apply_substitution() {
        let mut s = TermSubst::new();
        s.bind("p1".into(), Term::var("q"));
        let dep = d0().apply(&s);
        assert!(dep.to_string().contains("TProduct(q, n, s1)"));
        assert!(dep.to_string().contains("q = p2"));
    }
}
