//! Fresh-variable generation.
//!
//! The rewriter renames view-body variables apart every time it unfolds a
//! view atom; [`VarGen`] hands out names that cannot collide with
//! user-written variables because of the reserved `$` prefix (the parser
//! rejects `$` in identifiers).

use std::sync::Arc;

use crate::ast::{Term, Var};

/// Generator of fresh variables `$base_k`.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u64,
}

impl VarGen {
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh variable whose name hints at its origin (`base` is typically
    /// the original variable name being renamed apart).
    pub fn fresh(&mut self, base: &str) -> Var {
        let id = self.next;
        self.next += 1;
        // Strip any previous freshness marker so names do not snowball
        // through nested unfoldings ($x_3 -> $x_17, not $$x_3_17).
        let stem = base.trim_start_matches('$');
        let stem = match stem.find('_') {
            Some(i) if stem[i + 1..].chars().all(|c| c.is_ascii_digit()) => &stem[..i],
            _ => stem,
        };
        Arc::from(format!("${stem}_{id}").as_str())
    }

    /// A fresh variable term.
    pub fn fresh_term(&mut self, base: &str) -> Term {
        Term::Var(self.fresh(base))
    }

    /// Number of variables generated so far.
    pub fn count(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_variables_are_distinct() {
        let mut g = VarGen::new();
        let a = g.fresh("x");
        let b = g.fresh("x");
        assert_ne!(a, b);
        assert_eq!(a.as_ref(), "$x_0");
        assert_eq!(b.as_ref(), "$x_1");
        assert_eq!(g.count(), 2);
    }

    #[test]
    fn freshening_a_fresh_variable_does_not_snowball() {
        let mut g = VarGen::new();
        let a = g.fresh("store");
        let b = g.fresh(&a);
        assert_eq!(b.as_ref(), "$store_1");
    }

    #[test]
    fn stem_with_underscore_but_no_digits_is_kept() {
        let mut g = VarGen::new();
        let a = g.fresh("my_var");
        assert_eq!(a.as_ref(), "$my_var_0");
    }
}
