//! Substitutions: variable → term renamings and variable → value bindings.
//!
//! Two flavors are used throughout GROM:
//!
//! * [`TermSubst`] maps variables to *terms* (variables or constants). This
//!   is the symbolic substitution the rewriter applies when unfolding a view
//!   atom: head variables map to the atom's argument terms, body-only
//!   variables map to fresh variables.
//! * [`Bindings`] maps variables to *values*. This is the runtime
//!   environment produced by joins in the engine and consumed by the chase
//!   when instantiating conclusions.

use std::collections::BTreeMap;
use std::fmt;

use grom_data::Value;

use crate::ast::{Atom, Comparison, Literal, Term, Var};

/// A symbolic substitution `var → term`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermSubst {
    map: BTreeMap<Var, Term>,
}

impl TermSubst {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn bind(&mut self, var: Var, term: Term) {
        self.map.insert(var, term);
    }

    pub fn get(&self, var: &Var) -> Option<&Term> {
        self.map.get(var)
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Apply to a term. Unmapped variables stay themselves.
    pub fn apply_term(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| term.clone()),
            Term::Const(_) => term.clone(),
        }
    }

    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            predicate: atom.predicate.clone(),
            args: atom.args.iter().map(|t| self.apply_term(t)).collect(),
        }
    }

    pub fn apply_comparison(&self, cmp: &Comparison) -> Comparison {
        Comparison {
            op: cmp.op,
            lhs: self.apply_term(&cmp.lhs),
            rhs: self.apply_term(&cmp.rhs),
        }
    }

    pub fn apply_literal(&self, lit: &Literal) -> Literal {
        match lit {
            Literal::Pos(a) => Literal::Pos(self.apply_atom(a)),
            Literal::Neg(a) => Literal::Neg(self.apply_atom(a)),
            Literal::Cmp(c) => Literal::Cmp(self.apply_comparison(c)),
        }
    }

    pub fn apply_body(&self, body: &[Literal]) -> Vec<Literal> {
        body.iter().map(|l| self.apply_literal(l)).collect()
    }
}

impl fmt::Display for TermSubst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        f.write_str("}")
    }
}

/// A runtime environment `var → value`, produced by evaluating a premise
/// over an instance.
///
/// Backed by a `Vec` kept sorted by variable name: premise matches bind a
/// handful of variables, and at that size a sorted vector beats a tree map
/// on every operation the join's inner loop performs (bind, unbind, get) —
/// no per-entry node allocation, one contiguous block to clone. Iteration
/// is in variable order, exactly as with the previous `BTreeMap` backing,
/// so renderings and dedup keys are unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Bindings {
    map: Vec<(Var, Value)>,
}

impl Bindings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of `var`, or the insertion point keeping `map` sorted. Linear
    /// scan: bindings are tiny and the early-exit comparison is the same
    /// one a binary search would do, without the branching.
    fn position(&self, var: &Var) -> Result<usize, usize> {
        for (i, (v, _)) in self.map.iter().enumerate() {
            match v.as_ref().cmp(var.as_ref()) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => return Ok(i),
                std::cmp::Ordering::Greater => return Err(i),
            }
        }
        Err(self.map.len())
    }

    pub fn bind(&mut self, var: Var, value: Value) {
        match self.position(&var) {
            Ok(i) => self.map[i].1 = value,
            Err(i) => self.map.insert(i, (var, value)),
        }
    }

    pub fn get(&self, var: &Var) -> Option<&Value> {
        self.position(var).ok().map(|i| &self.map[i].1)
    }

    pub fn contains(&self, var: &Var) -> bool {
        self.position(var).is_ok()
    }

    pub fn unbind(&mut self, var: &Var) {
        if let Ok(i) = self.position(var) {
            self.map.remove(i);
        }
    }

    /// Drop every binding, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.map.iter().map(|(v, t)| (v, t))
    }

    /// Evaluate a term to a value under these bindings. `None` if the term
    /// is an unbound variable.
    pub fn eval_term(&self, term: &Term) -> Option<Value> {
        match term {
            Term::Var(v) => self.get(v).cloned(),
            Term::Const(c) => Some(c.clone()),
        }
    }

    /// Evaluate a comparison under these bindings. `None` if a side is
    /// unbound, otherwise the truth value.
    pub fn eval_comparison(&self, cmp: &Comparison) -> Option<bool> {
        let lhs = self.eval_term(&cmp.lhs)?;
        let rhs = self.eval_term(&cmp.rhs)?;
        Some(cmp.op.eval(&lhs, &rhs))
    }

    /// Instantiate an atom into a lookup pattern: bound positions become
    /// `Some(value)`, unbound variables become `None`.
    pub fn atom_pattern(&self, atom: &Atom) -> Vec<Option<Value>> {
        atom.args.iter().map(|t| self.eval_term(t)).collect()
    }

    /// [`Bindings::atom_pattern`] into a caller-owned buffer, so hot loops
    /// can reuse one allocation across probes.
    pub fn atom_pattern_into(&self, atom: &Atom, buf: &mut Vec<Option<Value>>) {
        buf.clear();
        buf.extend(atom.args.iter().map(|t| self.eval_term(t)));
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} = {t}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    #[test]
    fn term_subst_applies_and_leaves_unmapped() {
        let mut s = TermSubst::new();
        s.bind(Term::var("x").as_var().unwrap().clone(), Term::var("y"));
        s.bind(Term::var("z").as_var().unwrap().clone(), Term::cons(5i64));
        let atom = Atom::new("R", vec![Term::var("x"), Term::var("z"), Term::var("w")]);
        let out = s.apply_atom(&atom);
        assert_eq!(
            out,
            Atom::new("R", vec![Term::var("y"), Term::cons(5i64), Term::var("w")])
        );
    }

    #[test]
    fn term_subst_on_literals() {
        let mut s = TermSubst::new();
        s.bind("x".into(), Term::cons(1i64));
        let lit = Literal::Neg(Atom::new("S", vec![Term::var("x")]));
        assert_eq!(
            s.apply_literal(&lit),
            Literal::Neg(Atom::new("S", vec![Term::cons(1i64)]))
        );
        let cmp = Literal::Cmp(Comparison::new(CmpOp::Lt, Term::var("x"), Term::var("y")));
        assert_eq!(
            s.apply_literal(&cmp),
            Literal::Cmp(Comparison::new(CmpOp::Lt, Term::cons(1i64), Term::var("y")))
        );
    }

    #[test]
    fn bindings_eval() {
        let mut b = Bindings::new();
        b.bind("x".into(), Value::int(3));
        assert_eq!(b.eval_term(&Term::var("x")), Some(Value::int(3)));
        assert_eq!(b.eval_term(&Term::var("y")), None);
        assert_eq!(b.eval_term(&Term::cons(9i64)), Some(Value::int(9)));

        let c = Comparison::new(CmpOp::Lt, Term::var("x"), Term::cons(5i64));
        assert_eq!(b.eval_comparison(&c), Some(true));
        let c = Comparison::new(CmpOp::Lt, Term::var("y"), Term::cons(5i64));
        assert_eq!(b.eval_comparison(&c), None);
    }

    #[test]
    fn atom_pattern_mixes_bound_and_unbound() {
        let mut b = Bindings::new();
        b.bind("x".into(), Value::int(3));
        let atom = Atom::new("R", vec![Term::var("x"), Term::var("y"), Term::cons(7i64)]);
        assert_eq!(
            b.atom_pattern(&atom),
            vec![Some(Value::int(3)), None, Some(Value::int(7))]
        );
    }

    #[test]
    fn bindings_unbind() {
        let mut b = Bindings::new();
        b.bind("x".into(), Value::int(3));
        assert!(b.contains(&"x".into()));
        b.unbind(&"x".into());
        assert!(!b.contains(&"x".into()));
        assert!(b.is_empty());
    }
}
