//! A parsed scenario program: schemas, views, dependencies and facts.
//!
//! This is the textual counterpart of what the demo's GUI mapping designer
//! produces: everything GROM needs short of the source instance (facts may
//! be inlined for small scenarios and tests).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use grom_data::{Fact, Schema};

use crate::ast::Literal;
use crate::dependency::Dependency;
use crate::error::LangError;
use crate::safety;
use crate::view::ViewSet;

/// A full scenario program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Named schemas (conventionally `source` and `target`).
    pub schemas: BTreeMap<String, Schema>,
    /// All view definitions (over any schema; the core crate splits them by
    /// the base tables they reach).
    pub views: ViewSet,
    /// All dependencies: s-t tgds, target egds, deds, denials.
    pub deps: Vec<Dependency>,
    /// Inline facts.
    pub facts: Vec<Fact>,
}

impl Program {
    /// Parse a program from its textual form. See the crate docs of
    /// [`crate::parser`] for the grammar.
    pub fn parse(text: &str) -> Result<Program, LangError> {
        crate::parser::parse_program(text)
    }

    /// The schema named `name`, if declared.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.schemas.get(name)
    }

    /// Validate the program:
    /// * views are safe and non-recursive,
    /// * dependencies are safe,
    /// * every predicate is used with one consistent arity, and predicates
    ///   declared in a schema are used with the declared arity,
    /// * facts mention declared relations with the right arity (when any
    ///   schema is declared at all).
    pub fn validate(&self) -> Result<(), LangError> {
        self.views.validate()?;
        for dep in &self.deps {
            safety::check_dependency(dep)?;
        }

        // predicate -> arity, seeded by schema declarations then views.
        let mut arity: BTreeMap<Arc<str>, usize> = BTreeMap::new();
        for schema in self.schemas.values() {
            for rel in schema.relations() {
                arity.insert(rel.name().clone(), rel.arity());
            }
        }
        for name in self.views.view_names() {
            if let Some(a) = self.views.arity_of(name) {
                if let Some(&prev) = arity.get(name) {
                    if prev != a {
                        return Err(LangError::PredicateArityMismatch {
                            predicate: name.clone(),
                            expected: prev,
                            actual: a,
                        });
                    }
                }
                arity.insert(name.clone(), a);
            }
        }

        let mut check = |pred: &Arc<str>, a: usize| -> Result<(), LangError> {
            match arity.get(pred) {
                Some(&expected) if expected != a => Err(LangError::PredicateArityMismatch {
                    predicate: pred.clone(),
                    expected,
                    actual: a,
                }),
                Some(_) => Ok(()),
                None => {
                    arity.insert(pred.clone(), a);
                    Ok(())
                }
            }
        };

        for rule in self.views.rules() {
            check(&rule.head.predicate, rule.head.arity())?;
            for lit in &rule.body {
                if let Some(atom) = lit.atom() {
                    check(&atom.predicate, atom.arity())?;
                }
            }
        }
        for dep in &self.deps {
            for lit in &dep.premise {
                if let Some(atom) = lit.atom() {
                    check(&atom.predicate, atom.arity())?;
                }
            }
            for d in &dep.disjuncts {
                for atom in &d.atoms {
                    check(&atom.predicate, atom.arity())?;
                }
            }
        }
        for fact in &self.facts {
            check(&fact.relation, fact.tuple.arity())?;
        }
        Ok(())
    }

    /// Dependencies whose premise is free of negated literals — the ones the
    /// chase accepts directly.
    pub fn executable_deps(&self) -> impl Iterator<Item = &Dependency> {
        self.deps.iter().filter(|d| !d.has_negated_premise())
    }

    /// Count of premise literals across all dependencies (a rough size
    /// metric used by benchmarks).
    pub fn premise_literal_count(&self) -> usize {
        self.deps.iter().map(|d| d.premise.len()).sum()
    }

    /// Predicates mentioned anywhere that are neither schema relations nor
    /// views (useful to catch typos in hand-written scenarios).
    pub fn undeclared_predicates(&self) -> Vec<Arc<str>> {
        let mut declared: BTreeMap<Arc<str>, ()> = BTreeMap::new();
        for schema in self.schemas.values() {
            for rel in schema.relations() {
                declared.insert(rel.name().clone(), ());
            }
        }
        for v in self.views.view_names() {
            declared.insert(v.clone(), ());
        }
        let mut out = Vec::new();
        let mut note = |p: &Arc<str>| {
            if !declared.contains_key(p) && !out.contains(p) {
                out.push(p.clone());
            }
        };
        for rule in self.views.rules() {
            for lit in &rule.body {
                if let Some(a) = lit.atom() {
                    note(&a.predicate);
                }
            }
        }
        for dep in &self.deps {
            for lit in &dep.premise {
                if let Some(a) = lit.atom() {
                    note(&a.predicate);
                }
            }
            for d in &dep.disjuncts {
                for a in &d.atoms {
                    note(&a.predicate);
                }
            }
        }
        for f in &self.facts {
            note(&f.relation);
        }
        out
    }

    /// Helper used by tests and generators: a program with only deps.
    pub fn from_deps(deps: Vec<Dependency>) -> Program {
        Program {
            deps,
            ..Default::default()
        }
    }

    /// All premises of all dependencies (handy for analyses).
    pub fn premises(&self) -> impl Iterator<Item = &[Literal]> {
        self.deps.iter().map(|d| d.premise.as_slice())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, schema) in &self.schemas {
            writeln!(f, "schema {name} {{")?;
            for rel in schema.relations() {
                writeln!(f, "  {rel};")?;
            }
            writeln!(f, "}}")?;
        }
        if !self.views.is_empty() {
            writeln!(f)?;
            write!(f, "{}", self.views)?;
        }
        if !self.deps.is_empty() {
            writeln!(f)?;
            for d in &self.deps {
                writeln!(f, "{d}")?;
            }
        }
        if !self.facts.is_empty() {
            writeln!(f)?;
            for fact in &self.facts {
                writeln!(f, "fact {fact}.")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term};
    use crate::view::ViewRule;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    #[test]
    fn arity_consistency_checked() {
        let mut p = Program::default();
        p.deps.push(Dependency::tgd(
            "m",
            vec![Literal::Pos(atom("S", &["x", "y"]))],
            vec![atom("T", &["x"])],
        ));
        p.deps.push(Dependency::tgd(
            "m2",
            vec![Literal::Pos(atom("S", &["x"]))], // S used with arity 1 here
            vec![atom("T", &["x"])],
        ));
        let err = p.validate().unwrap_err();
        assert!(matches!(err, LangError::PredicateArityMismatch { .. }));
    }

    #[test]
    fn view_and_schema_arity_cross_checked() {
        let mut p = Program::default();
        let mut s = Schema::new();
        s.add_relation(grom_data::RelationSchema::untyped("V", 3))
            .unwrap();
        p.schemas.insert("target".into(), s);
        p.views
            .add_rule(ViewRule::new(
                atom("V", &["x"]),
                vec![Literal::Pos(atom("B", &["x"]))],
            ))
            .unwrap();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, LangError::PredicateArityMismatch { .. }));
    }

    #[test]
    fn undeclared_predicates_reported() {
        let mut p = Program::default();
        let mut s = Schema::new();
        s.add_relation(grom_data::RelationSchema::untyped("S", 1))
            .unwrap();
        p.schemas.insert("source".into(), s);
        p.deps.push(Dependency::tgd(
            "m",
            vec![Literal::Pos(atom("S", &["x"]))],
            vec![atom("Mystery", &["x"])],
        ));
        let und: Vec<String> = p
            .undeclared_predicates()
            .iter()
            .map(|x| x.to_string())
            .collect();
        assert_eq!(und, vec!["Mystery"]);
    }

    #[test]
    fn executable_deps_filters_negated_premises() {
        let mut p = Program::default();
        p.deps.push(Dependency::tgd(
            "a",
            vec![Literal::Pos(atom("S", &["x"]))],
            vec![atom("T", &["x"])],
        ));
        p.deps.push(Dependency::tgd(
            "b",
            vec![
                Literal::Pos(atom("S", &["x"])),
                Literal::Neg(atom("R", &["x"])),
            ],
            vec![atom("T", &["x"])],
        ));
        assert_eq!(p.executable_deps().count(), 1);
    }
}
