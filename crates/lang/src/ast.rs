//! Terms, atoms, comparison atoms and literals.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use grom_data::Value;

/// A logical variable name. `Arc<str>` so that substitutions and renamings
/// clone cheaply.
pub type Var = Arc<str>;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Var(Var),
    Const(Value),
}

impl Term {
    /// Build a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// Build a constant term.
    pub fn cons(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A relational atom `P(t_1, …, t_n)`. The predicate may name a base table
/// or a view; which one is determined by the enclosing [`crate::ViewSet`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub predicate: Arc<str>,
    pub args: Vec<Term>,
}

impl Atom {
    pub fn new(predicate: impl AsRef<str>, args: Vec<Term>) -> Self {
        Self {
            predicate: Arc::from(predicate.as_ref()),
            args,
        }
    }

    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The distinct variables of this atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Collect this atom's variables into `acc`.
    pub fn collect_vars(&self, acc: &mut BTreeSet<Var>) {
        for t in &self.args {
            if let Term::Var(v) = t {
                acc.insert(v.clone());
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Comparison operators for comparison atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Leq,
    Gt,
    Geq,
}

impl CmpOp {
    /// The complement operator: `¬(a op b)  ≡  a op.negate() b`.
    ///
    /// Used by the rewriter to turn a conclusion-side comparison into a
    /// denial with the negated comparison in its premise.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Geq,
            CmpOp::Leq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Leq,
            CmpOp::Geq => CmpOp::Lt,
        }
    }

    /// Evaluate the operator on two concrete values.
    ///
    /// Equality and inequality are defined on *all* values, including
    /// labeled nulls (labels compare by identity — the naive-table
    /// semantics). Order comparisons are only defined between constants of
    /// the same type; otherwise the comparison does not hold (`false`).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Neq => lhs != rhs,
            CmpOp::Lt | CmpOp::Leq | CmpOp::Gt | CmpOp::Geq => match lhs.try_cmp(rhs) {
                None => false,
                Some(ord) => match self {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Leq => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Geq => ord.is_ge(),
                    _ => unreachable!(),
                },
            },
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Leq => "<=",
            CmpOp::Gt => ">",
            CmpOp::Geq => ">=",
        };
        f.write_str(s)
    }
}

/// A comparison atom `t_1 op t_2`, e.g. `rating >= 4` in tgd `m2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Comparison {
    pub op: CmpOp,
    pub lhs: Term,
    pub rhs: Term,
}

impl Comparison {
    pub fn new(op: CmpOp, lhs: Term, rhs: Term) -> Self {
        Self { op, lhs, rhs }
    }

    /// The logically complementary comparison.
    pub fn negate(&self) -> Comparison {
        Comparison::new(self.op.negate(), self.lhs.clone(), self.rhs.clone())
    }

    /// The distinct variables of this comparison.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in [&self.lhs, &self.rhs] {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    pub fn collect_vars(&self, acc: &mut BTreeSet<Var>) {
        for t in [&self.lhs, &self.rhs] {
            if let Term::Var(v) = t {
                acc.insert(v.clone());
            }
        }
    }

    /// If both sides are constants, evaluate to a boolean.
    pub fn eval_ground(&self) -> Option<bool> {
        match (&self.lhs, &self.rhs) {
            (Term::Const(a), Term::Const(b)) => Some(self.op.eval(a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A body literal: a positive atom, a negated atom, or a comparison.
///
/// Negated atoms follow the usual safe-Datalog convention: variables that
/// occur *only* inside a negated atom are implicitly existentially
/// quantified inside the negation (`¬T-Rating(rid, pid, 0)` in view `v2`
/// means "no rating tuple for `pid` with value 0, for any `rid`").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    Pos(Atom),
    Neg(Atom),
    Cmp(Comparison),
}

impl Literal {
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            Literal::Cmp(_) => None,
        }
    }

    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }

    pub fn is_negated(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }

    pub fn is_comparison(&self) -> bool {
        matches!(self, Literal::Cmp(_))
    }

    /// The distinct variables of this literal, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.variables(),
            Literal::Cmp(c) => c.variables(),
        }
    }

    pub fn collect_vars(&self, acc: &mut BTreeSet<Var>) {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.collect_vars(acc),
            Literal::Cmp(c) => c.collect_vars(acc),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(c) => write!(f, "{c}"),
        }
    }
}

/// Helper: the distinct variables of a conjunction of literals, in
/// first-occurrence order.
pub fn body_variables(body: &[Literal]) -> Vec<Var> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for lit in body {
        for v in lit.variables() {
            if seen.insert(v.clone()) {
                out.push(v);
            }
        }
    }
    out
}

/// Helper: the variables occurring in *positive relational* literals of a
/// conjunction — i.e. the variables a join over the body can bind.
pub fn positively_bound_variables(body: &[Literal]) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for lit in body {
        if let Literal::Pos(a) = lit {
            a.collect_vars(&mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(Term::var).collect())
    }

    #[test]
    fn atom_variables_dedup_in_order() {
        let atom = Atom::new(
            "R",
            vec![
                Term::var("x"),
                Term::cons(3i64),
                Term::var("y"),
                Term::var("x"),
            ],
        );
        let vars: Vec<String> = atom.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["x", "y"]);
        assert_eq!(atom.arity(), 4);
    }

    #[test]
    fn cmp_negate_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Leq,
            CmpOp::Gt,
            CmpOp::Geq,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_eval_on_ints() {
        let one = Value::int(1);
        let two = Value::int(2);
        assert!(CmpOp::Lt.eval(&one, &two));
        assert!(CmpOp::Leq.eval(&one, &one));
        assert!(CmpOp::Geq.eval(&two, &one));
        assert!(CmpOp::Gt.eval(&two, &one));
        assert!(!CmpOp::Gt.eval(&one, &two));
        assert!(CmpOp::Eq.eval(&one, &one));
        assert!(CmpOp::Neq.eval(&one, &two));
    }

    #[test]
    fn cmp_eval_nulls_and_mixed_types() {
        let null = Value::null(0);
        let one = Value::int(1);
        // Order comparisons never hold with nulls.
        assert!(!CmpOp::Lt.eval(&null, &one));
        assert!(!CmpOp::Geq.eval(&null, &null));
        // Equality is label identity.
        assert!(CmpOp::Eq.eval(&null, &Value::null(0)));
        assert!(CmpOp::Neq.eval(&null, &Value::null(1)));
        // Mixed constant types: order undefined, eq false, neq true.
        assert!(!CmpOp::Lt.eval(&one, &Value::str("1")));
        assert!(!CmpOp::Eq.eval(&one, &Value::str("1")));
        assert!(CmpOp::Neq.eval(&one, &Value::str("1")));
    }

    #[test]
    fn negation_of_comparison_matches_complement_semantics() {
        let vals = [Value::int(1), Value::int(2), Value::int(3)];
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Leq,
            CmpOp::Gt,
            CmpOp::Geq,
        ] {
            for a in &vals {
                for b in &vals {
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn comparison_ground_eval() {
        let c = Comparison::new(CmpOp::Geq, Term::cons(4i64), Term::cons(2i64));
        assert_eq!(c.eval_ground(), Some(true));
        let c = Comparison::new(CmpOp::Lt, Term::var("x"), Term::cons(2i64));
        assert_eq!(c.eval_ground(), None);
    }

    #[test]
    fn literal_accessors() {
        let p = Literal::Pos(a("R", &["x"]));
        let n = Literal::Neg(a("R", &["x"]));
        let c = Literal::Cmp(Comparison::new(CmpOp::Lt, Term::var("x"), Term::cons(2i64)));
        assert!(p.is_positive() && !p.is_negated());
        assert!(n.is_negated() && !n.is_positive());
        assert!(c.is_comparison());
        assert!(p.atom().is_some());
        assert!(c.atom().is_none());
    }

    #[test]
    fn body_variable_helpers() {
        let body = vec![
            Literal::Pos(a("R", &["x", "y"])),
            Literal::Neg(a("S", &["y", "z"])),
            Literal::Cmp(Comparison::new(CmpOp::Lt, Term::var("w"), Term::cons(2i64))),
        ];
        let all: Vec<String> = body_variables(&body)
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(all, vec!["x", "y", "z", "w"]);
        let pos: Vec<String> = positively_bound_variables(&body)
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(pos, vec!["x", "y"]);
    }

    #[test]
    fn display_syntax() {
        let lit = Literal::Neg(Atom::new(
            "T_Rating",
            vec![Term::var("rid"), Term::var("pid"), Term::cons(0i64)],
        ));
        assert_eq!(lit.to_string(), "not T_Rating(rid, pid, 0)");
        let c = Comparison::new(CmpOp::Geq, Term::var("rating"), Term::cons(4i64));
        assert_eq!(c.to_string(), "rating >= 4");
    }
}
