//! # grom-lang — the mapping and view languages of GROM
//!
//! This crate defines every logical object of the paper:
//!
//! * [`Term`], [`Atom`], [`Comparison`], [`Literal`] — the first-order
//!   building blocks. Comparison atoms (`rating >= 4`) are first-class, as
//!   in the paper's source-to-semantic tgds `m0`–`m2`.
//! * [`ViewRule`] / [`ViewSet`] — semantic-schema definitions in
//!   **non-recursive Datalog with negation** (and unions): the language of
//!   `Υ_S`, `Υ_T` in Figure 2. Negation may target base tables *or* other
//!   views (`v3` negates the view `PopularProduct`).
//! * [`Dependency`] / [`Disjunct`] — a single uniform representation of
//!   tgds, egds, denial constraints and **disjunctive embedded dependencies
//!   (deds)**: `premise → D_1 ∨ … ∨ D_k`, each disjunct an existentially
//!   quantified conjunction of atoms, equalities and comparisons. A plain
//!   tgd is one disjunct with atoms only; an egd is one disjunct with one
//!   equality; a denial has zero disjuncts.
//! * Safety ([`safety`]) and stratification ([`strata`]) checks with
//!   diagnostics, the fresh-variable generator ([`VarGen`]), and a parser
//!   ([`parser`]) for the textual scenario language that replaces the demo's
//!   GUI mapping designer.
//!
//! Display impls print everything in a syntax the parser accepts, so
//! programs round-trip (property-tested in the parser module).

pub mod ast;
pub mod dependency;
pub mod error;
pub mod fresh;
pub mod parser;
pub mod program;
pub mod safety;
pub mod strata;
pub mod subst;
pub mod view;

pub use ast::{Atom, CmpOp, Comparison, Literal, Term, Var};
pub use dependency::{DepClass, Dependency, Disjunct};
pub use error::LangError;
pub use fresh::VarGen;
pub use program::Program;
pub use subst::{Bindings, TermSubst};
pub use view::{ViewRule, ViewSet};
