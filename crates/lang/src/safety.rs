//! Safety (range restriction) checks.
//!
//! GROM evaluates views and chases dependencies by joining positive
//! relational atoms and then filtering; a rule or dependency is *safe* when
//! that strategy binds every variable it needs:
//!
//! * every **head variable** of a view rule occurs in a positive body atom;
//! * every **comparison variable** occurs in a positive body atom (otherwise
//!   the comparison cannot be evaluated);
//! * variables of a **negated atom** either occur in a positive body atom or
//!   are *local* to the negation (implicitly quantified inside it) — always
//!   safe, so nothing to check beyond the above;
//! * in a dependency, **equality conclusions** may only equate terms bound
//!   by the premise or — after the rewriter's normalization — constants;
//!   equalities over existential variables are meaningless for the chase;
//! * **disjunct comparisons** may only mention premise variables (the chase
//!   cannot invent a null satisfying `x < 2`).

use std::collections::BTreeSet;

use crate::ast::{positively_bound_variables, Literal, Term, Var};
use crate::dependency::Dependency;
use crate::error::LangError;
use crate::view::ViewRule;

fn check_comparisons_bound(
    body: &[Literal],
    bound: &BTreeSet<Var>,
    context: &str,
) -> Result<(), LangError> {
    for lit in body {
        if let Literal::Cmp(c) = lit {
            for v in c.variables() {
                if !bound.contains(&v) {
                    return Err(LangError::Unsafe {
                        context: context.to_string(),
                        detail: format!(
                            "comparison `{c}` uses variable `{v}` not bound by any positive atom"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Check safety of a view rule; see the module docs.
pub fn check_view_rule(rule: &ViewRule) -> Result<(), LangError> {
    let context = format!("view rule for `{}`", rule.head.predicate);
    let bound = positively_bound_variables(&rule.body);
    for v in rule.head.variables() {
        if !bound.contains(&v) {
            return Err(LangError::Unsafe {
                context,
                detail: format!("head variable `{v}` does not occur in any positive body atom"),
            });
        }
    }
    check_comparisons_bound(&rule.body, &bound, &context)?;
    Ok(())
}

/// Check safety of a dependency *as an input mapping or as chase input*.
///
/// Premise: comparison variables must be positively bound (negated premise
/// atoms are allowed here — the rewriter eliminates them; the chase itself
/// additionally refuses negated premises, checked by the chase config).
/// Conclusions: equalities and comparisons must only use premise variables.
pub fn check_dependency(dep: &Dependency) -> Result<(), LangError> {
    let context = format!("dependency `{}`", dep.name);
    let bound = positively_bound_variables(&dep.premise);
    check_comparisons_bound(&dep.premise, &bound, &context)?;

    for (i, d) in dep.disjuncts.iter().enumerate() {
        for (l, r) in &d.eqs {
            for t in [l, r] {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        return Err(LangError::Unsafe {
                            context,
                            detail: format!(
                                "equality `{l} = {r}` in disjunct {i} uses variable `{v}` \
                                 not bound by the premise"
                            ),
                        });
                    }
                }
            }
        }
        for c in &d.cmps {
            for v in c.variables() {
                if !bound.contains(&v) {
                    return Err(LangError::Unsafe {
                        context,
                        detail: format!(
                            "comparison `{c}` in disjunct {i} uses variable `{v}` \
                             not bound by the premise"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, CmpOp, Comparison};
    use crate::dependency::Disjunct;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    #[test]
    fn safe_rule_passes() {
        let rule = ViewRule::new(
            atom("V", &["x"]),
            vec![
                Literal::Pos(atom("A", &["x", "y"])),
                Literal::Neg(atom("B", &["x", "z"])),
                Literal::Cmp(Comparison::new(CmpOp::Lt, Term::var("y"), Term::cons(2i64))),
            ],
        );
        assert!(check_view_rule(&rule).is_ok());
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let rule = ViewRule::new(
            atom("V", &["x", "w"]),
            vec![Literal::Pos(atom("A", &["x"]))],
        );
        let err = check_view_rule(&rule).unwrap_err();
        assert!(err.to_string().contains("head variable `w`"));
    }

    #[test]
    fn head_variable_bound_only_by_negation_rejected() {
        let rule = ViewRule::new(atom("V", &["x"]), vec![Literal::Neg(atom("A", &["x"]))]);
        assert!(check_view_rule(&rule).is_err());
    }

    #[test]
    fn unbound_comparison_variable_rejected() {
        let rule = ViewRule::new(
            atom("V", &["x"]),
            vec![
                Literal::Pos(atom("A", &["x"])),
                Literal::Cmp(Comparison::new(CmpOp::Lt, Term::var("q"), Term::cons(2i64))),
            ],
        );
        let err = check_view_rule(&rule).unwrap_err();
        assert!(err.to_string().contains("comparison"));
    }

    #[test]
    fn negation_local_variables_are_fine() {
        // rid occurs only in the negated atom: implicitly ¬∃rid — safe.
        let rule = ViewRule::new(
            atom("PopularProduct", &["pid"]),
            vec![
                Literal::Pos(atom("T_Product", &["pid", "n"])),
                Literal::Neg(atom("T_Rating", &["rid", "pid"])),
            ],
        );
        assert!(check_view_rule(&rule).is_ok());
    }

    #[test]
    fn dependency_equality_over_existential_rejected() {
        let dep = Dependency::new(
            "e",
            vec![Literal::Pos(atom("A", &["x"]))],
            vec![Disjunct::equality(Term::var("x"), Term::var("fresh"))],
        );
        let err = check_dependency(&dep).unwrap_err();
        assert!(err.to_string().contains("equality"));
    }

    #[test]
    fn dependency_disjunct_comparison_over_existential_rejected() {
        let dep = Dependency::new(
            "d",
            vec![Literal::Pos(atom("A", &["x"]))],
            vec![Disjunct {
                atoms: vec![atom("B", &["x", "y"])],
                eqs: vec![],
                cmps: vec![Comparison::new(CmpOp::Lt, Term::var("y"), Term::cons(2i64))],
            }],
        );
        assert!(check_dependency(&dep).is_err());
    }

    #[test]
    fn dependency_with_constant_equality_passes() {
        let dep = Dependency::new(
            "e",
            vec![Literal::Pos(atom("A", &["x"]))],
            vec![Disjunct::equality(Term::var("x"), Term::cons(1i64))],
        );
        assert!(check_dependency(&dep).is_ok());
    }

    #[test]
    fn paper_tgd_is_safe() {
        let dep = Dependency::tgd(
            "m2",
            vec![
                Literal::Pos(atom("S_Product", &["pid", "name", "store", "rating"])),
                Literal::Cmp(Comparison::new(
                    CmpOp::Geq,
                    Term::var("rating"),
                    Term::cons(4i64),
                )),
            ],
            vec![atom("PopularProduct", &["pid", "name"])],
        );
        assert!(check_dependency(&dep).is_ok());
    }
}
