//! Non-recursion check and materialization order for view sets.
//!
//! GROM's view language is *non-recursive* Datalog with negation. A
//! non-recursive program is trivially stratified: any topological order of
//! the predicate dependency graph (definitions before uses) is a valid
//! materialization order. This module computes that order and reports
//! cycles with an explicit witness path.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::LangError;
use crate::view::ViewSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    Unvisited,
    InProgress,
    Done,
}

/// Compute a materialization order for the views: every view appears after
/// all views it depends on (positively or negatively). Errors with a cycle
/// witness if the definitions are recursive.
pub fn materialization_order(views: &ViewSet) -> Result<Vec<Arc<str>>, LangError> {
    // Adjacency: view predicate -> view predicates its rules mention.
    let mut deps: BTreeMap<Arc<str>, Vec<Arc<str>>> = BTreeMap::new();
    for name in views.view_names() {
        let mut targets = Vec::new();
        for rule in views.rules_of(name) {
            let (pos, neg) = rule.referenced_predicates();
            for p in pos.into_iter().chain(neg) {
                if views.is_view(&p) && !targets.contains(&p) {
                    targets.push(p);
                }
            }
        }
        deps.insert(name.clone(), targets);
    }

    let mut marks: BTreeMap<Arc<str>, Mark> =
        deps.keys().map(|k| (k.clone(), Mark::Unvisited)).collect();
    let mut order = Vec::new();
    let mut stack = Vec::new();

    fn visit(
        node: &Arc<str>,
        deps: &BTreeMap<Arc<str>, Vec<Arc<str>>>,
        marks: &mut BTreeMap<Arc<str>, Mark>,
        order: &mut Vec<Arc<str>>,
        stack: &mut Vec<Arc<str>>,
    ) -> Result<(), LangError> {
        match marks[node] {
            Mark::Done => return Ok(()),
            Mark::InProgress => {
                // Cycle: slice the stack from the first occurrence of `node`.
                let start = stack.iter().position(|n| n == node).unwrap_or(0);
                let mut cycle: Vec<Arc<str>> = stack[start..].to_vec();
                cycle.push(node.clone());
                return Err(LangError::RecursiveViews { cycle });
            }
            Mark::Unvisited => {}
        }
        marks.insert(node.clone(), Mark::InProgress);
        stack.push(node.clone());
        for next in &deps[node] {
            visit(next, deps, marks, order, stack)?;
        }
        stack.pop();
        marks.insert(node.clone(), Mark::Done);
        order.push(node.clone());
        Ok(())
    }

    let keys: Vec<Arc<str>> = deps.keys().cloned().collect();
    for node in &keys {
        visit(node, &deps, &mut marks, &mut order, &mut stack)?;
    }
    Ok(order)
}

/// Group the materialization order into *strata*: views in stratum `k`
/// depend only on base tables and on views in strata `< k` for negated
/// atoms, `<= k`… — since the program is non-recursive, each view gets its
/// own conceptual stratum; this helper reports the *depth* of each view in
/// the dependency DAG, which the restriction analyzer uses to report
/// negation nesting.
pub fn view_depths(views: &ViewSet) -> Result<BTreeMap<Arc<str>, usize>, LangError> {
    let order = materialization_order(views)?;
    let mut depth: BTreeMap<Arc<str>, usize> = BTreeMap::new();
    for name in &order {
        let mut d = 0;
        for rule in views.rules_of(name) {
            let (pos, neg) = rule.referenced_predicates();
            for p in pos.into_iter().chain(neg) {
                if let Some(pd) = depth.get(&p) {
                    d = d.max(pd + 1);
                }
            }
        }
        depth.insert(name.clone(), d);
    }
    Ok(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Literal, Term};
    use crate::view::ViewRule;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    fn chain(n: usize) -> ViewSet {
        // V0 <- Base; V1 <- V0; ... V{n-1} <- V{n-2}
        let mut vs = ViewSet::new();
        for i in 0..n {
            let body = if i == 0 {
                Literal::Pos(atom("Base", &["x"]))
            } else {
                Literal::Pos(atom(&format!("V{}", i - 1), &["x"]))
            };
            vs.add_rule(ViewRule::new(atom(&format!("V{i}"), &["x"]), vec![body]))
                .unwrap();
        }
        vs
    }

    #[test]
    fn chain_orders_and_depths() {
        let vs = chain(4);
        let order = materialization_order(&vs).unwrap();
        let pos = |n: &str| order.iter().position(|p| p.as_ref() == n).unwrap();
        assert!(pos("V0") < pos("V1"));
        assert!(pos("V1") < pos("V2"));
        assert!(pos("V2") < pos("V3"));

        let depths = view_depths(&vs).unwrap();
        assert_eq!(depths[&Arc::from("V0")], 0);
        assert_eq!(depths[&Arc::from("V3")], 3);
    }

    #[test]
    fn cycle_reports_witness() {
        let mut vs = ViewSet::new();
        vs.add_rule(ViewRule::new(
            atom("A", &["x"]),
            vec![Literal::Pos(atom("B", &["x"]))],
        ))
        .unwrap();
        vs.add_rule(ViewRule::new(
            atom("B", &["x"]),
            vec![Literal::Neg(atom("C", &["x"]))],
        ))
        .unwrap();
        vs.add_rule(ViewRule::new(
            atom("C", &["x"]),
            vec![Literal::Pos(atom("A", &["x"]))],
        ))
        .unwrap();
        match materialization_order(&vs) {
            Err(LangError::RecursiveViews { cycle }) => {
                // The witness must close on itself.
                assert_eq!(cycle.first(), cycle.last());
                assert!(cycle.len() >= 3);
            }
            other => panic!("expected recursion error, got {other:?}"),
        }
    }

    #[test]
    fn diamond_dependencies_ok() {
        // D <- B, C; B <- A; C <- A; A <- Base.
        let mut vs = ViewSet::new();
        vs.add_rule(ViewRule::new(
            atom("A", &["x"]),
            vec![Literal::Pos(atom("Base", &["x"]))],
        ))
        .unwrap();
        vs.add_rule(ViewRule::new(
            atom("B", &["x"]),
            vec![Literal::Pos(atom("A", &["x"]))],
        ))
        .unwrap();
        vs.add_rule(ViewRule::new(
            atom("C", &["x"]),
            vec![Literal::Pos(atom("A", &["x"]))],
        ))
        .unwrap();
        vs.add_rule(ViewRule::new(
            atom("D", &["x"]),
            vec![
                Literal::Pos(atom("B", &["x"])),
                Literal::Pos(atom("C", &["x"])),
            ],
        ))
        .unwrap();
        let depths = view_depths(&vs).unwrap();
        assert_eq!(depths[&Arc::from("D")], 2);
        let order = materialization_order(&vs).unwrap();
        assert_eq!(order.len(), 4);
        let pos = |n: &str| order.iter().position(|p| p.as_ref() == n).unwrap();
        assert!(pos("A") < pos("B") && pos("A") < pos("C"));
        assert!(pos("B") < pos("D") && pos("C") < pos("D"));
    }

    #[test]
    fn empty_view_set() {
        let vs = ViewSet::new();
        assert!(materialization_order(&vs).unwrap().is_empty());
        assert!(view_depths(&vs).unwrap().is_empty());
    }
}
