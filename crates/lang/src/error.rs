//! Errors raised by the language layer: malformed rules, unsafe
//! dependencies, recursion through views, parse errors.

use std::fmt;
use std::sync::Arc;

/// Errors raised by validation and parsing in `grom-lang`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Two rules for the same view predicate disagree on arity.
    ViewArityMismatch {
        view: Arc<str>,
        expected: usize,
        actual: usize,
    },
    /// The view graph is recursive (GROM requires *non-recursive* Datalog).
    RecursiveViews { cycle: Vec<Arc<str>> },
    /// A safety (range-restriction) violation; `context` names the rule or
    /// dependency, `detail` explains which variable is unsafe and why.
    Unsafe { context: String, detail: String },
    /// The same atom has inconsistent arity across the program.
    PredicateArityMismatch {
        predicate: Arc<str>,
        expected: usize,
        actual: usize,
    },
    /// A parse error, with 1-based line/column and a description.
    Parse {
        line: usize,
        column: usize,
        message: String,
    },
}

impl LangError {
    pub fn parse(line: usize, column: usize, message: impl Into<String>) -> Self {
        LangError::Parse {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::ViewArityMismatch {
                view,
                expected,
                actual,
            } => write!(
                f,
                "rules for view `{view}` disagree on arity: {expected} vs {actual}"
            ),
            LangError::RecursiveViews { cycle } => {
                write!(f, "view definitions are recursive: ")?;
                for (i, v) in cycle.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" -> ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            LangError::Unsafe { context, detail } => {
                write!(f, "unsafe {context}: {detail}")
            }
            LangError::PredicateArityMismatch {
                predicate,
                expected,
                actual,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {actual}, expected {expected}"
            ),
            LangError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
        }
    }
}

impl std::error::Error for LangError {}
