//! The restriction analyzer: "GROM supports this process by highlighting
//! problematic views" (§4 of the paper).
//!
//! Two complementary services:
//!
//! * a **syntactic prediction** ([`predicts_deds`]) that looks only at the
//!   view definitions and a dependency and tells whether rewriting *may*
//!   produce deds — the sufficient conditions of the paper's §3 ("the
//!   system is able to look at the view definitions and tell whether the
//!   rewritten mappings may contain deds or not");
//! * a **post-hoc report** ([`analyze`]) that runs the rewriter and blames
//!   each ded and each sound strengthening on the view whose negation
//!   pattern caused it, so the designer knows *which* views to reformulate.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use grom_lang::{DepClass, Dependency, Literal, ViewSet};

use crate::error::{RewriteError, RewriteWarning};
use crate::rewriter::{rewrite_program, RewriteOptions, RewriteOutput};

/// Per-view shape metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewProfile {
    pub name: Arc<str>,
    /// Number of union rules.
    pub union_width: usize,
    /// Maximum negation nesting in the full expansion: 0 = conjunctive,
    /// 1 = negates base tables or conjunctive views only, 2+ = negation
    /// under negation (the paper's "perverse" patterns start at 3, where
    /// sound strengthening must drop requirements).
    pub negation_depth: usize,
    /// Predicates this view negates (directly).
    pub negated_predicates: Vec<Arc<str>>,
}

/// A view the designer should consider reformulating, with reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblematicView {
    pub view: Arc<str>,
    pub reasons: Vec<String>,
}

/// The analyzer's output.
#[derive(Debug, Clone)]
pub struct RestrictionReport {
    pub profiles: Vec<ViewProfile>,
    /// Classification of every rewritten dependency.
    pub output_classes: BTreeMap<Arc<str>, DepClass>,
    /// Views blamed for deds or strengthenings, with human-readable
    /// reasons. Sorted by view name.
    pub problematic: Vec<ProblematicView>,
    /// Did the rewriting produce any genuine ded?
    pub has_deds: bool,
    /// Warnings carried over from the rewriting.
    pub warnings: Vec<RewriteWarning>,
}

impl fmt::Display for RestrictionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "view profiles:")?;
        for p in &self.profiles {
            writeln!(
                f,
                "  {}: union_width={} negation_depth={}{}",
                p.name,
                p.union_width,
                p.negation_depth,
                if p.negated_predicates.is_empty() {
                    String::new()
                } else {
                    format!(
                        " negates [{}]",
                        p.negated_predicates
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            )?;
        }
        writeln!(
            f,
            "rewritten program: {}",
            if self.has_deds {
                "CONTAINS DEDS"
            } else {
                "ded-free (plain tgds/egds/denials)"
            }
        )?;
        if self.problematic.is_empty() {
            writeln!(f, "no problematic views")?;
        } else {
            writeln!(f, "problematic views:")?;
            for p in &self.problematic {
                writeln!(f, "  {}:", p.view)?;
                for r in &p.reasons {
                    writeln!(f, "    - {r}")?;
                }
            }
        }
        Ok(())
    }
}

/// Compute the negation depth of every view: base atoms contribute 0, a
/// positive view atom contributes the view's own depth, a negated atom
/// contributes 1 + the depth of what it negates.
pub fn negation_depths(views: &ViewSet) -> BTreeMap<Arc<str>, usize> {
    let order = grom_lang::strata::materialization_order(views).unwrap_or_default();
    let mut depth: BTreeMap<Arc<str>, usize> = BTreeMap::new();
    for name in &order {
        let mut d = 0usize;
        for rule in views.rules_of(name) {
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => {
                        if let Some(vd) = depth.get(&a.predicate) {
                            d = d.max(*vd);
                        }
                    }
                    Literal::Neg(a) => {
                        let inner = depth.get(&a.predicate).copied().unwrap_or(0);
                        d = d.max(1 + inner);
                    }
                    Literal::Cmp(_) => {}
                }
            }
        }
        depth.insert(name.clone(), d);
    }
    depth
}

/// Build per-view profiles.
pub fn view_profiles(views: &ViewSet) -> Vec<ViewProfile> {
    let depths = negation_depths(views);
    views
        .view_names()
        .map(|name| {
            let rules = views.rules_of(name);
            let mut negated: Vec<Arc<str>> = Vec::new();
            for r in &rules {
                for lit in &r.body {
                    if let Literal::Neg(a) = lit {
                        if !negated.contains(&a.predicate) {
                            negated.push(a.predicate.clone());
                        }
                    }
                }
            }
            ViewProfile {
                name: name.clone(),
                union_width: rules.len(),
                negation_depth: depths.get(name).copied().unwrap_or(0),
                negated_predicates: negated,
            }
        })
        .collect()
}

/// Syntactic sufficient check: can rewriting `dep` against `views` produce
/// a genuine ded? (Conservative: `false` guarantees a ded-free output.)
///
/// Deds arise from (a) negation reachable from the *premise* — a negated
/// literal, or a positive view atom whose expansion contains negation —
/// combined with a non-empty conclusion, or (b) a union view in the
/// conclusion, or (c) the input being a ded already.
pub fn predicts_deds(views: &ViewSet, dep: &Dependency) -> bool {
    if dep.disjuncts.len() >= 2 {
        return true;
    }
    let depths = negation_depths(views);
    let reaches_negation = |pred: &Arc<str>| depths.get(pred).copied().unwrap_or(0) > 0;

    let mut premise_negation = false;
    for lit in &dep.premise {
        match lit {
            Literal::Neg(_) => premise_negation = true,
            Literal::Pos(a) if reaches_negation(&a.predicate) => premise_negation = true,
            _ => {}
        }
    }
    if premise_negation && !dep.disjuncts.is_empty() {
        return true;
    }
    // Union views in the conclusion multiply alternatives.
    for d in &dep.disjuncts {
        for a in &d.atoms {
            if views.rules_of(&a.predicate).len() >= 2 {
                return true;
            }
        }
    }
    false
}

/// Run the rewriter and produce the full restriction report.
pub fn analyze(
    views: &ViewSet,
    deps: &[Dependency],
    options: &RewriteOptions,
) -> Result<(RestrictionReport, RewriteOutput), RewriteError> {
    let output = rewrite_program(views, deps, options)?;

    let mut blame: BTreeMap<Arc<str>, Vec<String>> = BTreeMap::new();
    for (dep_name, causes) in &output.ded_causes {
        for cause in causes {
            if views.is_view(cause) {
                blame
                    .entry(cause.clone())
                    .or_default()
                    .push(format!("its negation forces ded `{dep_name}`"));
            }
        }
    }
    for w in &output.warnings {
        if let Some(view) = w.view() {
            if views.is_view(view) {
                blame.entry(view.clone()).or_default().push(w.to_string());
            }
        }
    }

    let report = RestrictionReport {
        profiles: view_profiles(views),
        output_classes: output
            .deps
            .iter()
            .map(|d| (d.name.clone(), d.class()))
            .collect(),
        problematic: blame
            .into_iter()
            .map(|(view, reasons)| ProblematicView { view, reasons })
            .collect(),
        has_deds: !output.is_ded_free(),
        warnings: output.warnings.clone(),
    };
    Ok((report, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::parser::{parse_dependency, parse_program};

    const PAPER_VIEWS: &str = r#"
        view Product(id, name) <- T_Product(id, name, store).
        view PopularProduct(pid, name) <-
            T_Product(pid, name, store), not T_Rating(rid, pid, 0).
        view AvgProduct(pid, name) <-
            T_Product(pid, name, store), T_Rating(rid, pid, 1),
            not PopularProduct(pid, name).
        view UnpopularProduct(pid, name) <-
            T_Product(pid, name, store),
            not AvgProduct(pid, name), not PopularProduct(pid, name).
    "#;

    #[test]
    fn negation_depths_of_paper_views() {
        let prog = parse_program(PAPER_VIEWS).unwrap();
        let d = negation_depths(&prog.views);
        assert_eq!(d[&Arc::from("Product")], 0);
        assert_eq!(d[&Arc::from("PopularProduct")], 1);
        assert_eq!(d[&Arc::from("AvgProduct")], 2);
        assert_eq!(d[&Arc::from("UnpopularProduct")], 3);
    }

    #[test]
    fn profiles_capture_unions_and_negations() {
        let prog = parse_program("view V(x) <- A(x).\nview V(x) <- B(x), not C(x).").unwrap();
        let profiles = view_profiles(&prog.views);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.union_width, 2);
        assert_eq!(p.negation_depth, 1);
        assert_eq!(p.negated_predicates, vec![Arc::from("C")]);
    }

    #[test]
    fn prediction_conjunctive_views_no_deds() {
        let prog = parse_program("view V(x, n) <- A(x, n).").unwrap();
        let egd = parse_dependency("egd e: V(x1, n), V(x2, n) -> x1 = x2.").unwrap();
        assert!(!predicts_deds(&prog.views, &egd));
        let (report, _) = analyze(&prog.views, &[egd], &RewriteOptions::default()).unwrap();
        assert!(!report.has_deds);
        assert!(report.problematic.is_empty());
    }

    #[test]
    fn prediction_negated_view_in_premise_gives_deds() {
        let prog = parse_program(PAPER_VIEWS).unwrap();
        let egd = parse_dependency(
            "egd e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.",
        )
        .unwrap();
        assert!(predicts_deds(&prog.views, &egd));
        let (report, output) = analyze(&prog.views, &[egd], &RewriteOptions::default()).unwrap();
        assert!(report.has_deds);
        assert!(!output.is_ded_free());
        // PopularProduct is blamed.
        assert!(report
            .problematic
            .iter()
            .any(|p| p.view.as_ref() == "PopularProduct"));
    }

    #[test]
    fn prediction_is_conservative_but_sound() {
        // predicts_deds == false must imply a ded-free rewriting.
        let cases = [
            ("view V(x) <- A(x).", "tgd m: S(x) -> V(x)."),
            ("view V(x) <- A(x), not B(x).", "tgd m: S(x) -> V(x)."),
            ("view V(x) <- A(x).", "egd e: V(x), V(y) -> x = y."),
        ];
        for (views_text, dep_text) in cases {
            let prog = parse_program(views_text).unwrap();
            let dep = parse_dependency(dep_text).unwrap();
            let predicted = predicts_deds(&prog.views, &dep);
            let (report, _) = analyze(&prog.views, &[dep], &RewriteOptions::default()).unwrap();
            if !predicted {
                assert!(!report.has_deds, "unsound prediction for {dep_text}");
            }
        }
    }

    #[test]
    fn union_view_in_conclusion_predicted() {
        let prog = parse_program("view V(x) <- A(x).\nview V(x) <- B(x).").unwrap();
        let dep = parse_dependency("tgd m: S(x) -> V(x).").unwrap();
        assert!(predicts_deds(&prog.views, &dep));
        let (report, _) = analyze(&prog.views, &[dep], &RewriteOptions::default()).unwrap();
        assert!(report.has_deds);
    }

    #[test]
    fn deep_negation_blamed_in_report() {
        let prog = parse_program(PAPER_VIEWS).unwrap();
        let dep = parse_dependency(
            "tgd m0: S_Product(pid, name, store, rating), rating < 2 \
             -> UnpopularProduct(pid, name).",
        )
        .unwrap();
        let (report, _) = analyze(&prog.views, &[dep], &RewriteOptions::default()).unwrap();
        // The nesting through PopularProduct triggers a dropped-negation
        // strengthening which the report surfaces.
        assert!(!report.problematic.is_empty());
        let text = report.to_string();
        assert!(text.contains("negation_depth=3"));
    }

    #[test]
    fn report_displays() {
        let prog = parse_program("view V(x) <- A(x).").unwrap();
        let dep = parse_dependency("tgd m: S(x) -> V(x).").unwrap();
        let (report, _) = analyze(&prog.views, &[dep], &RewriteOptions::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("ded-free"));
        assert!(text.contains("no problematic views"));
    }
}
