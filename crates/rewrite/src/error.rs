//! Rewriter errors and warnings.
//!
//! Errors abort the rewriting (the output would be wrong or unboundedly
//! large); warnings record *sound strengthenings* — places where the
//! rewriter emitted a dependency stronger than the original semantics
//! because the ded language cannot express the exact requirement. The
//! restriction analyzer surfaces both to the mapping designer.

use std::fmt;
use std::sync::Arc;

use grom_lang::LangError;

/// Fatal rewriting errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// Input validation failed (unsafe rule, recursive views, arity drift).
    Lang(LangError),
    /// The DNF expansion exceeded the configured alternative budget.
    /// Truncating a *premise* DNF would silently weaken the output (drop a
    /// constraint), which is unsound — so this is an error, not a warning.
    TooComplex {
        dependency: Arc<str>,
        alternatives: usize,
        budget: usize,
    },
    /// A view atom was used with the wrong arity.
    ArityMismatch {
        predicate: Arc<str>,
        expected: usize,
        actual: usize,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Lang(e) => write!(f, "rewrite: {e}"),
            RewriteError::TooComplex {
                dependency,
                alternatives,
                budget,
            } => write!(
                f,
                "rewriting `{dependency}` produced {alternatives} alternatives \
                 (budget {budget}); simplify the views or raise the budget"
            ),
            RewriteError::ArityMismatch {
                predicate,
                expected,
                actual,
            } => write!(
                f,
                "view `{predicate}` used with arity {actual}, defined with {expected}"
            ),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<LangError> for RewriteError {
    fn from(e: LangError) -> Self {
        RewriteError::Lang(e)
    }
}

/// A sound strengthening applied during rewriting. Each warning names the
/// dependency being rewritten and — when attributable — the view whose
/// negation pattern triggered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteWarning {
    /// A would-be ded disjunct still contained negation (nesting depth ≥ 3
    /// after unfolding) and was dropped.
    DroppedNestedNegation {
        dependency: Arc<str>,
        view: Arc<str>,
    },
    /// A would-be disjunct carried a comparison over an existential
    /// variable (the chase cannot invent a null satisfying an order
    /// constraint) and was dropped.
    DroppedExistentialComparison {
        dependency: Arc<str>,
        comparison: String,
    },
    /// A negative requirement shared existential variables with the
    /// positive part of the conclusion; the check was strengthened to range
    /// over *all* witnesses rather than the chase-created one.
    SharedExistentialStrengthened {
        dependency: Arc<str>,
        view: Arc<str>,
    },
    /// The conclusion had several alternatives (a union view was written
    /// to); negative requirements of every alternative are enforced
    /// globally, which is stronger than the per-alternative semantics.
    UnionNegationStrengthened { dependency: Arc<str> },
    /// A conclusion alternative was statically unsatisfiable (contradictory
    /// comparisons after unfolding) and was dropped from the disjunction.
    UnsatisfiableAlternative { dependency: Arc<str> },
}

impl RewriteWarning {
    /// The dependency this warning is about.
    pub fn dependency(&self) -> &Arc<str> {
        match self {
            RewriteWarning::DroppedNestedNegation { dependency, .. }
            | RewriteWarning::DroppedExistentialComparison { dependency, .. }
            | RewriteWarning::SharedExistentialStrengthened { dependency, .. }
            | RewriteWarning::UnionNegationStrengthened { dependency }
            | RewriteWarning::UnsatisfiableAlternative { dependency } => dependency,
        }
    }

    /// The view to blame, if attributable.
    pub fn view(&self) -> Option<&Arc<str>> {
        match self {
            RewriteWarning::DroppedNestedNegation { view, .. }
            | RewriteWarning::SharedExistentialStrengthened { view, .. } => Some(view),
            _ => None,
        }
    }
}

impl fmt::Display for RewriteWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteWarning::DroppedNestedNegation { dependency, view } => write!(
                f,
                "`{dependency}`: dropped a disjunct with nested negation (via view `{view}`); \
                 output strengthened"
            ),
            RewriteWarning::DroppedExistentialComparison {
                dependency,
                comparison,
            } => write!(
                f,
                "`{dependency}`: dropped a disjunct with comparison `{comparison}` over an \
                 existential variable; output strengthened"
            ),
            RewriteWarning::SharedExistentialStrengthened { dependency, view } => write!(
                f,
                "`{dependency}`: negative requirement of view `{view}` shares existential \
                 variables with the positive part; check strengthened to all witnesses"
            ),
            RewriteWarning::UnionNegationStrengthened { dependency } => write!(
                f,
                "`{dependency}`: negative requirements of a union view are enforced for \
                 every alternative; output strengthened"
            ),
            RewriteWarning::UnsatisfiableAlternative { dependency } => write!(
                f,
                "`{dependency}`: a conclusion alternative was statically unsatisfiable and \
                 was dropped"
            ),
        }
    }
}
