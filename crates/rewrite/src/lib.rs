//! # grom-rewrite — the GROM rewriter (the paper's primary contribution)
//!
//! Rewrites *semantic mappings* — dependencies whose atoms range over
//! view-defined predicates (non-recursive Datalog with negation, §2 of the
//! paper) — into **executable** dependencies over the physical schemas:
//! tgds, egds, denial constraints and, when negation forces it,
//! **disjunctive embedded dependencies (deds)**.
//!
//! ## The algorithm
//!
//! 1. **Expansion** ([`expand`]): every view atom is recursively replaced by
//!    its definition. A positive view atom becomes a DNF (one alternative
//!    per union rule, body variables freshly renamed); a negated view atom
//!    becomes a *negation tree* `¬(∨_i ∃z̄_i conj_i)`. Base atoms and
//!    comparisons pass through.
//! 2. **Normalization** ([`rewriter`]):
//!    * each premise alternative yields its own output dependency
//!      (premise disjunction distributes over the implication);
//!    * **negation trees in a premise move to the conclusion as extra
//!      disjuncts** (`φ ∧ ¬N → C ≡ φ → C ∨ N`) — this is exactly how the
//!      paper's ded `d0` arises from the key egd `e0` over
//!      `PopularProduct`;
//!    * **negation trees in a conclusion spawn auxiliary dependencies**:
//!      to *make* `V(t̄)` true the chase adds the positive body and must
//!      *check* the negative part, giving `premise ∧ N_alt → (nested
//!      negations as disjuncts)` — a denial when there is no nesting;
//!    * equalities involving existential variables substitute; ground
//!      comparisons evaluate statically; comparisons over universal
//!      variables stay in premises/disjuncts.
//! 3. **Sound strengthening**: whatever cannot be expressed inside a ded
//!    disjunct (negation nested three deep, comparisons over existential
//!    variables) is *dropped from the disjunction* with a recorded
//!    [`RewriteWarning`]. Dropping a disjunct only strengthens a
//!    dependency, so the output stays **sound**: if the rewritten program
//!    admits a universal solution, the original semantic mapping is
//!    satisfied (the paper's soundness contract, validated end-to-end by
//!    the `grom` validator).
//! 4. **Classification & provenance**: every output is classified
//!    (tgd/egd/denial/ded) and every ded records which view's negation
//!    caused it — feeding the restriction analyzer ([`analysis`]), the
//!    feature the demo uses to "highlight problematic views" (§4).

pub mod analysis;
pub mod error;
pub mod expand;
pub mod rewriter;

pub use analysis::{analyze, ProblematicView, RestrictionReport, ViewProfile};
pub use error::{RewriteError, RewriteWarning};
pub use expand::{expand_atom, NegTree, XLit};
pub use rewriter::{rewrite_dependency, rewrite_program, RewriteOptions, RewriteOutput};
