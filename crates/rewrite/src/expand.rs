//! View expansion: replacing view atoms by their definitions.
//!
//! The expansion of a positive view atom is a **DNF**: a disjunction of
//! conjunctions of extended literals ([`XLit`]), one disjunct per union
//! rule, with body-only variables renamed apart. Negated atoms become
//! [`NegTree`]s — negations of DNFs — which normalization later moves into
//! disjuncts (premise side) or auxiliary checks (conclusion side).
//!
//! Non-recursion of the view set guarantees termination; the cartesian
//! products taken across a rule body are bounded by the caller's
//! alternative budget (exceeding it is a hard [`RewriteError::TooComplex`],
//! because truncating a premise DNF would be unsound).

use std::sync::Arc;

use grom_lang::{Atom, CmpOp, Comparison, Literal, Term, TermSubst, VarGen, ViewSet};

use crate::error::RewriteError;

/// An extended literal: like [`Literal`] but with negation generalized to
/// negation *trees* over expanded view bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XLit {
    Pos(Atom),
    Cmp(Comparison),
    Neg(NegTree),
}

/// The negation of a DNF: `¬(∨_i ∃z̄_i conj_i)`. `source` records the
/// original negated atom and `via` the predicate to *blame* for provenance:
/// the enclosing view when the negation came from unfolding a view body,
/// otherwise the negated predicate itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegTree {
    pub source: Atom,
    pub via: Arc<str>,
    pub alts: Vec<Vec<XLit>>,
}

impl XLit {
    /// Apply a substitution (used when equality processing instantiates
    /// existential variables — the substitution must reach inside negation
    /// trees, whose alternatives may share those variables).
    pub fn apply(&self, subst: &TermSubst) -> XLit {
        match self {
            XLit::Pos(a) => XLit::Pos(subst.apply_atom(a)),
            XLit::Cmp(c) => XLit::Cmp(subst.apply_comparison(c)),
            XLit::Neg(nt) => XLit::Neg(NegTree {
                source: subst.apply_atom(&nt.source),
                via: nt.via.clone(),
                alts: nt
                    .alts
                    .iter()
                    .map(|alt| alt.iter().map(|x| x.apply(subst)).collect())
                    .collect(),
            }),
        }
    }

    /// Collect the variables of this literal (including inside negation
    /// trees) into `acc`.
    pub fn collect_vars(&self, acc: &mut std::collections::BTreeSet<grom_lang::Var>) {
        match self {
            XLit::Pos(a) => a.collect_vars(acc),
            XLit::Cmp(c) => c.collect_vars(acc),
            XLit::Neg(nt) => {
                for alt in &nt.alts {
                    for x in alt {
                        x.collect_vars(acc);
                    }
                }
            }
        }
    }
}

/// Cartesian product of DNFs with a budget.
pub(crate) fn cartesian(
    acc: Vec<Vec<XLit>>,
    next: Vec<Vec<XLit>>,
    dep: &Arc<str>,
    budget: usize,
) -> Result<Vec<Vec<XLit>>, RewriteError> {
    let size = acc.len().saturating_mul(next.len());
    if size > budget {
        return Err(RewriteError::TooComplex {
            dependency: dep.clone(),
            alternatives: size,
            budget,
        });
    }
    let mut out = Vec::with_capacity(size);
    for a in &acc {
        for n in &next {
            let mut row = a.clone();
            row.extend(n.iter().cloned());
            out.push(row);
        }
    }
    Ok(out)
}

/// Expand an atom into its DNF over base predicates.
///
/// * Base atom → a single alternative containing the atom itself.
/// * View atom → one alternative per (recursively expanded) union rule.
///
/// `dep` and `budget` bound the expansion size; `vargen` renames body-only
/// variables apart.
pub fn expand_atom(
    atom: &Atom,
    views: &ViewSet,
    vargen: &mut VarGen,
    dep: &Arc<str>,
    budget: usize,
) -> Result<Vec<Vec<XLit>>, RewriteError> {
    if !views.is_view(&atom.predicate) {
        return Ok(vec![vec![XLit::Pos(atom.clone())]]);
    }
    let expected = views.arity_of(&atom.predicate).unwrap_or(0);
    if atom.arity() != expected {
        return Err(RewriteError::ArityMismatch {
            predicate: atom.predicate.clone(),
            expected,
            actual: atom.arity(),
        });
    }

    let mut alts: Vec<Vec<XLit>> = Vec::new();
    'rules: for rule in views.rules_of(&atom.predicate) {
        // Build the head substitution; repeated head variables and head
        // constants add equality conditions.
        let mut subst = TermSubst::new();
        let mut eq_conds: Vec<Comparison> = Vec::new();
        for (head_term, arg) in rule.head.args.iter().zip(&atom.args) {
            match head_term {
                Term::Var(v) => match subst.get(v) {
                    None => subst.bind(v.clone(), arg.clone()),
                    Some(prev) if prev == arg => {}
                    Some(prev) => {
                        eq_conds.push(Comparison::new(CmpOp::Eq, prev.clone(), arg.clone()));
                    }
                },
                Term::Const(c) => match arg {
                    Term::Const(d) if c == d => {}
                    Term::Const(_) => continue 'rules, // rule can never produce this atom
                    Term::Var(_) => {
                        eq_conds.push(Comparison::new(
                            CmpOp::Eq,
                            arg.clone(),
                            Term::Const(c.clone()),
                        ));
                    }
                },
            }
        }
        // Rename body-only variables apart.
        let head_vars: std::collections::BTreeSet<_> = rule.head.variables().into_iter().collect();
        for v in grom_lang::ast::body_variables(&rule.body) {
            if !head_vars.contains(&v) {
                subst.bind(v.clone(), Term::Var(vargen.fresh(&v)));
            }
        }

        // Expand the substituted body.
        let mut rule_alts: Vec<Vec<XLit>> = vec![eq_conds.iter().cloned().map(XLit::Cmp).collect()];
        for lit in subst.apply_body(&rule.body) {
            match lit {
                Literal::Pos(a) => {
                    let sub = expand_atom(&a, views, vargen, dep, budget)?;
                    rule_alts = cartesian(rule_alts, sub, dep, budget)?;
                }
                Literal::Neg(a) => {
                    let tree = NegTree {
                        source: a.clone(),
                        // Blame the enclosing view: its body owns this
                        // negation pattern.
                        via: atom.predicate.clone(),
                        alts: expand_atom(&a, views, vargen, dep, budget)?,
                    };
                    for alt in &mut rule_alts {
                        alt.push(XLit::Neg(tree.clone()));
                    }
                }
                Literal::Cmp(c) => {
                    for alt in &mut rule_alts {
                        alt.push(XLit::Cmp(c.clone()));
                    }
                }
            }
        }
        if alts.len() + rule_alts.len() > budget {
            return Err(RewriteError::TooComplex {
                dependency: dep.clone(),
                alternatives: alts.len() + rule_alts.len(),
                budget,
            });
        }
        alts.extend(rule_alts);
    }
    Ok(alts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::Program;

    fn dep_name() -> Arc<str> {
        Arc::from("test")
    }

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(Term::var).collect())
    }

    fn expand(views: &ViewSet, a: &Atom) -> Vec<Vec<XLit>> {
        let mut vg = VarGen::new();
        expand_atom(a, views, &mut vg, &dep_name(), 4096).unwrap()
    }

    #[test]
    fn base_atom_passes_through() {
        let views = ViewSet::new();
        let a = atom("T", &["x"]);
        let alts = expand(&views, &a);
        assert_eq!(alts, vec![vec![XLit::Pos(a)]]);
    }

    #[test]
    fn conjunctive_view_unfolds() {
        let p = Program::parse("view V(x) <- A(x, y), B(y).").unwrap();
        let alts = expand(&p.views, &atom("V", &["q"]));
        assert_eq!(alts.len(), 1);
        let alt = &alts[0];
        assert_eq!(alt.len(), 2);
        // Head var x -> q; body var y renamed fresh.
        match &alt[0] {
            XLit::Pos(a) => {
                assert_eq!(a.predicate.as_ref(), "A");
                assert_eq!(a.args[0], Term::var("q"));
                assert!(a.args[1].as_var().unwrap().starts_with('$'));
            }
            other => panic!("expected positive atom, got {other:?}"),
        }
    }

    #[test]
    fn union_view_gives_multiple_alternatives() {
        let p = Program::parse("view V(x) <- A(x).\nview V(x) <- B(x).").unwrap();
        let alts = expand(&p.views, &atom("V", &["q"]));
        assert_eq!(alts.len(), 2);
    }

    #[test]
    fn negated_base_atom_becomes_singleton_tree() {
        let p = Program::parse("view V(x) <- A(x), not B(x).").unwrap();
        let alts = expand(&p.views, &atom("V", &["q"]));
        assert_eq!(alts.len(), 1);
        match &alts[0][1] {
            XLit::Neg(nt) => {
                assert_eq!(nt.source.predicate.as_ref(), "B");
                assert_eq!(nt.alts, vec![vec![XLit::Pos(atom("B", &["q"]))]]);
            }
            other => panic!("expected negation tree, got {other:?}"),
        }
    }

    #[test]
    fn negated_view_atom_expands_inside_tree() {
        let p = Program::parse(
            "view Pop(x) <- A(x), not R(x).\n\
             view Un(x) <- A(x), not Pop(x).",
        )
        .unwrap();
        let alts = expand(&p.views, &atom("Un", &["q"]));
        assert_eq!(alts.len(), 1);
        let nt = match &alts[0][1] {
            XLit::Neg(nt) => nt,
            other => panic!("expected negation tree, got {other:?}"),
        };
        assert_eq!(nt.source.predicate.as_ref(), "Pop");
        // Pop's expansion itself contains a nested negation tree.
        assert_eq!(nt.alts.len(), 1);
        assert!(
            matches!(&nt.alts[0][1], XLit::Neg(inner) if inner.source.predicate.as_ref() == "R")
        );
    }

    #[test]
    fn nested_positive_views_flatten() {
        let p = Program::parse(
            "view V1(x) <- A(x).\n\
             view V2(x) <- V1(x), B(x).",
        )
        .unwrap();
        let alts = expand(&p.views, &atom("V2", &["q"]));
        assert_eq!(alts.len(), 1);
        let preds: Vec<&str> = alts[0]
            .iter()
            .filter_map(|x| match x {
                XLit::Pos(a) => Some(a.predicate.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(preds, vec!["A", "B"]);
    }

    #[test]
    fn union_times_union_multiplies() {
        let p = Program::parse(
            "view V(x) <- A(x).\nview V(x) <- B(x).\n\
             view W(x) <- C(x).\nview W(x) <- D(x).\n\
             view U(x) <- V(x), W(x).",
        )
        .unwrap();
        let alts = expand(&p.views, &atom("U", &["q"]));
        assert_eq!(alts.len(), 4);
    }

    #[test]
    fn budget_exceeded_is_error() {
        let p = Program::parse(
            "view V(x) <- A(x).\nview V(x) <- B(x).\n\
             view W(x) <- V(x), V(x), V(x).",
        )
        .unwrap();
        let mut vg = VarGen::new();
        let err = expand_atom(&atom("W", &["q"]), &p.views, &mut vg, &dep_name(), 4);
        assert!(matches!(err, Err(RewriteError::TooComplex { .. })));
    }

    #[test]
    fn repeated_head_variable_adds_equality() {
        let p = Program::parse("view Diag(x, x) <- A(x, y).").unwrap();
        // Hmm — repeated head variables: Diag(a, b) requires a = b.
        let alts = expand(&p.views, &atom("Diag", &["a", "b"]));
        assert_eq!(alts.len(), 1);
        let eqs: Vec<&Comparison> = alts[0]
            .iter()
            .filter_map(|x| match x {
                XLit::Cmp(c) if c.op == CmpOp::Eq => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].lhs, Term::var("a"));
        assert_eq!(eqs[0].rhs, Term::var("b"));
    }

    #[test]
    fn constant_in_head_constrains_argument() {
        let p = Program::parse("view Flagged(x, 1) <- A(x).").unwrap();
        // Used with a constant that matches: no condition.
        let alts = expand(
            &p.views,
            &Atom::new("Flagged", vec![Term::var("q"), Term::cons(1i64)]),
        );
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].len(), 1);
        // Used with a mismatching constant: the rule is pruned entirely.
        let alts = expand(
            &p.views,
            &Atom::new("Flagged", vec![Term::var("q"), Term::cons(2i64)]),
        );
        assert!(alts.is_empty());
        // Used with a variable: equality condition appears.
        let alts = expand(&p.views, &atom("Flagged", &["q", "w"]));
        assert_eq!(alts.len(), 1);
        assert!(matches!(&alts[0][0], XLit::Cmp(c) if c.op == CmpOp::Eq));
    }

    #[test]
    fn arity_mismatch_reported() {
        let p = Program::parse("view V(x) <- A(x).").unwrap();
        let mut vg = VarGen::new();
        let err = expand_atom(&atom("V", &["a", "b"]), &p.views, &mut vg, &dep_name(), 64);
        assert!(matches!(err, Err(RewriteError::ArityMismatch { .. })));
    }

    #[test]
    fn fresh_variables_do_not_collide_across_expansions() {
        let p = Program::parse("view V(x) <- A(x, y).").unwrap();
        let mut vg = VarGen::new();
        let a1 = expand_atom(&atom("V", &["p"]), &p.views, &mut vg, &dep_name(), 64).unwrap();
        let a2 = expand_atom(&atom("V", &["q"]), &p.views, &mut vg, &dep_name(), 64).unwrap();
        let var_of = |alts: &Vec<Vec<XLit>>| match &alts[0][0] {
            XLit::Pos(a) => a.args[1].as_var().unwrap().clone(),
            _ => panic!(),
        };
        assert_ne!(var_of(&a1), var_of(&a2));
    }

    #[test]
    fn substitution_reaches_inside_negation_trees() {
        let p = Program::parse("view V(x) <- A(x), not B(x, z).").unwrap();
        let alts = expand(&p.views, &atom("V", &["q"]));
        let mut subst = TermSubst::new();
        subst.bind("q".into(), Term::cons(5i64));
        let rewritten: Vec<XLit> = alts[0].iter().map(|x| x.apply(&subst)).collect();
        match &rewritten[1] {
            XLit::Neg(nt) => match &nt.alts[0][0] {
                XLit::Pos(a) => assert_eq!(a.args[0], Term::cons(5i64)),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
