//! Normalization: from expanded dependencies to executable tgds/egds/deds.
//!
//! See the crate docs for the algorithm overview. The entry points are
//! [`rewrite_program`] (a whole mapping) and [`rewrite_dependency`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use grom_lang::{
    Atom, CmpOp, Comparison, Dependency, Disjunct, Literal, Term, TermSubst, Var, VarGen, ViewSet,
};

use crate::error::{RewriteError, RewriteWarning};
use crate::expand::{cartesian, expand_atom, NegTree, XLit};

/// Options controlling the rewriting.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Budget on DNF alternatives per dependency. Exceeding it while
    /// expanding a premise is a hard error (truncation would be unsound).
    pub max_alternatives: usize,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        Self {
            max_alternatives: 4_096,
        }
    }
}

/// The result of rewriting a mapping.
#[derive(Debug, Clone, Default)]
pub struct RewriteOutput {
    /// Executable dependencies over base predicates only (no negated
    /// premises, no view atoms).
    pub deps: Vec<Dependency>,
    /// Sound strengthenings applied along the way.
    pub warnings: Vec<RewriteWarning>,
    /// Output dependency name → input dependency name.
    pub provenance: BTreeMap<Arc<str>, Arc<str>>,
    /// For every output that is a genuine ded: the views (or base
    /// predicates) whose negation contributed disjuncts.
    pub ded_causes: BTreeMap<Arc<str>, Vec<Arc<str>>>,
}

impl RewriteOutput {
    /// The outputs that are genuine deds (≥ 2 disjuncts).
    pub fn deds(&self) -> impl Iterator<Item = &Dependency> {
        self.deps.iter().filter(|d| d.is_ded())
    }

    /// Is the rewritten program ded-free (plain tgds/egds/denials only)?
    pub fn is_ded_free(&self) -> bool {
        self.deds().next().is_none()
    }
}

/// A flattened conjunction: positive atoms, equalities, comparisons and
/// negation trees.
#[derive(Debug, Clone, Default)]
struct FlatAlt {
    atoms: Vec<Atom>,
    eqs: Vec<(Term, Term)>,
    cmps: Vec<Comparison>,
    negs: Vec<NegTree>,
}

impl FlatAlt {
    fn from_xlits(xs: &[XLit]) -> FlatAlt {
        let mut out = FlatAlt::default();
        for x in xs {
            match x {
                XLit::Pos(a) => out.atoms.push(a.clone()),
                XLit::Cmp(c) if c.op == CmpOp::Eq => out.eqs.push((c.lhs.clone(), c.rhs.clone())),
                XLit::Cmp(c) => out.cmps.push(c.clone()),
                XLit::Neg(nt) => out.negs.push(nt.clone()),
            }
        }
        out
    }

    fn apply(&mut self, subst: &TermSubst) {
        for a in &mut self.atoms {
            *a = subst.apply_atom(a);
        }
        for (l, r) in &mut self.eqs {
            *l = subst.apply_term(l);
            *r = subst.apply_term(r);
        }
        for c in &mut self.cmps {
            *c = subst.apply_comparison(c);
        }
        for nt in &mut self.negs {
            let rewritten = XLit::Neg(nt.clone()).apply(subst);
            if let XLit::Neg(new_nt) = rewritten {
                *nt = new_nt;
            }
        }
    }
}

/// Result of [`simplify`].
enum Simplified {
    Sat(FlatAlt),
    Unsat,
}

/// Normalize a flat alternative against a set of *bound* (universal)
/// variables: substitute away equalities that involve an unbound variable,
/// evaluate ground equalities and comparisons, keep the rest.
fn simplify(mut alt: FlatAlt, bound: &BTreeSet<Var>) -> Simplified {
    loop {
        let mut subst_pair: Option<(Var, Term)> = None;
        let mut keep: Vec<(Term, Term)> = Vec::new();
        let mut unsat = false;
        for (l, r) in std::mem::take(&mut alt.eqs) {
            if subst_pair.is_some() {
                keep.push((l, r));
                continue;
            }
            match (&l, &r) {
                (Term::Const(a), Term::Const(b)) => {
                    if a != b {
                        unsat = true;
                    }
                    // equal constants: drop the equality
                }
                (Term::Var(v), other) if !bound.contains(v) => {
                    subst_pair = Some((v.clone(), other.clone()));
                }
                (other, Term::Var(v)) if !bound.contains(v) => {
                    subst_pair = Some((v.clone(), other.clone()));
                }
                _ => keep.push((l, r)),
            }
        }
        alt.eqs = keep;
        if unsat {
            return Simplified::Unsat;
        }
        match subst_pair {
            Some((v, t)) => {
                // Guard against `x = x` producing an identity substitution.
                if t != Term::Var(v.clone()) {
                    let mut s = TermSubst::new();
                    s.bind(v, t);
                    alt.apply(&s);
                }
            }
            None => break,
        }
    }
    // Ground comparisons evaluate statically.
    let mut cmps = Vec::new();
    for c in std::mem::take(&mut alt.cmps) {
        match c.eval_ground() {
            Some(true) => {}
            Some(false) => return Simplified::Unsat,
            None => cmps.push(c),
        }
    }
    alt.cmps = cmps;
    Simplified::Sat(alt)
}

/// Per-input-dependency rewriting state.
struct Ctx<'a> {
    views: &'a ViewSet,
    vargen: &'a mut VarGen,
    input: Arc<str>,
    aux_counter: usize,
    out: RewriteOutput,
}

impl Ctx<'_> {
    fn fresh_aux_name(&mut self) -> Arc<str> {
        self.aux_counter += 1;
        Arc::from(format!("{}_chk{}", self.input, self.aux_counter).as_str())
    }

    fn warn(&mut self, w: RewriteWarning) {
        if !self.out.warnings.contains(&w) {
            self.out.warnings.push(w);
        }
    }

    fn emit(&mut self, dep: Dependency, causes: Vec<Arc<str>>) {
        self.out
            .provenance
            .insert(dep.name.clone(), self.input.clone());
        if dep.is_ded() {
            self.out.ded_causes.insert(dep.name.clone(), causes);
        }
        self.out.deps.push(dep);
    }
}

/// Build a premise literal list from positive atoms and comparisons.
fn premise_literals(atoms: &[Atom], cmps: &[Comparison], eqs: &[(Term, Term)]) -> Vec<Literal> {
    let mut out: Vec<Literal> = atoms.iter().cloned().map(Literal::Pos).collect();
    out.extend(
        eqs.iter()
            .map(|(l, r)| Literal::Cmp(Comparison::new(CmpOp::Eq, l.clone(), r.clone()))),
    );
    out.extend(cmps.iter().cloned().map(Literal::Cmp));
    out
}

/// Turn one alternative of a negation tree into a ded disjunct, or drop it
/// (with a warning) when it cannot be expressed. `bound` is the set of
/// variables bound by the enclosing premise.
fn alt_to_disjunct(
    ctx: &mut Ctx<'_>,
    via: &Arc<str>,
    alt: &[XLit],
    bound: &BTreeSet<Var>,
) -> Option<Disjunct> {
    let fa = FlatAlt::from_xlits(alt);
    let fa = match simplify(fa, bound) {
        Simplified::Unsat => return None, // unsatisfiable disjunct adds nothing
        Simplified::Sat(fa) => fa,
    };
    if !fa.negs.is_empty() {
        ctx.warn(RewriteWarning::DroppedNestedNegation {
            dependency: ctx.input.clone(),
            view: via.clone(),
        });
        return None;
    }
    // Remaining equalities/comparisons must be over bound variables (the
    // chase cannot invent a null constrained by an order comparison, and an
    // equality over existentials is meaningless).
    let exist_cmp = fa
        .cmps
        .iter()
        .find(|c| c.variables().iter().any(|v| !bound.contains(v)));
    if let Some(c) = exist_cmp {
        ctx.warn(RewriteWarning::DroppedExistentialComparison {
            dependency: ctx.input.clone(),
            comparison: c.to_string(),
        });
        return None;
    }
    let exist_eq = fa.eqs.iter().any(|(l, r)| {
        [l, r]
            .into_iter()
            .any(|t| matches!(t, Term::Var(v) if !bound.contains(v)))
    });
    if exist_eq {
        // After simplify, an equality with an unbound variable can only
        // remain if both sides are unbound variables in a loop; drop it as
        // a nested-negation-style strengthening.
        ctx.warn(RewriteWarning::DroppedNestedNegation {
            dependency: ctx.input.clone(),
            view: via.clone(),
        });
        return None;
    }
    Some(Disjunct {
        atoms: fa.atoms,
        eqs: fa.eqs,
        cmps: fa.cmps,
    })
}

/// Emit the auxiliary dependencies enforcing a *conclusion-side* negation
/// tree: `premise ∧ context ∧ alt_positive → (nested negations)`.
fn emit_conclusion_check(
    ctx: &mut Ctx<'_>,
    prem_atoms: &[Atom],
    prem_cmps: &[Comparison],
    context_atoms: &[Atom],
    nt: &NegTree,
) {
    for alt in &nt.alts {
        let fa = FlatAlt::from_xlits(alt);
        // The aux premise binds: premise vars + context vars + this alt's
        // positive vars.
        let mut aux_atoms: Vec<Atom> = prem_atoms.to_vec();
        aux_atoms.extend(context_atoms.iter().cloned());
        aux_atoms.extend(fa.atoms.iter().cloned());
        let mut bound: BTreeSet<Var> = BTreeSet::new();
        for a in &aux_atoms {
            a.collect_vars(&mut bound);
        }

        let mut disjuncts: Vec<Disjunct> = Vec::new();
        for nnt in &fa.negs {
            for nalt in &nnt.alts {
                if let Some(d) = alt_to_disjunct(ctx, &nnt.via, nalt, &bound) {
                    disjuncts.push(d);
                }
            }
        }
        let name = ctx.fresh_aux_name();
        let causes: Vec<Arc<str>> = fa.negs.iter().map(|n| n.via.clone()).collect();
        let mut all_cmps = prem_cmps.to_vec();
        all_cmps.extend(fa.cmps.iter().cloned());
        let premise = premise_literals(&aux_atoms, &all_cmps, &fa.eqs);
        ctx.emit(Dependency::new(name, premise, disjuncts), causes);
    }
}

/// Rewrite one dependency. Appends executable dependencies to `ctx.out`.
fn rewrite_into(
    dep: &Dependency,
    views: &ViewSet,
    vargen: &mut VarGen,
    options: &RewriteOptions,
    out: RewriteOutput,
) -> Result<RewriteOutput, RewriteError> {
    let budget = options.max_alternatives;
    let mut ctx = Ctx {
        views,
        vargen,
        input: dep.name.clone(),
        aux_counter: 0,
        out,
    };

    // ---- Step 1: premise DNF ------------------------------------------
    let mut prem_dnf: Vec<Vec<XLit>> = vec![vec![]];
    for lit in &dep.premise {
        let lit_dnf: Vec<Vec<XLit>> = match lit {
            Literal::Pos(a) => expand_atom(a, ctx.views, ctx.vargen, &dep.name, budget)?,
            Literal::Neg(a) => {
                let alts = expand_atom(a, ctx.views, ctx.vargen, &dep.name, budget)?;
                vec![vec![XLit::Neg(NegTree {
                    source: a.clone(),
                    via: a.predicate.clone(),
                    alts,
                })]]
            }
            Literal::Cmp(c) => vec![vec![XLit::Cmp(c.clone())]],
        };
        prem_dnf = cartesian(prem_dnf, lit_dnf, &dep.name, budget)?;
    }

    // ---- Step 2: conclusion alternatives ------------------------------
    let mut conc_alts: Vec<FlatAlt> = Vec::new();
    for d in &dep.disjuncts {
        let mut dnf: Vec<Vec<XLit>> = vec![vec![]];
        for a in &d.atoms {
            let sub = expand_atom(a, ctx.views, ctx.vargen, &dep.name, budget)?;
            dnf = cartesian(dnf, sub, &dep.name, budget)?;
        }
        for alt in dnf {
            let mut fa = FlatAlt::from_xlits(&alt);
            fa.eqs.extend(d.eqs.iter().cloned());
            fa.cmps.extend(d.cmps.iter().cloned());
            conc_alts.push(fa);
        }
    }

    // ---- Step 3: one output dependency per premise alternative --------
    let multi_premise = prem_dnf.len() > 1;
    for (pi, palt) in prem_dnf.iter().enumerate() {
        let pa = FlatAlt::from_xlits(palt);
        // Premise equalities stay as comparison literals (join conditions).
        let prem_atoms = pa.atoms.clone();
        let mut prem_cmps = pa.cmps.clone();
        prem_cmps.extend(
            pa.eqs
                .iter()
                .map(|(l, r)| Comparison::new(CmpOp::Eq, l.clone(), r.clone())),
        );
        let mut universal: BTreeSet<Var> = BTreeSet::new();
        for a in &prem_atoms {
            a.collect_vars(&mut universal);
        }

        let mut final_disjuncts: Vec<Disjunct> = Vec::new();
        let mut causes: Vec<Arc<str>> = Vec::new();
        let mut vacuous = false;
        let mut any_conc_negs = false;

        // Conclusion alternatives.
        for ca in &conc_alts {
            let sca = match simplify(ca.clone(), &universal) {
                Simplified::Unsat => {
                    ctx.warn(RewriteWarning::UnsatisfiableAlternative {
                        dependency: dep.name.clone(),
                    });
                    continue;
                }
                Simplified::Sat(s) => s,
            };
            // Comparisons over existential variables cannot be enforced.
            if let Some(c) = sca
                .cmps
                .iter()
                .find(|c| c.variables().iter().any(|v| !universal.contains(v)))
            {
                ctx.warn(RewriteWarning::DroppedExistentialComparison {
                    dependency: dep.name.clone(),
                    comparison: c.to_string(),
                });
                continue;
            }
            // Negative requirements spawn auxiliary checks.
            if !sca.negs.is_empty() {
                any_conc_negs = true;
                let conc_exist: BTreeSet<Var> = sca
                    .atoms
                    .iter()
                    .flat_map(|a| a.variables())
                    .filter(|v| !universal.contains(v))
                    .collect();
                for nt in &sca.negs {
                    let mut nt_vars = BTreeSet::new();
                    for alt in &nt.alts {
                        for x in alt {
                            x.collect_vars(&mut nt_vars);
                        }
                    }
                    let shares = nt_vars.iter().any(|v| conc_exist.contains(v));
                    let context: Vec<Atom> = if shares {
                        ctx.warn(RewriteWarning::SharedExistentialStrengthened {
                            dependency: dep.name.clone(),
                            view: nt.via.clone(),
                        });
                        sca.atoms.clone()
                    } else {
                        Vec::new()
                    };
                    emit_conclusion_check(&mut ctx, &prem_atoms, &prem_cmps, &context, nt);
                }
            }
            if sca.atoms.is_empty() && sca.eqs.is_empty() && sca.cmps.is_empty() {
                // Positively trivial alternative: the disjunction is always
                // satisfiable (its negative side is enforced by the checks
                // above), so the main dependency is vacuous.
                vacuous = true;
            } else {
                final_disjuncts.push(Disjunct {
                    atoms: sca.atoms,
                    eqs: sca.eqs,
                    cmps: sca.cmps,
                });
            }
        }
        if conc_alts.len() > 1 && any_conc_negs {
            ctx.warn(RewriteWarning::UnionNegationStrengthened {
                dependency: dep.name.clone(),
            });
        }
        if conc_alts.len() > 1 {
            causes.push(Arc::from(format!("{} (union view)", dep.name).as_str()));
        }

        // Premise negation trees become extra disjuncts.
        for nt in &pa.negs {
            for alt in &nt.alts {
                if let Some(d) = alt_to_disjunct(&mut ctx, &nt.via, alt, &universal) {
                    final_disjuncts.push(d);
                    if !causes.contains(&nt.via) {
                        causes.push(nt.via.clone());
                    }
                }
            }
        }

        if !vacuous {
            let name: Arc<str> = if multi_premise {
                Arc::from(format!("{}@{}", dep.name, pi).as_str())
            } else {
                dep.name.clone()
            };
            let premise = premise_literals(&prem_atoms, &prem_cmps, &[]);
            ctx.emit(Dependency::new(name, premise, final_disjuncts), causes);
        }
    }

    Ok(ctx.out)
}

/// Rewrite a single dependency against a view set.
pub fn rewrite_dependency(
    dep: &Dependency,
    views: &ViewSet,
    vargen: &mut VarGen,
    options: &RewriteOptions,
) -> Result<RewriteOutput, RewriteError> {
    let out = rewrite_into(dep, views, vargen, options, RewriteOutput::default())?;
    verify_executable(&out)?;
    Ok(out)
}

/// Rewrite a whole mapping: every dependency of `deps` against `views`.
/// Duplicate outputs (identical up to variable renaming) are merged.
pub fn rewrite_program(
    views: &ViewSet,
    deps: &[Dependency],
    options: &RewriteOptions,
) -> Result<RewriteOutput, RewriteError> {
    views.validate()?;
    for dep in deps {
        grom_lang::safety::check_dependency(dep)?;
    }
    let mut vargen = VarGen::new();
    let mut out = RewriteOutput::default();
    for dep in deps {
        out = rewrite_into(dep, views, &mut vargen, options, out)?;
    }
    dedup(&mut out);
    verify_executable(&out)?;
    Ok(out)
}

/// Canonical form of a dependency with variables renamed in first-occurrence
/// order — used to merge duplicate outputs.
fn canonical_key(dep: &Dependency) -> String {
    let mut names: BTreeMap<Var, String> = BTreeMap::new();
    let mut order = 0usize;
    let mut subst = TermSubst::new();
    let mut intern = |v: &Var, subst: &mut TermSubst, order: &mut usize| {
        if !names.contains_key(v) {
            let fresh: Var = Arc::from(format!("c{order}").as_str());
            names.insert(v.clone(), fresh.to_string());
            subst.bind(v.clone(), Term::Var(fresh));
            *order += 1;
        }
    };
    for lit in &dep.premise {
        for v in lit.variables() {
            intern(&v, &mut subst, &mut order);
        }
    }
    for d in &dep.disjuncts {
        for v in d.variables() {
            intern(&v, &mut subst, &mut order);
        }
    }
    let renamed = dep.apply(&subst);
    let mut s = String::new();
    use std::fmt::Write;
    for l in &renamed.premise {
        let _ = write!(s, "{l};");
    }
    s.push('>');
    for d in &renamed.disjuncts {
        let _ = write!(s, "{d}|");
    }
    s
}

fn dedup(out: &mut RewriteOutput) {
    let mut seen: BTreeMap<String, Arc<str>> = BTreeMap::new();
    let mut kept = Vec::with_capacity(out.deps.len());
    for dep in std::mem::take(&mut out.deps) {
        let key = canonical_key(&dep);
        match seen.get(&key) {
            Some(_) => {
                out.provenance.remove(&dep.name);
                out.ded_causes.remove(&dep.name);
            }
            None => {
                seen.insert(key, dep.name.clone());
                kept.push(dep);
            }
        }
    }
    out.deps = kept;
}

/// Post-condition: the rewriter's output must be executable — no negated
/// premise literals remain (all negation was normalized away).
fn verify_executable(out: &RewriteOutput) -> Result<(), RewriteError> {
    for dep in &out.deps {
        debug_assert!(
            !dep.has_negated_premise(),
            "internal error: rewritten dependency `{}` has a negated premise",
            dep.name
        );
        grom_lang::safety::check_dependency(dep)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grom_lang::parser::{parse_dependency, parse_program};
    use grom_lang::DepClass;

    fn opts() -> RewriteOptions {
        RewriteOptions::default()
    }

    fn rewrite_one(views_text: &str, dep_text: &str) -> RewriteOutput {
        let prog = parse_program(views_text).unwrap();
        let dep = parse_dependency(dep_text).unwrap();
        rewrite_program(&prog.views, &[dep], &opts()).unwrap()
    }

    /// The paper's target semantic schema (v1–v6).
    const PAPER_VIEWS: &str = r#"
        view Product(id, name) <- T_Product(id, name, store).
        view PopularProduct(pid, name) <-
            T_Product(pid, name, store), not T_Rating(rid, pid, 0).
        view AvgProduct(pid, name) <-
            T_Product(pid, name, store), T_Rating(rid, pid, 1),
            not PopularProduct(pid, name).
        view UnpopularProduct(pid, name) <-
            T_Product(pid, name, store),
            not AvgProduct(pid, name), not PopularProduct(pid, name).
        view SoldAt(pid, stid) <- T_Product(pid, pname, stid).
        view Store(id, name, addr) <- T_Store(id, name, addr, phone).
    "#;

    #[test]
    fn conjunctive_view_unfolding_is_plain_tgd() {
        let out = rewrite_one("view V(x) <- A(x, y), B(y).", "tgd m: S(x) -> V(x).");
        assert_eq!(out.deps.len(), 1);
        let dep = &out.deps[0];
        assert_eq!(dep.class(), DepClass::Tgd);
        assert!(out.warnings.is_empty());
        assert!(out.is_ded_free());
        // S(x) -> A(x, $y), B($y).
        assert_eq!(dep.disjuncts[0].atoms.len(), 2);
        assert_eq!(dep.disjuncts[0].atoms[0].predicate.as_ref(), "A");
    }

    #[test]
    fn base_only_dependency_passes_through() {
        let out = rewrite_one("view V(x) <- A(x).", "tgd m: S(x) -> T(x).");
        assert_eq!(out.deps.len(), 1);
        let dep = &out.deps[0];
        assert_eq!(dep.to_string(), "dep m: S(x) -> T(x).");
    }

    #[test]
    fn paper_d0_reproduced_from_e0() {
        // Rewriting the key egd e0 over PopularProduct must produce exactly
        // the paper's ded d0 (modulo variable names).
        let out = rewrite_one(
            PAPER_VIEWS,
            "egd e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.",
        );
        assert_eq!(out.deps.len(), 1, "{:#?}", out.deps);
        let d0 = &out.deps[0];
        assert_eq!(d0.class(), DepClass::Ded);
        assert_eq!(d0.disjuncts.len(), 3);
        // Premise: two T_Product atoms sharing the name column.
        assert_eq!(d0.premise.len(), 2);
        for lit in &d0.premise {
            assert_eq!(lit.atom().unwrap().predicate.as_ref(), "T_Product");
        }
        // Disjunct 0: id1 = id2. Disjuncts 1, 2: existential T_Rating with
        // thumbsUp = 0.
        assert_eq!(d0.disjuncts[0].eqs.len(), 1);
        for d in &d0.disjuncts[1..] {
            assert_eq!(d.atoms.len(), 1);
            let a = &d.atoms[0];
            assert_eq!(a.predicate.as_ref(), "T_Rating");
            assert_eq!(a.args[2], Term::cons(0i64));
        }
        // Provenance blames PopularProduct.
        let causes = &out.ded_causes[&d0.name];
        assert!(causes.contains(&Arc::from("PopularProduct")));
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn paper_m2_gives_tgd_plus_denial() {
        let out = rewrite_one(
            PAPER_VIEWS,
            "tgd m2: S_Product(pid, name, store, rating), rating >= 4 \
             -> PopularProduct(pid, name).",
        );
        // Main tgd + one auxiliary denial.
        assert_eq!(out.deps.len(), 2, "{:#?}", out.deps);
        let main = out.deps.iter().find(|d| d.name.as_ref() == "m2").unwrap();
        assert_eq!(main.class(), DepClass::Tgd);
        assert_eq!(main.disjuncts[0].atoms[0].predicate.as_ref(), "T_Product");

        let chk = out.deps.iter().find(|d| d.name.as_ref() != "m2").unwrap();
        assert_eq!(chk.class(), DepClass::Denial);
        // The denial forbids a 0-rating for a popular product.
        let preds: Vec<&str> = chk
            .premise
            .iter()
            .filter_map(|l| l.atom().map(|a| a.predicate.as_ref()))
            .collect();
        assert!(preds.contains(&"S_Product"));
        assert!(preds.contains(&"T_Rating"));
        assert!(out.is_ded_free());
    }

    #[test]
    fn paper_m0_unpopular_product_rewrites_with_witness_tgd() {
        let out = rewrite_one(
            PAPER_VIEWS,
            "tgd m0: S_Product(pid, name, store, rating), rating < 2 \
             -> UnpopularProduct(pid, name).",
        );
        // Expected: main tgd (copy product), a tgd inventing the 0-rating
        // witness (from ¬PopularProduct), and a strengthened denial
        // forbidding 1-ratings (from ¬AvgProduct), with a dropped-negation
        // warning for the nesting through PopularProduct.
        let main = out.deps.iter().find(|d| d.name.as_ref() == "m0").unwrap();
        assert_eq!(main.class(), DepClass::Tgd);

        let tgds: Vec<_> = out
            .deps
            .iter()
            .filter(|d| d.class() == DepClass::Tgd && d.name.as_ref() != "m0")
            .collect();
        assert_eq!(tgds.len(), 1, "{:#?}", out.deps);
        let witness = tgds[0];
        let a = &witness.disjuncts[0].atoms[0];
        assert_eq!(a.predicate.as_ref(), "T_Rating");
        assert_eq!(a.args[2], Term::cons(0i64));

        let denials: Vec<_> = out.deps.iter().filter(|d| d.is_denial()).collect();
        assert_eq!(denials.len(), 1, "{:#?}", out.deps);
        let denial_preds: Vec<&str> = denials[0]
            .premise
            .iter()
            .filter_map(|l| l.atom().map(|a| a.predicate.as_ref()))
            .collect();
        assert!(denial_preds.contains(&"T_Rating"));

        assert!(out
            .warnings
            .iter()
            .any(|w| matches!(w, RewriteWarning::DroppedNestedNegation { .. })));
    }

    #[test]
    fn union_view_in_conclusion_gives_ded() {
        let out = rewrite_one(
            "view V(x) <- A(x).\nview V(x) <- B(x).",
            "tgd m: S(x) -> V(x).",
        );
        assert_eq!(out.deps.len(), 1);
        let dep = &out.deps[0];
        assert_eq!(dep.class(), DepClass::Ded);
        assert_eq!(dep.disjuncts.len(), 2);
    }

    #[test]
    fn union_view_in_premise_splits_dependencies() {
        let out = rewrite_one(
            "view V(x) <- A(x).\nview V(x) <- B(x).",
            "tgd m: V(x) -> T(x).",
        );
        // V(x) -> T(x) becomes A(x) -> T(x) and B(x) -> T(x).
        assert_eq!(out.deps.len(), 2);
        assert!(out.deps.iter().all(|d| d.class() == DepClass::Tgd));
        let names: Vec<&str> = out.deps.iter().map(|d| d.name.as_ref()).collect();
        assert_eq!(names, vec!["m@0", "m@1"]);
    }

    #[test]
    fn negated_premise_literal_moves_to_conclusion() {
        let out = rewrite_one("view V(x) <- A(x).", "dep m: S(x), not B(x) -> T(x).");
        assert_eq!(out.deps.len(), 1);
        let dep = &out.deps[0];
        assert_eq!(dep.class(), DepClass::Ded);
        assert_eq!(dep.premise.len(), 1);
        assert_eq!(dep.disjuncts.len(), 2); // T(x) | B(x)
        assert!(!dep.has_negated_premise());
    }

    #[test]
    fn comparisons_inside_views_surface_in_premise() {
        let out = rewrite_one(
            "view Cheap(x) <- Price(x, p), p < 10.",
            "tgd m: Cheap(x) -> T(x).",
        );
        let dep = &out.deps[0];
        assert!(dep
            .premise
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.op == CmpOp::Lt)));
    }

    #[test]
    fn comparison_on_existential_in_conclusion_is_dropped_with_warning() {
        let out = rewrite_one(
            "view Cheap(x) <- Price(x, p), p < 10.",
            "tgd m: S(x) -> Cheap(x).",
        );
        // Making Cheap(x) true needs Price(x, p) with p < 10; the chase
        // cannot constrain an invented null, so the alternative is dropped
        // (strengthening to an unsatisfiable requirement — a denial-like
        // dependency with no disjuncts).
        assert!(out
            .warnings
            .iter()
            .any(|w| matches!(w, RewriteWarning::DroppedExistentialComparison { .. })));
        let dep = &out.deps[0];
        assert!(dep.disjuncts.is_empty());
    }

    #[test]
    fn equality_with_existential_substitutes() {
        // Conclusion V(x) where V(y) <- A(y, z) with head arity 1: make
        // sure eq-substitution binds the head variable, not a fresh null.
        let out = rewrite_one("view V(x, x) <- A(x).", "tgd m: S(x, y) -> V(x, y).");
        // V(x, y) demands x = y (repeated head variable): the conclusion
        // equality over two universal variables is kept.
        let dep = &out.deps[0];
        assert_eq!(dep.disjuncts.len(), 1);
        assert_eq!(dep.disjuncts[0].eqs.len(), 1);
        assert_eq!(dep.disjuncts[0].atoms.len(), 1);
        assert_eq!(dep.class(), DepClass::TgdEgd);
    }

    #[test]
    fn egd_over_conjunctive_views_stays_egd() {
        let out = rewrite_one(
            "view V(x, n) <- A(x, n).",
            "egd e: V(x1, n), V(x2, n) -> x1 = x2.",
        );
        assert_eq!(out.deps.len(), 1);
        assert_eq!(out.deps[0].class(), DepClass::Egd);
        assert!(out.is_ded_free());
    }

    #[test]
    fn denial_over_views_unfolds() {
        let out = rewrite_one("view V(x) <- A(x).", "dep n: V(x), V(y), x != y -> false.");
        assert_eq!(out.deps.len(), 1);
        assert_eq!(out.deps[0].class(), DepClass::Denial);
        assert_eq!(
            out.deps[0]
                .premise
                .iter()
                .filter(|l| l.atom().is_some())
                .count(),
            2
        );
    }

    #[test]
    fn duplicate_outputs_are_merged() {
        // Both tgds produce the same auxiliary denial for ¬B.
        let prog = parse_program("view V(x) <- A(x), not B(x).").unwrap();
        let d1 = parse_dependency("tgd m1: S(x) -> V(x).").unwrap();
        let d2 = parse_dependency("tgd m2: S(x) -> V(x).").unwrap();
        let out = rewrite_program(&prog.views, &[d1, d2], &opts()).unwrap();
        // m1, m2 mains (identical premise but different names — still
        // canonically equal!) → the dedup keeps one main and one denial.
        assert_eq!(out.deps.len(), 2, "{:#?}", out.deps);
    }

    #[test]
    fn unsatisfiable_alternative_dropped() {
        let out = rewrite_one(
            "view V(x) <- A(x, 1).\nview V(x) <- A(x, 2).",
            "tgd m: S(x) -> V(x).",
        );
        // Both alternatives remain (both satisfiable): a 2-disjunct ded.
        assert_eq!(out.deps[0].disjuncts.len(), 2);

        let out = rewrite_one(
            "view W(x) <- B(x, y), y < 2, y > 5.",
            "tgd m: S(x) -> W(x).",
        );
        // y < 2 ∧ y > 5 over an existential is dropped (existential
        // comparison warning), leaving an empty disjunction.
        assert!(out.deps[0].disjuncts.is_empty());
    }

    #[test]
    fn ground_contradiction_is_unsat_alternative() {
        let out = rewrite_one(
            "view V(x) <- A(x, 1).",
            "ded m: S(x) -> V(x), V2(x) | V(x).",
        );
        // Smoke test for multi-disjunct input conclusions: both input
        // disjuncts expand; no crash, classification consistent.
        assert!(!out.deps.is_empty());
    }

    #[test]
    fn rewriting_is_deterministic() {
        let prog = parse_program(PAPER_VIEWS).unwrap();
        let dep = parse_dependency(
            "tgd m0: S_Product(pid, name, store, rating), rating < 2 \
             -> UnpopularProduct(pid, name).",
        )
        .unwrap();
        let a = rewrite_program(&prog.views, std::slice::from_ref(&dep), &opts()).unwrap();
        let b = rewrite_program(&prog.views, std::slice::from_ref(&dep), &opts()).unwrap();
        let fmt = |o: &RewriteOutput| {
            o.deps
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn budget_violation_reported() {
        let mut views_text = String::new();
        // V = union of 20 rules, premise uses V three times: 20^3 > 4096.
        for i in 0..20 {
            views_text.push_str(&format!("view V(x) <- A{i}(x).\n"));
        }
        let prog = parse_program(&views_text).unwrap();
        let dep = parse_dependency("tgd m: V(x), V(y), V(z) -> T(x, y, z).").unwrap();
        let err = rewrite_program(&prog.views, &[dep], &opts());
        assert!(matches!(err, Err(RewriteError::TooComplex { .. })));
    }

    #[test]
    fn shared_existential_strengthening_warns() {
        // The negated atom uses the body variable z of the positive part.
        let out = rewrite_one("view V(x) <- A(x, z), not B(z).", "tgd m: S(x) -> V(x).");
        assert!(out
            .warnings
            .iter()
            .any(|w| matches!(w, RewriteWarning::SharedExistentialStrengthened { .. })));
        // The check dependency must include the context atom A to bind z.
        let chk = out.deps.iter().find(|d| d.is_denial()).unwrap();
        let preds: Vec<&str> = chk
            .premise
            .iter()
            .filter_map(|l| l.atom().map(|a| a.predicate.as_ref()))
            .collect();
        assert!(preds.contains(&"A"));
        assert!(preds.contains(&"B"));
    }

    #[test]
    fn view_over_view_in_conclusion() {
        let out = rewrite_one(
            "view V1(x) <- A(x).\nview V2(x) <- V1(x).",
            "tgd m: S(x) -> V2(x).",
        );
        assert_eq!(out.deps.len(), 1);
        assert_eq!(out.deps[0].disjuncts[0].atoms[0].predicate.as_ref(), "A");
    }

    #[test]
    fn all_outputs_reference_no_views() {
        let prog = parse_program(PAPER_VIEWS).unwrap();
        let deps = parse_program(
            "tgd m0: S_Product(pid, name, store, rating), rating < 2 -> UnpopularProduct(pid, name).\n\
             tgd m1: S_Product(pid, name, store, rating), rating >= 2, rating < 4 -> AvgProduct(pid, name).\n\
             tgd m2: S_Product(pid, name, store, rating), rating >= 4 -> PopularProduct(pid, name).\n\
             tgd m3: S_Product(pid, name, store, rating), S_Store(store, location) -> SoldAt(pid, sid), Store(sid, store, location).\n\
             egd e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.",
        )
        .unwrap()
        .deps;
        let out = rewrite_program(&prog.views, &deps, &opts()).unwrap();
        for dep in &out.deps {
            assert!(!dep.has_negated_premise(), "{dep}");
            for p in dep.predicates() {
                assert!(!prog.views.is_view(&p), "view `{p}` survived in {dep}");
            }
        }
        // Provenance covers every output.
        for dep in &out.deps {
            assert!(out.provenance.contains_key(&dep.name), "{}", dep.name);
        }
    }
}
