//! Shard views: an immutable instance snapshot overlaid with a private
//! insertion buffer.
//!
//! A [`ShardView`] is what one chase worker evaluates against during a
//! parallel sweep. Reads ([`Db`] queries) see the union of the shared
//! snapshot and the worker's own buffer — so a dependency's premise joins
//! observe the repairs the *same worker* made earlier in the sweep, exactly
//! like the sequential loop. Writes go only to the buffer, deduplicated
//! against both layers, and are recorded in a [`DeltaLog`] the coordinator
//! merges at the sweep barrier.
//!
//! Alongside the insertion buffer the view carries an **equality
//! obligation buffer**: egd repairs running on a worker cannot rewrite the
//! shared instance, so they record the pair of values to be unified and
//! hand the buffer to the coordinator, which performs the combined
//! unification and the single null-substitution pass at the sweep barrier.
//!
//! The two storage layers are disjoint by construction (a tuple already
//! present in the snapshot is never added to the buffer), so union queries
//! need no deduplication and tuple counts simply add.

use std::sync::Arc;

use grom_data::{DataError, DeltaLog, Instance, RelId, Span, Tuple, Value};
use grom_engine::{Control, Db, DbRel, Ver};

/// An instance snapshot plus a private write buffer, presented as one
/// database.
#[derive(Debug)]
pub struct ShardView<'a> {
    base: &'a Instance,
    /// The worker's buffered insertions; always delta-tracked, always
    /// disjoint from `base`.
    local: Instance,
    /// Equality obligations recorded by egd repairs, in collection order;
    /// unified by the coordinator at the sweep barrier.
    obligations: Vec<(Value, Value)>,
    /// Insert attempts rejected as duplicates on either layer. A function
    /// of the snapshot and buffer contents only — deterministic across
    /// thread counts — so the chase profile can report it per activation.
    dedup_hits: u64,
}

impl<'a> ShardView<'a> {
    /// A fresh view over `base` with an empty buffer.
    pub fn new(base: &'a Instance) -> Self {
        let mut local = Instance::new();
        local.begin_delta_tracking();
        Self {
            base,
            local,
            obligations: Vec::new(),
            dedup_hits: 0,
        }
    }

    /// The shared snapshot this view reads through to.
    pub fn base(&self) -> &'a Instance {
        self.base
    }

    /// Insert a tuple. Returns `Ok(true)` iff it is new to *both* layers.
    /// Arity is checked against whichever layer already fixed it.
    pub fn insert(&mut self, relation: &Arc<str>, tuple: Tuple) -> Result<bool, DataError> {
        if let Some(arity) = self.base.relation(relation).and_then(|r| r.arity()) {
            if arity != tuple.arity() {
                return Err(DataError::ArityMismatch {
                    relation: relation.clone(),
                    expected: arity,
                    actual: tuple.arity(),
                });
            }
        }
        if self.base.contains_fact(relation, &tuple) {
            self.dedup_hits += 1;
            return Ok(false);
        }
        let fresh = self.local.insert(relation, tuple)?;
        if !fresh {
            self.dedup_hits += 1;
        }
        Ok(fresh)
    }

    /// Insert attempts rejected as duplicates so far (both layers).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Drain the log of insertions buffered since the last drain.
    pub fn take_delta(&mut self) -> DeltaLog {
        self.local.take_delta()
    }

    /// Record an equality obligation `left = right` for the coordinator's
    /// barrier unification. Values are stored raw (unresolved): the
    /// coordinator resolves them against the authoritative null map when it
    /// unifies the merged buffers.
    pub fn record_obligation(&mut self, left: Value, right: Value) {
        self.obligations.push((left, right));
    }

    /// Drain the obligations recorded since the last drain, in collection
    /// order.
    pub fn take_obligations(&mut self) -> Vec<(Value, Value)> {
        std::mem::take(&mut self.obligations)
    }

    /// Total buffered tuples (across all drains' worth still stored).
    pub fn buffered_len(&self) -> usize {
        self.local.len()
    }
}

/// Token encoding for [`ShardView`]: the high 32 bits hold the snapshot's
/// `RelId + 1` and the low 32 bits the buffer's `RelId + 1`, with 0 meaning
/// "absent on that layer". At least one half is always set.
fn encode(base: Option<RelId>, local: Option<RelId>) -> Option<DbRel> {
    if base.is_none() && local.is_none() {
        return None;
    }
    let hi = base.map_or(0, |RelId(i)| u64::from(i) + 1);
    let lo = local.map_or(0, |RelId(i)| u64::from(i) + 1);
    Some(DbRel((hi << 32) | lo))
}

fn decode(rel: DbRel) -> (Option<RelId>, Option<RelId>) {
    let hi = (rel.0 >> 32) as u32;
    let lo = rel.0 as u32;
    (hi.checked_sub(1).map(RelId), lo.checked_sub(1).map(RelId))
}

/// Split a packed [`ShardView`] version cursor into per-layer slot [`Span`]s.
/// The cursor packs the snapshot cut in its high 32 bits and the buffer cut
/// in its low 32 bits, mirroring the token encoding.
fn layer_spans(ver: Ver) -> (Span, Span) {
    match ver {
        Ver::All => (Span::All, Span::All),
        Ver::Old(c) => (
            Span::Below((c >> 32) as u32),
            Span::Below(c as u32),
        ),
        Ver::New(c) => (
            Span::AtLeast((c >> 32) as u32),
            Span::AtLeast(c as u32),
        ),
    }
}

impl Db for ShardView<'_> {
    fn resolve(&self, relation: &str) -> Option<DbRel> {
        encode(self.base.rel_id(relation), self.local.rel_id(relation))
    }

    fn scan_rel_v<'b>(
        &'b self,
        rel: DbRel,
        pattern: &[Option<Value>],
        ver: Ver,
        visit: &mut dyn FnMut(&'b Tuple) -> Control,
    ) {
        // Snapshot rows first, then buffered rows: insertion order across
        // the union, since everything in the buffer is newer. The layers
        // are disjoint by construction, so no deduplication is needed.
        let (base, local) = decode(rel);
        let (base_span, local_span) = layer_spans(ver);
        if let Some(id) = base {
            if !self
                .base
                .relation_by_id(id)
                .scan_each_v(pattern, base_span, &mut |t| visit(t) == Control::Continue)
            {
                return;
            }
        }
        if let Some(id) = local {
            self.local
                .relation_by_id(id)
                .scan_each_v(pattern, local_span, &mut |t| visit(t) == Control::Continue);
        }
    }

    fn estimate_rel_v(&self, rel: DbRel, pattern: &[Option<Value>], ver: Ver) -> usize {
        let (base, local) = decode(rel);
        let (base_span, local_span) = layer_spans(ver);
        base.map_or(0, |id| {
            self.base.relation_by_id(id).estimate_v(pattern, base_span)
        }) + local.map_or(0, |id| {
            self.local.relation_by_id(id).estimate_v(pattern, local_span)
        })
    }

    fn cursor_before_last_rel(&self, rel: DbRel, n: usize) -> u64 {
        // The trailing n tuples of the union are buffer rows first (the
        // buffer holds everything newer than the snapshot), overflowing into
        // the snapshot's trailing rows only when n exceeds the buffer.
        let (base, local) = decode(rel);
        let local_len = local.map_or(0, |id| self.local.relation_by_id(id).len());
        let (base_cut, local_cut) = if n <= local_len {
            (
                base.map_or(0, |id| self.base.relation_by_id(id).frontier()),
                local.map_or(0, |id| self.local.relation_by_id(id).cursor_before_last(n)),
            )
        } else {
            (
                base.map_or(0, |id| {
                    self.base.relation_by_id(id).cursor_before_last(n - local_len)
                }),
                0,
            )
        };
        (u64::from(base_cut) << 32) | u64::from(local_cut)
    }

    fn any_match_rel(&self, rel: DbRel, pattern: &[Option<Value>]) -> bool {
        let (base, local) = decode(rel);
        base.is_some_and(|id| self.base.relation_by_id(id).any_match(pattern))
            || local.is_some_and(|id| self.local.relation_by_id(id).any_match(pattern))
    }

    fn len_rel(&self, rel: DbRel) -> usize {
        let (base, local) = decode(rel);
        base.map_or(0, |id| self.base.relation_by_id(id).len())
            + local.map_or(0, |id| self.local.relation_by_id(id).len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    fn rel(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    #[test]
    fn reads_union_base_and_buffer() {
        let mut base = Instance::new();
        base.add("R", vec![v(1), v(10)]).unwrap();
        base.add("R", vec![v(2), v(20)]).unwrap();

        let mut view = ShardView::new(&base);
        assert!(view
            .insert(&rel("R"), Tuple::new(vec![v(3), v(30)]))
            .unwrap());
        assert!(view.insert(&rel("S"), Tuple::new(vec![v(7)])).unwrap());

        // Union scan: base rows first, then buffered rows.
        let rows: Vec<i64> = view
            .scan_relation("R", &[None, None])
            .iter()
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(rows, vec![1, 2, 3]);
        assert_eq!(view.relation_len("R"), 3);
        assert_eq!(view.relation_len("S"), 1);
        assert_eq!(view.estimate_relation("R", &[Some(v(3)), None]), 1);
        assert!(view.any_match_relation("R", &[Some(v(1)), None]));
        assert!(view.any_match_relation("S", &[Some(v(7))]));
        assert!(!view.any_match_relation("S", &[Some(v(8))]));
    }

    #[test]
    fn inserts_dedup_against_both_layers() {
        let mut base = Instance::new();
        base.add("R", vec![v(1)]).unwrap();
        let mut view = ShardView::new(&base);
        assert!(!view.insert(&rel("R"), Tuple::new(vec![v(1)])).unwrap());
        assert!(view.insert(&rel("R"), Tuple::new(vec![v(2)])).unwrap());
        assert!(!view.insert(&rel("R"), Tuple::new(vec![v(2)])).unwrap());
        let log = view.take_delta();
        assert_eq!(log.len(), 1); // only the genuinely new tuple is logged
        assert!(view.take_delta().is_empty());
        // One rejection per layer: the base hit and the buffer hit.
        assert_eq!(view.dedup_hits(), 2);
    }

    #[test]
    fn arity_checked_against_base() {
        let mut base = Instance::new();
        base.add("R", vec![v(1), v(2)]).unwrap();
        let mut view = ShardView::new(&base);
        let err = view.insert(&rel("R"), Tuple::new(vec![v(1)])).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn obligation_buffer_drains_in_order() {
        let base = Instance::new();
        let mut view = ShardView::new(&base);
        view.record_obligation(Value::null(0), v(5));
        view.record_obligation(Value::null(1), Value::null(0));
        let obs = view.take_obligations();
        assert_eq!(
            obs,
            vec![(Value::null(0), v(5)), (Value::null(1), Value::null(0)),]
        );
        assert!(view.take_obligations().is_empty());
    }

    #[test]
    fn streaming_union_stops_early_without_allocating() {
        let mut base = Instance::new();
        for i in 0..5 {
            base.add("R", vec![v(i)]).unwrap();
        }
        let mut view = ShardView::new(&base);
        for i in 5..10 {
            view.insert(&rel("R"), Tuple::new(vec![v(i)])).unwrap();
        }
        let r = view.resolve("R").unwrap();
        assert_eq!(view.len_rel(r), 10);
        // Early stop inside the base layer never reaches the buffer.
        let mut seen = Vec::new();
        view.scan_rel(r, &[None], &mut |t| {
            seen.push(t.get(0).unwrap().as_int().unwrap());
            if seen.len() == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(seen, vec![0, 1, 2]);
        // A full streaming scan sees base rows then buffer rows.
        let mut all = Vec::new();
        view.scan_rel(r, &[None], &mut |t| {
            all.push(t.get(0).unwrap().as_int().unwrap());
            Control::Continue
        });
        assert_eq!(all, (0..10).collect::<Vec<i64>>());
        // Buffer-only relations resolve with an empty base half.
        view.insert(&rel("S"), Tuple::new(vec![v(42)])).unwrap();
        let s = view.resolve("S").unwrap();
        assert_eq!(view.len_rel(s), 1);
        assert!(view.any_match_rel(s, &[Some(v(42))]));
        assert!(view.resolve("Absent").is_none());
    }

    #[test]
    fn versioned_split_spans_base_and_buffer() {
        let mut base = Instance::new();
        for i in 0..4 {
            base.add("R", vec![v(i)]).unwrap();
        }
        let mut view = ShardView::new(&base);
        for i in 4..7 {
            view.insert(&rel("R"), Tuple::new(vec![v(i)])).unwrap();
        }
        let r = view.resolve("R").unwrap();
        let collect = |ver: Ver| {
            let mut out = Vec::new();
            view.scan_rel_v(r, &[None], ver, &mut |t| {
                out.push(t.get(0).unwrap().as_int().unwrap());
                Control::Continue
            });
            out
        };
        // n within the buffer: the split falls entirely in the local layer.
        let c = view.cursor_before_last_rel(r, 2);
        assert_eq!(collect(Ver::New(c)), vec![5, 6]);
        assert_eq!(collect(Ver::Old(c)), vec![0, 1, 2, 3, 4]);
        assert_eq!(view.estimate_rel_v(r, &[None], Ver::New(c)), 2);
        // n crossing the boundary: the new half takes all buffer rows plus
        // the snapshot's trailing rows.
        let c = view.cursor_before_last_rel(r, 5);
        assert_eq!(collect(Ver::New(c)), vec![2, 3, 4, 5, 6]);
        assert_eq!(collect(Ver::Old(c)), vec![0, 1]);
        // n == union length: everything is new.
        let c = view.cursor_before_last_rel(r, 7);
        assert_eq!(collect(Ver::New(c)).len(), 7);
        assert!(collect(Ver::Old(c)).is_empty());
        // n == 0: everything is old.
        let c = view.cursor_before_last_rel(r, 0);
        assert!(collect(Ver::New(c)).is_empty());
        assert_eq!(collect(Ver::Old(c)).len(), 7);
    }

    #[test]
    fn barrier_merge_roundtrip() {
        let mut base = Instance::new();
        base.add("R", vec![v(1)]).unwrap();
        let mut view = ShardView::new(&base);
        view.insert(&rel("R"), Tuple::new(vec![v(2)])).unwrap();
        view.insert(&rel("S"), Tuple::new(vec![v(3)])).unwrap();
        let log = view.take_delta();

        let mut master = base.clone();
        assert_eq!(master.absorb_delta(&log).unwrap(), 2);
        assert_eq!(master.len(), 3);
    }
}
