//! # grom-exec — the parallel execution substrate of GROM
//!
//! The chase engine of `grom-chase` spends its time evaluating dependency
//! premises and buffering repairs. Delta activations of dependencies with
//! *disjoint trigger sets* never touch the same relations, so they can run
//! on worker threads — provided every worker reads a consistent snapshot
//! and writes somewhere private. This crate supplies that machinery; the
//! scheduling *policy* (which dependencies form a conflict-free group, when
//! a sweep starts and ends) stays in `grom-chase`.
//!
//! ## The snapshot / buffer lifecycle
//!
//! 1. **Snapshot** — the coordinator freezes the master [`Instance`] for
//!    the duration of one sweep segment; workers only hold `&Instance`.
//! 2. **Shard** — each worker wraps the snapshot in a [`ShardView`]: reads
//!    see the union of the snapshot and the worker's private insertion
//!    buffer; writes go to the buffer only, deduplicated against both.
//!    Equality repairs never write at all — they record obligations into
//!    the view's obligation buffer for the coordinator. Fresh labeled
//!    nulls come from disjoint per-worker strided ranges
//!    ([`grom_data::StridedNullGenerator`]), so workers never race on
//!    labels.
//! 3. **Merge** — at the sweep barrier the coordinator folds each worker's
//!    buffered [`DeltaLog`] back into the master instance *in job order*
//!    ([`grom_data::Instance::absorb_delta`]) and unifies the merged
//!    obligation buffers deterministically before the sweep's single null
//!    substitution.
//!
//! ## Determinism guarantee
//!
//! Job inputs, null ranges and the merge order are all functions of the
//! job *index*, never of thread scheduling: [`WorkerPool::run`] returns
//! results positionally, and groups only ever write relations no other
//! group touches. Two runs of the same sweep therefore produce identical
//! instances; relative to single-threaded execution the result is
//! identical up to the renaming of freshly invented nulls.
//!
//! [`DeltaLog`]: grom_data::DeltaLog
//! [`Instance`]: grom_data::Instance

pub mod pool;
pub mod shard;

pub use pool::WorkerPool;
pub use shard::ShardView;
