//! A fixed-size scoped worker pool with deterministic result placement.
//!
//! The pool runs one closure over a batch of jobs on up to `threads` OS
//! threads. Work is claimed through an atomic cursor (cheap dynamic load
//! balancing — conflict groups are rarely equal-sized), but results land in
//! a slot indexed by the job's position, so the output order — and
//! everything downstream that folds it, like the chase's sweep merge — is
//! independent of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width pool of scoped workers.
///
/// The pool holds no threads between [`WorkerPool::run`] calls: workers are
/// scoped to one batch (so jobs may borrow from the caller's stack, e.g. an
/// instance snapshot) and joined before `run` returns — the barrier the
/// chase sweep needs anyway.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers; 0 is clamped to 1.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over `jobs`, returning the results in job order.
    ///
    /// `f` receives the job's index and the job itself. With a single
    /// worker (or a single job) everything runs inline on the caller's
    /// thread — no spawn overhead for the degenerate cases.
    pub fn run<T, R, F>(&self, jobs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = jobs.len();
        if self.threads == 1 || n <= 1 {
            return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let jobs: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i]
                        .lock()
                        .expect("job mutex poisoned")
                        .take()
                        .expect("each job is claimed exactly once");
                    let result = f(i, job);
                    *slots[i].lock().expect("slot mutex poisoned") = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot mutex poisoned")
                    .expect("every job produced a result")
            })
            .collect()
    }

    /// Like [`WorkerPool::run`], but each result carries how long its
    /// closure call kept a worker busy — per-job utilization for the
    /// chase's group profiles. Timing wraps only the `f` call, so claim
    /// and placement overhead is excluded.
    pub fn run_timed<T, R, F>(&self, jobs: Vec<T>, f: F) -> Vec<(R, std::time::Duration)>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run(jobs, |i, job| {
            let t0 = std::time::Instant::now();
            let result = f(i, job);
            (result, t0.elapsed())
        })
    }

    /// Like [`WorkerPool::run`], but a panicking job is contained with
    /// `catch_unwind` instead of aborting the process at the scope join.
    /// Returns `Err` with the panic payload of the lowest-indexed failed
    /// job (deterministic under any thread schedule); the scope still
    /// joins every worker first, so the pool — stateless by construction —
    /// is immediately reusable after a failure.
    pub fn run_caught<T, R, F>(&self, jobs: Vec<T>, f: F) -> Result<Vec<R>, String>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let caught = self.run(jobs, |i, job| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, job)))
                // `as_ref`, not `&payload`: a `&Box<dyn Any>` would itself
                // coerce to `&dyn Any` and every downcast would miss.
                .map_err(|payload| panic_detail(payload.as_ref()))
        });
        let mut out = Vec::with_capacity(caught.len());
        for r in caught {
            match r {
                Ok(v) => out.push(v),
                Err(detail) => return Err(detail),
            }
        }
        Ok(out)
    }

    /// [`WorkerPool::run_caught`] with per-job busy durations, the
    /// panic-containing twin of [`WorkerPool::run_timed`].
    pub fn run_timed_caught<T, R, F>(
        &self,
        jobs: Vec<T>,
        f: F,
    ) -> Result<Vec<(R, std::time::Duration)>, String>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_caught(jobs, |i, job| {
            let t0 = std::time::Instant::now();
            let result = f(i, job);
            (result, t0.elapsed())
        })
    }
}

/// Render a panic payload the way the default hook would: `&str` and
/// `String` payloads verbatim, anything else opaquely.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_job_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<usize> = (0..64).collect();
        let out = pool.run(jobs, |i, j| {
            assert_eq!(i, j);
            j * 10
        });
        assert_eq!(out, (0..64).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_threads_participate() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<usize> = (0..128).collect();
        let out = pool.run(jobs, |_, j| {
            // A touch of work so the claiming thread does not drain the
            // whole queue before the others start.
            std::thread::sleep(std::time::Duration::from_micros(200));
            (j, std::thread::current().id())
        });
        let ids: HashSet<_> = out.iter().map(|(_, id)| *id).collect();
        assert!(ids.len() > 1, "expected more than one worker thread");
    }

    #[test]
    fn run_timed_returns_results_with_durations() {
        let pool = WorkerPool::new(2);
        let out = pool.run_timed(vec![10usize, 20], |_, j| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            j + 1
        });
        assert_eq!(out.iter().map(|(r, _)| *r).collect::<Vec<_>>(), [11, 21]);
        assert!(out.iter().all(|(_, d)| d.as_micros() >= 500));
    }

    #[test]
    fn run_caught_contains_panics_and_reports_the_first() {
        let pool = WorkerPool::new(4);
        let out = pool.run_caught((0..16).collect::<Vec<usize>>(), |_, j| {
            if j == 5 || j == 11 {
                panic!("job {j} exploded");
            }
            j
        });
        // Lowest-indexed failure wins, regardless of completion order.
        assert_eq!(out, Err("job 5 exploded".to_string()));
        // The pool is reusable after containment.
        let ok = pool.run_caught(vec![1, 2, 3], |_, j| j * 2);
        assert_eq!(ok, Ok(vec![2, 4, 6]));
    }

    #[test]
    fn run_caught_contains_panics_inline_too() {
        let out = WorkerPool::new(1).run_caught(vec![0usize], |_, _| -> usize {
            panic!("inline boom");
        });
        assert_eq!(out, Err("inline boom".to_string()));
    }

    #[test]
    fn degenerate_pools_run_inline() {
        let here = std::thread::current().id();
        let out = WorkerPool::new(1).run(vec![1, 2, 3], |_, j| (j, std::thread::current().id()));
        assert!(out.iter().all(|&(_, id)| id == here));
        let out = WorkerPool::new(8).run(vec![7], |_, j| (j, std::thread::current().id()));
        assert_eq!(out, vec![(7, here)]);
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }
}
