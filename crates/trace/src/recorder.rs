//! The per-run [`Recorder`]: aggregates a [`ChaseProfile`] and, when a
//! sink is attached, streams one JSONL event per activation / merge /
//! sweep plus `run_start` / `run_end` markers.
//!
//! Profiling is always on — the cost is a couple of `Instant` reads per
//! activation plus counter adds; event *assembly* only happens when
//! [`TraceHandle::is_active`] holds. In parallel mode each worker fills a
//! [`WorkerRecorder`] (a plain `Send` buffer of [`ActivationRecord`]s) and
//! the coordinator folds them in deterministic job order at the sweep
//! barrier via [`Recorder::merge_worker`].

use std::time::Instant;

use crate::json::JsonObject;
use crate::profile::{ChaseProfile, DepProfile, GroupProfile};
use crate::sink::TraceHandle;

/// How an activation evaluated its premise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// Against the full instance.
    Full,
    /// Seeded from delta tuples.
    Delta,
}

/// One dependency activation, as observed by the engine.
#[derive(Debug, Clone, Copy)]
pub struct ActivationRecord {
    /// Dependency index (into the run's declaration-order list).
    pub dep: usize,
    pub kind: ActivationKind,
    /// Delta tuples seeded (0 for full rescans).
    pub seeded: u64,
    /// Violating matches found.
    pub violations: u64,
    /// Tuples actually inserted by the repairs.
    pub tuples: u64,
    /// Equality obligations recorded.
    pub obligations: u64,
    /// Duplicate-insert rejections (parallel shard views only).
    pub dedup_hits: u64,
    /// Wall time of the activation.
    pub wall_ns: u64,
}

/// A worker-local, `Send` buffer of activation records; the pool half of
/// the recorder. Merged at the barrier in deterministic job order.
#[derive(Debug, Default)]
pub struct WorkerRecorder {
    records: Vec<ActivationRecord>,
}

impl WorkerRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer one activation.
    pub fn record(&mut self, rec: ActivationRecord) {
        self.records.push(rec);
    }

    /// The buffered records, in observation order.
    pub fn records(&self) -> &[ActivationRecord] {
        &self.records
    }
}

/// The per-run aggregator and event emitter.
#[derive(Debug)]
pub struct Recorder {
    profile: ChaseProfile,
    trace: TraceHandle,
    started: Instant,
    // Accumulators for the sweep in flight; reset by `end_sweep`.
    sweep_eval_ns: u64,
    sweep_activations: u64,
    sweep_substitute_ns: u64,
    sweep_merges: u64,
}

impl Recorder {
    /// Start a run over `names` (declaration order) in `mode`; emits the
    /// `run_start` event.
    pub fn new(names: &[String], mode: &str, trace: &TraceHandle) -> Self {
        let profile = ChaseProfile {
            mode: mode.to_string(),
            deps: names
                .iter()
                .map(|n| DepProfile {
                    name: n.clone(),
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        };
        if trace.is_active() {
            let mut obj = JsonObject::new();
            obj.str("event", "run_start")
                .str("mode", mode)
                .usize("deps", names.len());
            trace.emit(&obj.finish());
        }
        Self {
            profile,
            trace: trace.clone(),
            started: Instant::now(),
            sweep_eval_ns: 0,
            sweep_activations: 0,
            sweep_substitute_ns: 0,
            sweep_merges: 0,
        }
    }

    /// Record one activation observed during `sweep`.
    pub fn activation(&mut self, sweep: u64, rec: &ActivationRecord) {
        let d = &mut self.profile.deps[rec.dep];
        d.activations += 1;
        match rec.kind {
            ActivationKind::Full => d.full_rescans += 1,
            ActivationKind::Delta => {
                d.delta_activations += 1;
                if rec.violations > 0 {
                    d.delta_hits += 1;
                }
            }
        }
        d.delta_tuples_seeded += rec.seeded;
        d.violations += rec.violations;
        d.tuples_produced += rec.tuples;
        d.obligations += rec.obligations;
        d.dedup_hits += rec.dedup_hits;
        d.wall_ns += rec.wall_ns;
        self.sweep_eval_ns += rec.wall_ns;
        self.sweep_activations += 1;
        if self.trace.is_active() {
            let group = self.profile.deps[rec.dep].group;
            let mut obj = JsonObject::new();
            obj.str("event", "activation")
                .u64("sweep", sweep)
                .str("dep", &self.profile.deps[rec.dep].name)
                .str(
                    "kind",
                    match rec.kind {
                        ActivationKind::Full => "full",
                        ActivationKind::Delta => "delta",
                    },
                )
                .u64("seeded", rec.seeded)
                .u64("violations", rec.violations)
                .u64("tuples", rec.tuples)
                .u64("obligations", rec.obligations)
                .u64("dedup_hits", rec.dedup_hits)
                .u64("wall_us", rec.wall_ns / 1_000);
            if let Some(g) = group {
                obj.usize("group", g);
            }
            self.trace.emit(&obj.finish());
        }
    }

    /// Record one null-substitution pass applied during `sweep`:
    /// `resolved` null bindings flattened, `changed` relations rewritten.
    pub fn substitution(&mut self, sweep: u64, resolved: usize, changed: usize, wall_ns: u64) {
        self.profile.substitute_ns += wall_ns;
        self.profile.substitution_passes += 1;
        self.sweep_substitute_ns += wall_ns;
        self.sweep_merges += 1;
        if self.trace.is_active() {
            let mut obj = JsonObject::new();
            obj.str("event", "merge")
                .u64("sweep", sweep)
                .usize("resolved", resolved)
                .usize("changed_relations", changed)
                .u64("substitute_us", wall_ns / 1_000);
            self.trace.emit(&obj.finish());
        }
    }

    /// Close out `sweep`. `evaluate_ns` overrides the evaluate-phase wall
    /// (parallel mode: pool wall time); `None` uses the sum of activation
    /// walls. `merge_ns` is barrier-merge wall (0 in sequential modes).
    /// Sweeps with no activity are not counted and emit nothing.
    pub fn end_sweep(&mut self, sweep: u64, evaluate_ns: Option<u64>, merge_ns: u64) {
        let eval = evaluate_ns.unwrap_or(self.sweep_eval_ns);
        let active = self.sweep_activations > 0 || self.sweep_merges > 0 || merge_ns > 0;
        if active {
            self.profile.sweeps += 1;
            self.profile.evaluate_ns += eval;
            self.profile.merge_ns += merge_ns;
            if self.trace.is_active() {
                let mut obj = JsonObject::new();
                obj.str("event", "sweep")
                    .u64("sweep", sweep)
                    .u64("activations", self.sweep_activations)
                    .u64("evaluate_us", eval / 1_000)
                    .u64("merge_us", merge_ns / 1_000)
                    .u64("substitute_us", self.sweep_substitute_ns / 1_000);
                self.trace.emit(&obj.finish());
            }
        }
        self.sweep_eval_ns = 0;
        self.sweep_activations = 0;
        self.sweep_substitute_ns = 0;
        self.sweep_merges = 0;
    }

    /// Assign dependency `k` to conflict group `groups[k]` (parallel mode).
    pub fn set_groups(&mut self, groups: &[usize]) {
        for (k, &g) in groups.iter().enumerate() {
            if let Some(d) = self.profile.deps.get_mut(k) {
                d.group = Some(g);
            }
        }
    }

    /// Account one worker job for `group` that kept a worker busy for
    /// `busy_ns`.
    pub fn group_job(&mut self, group: usize, busy_ns: u64) {
        let slot = match self.profile.groups.iter_mut().find(|g| g.group == group) {
            Some(g) => g,
            None => {
                self.profile.groups.push(GroupProfile {
                    group,
                    ..Default::default()
                });
                self.profile.groups.sort_by_key(|g| g.group);
                self.profile
                    .groups
                    .iter_mut()
                    .find(|g| g.group == group)
                    .expect("just pushed")
            }
        };
        slot.jobs += 1;
        slot.busy_ns += busy_ns;
    }

    /// Fold one worker's buffered activations into the profile (and the
    /// event stream), in the worker's observation order. Call in
    /// deterministic job order at the barrier.
    pub fn merge_worker(&mut self, sweep: u64, worker: WorkerRecorder) {
        for rec in &worker.records {
            self.activation(sweep, rec);
        }
    }

    /// Read-only view of the profile so far (before `finish`).
    pub fn profile(&self) -> &ChaseProfile {
        &self.profile
    }

    /// End the run: stamp `total_ns`, emit `run_end`, flush the sink, and
    /// hand back the profile.
    pub fn finish(mut self) -> ChaseProfile {
        self.profile.total_ns = self.started.elapsed().as_nanos() as u64;
        if self.trace.is_active() {
            let mut obj = JsonObject::new();
            obj.str("event", "run_end")
                .str("mode", &self.profile.mode)
                .u64("sweeps", self.profile.sweeps)
                .u64("activations", self.profile.total_activations())
                .u64("tuples", self.profile.total_tuples_produced())
                .u64("total_us", self.profile.total_ns / 1_000);
            self.trace.emit(&obj.finish());
            self.trace.flush();
        }
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::sink::MemorySink;
    use std::sync::Arc;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("d{i}")).collect()
    }

    fn act(dep: usize, kind: ActivationKind, violations: u64, tuples: u64) -> ActivationRecord {
        ActivationRecord {
            dep,
            kind,
            seeded: if matches!(kind, ActivationKind::Delta) {
                violations + 1
            } else {
                0
            },
            violations,
            tuples,
            obligations: 0,
            dedup_hits: 0,
            wall_ns: 1_000,
        }
    }

    #[test]
    fn aggregates_activation_splits_and_hit_rate() {
        let mut rec = Recorder::new(&names(2), "delta", &TraceHandle::none());
        rec.activation(1, &act(0, ActivationKind::Full, 2, 2));
        rec.activation(1, &act(1, ActivationKind::Delta, 1, 1));
        rec.end_sweep(1, None, 0);
        rec.activation(2, &act(1, ActivationKind::Delta, 0, 0));
        rec.end_sweep(2, None, 0);
        rec.end_sweep(3, None, 0); // idle: not counted
        let p = rec.finish();
        assert_eq!(p.sweeps, 2);
        assert_eq!(p.total_activations(), 3);
        assert_eq!(p.deps[0].full_rescans, 1);
        assert_eq!(p.deps[1].delta_activations, 2);
        assert_eq!(p.deps[1].delta_hits, 1);
        assert_eq!(p.deps[1].delta_hit_rate(), Some(0.5));
        assert_eq!(p.evaluate_ns, 3_000);
        assert_eq!(p.total_dep_wall_ns(), 3_000);
        assert!(p.total_ns > 0);
    }

    #[test]
    fn event_stream_matches_profile_counts() {
        let sink = Arc::new(MemorySink::new());
        let trace = TraceHandle::new(sink.clone());
        let mut rec = Recorder::new(&names(1), "delta", &trace);
        rec.activation(1, &act(0, ActivationKind::Full, 1, 1));
        rec.substitution(1, 2, 1, 500);
        rec.end_sweep(1, None, 0);
        let p = rec.finish();

        let lines = sink.lines();
        let events: Vec<JsonValue> = lines.iter().map(|l| parse(l).unwrap()).collect();
        let count = |name: &str| {
            events
                .iter()
                .filter(|e| e.get("event").and_then(JsonValue::as_str) == Some(name))
                .count() as u64
        };
        assert_eq!(count("run_start"), 1);
        assert_eq!(count("run_end"), 1);
        assert_eq!(count("activation"), p.total_activations());
        assert_eq!(count("merge"), p.substitution_passes);
        assert_eq!(count("sweep"), p.sweeps);
        // The activation event carries the dependency name and kind.
        let a = events
            .iter()
            .find(|e| e.get("event").and_then(JsonValue::as_str) == Some("activation"))
            .unwrap();
        assert_eq!(a.get("dep").and_then(JsonValue::as_str), Some("d0"));
        assert_eq!(a.get("kind").and_then(JsonValue::as_str), Some("full"));
    }

    #[test]
    fn worker_merge_preserves_order_and_groups() {
        let mut rec = Recorder::new(&names(3), "parallel2", &TraceHandle::none());
        rec.set_groups(&[0, 0, 1]);
        let mut w0 = WorkerRecorder::new();
        w0.record(act(0, ActivationKind::Delta, 1, 1));
        w0.record(act(1, ActivationKind::Full, 0, 0));
        let mut w1 = WorkerRecorder::new();
        w1.record(act(2, ActivationKind::Delta, 2, 2));
        rec.group_job(0, 5_000);
        rec.merge_worker(1, w0);
        rec.group_job(1, 3_000);
        rec.merge_worker(1, w1);
        rec.end_sweep(1, Some(6_000), 1_000);
        let p = rec.finish();
        assert_eq!(p.total_activations(), 3);
        assert_eq!(p.deps[0].group, Some(0));
        assert_eq!(p.deps[2].group, Some(1));
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.groups[0].jobs, 1);
        assert_eq!(p.groups[0].busy_ns, 5_000);
        assert_eq!(p.evaluate_ns, 6_000);
        assert_eq!(p.merge_ns, 1_000);
    }

    #[test]
    fn substitution_only_sweep_still_counts() {
        let mut rec = Recorder::new(&names(1), "delta", &TraceHandle::none());
        rec.substitution(1, 1, 1, 100);
        rec.end_sweep(1, None, 0);
        let p = rec.finish();
        assert_eq!(p.sweeps, 1);
        assert_eq!(p.substitution_passes, 1);
        assert_eq!(p.substitute_ns, 100);
    }
}
