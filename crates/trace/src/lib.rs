//! # grom-trace — chase-native tracing and profiling
//!
//! An always-compiled, zero-dependency event-sink layer for the chase
//! engines. Three pieces:
//!
//! * [`sink`] — the [`TraceSink`] trait (a line-oriented event consumer)
//!   and the [`TraceHandle`] the chase configuration carries: a cheap
//!   clonable handle that is a no-op unless a sink is attached.
//!   [`JsonlSink`] streams events to a file as JSON Lines; [`MemorySink`]
//!   buffers them for tests.
//! * [`recorder`] — the per-run [`Recorder`]: **always on**, it aggregates
//!   a [`ChaseProfile`] (per-dependency wall time, activation splits,
//!   tuples, delta-hit rates; per-sweep phase timings; per-group
//!   utilization in parallel mode) for a couple of `Instant` reads per
//!   activation, and emits one JSONL event per activation / sweep / merge
//!   when a sink is attached. [`WorkerRecorder`] is its `Send` half for
//!   pool workers, merged deterministically at the sweep barrier.
//! * [`report`] — the dominance-report renderer behind `grom explain`:
//!   top-N dependencies by time, per-group parallel utilization, delta-hit
//!   rates, substitution-pass accounting, and a rewrite hint when one
//!   conflict group holds more than 80% of the work.
//!
//! [`json`] is the hand-rolled JSON support both halves share: an
//! allocation-light object writer for the event stream and a minimal
//! parser so tests (and tools) can round-trip every emitted line without
//! external crates.

pub mod json;
pub mod profile;
pub mod recorder;
pub mod report;
pub mod sink;

pub use profile::{ChaseProfile, DepProfile, GroupProfile};
pub use recorder::{ActivationKind, ActivationRecord, Recorder, WorkerRecorder};
pub use report::{render_report, ReportOptions};
pub use sink::{JsonlSink, MemorySink, TraceHandle, TraceSink};
